"""Integration matrix: workloads x encryption modes x ISA flavours.

The heavyweight end-to-end sweep: compile -> package -> transfer ->
decrypt -> validate -> execute -> compare against the Python oracle,
across the configuration surface.  The per-package unit tests prove the
parts; this proves the assembled machine.
"""

import pytest

from repro.core.compiler_driver import EricCompiler
from repro.core.config import EncryptionMode, EricConfig
from repro.core.device import Device
from repro.workloads import get_workload

MATRIX_WORKLOADS = ("crc32", "fft", "stringsearch")
MODES = (EncryptionMode.FULL, EncryptionMode.PARTIAL, EncryptionMode.FIELD)


@pytest.fixture(scope="module")
def device():
    return Device(device_seed=0x1A7)


@pytest.mark.parametrize("compress", [False, True],
                         ids=["rv64i", "rv64ic"])
@pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
@pytest.mark.parametrize("name", MATRIX_WORKLOADS)
def test_end_to_end_matrix(name, mode, compress, device):
    workload = get_workload(name)
    config = EricConfig(mode=mode, compress=compress,
                        partial_fraction=0.4)
    compiler = EricCompiler(config)
    result = compiler.compile_and_package(workload.source,
                                          device.enrollment_key(),
                                          name=name)
    outcome = device.load_and_run(result.package_bytes)
    assert outcome.run.stdout == workload.expected_stdout
    assert outcome.hde.signature_ok
    # the wire never carries the plaintext text section
    if mode is not EncryptionMode.FIELD:
        assert result.program.text not in result.package_bytes


@pytest.mark.parametrize("extension_config", [
    EricConfig(sign_data=True),
    EricConfig(encrypt_data=True, sign_data=True),
    EricConfig(mode=EncryptionMode.PARTIAL, cipher="xor-sha256ctr"),
    EricConfig(compress=True, encrypt_data=True, sign_data=True),
], ids=["sign-data", "encrypt-data", "ctr-cipher", "rvc-encrypted-data"])
def test_extension_configs_end_to_end(extension_config, device):
    workload = get_workload("basicmath")
    compiler = EricCompiler(extension_config)
    result = compiler.compile_and_package(workload.source,
                                          device.enrollment_key())
    outcome = device.load_and_run(result.package_bytes)
    assert outcome.run.stdout == workload.expected_stdout


def test_same_source_differs_per_device():
    """Packages for two devices differ everywhere that matters."""
    source = get_workload("crc32").source
    compiler = EricCompiler()
    a = compiler.compile_and_package(
        source, Device(device_seed=1).enrollment_key())
    b = compiler.compile_and_package(
        source, Device(device_seed=2).enrollment_key())
    assert a.program.text == b.program.text          # same plaintext
    assert a.package.enc_text != b.package.enc_text  # different ciphertext
    assert a.package.enc_signature != b.package.enc_signature


def test_deterministic_packaging(device):
    """Same source + same key + same config => bit-identical package."""
    source = get_workload("bitcount").source
    key = device.enrollment_key()
    a = EricCompiler().compile_and_package(source, key)
    b = EricCompiler().compile_and_package(source, key)
    assert a.package_bytes == b.package_bytes
