"""Property-based end-to-end invariants (hypothesis).

Random synthetic programs (arbitrary valid instruction streams + random
data) must round-trip through encrypt -> package -> HDE decrypt for every
mode, and must *never* survive a wrong-key decryption.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm.program import InstructionSlot, Program
from repro.core.config import EncryptionMode, EricConfig
from repro.core.encryptor import encrypt_program
from repro.core.keys import KeyManagementUnit, puf_based_key
from repro.core.package import ProgramPackage
from repro.core.signature import compute_signature
from repro.errors import ValidationError
from repro.isa.compressed import compress
from repro.isa.encoding import encode
from repro.isa.instruction import Instruction

# -- synthetic program strategy ----------------------------------------------

_R_NAMES = ("add", "sub", "xor", "and", "or", "mul", "sltu")
_I_NAMES = ("addi", "andi", "ori", "xori", "addiw")
_LOADS = ("lw", "ld", "lbu")
_STORES = ("sw", "sd", "sb")

regs = st.integers(min_value=0, max_value=31)
imm12 = st.integers(min_value=-2048, max_value=2047)


@st.composite
def instructions(draw):
    kind = draw(st.sampled_from(("r", "i", "load", "store")))
    if kind == "r":
        return Instruction(draw(st.sampled_from(_R_NAMES)),
                           rd=draw(regs), rs1=draw(regs), rs2=draw(regs))
    if kind == "i":
        return Instruction(draw(st.sampled_from(_I_NAMES)),
                           rd=draw(regs), rs1=draw(regs), imm=draw(imm12))
    if kind == "load":
        return Instruction(draw(st.sampled_from(_LOADS)),
                           rd=draw(regs), rs1=draw(regs), imm=draw(imm12))
    return Instruction(draw(st.sampled_from(_STORES)),
                       rs2=draw(regs), rs1=draw(regs), imm=draw(imm12))


@st.composite
def synthetic_programs(draw):
    instrs = draw(st.lists(instructions(), min_size=1, max_size=60))
    use_rvc = draw(st.booleans())
    text = bytearray()
    layout = []
    for instr in instrs:
        halfword = compress(instr) if use_rvc else None
        if halfword is not None:
            layout.append(InstructionSlot(offset=len(text), size=2))
            text.extend(halfword.to_bytes(2, "little"))
        else:
            layout.append(InstructionSlot(offset=len(text), size=4))
            text.extend(encode(instr).to_bytes(4, "little"))
    data = draw(st.binary(max_size=128))
    return Program(text=bytes(text), data=data, text_base=0x10000,
                   data_base=0x20000, entry=0x10000,
                   layout=tuple(layout))


def _package(program, config, pbk):
    kmu = KeyManagementUnit(pbk)
    signature = compute_signature(program, include_data=config.sign_data)
    encrypted = encrypt_program(program, config,
                                kmu.text_cipher(config.cipher),
                                kmu.signature_cipher(config.cipher),
                                signature)
    return ProgramPackage(
        mode=config.mode, cipher=config.cipher,
        field_classes=(config.field_classes
                       if config.mode is EncryptionMode.FIELD else ()),
        entry=program.entry, text_base=program.text_base,
        data_base=program.data_base, enc_text=encrypted.ciphertext,
        data=program.data, enc_map=encrypted.enc_map,
        enc_signature=encrypted.enc_signature,
        data_signed=config.sign_data,
    ).serialize()


MODES = [EncryptionMode.FULL, EncryptionMode.PARTIAL, EncryptionMode.FIELD]


@pytest.fixture(scope="module")
def hde_pair():
    """A real device HDE plus its enrollment key (shared per module)."""
    from repro.core.device import Device
    device = Device(device_seed=0x9999)
    return device.hde, device.enrollment_key()


@given(program=synthetic_programs(),
       mode=st.sampled_from(MODES),
       seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=40, deadline=None)
def test_roundtrip_property(program, mode, seed, hde_pair):
    hde, pbk = hde_pair
    config = EricConfig(mode=mode, partial_fraction=0.5,
                        selection_seed=seed).validate()
    blob = _package(program, config, pbk)
    recovered, report = hde.process(blob)
    assert recovered.text == program.text
    assert recovered.data == program.data
    assert tuple(recovered.layout) == tuple(program.layout)
    assert report.signature_ok


@given(program=synthetic_programs(),
       mode=st.sampled_from([EncryptionMode.FULL, EncryptionMode.PARTIAL]))
@settings(max_examples=25, deadline=None)
def test_wrong_key_always_fails(program, mode, hde_pair):
    hde, _ = hde_pair
    config = EricConfig(mode=mode).validate()
    wrong_pbk = puf_based_key(b"not-the-device")
    blob = _package(program, config, wrong_pbk)
    with pytest.raises(ValidationError):
        hde.process(blob)


@given(program=synthetic_programs())
@settings(max_examples=25, deadline=None)
def test_package_serialization_roundtrip(program, hde_pair):
    _, pbk = hde_pair
    config = EricConfig(mode=EncryptionMode.PARTIAL).validate()
    blob = _package(program, config, pbk)
    package = ProgramPackage.deserialize(blob)
    assert package.serialize() == blob
