"""Untrusted channel, static analysis, dynamic analysis."""

import pytest

from repro.cc.driver import compile_source
from repro.core.compiler_driver import EricCompiler
from repro.core.config import EncryptionMode, EricConfig
from repro.core.device import Device
from repro.errors import ChannelError
from repro.net.channel import (
    BitFlipper,
    Eavesdropper,
    Patcher,
    Replacer,
    UntrustedChannel,
)
from repro.net.dynamic_attacker import attempt_execution
from repro.net.static_attacker import analyze_blob, byte_entropy, \
    extract_strings

SOURCE = """
char secret_banner[] = "TOP-SECRET-ALGORITHM-v2";
int main() {
    int acc = 1;
    for (int i = 0; i < 50; i++) { acc = acc * 7 % 1000003; }
    print_int(acc);
    print_str(secret_banner);
    return 0;
}
"""


@pytest.fixture(scope="module")
def plain_program():
    return compile_source(SOURCE, name="victim").program


@pytest.fixture(scope="module")
def target_device():
    return Device(device_seed=0x7A67)


@pytest.fixture(scope="module")
def eric_package(target_device):
    compiler = EricCompiler(EricConfig(mode=EncryptionMode.FULL))
    return compiler.compile_and_package(
        SOURCE, target_device.enrollment_key())


class TestChannel:
    def test_clean_channel_is_identity(self):
        channel = UntrustedChannel()
        assert channel.transfer(b"payload") == b"payload"
        assert channel.transfers == 1

    def test_eavesdropper_records(self):
        spy = Eavesdropper()
        channel = UntrustedChannel([spy])
        channel.transfer(b"one")
        channel.transfer(b"two")
        assert spy.captured == [b"one", b"two"]

    def test_bitflipper_flips_exactly(self):
        flipper = BitFlipper(flips=5, seed=1)
        payload = bytes(100)
        flipped = flipper.intercept(payload)
        differing = sum(bin(a ^ b).count("1")
                        for a, b in zip(payload, flipped))
        assert 1 <= differing <= 5  # set-based: duplicates collapse

    def test_bitflipper_ber(self):
        flipper = BitFlipper(ber=0.01, seed=2)
        payload = bytes(10_000)
        flipped = flipper.intercept(payload)
        differing = sum(bin(a ^ b).count("1")
                        for a, b in zip(payload, flipped))
        assert 400 < differing < 1200  # ~800 expected

    def test_bitflipper_args_validated(self):
        with pytest.raises(ChannelError):
            BitFlipper(flips=2, ber=0.5)
        with pytest.raises(ChannelError):
            BitFlipper(flips=-1)

    def test_patcher_bounds(self):
        with pytest.raises(ChannelError):
            Patcher(offset=10, patch=b"xx").intercept(b"short")

    def test_patcher_patches(self):
        patched = Patcher(offset=1, patch=b"XY").intercept(b"abcd")
        assert patched == b"aXYd"

    def test_replacer(self):
        channel = UntrustedChannel([Replacer(b"evil")])
        assert channel.transfer(b"good") == b"evil"


class TestStaticAnalysis:
    def test_plaintext_text_looks_like_code(self, plain_program):
        report = analyze_blob(plain_program.text)
        assert report.looks_like_code
        assert report.valid_decode_fraction > 0.9

    def test_encrypted_text_does_not_look_like_code(self, eric_package):
        report = analyze_blob(eric_package.package.enc_text)
        assert not report.looks_like_code

    def test_encryption_raises_entropy(self, plain_program, eric_package):
        plain_entropy = byte_entropy(plain_program.text)
        cipher_entropy = byte_entropy(eric_package.package.enc_text)
        assert cipher_entropy > plain_entropy

    def test_strings_leak_from_plain_image_only(self, plain_program,
                                                eric_package):
        plain_blob = plain_program.serialize_plain()
        assert any("TOP-SECRET" in s for s in extract_strings(plain_blob))
        # data section is plaintext in the package; the *code* is not.
        # Full-image secrecy for data constants would need data
        # encryption, which the paper scopes to instructions.
        report = analyze_blob(eric_package.package.enc_text)
        assert not any("TOP-SECRET" in s for s in report.strings)

    def test_opcode_histogram_flattens(self, plain_program, eric_package):
        from repro.net.static_attacker import mnemonic_entropy
        plain_hist = analyze_blob(plain_program.text).opcode_histogram
        cipher_hist = analyze_blob(
            eric_package.package.enc_text).opcode_histogram
        # compiler output concentrates on few mnemonics; ciphertext
        # decodes scatter across the ISA
        assert mnemonic_entropy(plain_hist) < mnemonic_entropy(cipher_hist)

    def test_empty_blob(self):
        report = analyze_blob(b"")
        assert report.size == 0
        assert not report.looks_like_code


class TestDynamicAnalysis:
    def test_attacker_device_learns_nothing(self, eric_package):
        attacker = Device(device_seed=0xE71)
        outcome = attempt_execution(attacker, eric_package.package_bytes)
        assert not outcome.executed
        assert outcome.outcome == "rejected"
        assert not outcome.leaked_behaviour
        assert outcome.console == ""

    def test_target_device_runs(self, target_device, eric_package):
        outcome = attempt_execution(target_device,
                                    eric_package.package_bytes)
        assert outcome.executed
        assert outcome.outcome == "completed"
        assert "TOP-SECRET" in outcome.console
        assert outcome.leaked_behaviour  # the *owner* sees behaviour

    def test_counters_only_for_authorized_run(self, target_device,
                                              eric_package):
        attacker = Device(device_seed=0xBAD)
        stolen = attempt_execution(attacker, eric_package.package_bytes)
        owned = attempt_execution(target_device,
                                  eric_package.package_bytes)
        assert stolen.counters == {}
        assert owned.counters["instret"] > 0
