"""Field masks, pseudo expansion and the disassembler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DecodingError, EncodingError
from repro.isa.disassembler import disassemble, disassemble_text
from repro.isa.encoding import encode, encode_bytes
from repro.isa.fields import FIELD_CLASSES, encryptable_mask, field_mask
from repro.isa.instruction import Instruction
from repro.isa.pseudo import expand_pseudo, li_sequence
from repro.isa.spec import parse_register, register_name


class TestFieldMasks:
    def test_opcode_mask(self):
        word = encode(Instruction("add", rd=1, rs1=2, rs2=3))
        assert field_mask(word, ("opcode",)) == 0x7F

    def test_imm_mask_i_type(self):
        word = encode(Instruction("ld", rd=1, rs1=2, imm=100))
        assert field_mask(word, ("imm",)) == 0xFFF00000

    def test_imm_mask_s_type(self):
        word = encode(Instruction("sd", rs1=1, rs2=2, imm=100))
        assert field_mask(word, ("imm",)) == 0xFE000F80

    def test_imm_mask_u_type(self):
        word = encode(Instruction("lui", rd=1, imm=5))
        assert field_mask(word, ("imm",)) == 0xFFFFF000

    def test_register_masks(self):
        word = encode(Instruction("add", rd=1, rs1=2, rs2=3))
        assert field_mask(word, ("rd",)) == 0x00000F80
        assert field_mask(word, ("rs1",)) == 0x000F8000
        assert field_mask(word, ("rs2",)) == 0x01F00000

    def test_classes_or_together(self):
        word = encode(Instruction("add", rd=1, rs1=2, rs2=3))
        combined = field_mask(word, ("rd", "rs1"))
        assert combined == field_mask(word, ("rd",)) | field_mask(word, ("rs1",))

    def test_unknown_class_rejected(self):
        word = encode(Instruction("add", rd=1, rs1=2, rs2=3))
        with pytest.raises(ValueError):
            field_mask(word, ("immediate",))

    def test_garbage_word_rejected(self):
        with pytest.raises(DecodingError):
            field_mask(0xFFFFFFFF, ("imm",))

    def test_encryptable_mask_never_covers_opcode_or_funct(self):
        cases = [
            Instruction("add", rd=1, rs1=2, rs2=3),
            Instruction("ld", rd=1, rs1=2, imm=8),
            Instruction("sd", rs1=1, rs2=2, imm=8),
            Instruction("beq", rs1=1, rs2=2, imm=8),
            Instruction("lui", rd=1, imm=1),
            Instruction("srai", rd=3, rs1=3, imm=5),
        ]
        for instr in cases:
            word = encode(instr)
            mask = encryptable_mask(word, FIELD_CLASSES)
            assert mask & 0x7F == 0
            assert mask & field_mask(word, ("funct",)) == 0

    def test_masked_word_still_reveals_format(self):
        # The HDE must be able to recompute the mask from the masked word.
        from repro.isa.decoding import decode
        instr = Instruction("ld", rd=9, rs1=10, imm=520)
        word = encode(instr)
        mask = encryptable_mask(word, ("imm", "rs1", "rd"))
        garbled = word ^ (0xDEADBEEF & mask)
        assert decode(garbled).name == "ld"
        assert encryptable_mask(garbled, ("imm", "rs1", "rd")) == mask


class TestLiSequence:
    @given(st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
    @settings(max_examples=120, deadline=None)
    def test_li_materializes_value(self, value):
        # Execute the sequence with a two-register model.
        regs = {i: 0 for i in range(32)}
        for instr in li_sequence(5, value):
            rd, rs1, imm = instr.rd, instr.rs1, instr.imm
            if instr.name == "addi":
                regs[rd] = _wrap(regs[rs1] + imm)
            elif instr.name == "lui":
                regs[rd] = _wrap(_sext(imm << 12, 32))
            elif instr.name == "addiw":
                regs[rd] = _wrap(_sext((regs[rs1] + imm) & 0xFFFFFFFF, 32))
            elif instr.name == "slli":
                regs[rd] = _wrap(regs[rs1] << imm)
            else:
                pytest.fail(f"unexpected instr {instr.name} in li")
            regs[0] = 0
        assert regs[5] == _wrap(value)

    def test_small_constants_single_instruction(self):
        assert len(li_sequence(1, 0)) == 1
        assert len(li_sequence(1, 2047)) == 1
        assert len(li_sequence(1, -2048)) == 1

    def test_32bit_constants_two_instructions(self):
        assert len(li_sequence(1, 0x12345678)) == 2
        assert len(li_sequence(1, -0x12345678)) == 2


def _wrap(x):
    x &= (1 << 64) - 1
    return x - (1 << 64) if x >= (1 << 63) else x


def _sext(x, bits):
    x &= (1 << bits) - 1
    return x - (1 << bits) if x >= (1 << (bits - 1)) else x


class TestPseudoExpansion:
    @pytest.mark.parametrize("name,operands,expected", [
        ("nop", [], [Instruction("addi", rd=0, rs1=0, imm=0)]),
        ("mv", [1, 2], [Instruction("addi", rd=1, rs1=2, imm=0)]),
        ("not", [1, 2], [Instruction("xori", rd=1, rs1=2, imm=-1)]),
        ("neg", [1, 2], [Instruction("sub", rd=1, rs1=0, rs2=2)]),
        ("seqz", [1, 2], [Instruction("sltiu", rd=1, rs1=2, imm=1)]),
        ("snez", [1, 2], [Instruction("sltu", rd=1, rs1=0, rs2=2)]),
        ("ret", [], [Instruction("jalr", rd=0, rs1=1, imm=0)]),
        ("jr", [5], [Instruction("jalr", rd=0, rs1=5, imm=0)]),
    ])
    def test_expansions(self, name, operands, expected):
        assert expand_pseudo(name, operands) == expected

    def test_unknown_pseudo(self):
        with pytest.raises(EncodingError):
            expand_pseudo("frobnicate", [])

    def test_operand_count_checked(self):
        with pytest.raises(EncodingError):
            expand_pseudo("mv", [1])


class TestRegisters:
    def test_abi_names(self):
        assert parse_register("zero") == 0
        assert parse_register("ra") == 1
        assert parse_register("sp") == 2
        assert parse_register("fp") == 8
        assert parse_register("s0") == 8
        assert parse_register("a0") == 10
        assert parse_register("t6") == 31

    def test_x_names(self):
        for i in range(32):
            assert parse_register(f"x{i}") == i

    def test_register_name_inverse(self):
        for i in range(32):
            assert parse_register(register_name(i)) == i

    def test_unknown_register(self):
        with pytest.raises(EncodingError):
            parse_register("y1")


class TestDisassembler:
    def test_single_word(self):
        word = encode(Instruction("add", rd=10, rs1=11, rs2=12))
        assert disassemble(word) == "add a0, a1, a2"

    def test_text_walk(self):
        blob = (encode_bytes(Instruction("addi", rd=10, rs1=0, imm=1))
                + encode_bytes(Instruction("ecall")))
        lines = disassemble_text(blob, base_address=0x1000)
        assert len(lines) == 2
        assert "addi a0, zero, 1" in lines[0]
        assert "ecall" in lines[1]
        assert lines[0].startswith("0x00001000")

    def test_garbage_rendered_as_words(self):
        blob = (0xFFFFFFFF).to_bytes(4, "little")
        lines = disassemble_text(blob)
        assert ".word" in lines[0]

    def test_compressed_rendering(self):
        from repro.isa.compressed import compress
        halfword = compress(Instruction("addi", rd=5, rs1=5, imm=1))
        blob = halfword.to_bytes(2, "little")
        lines = disassemble_text(blob)
        assert "c.addi" in lines[0]

    def test_mixed_stream_resyncs(self):
        blob = ((0x0000).to_bytes(2, "little")
                + encode_bytes(Instruction("ecall")))
        lines = disassemble_text(blob)
        assert ".half" in lines[0]
        assert "ecall" in lines[1]
