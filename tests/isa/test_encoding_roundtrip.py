"""encode/decode round-trip across all formats (unit + property tests)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DecodingError, EncodingError
from repro.isa.decoding import decode
from repro.isa.encoding import encode, encode_bytes
from repro.isa.instruction import Instruction
from repro.isa.spec import BRANCHES, INSTRUCTION_SPECS, LOADS, STORES

regs = st.integers(min_value=0, max_value=31)
imm12 = st.integers(min_value=-2048, max_value=2047)


def roundtrip(instr: Instruction) -> Instruction:
    return decode(encode(instr))


class TestKnownEncodings:
    """Golden encodings cross-checked against the RISC-V spec examples."""

    @pytest.mark.parametrize("instr,word", [
        (Instruction("addi", rd=1, rs1=2, imm=3), 0x00310093),
        (Instruction("add", rd=10, rs1=11, rs2=12), 0x00C58533),
        (Instruction("sub", rd=10, rs1=11, rs2=12), 0x40C58533),
        (Instruction("lui", rd=5, imm=0x12345), 0x123452B7),
        (Instruction("jal", rd=1, imm=2048), 0x001000EF),
        (Instruction("ld", rd=6, rs1=2, imm=16), 0x01013303),
        (Instruction("sd", rs1=2, rs2=7, imm=24), 0x00713C23),
        (Instruction("beq", rs1=1, rs2=2, imm=-4), 0xFE208EE3),
        (Instruction("ecall"), 0x00000073),
        (Instruction("ebreak"), 0x00100073),
        (Instruction("mul", rd=3, rs1=4, rs2=5), 0x025201B3),
        (Instruction("srai", rd=8, rs1=9, imm=34), 0x4224D413),
        (Instruction("sraiw", rd=8, rs1=9, imm=7), 0x4074D41B),
    ])
    def test_golden(self, instr, word):
        assert encode(instr) == word
        assert decode(word) == instr

    def test_encode_bytes_little_endian(self):
        raw = encode_bytes(Instruction("addi", rd=1, rs1=2, imm=3))
        assert raw == (0x00310093).to_bytes(4, "little")


class TestRoundTripProperties:
    @given(rd=regs, rs1=regs, rs2=regs)
    @settings(max_examples=50, deadline=None)
    def test_r_type(self, rd, rs1, rs2):
        for name in ("add", "sub", "xor", "mul", "divu", "sraw", "remw"):
            instr = Instruction(name, rd=rd, rs1=rs1, rs2=rs2)
            assert roundtrip(instr) == instr

    @given(rd=regs, rs1=regs, imm=imm12)
    @settings(max_examples=50, deadline=None)
    def test_i_type(self, rd, rs1, imm):
        for name in ("addi", "andi", "ori", "xori", "lw", "ld", "lbu",
                     "jalr", "addiw"):
            instr = Instruction(name, rd=rd, rs1=rs1, imm=imm)
            assert roundtrip(instr) == instr

    @given(rs1=regs, rs2=regs, imm=imm12)
    @settings(max_examples=50, deadline=None)
    def test_s_type(self, rs1, rs2, imm):
        for name in ("sb", "sh", "sw", "sd"):
            instr = Instruction(name, rs1=rs1, rs2=rs2, imm=imm)
            assert roundtrip(instr) == instr

    @given(rs1=regs, rs2=regs,
           imm=st.integers(min_value=-2048, max_value=2047))
    @settings(max_examples=50, deadline=None)
    def test_b_type(self, rs1, rs2, imm):
        offset = imm * 2  # branches take even offsets in +-4KiB
        for name in sorted(BRANCHES):
            instr = Instruction(name, rs1=rs1, rs2=rs2, imm=offset)
            assert roundtrip(instr) == instr

    @given(rd=regs, imm=st.integers(min_value=0, max_value=(1 << 20) - 1))
    @settings(max_examples=50, deadline=None)
    def test_u_type(self, rd, imm):
        for name in ("lui", "auipc"):
            instr = Instruction(name, rd=rd, imm=imm)
            assert roundtrip(instr) == instr

    @given(rd=regs,
           imm=st.integers(min_value=-(1 << 19), max_value=(1 << 19) - 1))
    @settings(max_examples=50, deadline=None)
    def test_j_type(self, rd, imm):
        instr = Instruction("jal", rd=rd, imm=imm * 2)
        assert roundtrip(instr) == instr

    @given(rd=regs, rs1=regs, sh=st.integers(min_value=0, max_value=63))
    @settings(max_examples=50, deadline=None)
    def test_shift64(self, rd, rs1, sh):
        for name in ("slli", "srli", "srai"):
            instr = Instruction(name, rd=rd, rs1=rs1, imm=sh)
            assert roundtrip(instr) == instr

    @given(rd=regs, rs1=regs, sh=st.integers(min_value=0, max_value=31))
    @settings(max_examples=50, deadline=None)
    def test_shift32(self, rd, rs1, sh):
        for name in ("slliw", "srliw", "sraiw"):
            instr = Instruction(name, rd=rd, rs1=rs1, imm=sh)
            assert roundtrip(instr) == instr


class TestEncodingErrors:
    def test_missing_operand(self):
        with pytest.raises(EncodingError):
            encode(Instruction("add", rd=1, rs1=2))

    def test_imm_out_of_range(self):
        with pytest.raises(EncodingError):
            encode(Instruction("addi", rd=1, rs1=2, imm=2048))
        with pytest.raises(EncodingError):
            encode(Instruction("addi", rd=1, rs1=2, imm=-2049))

    def test_odd_branch_offset(self):
        with pytest.raises(EncodingError):
            encode(Instruction("beq", rs1=1, rs2=2, imm=3))

    def test_branch_out_of_range(self):
        with pytest.raises(EncodingError):
            encode(Instruction("beq", rs1=1, rs2=2, imm=4096))

    def test_shift_out_of_range(self):
        with pytest.raises(EncodingError):
            encode(Instruction("slli", rd=1, rs1=1, imm=64))
        with pytest.raises(EncodingError):
            encode(Instruction("slliw", rd=1, rs1=1, imm=32))

    def test_register_out_of_range(self):
        with pytest.raises(EncodingError):
            encode(Instruction("add", rd=32, rs1=0, rs2=0))

    def test_unknown_mnemonic_rejected_at_construction(self):
        with pytest.raises(ValueError):
            Instruction("bogus")


class TestDecodingErrors:
    def test_compressed_bits_rejected(self):
        with pytest.raises(DecodingError):
            decode(0x00000001)

    def test_garbage_word(self):
        with pytest.raises(DecodingError):
            decode(0xFFFFFFFF)

    def test_reserved_opcode(self):
        with pytest.raises(DecodingError):
            decode(0x0000007F | 0b11)

    def test_bad_system_imm(self):
        with pytest.raises(DecodingError):
            decode((5 << 20) | 0x73)

    def test_all_mnemonics_have_specs(self):
        # every spec entry must encode at least one instance
        for name, (fmt, *_rest) in INSTRUCTION_SPECS.items():
            if fmt == "R":
                instr = Instruction(name, rd=1, rs1=2, rs2=3)
            elif fmt in ("I",):
                instr = Instruction(name, rd=1, rs1=2, imm=4)
            elif fmt in ("SHIFT64", "SHIFT32"):
                instr = Instruction(name, rd=1, rs1=2, imm=3)
            elif fmt == "S":
                instr = Instruction(name, rs1=1, rs2=2, imm=8)
            elif fmt == "B":
                instr = Instruction(name, rs1=1, rs2=2, imm=8)
            elif fmt == "U":
                instr = Instruction(name, rd=1, imm=5)
            elif fmt == "J":
                instr = Instruction(name, rd=1, imm=8)
            else:
                instr = Instruction(name)
            assert decode(encode(instr)) == instr


class TestLoadStoreSets:
    def test_class_sets_cover_specs(self):
        for name in LOADS | STORES | BRANCHES:
            assert name in INSTRUCTION_SPECS
