"""RVC subset: compress/expand round-trips and range gating."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DecodingError
from repro.isa.compressed import (
    compress,
    decode_compressed,
    encode_compressed,
    expand_compressed,
    is_compressed_halfword,
)
from repro.isa.instruction import Instruction

cregs = st.integers(min_value=8, max_value=15)
anyreg = st.integers(min_value=1, max_value=31)
imm6 = st.integers(min_value=-32, max_value=31)


def assert_roundtrip(instr: Instruction):
    halfword = compress(instr)
    assert halfword is not None, f"{instr} should compress"
    assert is_compressed_halfword(halfword)
    assert expand_compressed(halfword) == instr


class TestCompressibleForms:
    @given(rd=anyreg, imm=imm6)
    @settings(max_examples=40, deadline=None)
    def test_c_addi(self, rd, imm):
        if imm == 0:
            return
        assert_roundtrip(Instruction("addi", rd=rd, rs1=rd, imm=imm))

    @given(rd=anyreg, imm=imm6)
    @settings(max_examples=40, deadline=None)
    def test_c_li(self, rd, imm):
        assert_roundtrip(Instruction("addi", rd=rd, rs1=0, imm=imm))

    @given(rd=anyreg, imm=imm6)
    @settings(max_examples=40, deadline=None)
    def test_c_addiw(self, rd, imm):
        assert_roundtrip(Instruction("addiw", rd=rd, rs1=rd, imm=imm))

    @given(rd=anyreg, sh=st.integers(min_value=1, max_value=63))
    @settings(max_examples=40, deadline=None)
    def test_c_slli(self, rd, sh):
        assert_roundtrip(Instruction("slli", rd=rd, rs1=rd, imm=sh))

    @given(rd=cregs, sh=st.integers(min_value=1, max_value=63))
    @settings(max_examples=40, deadline=None)
    def test_c_srli_srai(self, rd, sh):
        assert_roundtrip(Instruction("srli", rd=rd, rs1=rd, imm=sh))
        assert_roundtrip(Instruction("srai", rd=rd, rs1=rd, imm=sh))

    @given(rd=cregs, imm=imm6)
    @settings(max_examples=40, deadline=None)
    def test_c_andi(self, rd, imm):
        assert_roundtrip(Instruction("andi", rd=rd, rs1=rd, imm=imm))

    @given(rd=cregs, rs2=cregs)
    @settings(max_examples=40, deadline=None)
    def test_ca_arith(self, rd, rs2):
        for name in ("sub", "xor", "or", "and", "subw", "addw"):
            assert_roundtrip(Instruction(name, rd=rd, rs1=rd, rs2=rs2))

    @given(rd=anyreg, rs2=anyreg)
    @settings(max_examples=40, deadline=None)
    def test_c_add_mv(self, rd, rs2):
        assert_roundtrip(Instruction("add", rd=rd, rs1=rd, rs2=rs2))
        assert_roundtrip(Instruction("add", rd=rd, rs1=0, rs2=rs2))

    @given(rd=anyreg, off=st.integers(min_value=0, max_value=63))
    @settings(max_examples=40, deadline=None)
    def test_sp_loads_stores(self, rd, off):
        assert_roundtrip(Instruction("ld", rd=rd, rs1=2, imm=off * 8))
        assert_roundtrip(Instruction("sd", rs1=2, rs2=rd, imm=off * 8))
        if off * 4 <= 252:
            assert_roundtrip(Instruction("lw", rd=rd, rs1=2, imm=off * 4))
            assert_roundtrip(Instruction("sw", rs1=2, rs2=rd, imm=off * 4))

    @given(rd=cregs, rs1=cregs, off=st.integers(min_value=0, max_value=31))
    @settings(max_examples=40, deadline=None)
    def test_creg_loads_stores(self, rd, rs1, off):
        assert_roundtrip(Instruction("ld", rd=rd, rs1=rs1, imm=off * 8))
        assert_roundtrip(Instruction("sd", rs1=rs1, rs2=rd, imm=off * 8))
        assert_roundtrip(Instruction("lw", rd=rd, rs1=rs1, imm=off * 4))
        assert_roundtrip(Instruction("sw", rs1=rs1, rs2=rd, imm=off * 4))

    def test_c_addi16sp(self):
        for imm in (-512, -16, 16, 32, 496):
            assert_roundtrip(Instruction("addi", rd=2, rs1=2, imm=imm))

    def test_c_addi4spn(self):
        for imm in (4, 8, 128, 1020):
            for rd in (8, 15):
                assert_roundtrip(Instruction("addi", rd=rd, rs1=2, imm=imm))

    def test_c_lui(self):
        assert_roundtrip(Instruction("lui", rd=5, imm=1))
        assert_roundtrip(Instruction("lui", rd=5, imm=0xFFFFF))  # -1 << 12

    def test_c_jr_jalr(self):
        assert_roundtrip(Instruction("jalr", rd=0, rs1=1, imm=0))   # ret
        assert_roundtrip(Instruction("jalr", rd=1, rs1=5, imm=0))

    def test_c_nop_and_ebreak(self):
        assert compress(Instruction("addi", rd=0, rs1=0, imm=0)) == 0x0001
        assert_roundtrip(Instruction("ebreak"))


class TestNotCompressible:
    @pytest.mark.parametrize("instr", [
        Instruction("addi", rd=1, rs1=2, imm=5),        # rd != rs1
        Instruction("addi", rd=1, rs1=1, imm=100),      # imm too wide
        Instruction("add", rd=1, rs1=2, rs2=3),         # rd != rs1, rs1 != 0
        Instruction("sub", rd=1, rs1=1, rs2=2),         # regs outside x8-15
        Instruction("lw", rd=1, rs1=3, imm=4),          # base not sp/creg
        Instruction("ld", rd=8, rs1=9, imm=4),          # misaligned offset
        Instruction("ld", rd=8, rs1=9, imm=256),        # offset too big
        Instruction("lw", rd=0, rs1=2, imm=4),          # rd=0 reserved
        Instruction("jalr", rd=0, rs1=1, imm=4),        # non-zero offset
        Instruction("jalr", rd=5, rs1=1, imm=0),        # link reg not ra
        Instruction("lui", rd=2, imm=1),                # rd=sp excluded
        Instruction("lui", rd=5, imm=0x12345),          # imm too wide
        Instruction("beq", rs1=1, rs2=2, imm=8),        # branches stay 32-bit
        Instruction("jal", rd=0, imm=8),                # jumps stay 32-bit
        Instruction("slli", rd=5, rs1=5, imm=0),        # zero shamt
        Instruction("ecall"),
    ])
    def test_returns_none(self, instr):
        assert compress(instr) is None

    def test_encode_compressed_raises(self):
        from repro.errors import EncodingError
        with pytest.raises(EncodingError):
            encode_compressed(Instruction("ecall"))


class TestDecodeErrors:
    def test_zero_parcel_illegal(self):
        with pytest.raises(DecodingError):
            decode_compressed(0x0000)

    def test_32bit_head_rejected(self):
        with pytest.raises(DecodingError):
            decode_compressed(0x0003)

    def test_cj_not_supported(self):
        # c.j lives at C1/funct3=101 which this toolchain never emits.
        with pytest.raises(DecodingError):
            decode_compressed((0b101 << 13) | 0b01)

    def test_rvc_names_reported(self):
        name, _ = decode_compressed(0x0001)
        assert name == "c.nop"
        halfword = compress(Instruction("addi", rd=5, rs1=5, imm=1))
        name, _ = decode_compressed(halfword)
        assert name == "c.addi"
