"""ArtifactCache single-flight semantics under real thread contention.

The fleet-deployment claim rests on "N concurrent deploys of one
program compile exactly once".  These tests drive the cache with real
threads released through a barrier so every worker is in-flight at
once, and count actual ``build`` invocations.
"""

import threading
import time

import pytest

from repro.core.config import EricConfig
from repro.service.cache import ArtifactCache

N_THREADS = 8


class _CountingBuild:
    """A slow build that records every invocation and its thread."""

    def __init__(self, result="artifact", delay_s=0.05, fail_first=0):
        self.result = result
        self.delay_s = delay_s
        self.calls = 0
        self.failures_left = fail_first
        self._lock = threading.Lock()

    def __call__(self):
        with self._lock:
            self.calls += 1
            fail = self.failures_left > 0
            if fail:
                self.failures_left -= 1
        # sleep outside the lock: all waiters must genuinely overlap
        time.sleep(self.delay_s)
        if fail:
            raise RuntimeError("transient build failure")
        return self.result


def _race(cache, key_args, build, n_threads=N_THREADS):
    """Release n threads at once against one key; collect outcomes."""
    barrier = threading.Barrier(n_threads)
    outcomes = [None] * n_threads

    def worker(slot):
        barrier.wait()
        try:
            outcomes[slot] = ("ok", cache.get_or_build(*key_args, build))
        except Exception as exc:  # noqa: BLE001 — recorded for asserts
            outcomes[slot] = ("error", exc)

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return outcomes


def test_contended_uncached_key_builds_exactly_once():
    cache = ArtifactCache()
    build = _CountingBuild()
    outcomes = _race(cache, ("digest", "prog", EricConfig()), build)

    assert build.calls == 1
    assert all(status == "ok" for status, _ in outcomes)
    assert all(value is build.result for _, value in outcomes)
    stats = cache.stats
    assert stats.misses == 1
    assert stats.hits == N_THREADS - 1
    assert stats.lookups == N_THREADS


def test_distinct_keys_build_concurrently_once_each():
    cache = ArtifactCache()
    configs = [EricConfig(selection_seed=i) for i in range(4)]
    builds = [_CountingBuild(result=i) for i in range(4)]
    barrier = threading.Barrier(4 * 3)
    results = []
    results_lock = threading.Lock()

    def worker(i):
        barrier.wait()
        value = cache.get_or_build("digest", "prog", configs[i], builds[i])
        with results_lock:
            results.append((i, value))

    threads = [threading.Thread(target=worker, args=(i % 4,))
               for i in range(4 * 3)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert [b.calls for b in builds] == [1, 1, 1, 1]
    assert all(value == i for i, value in results)
    assert cache.stats.misses == 4
    assert cache.stats.hits == 4 * 3 - 4


def test_failed_build_releases_waiters_to_retry():
    """One transient failure must not poison the key: whichever waiter
    takes over retries, and the whole race converges on one success."""
    cache = ArtifactCache()
    build = _CountingBuild(fail_first=1)
    outcomes = _race(cache, ("digest", "prog", EricConfig()), build)

    errors = [value for status, value in outcomes if status == "error"]
    successes = [value for status, value in outcomes if status == "ok"]
    # exactly one thread observed the injected failure...
    assert len(errors) == 1
    assert isinstance(errors[0], RuntimeError)
    # ...everyone else got the artifact from exactly one retry build
    assert build.calls == 2
    assert all(value is build.result for value in successes)
    assert cache.stats.misses == 1

    # and the key is healthy afterwards: pure cache hit, no new build
    assert cache.get_or_build("digest", "prog", EricConfig(),
                              build) is build.result
    assert build.calls == 2


def test_sequential_hits_after_the_race():
    cache = ArtifactCache()
    build = _CountingBuild(delay_s=0.0)
    _race(cache, ("digest", "prog", EricConfig()), build)
    for _ in range(3):
        assert cache.get_or_build("digest", "prog", EricConfig(),
                                  build) is build.result
    assert build.calls == 1


@pytest.mark.parametrize("n_threads", [2, 16])
def test_single_flight_at_other_contention_levels(n_threads):
    cache = ArtifactCache()
    build = _CountingBuild(delay_s=0.02)
    outcomes = _race(cache, ("digest", "prog", EricConfig()), build,
                     n_threads=n_threads)
    assert build.calls == 1
    assert all(status == "ok" for status, _ in outcomes)
