"""Telemetry observability hooks: sink errors, snapshots, units."""

import io
import threading

from repro.obs.metrics import METRICS
from repro.service.telemetry import (RecordingTelemetry, StagePrinter,
                                     TelemetryEvent, TelemetryHub)


class TestSinkErrors:
    def test_raising_sink_is_counted_and_isolated(self):
        hub = TelemetryHub()
        recorder = RecordingTelemetry()

        def broken(event):
            raise RuntimeError("sink on fire")

        hub.add(broken)
        hub.add(recorder)
        before = METRICS.counter("telemetry.sink_errors")
        for i in range(3):
            hub.emit(TelemetryEvent(stage="farm.job", detail=str(i)))
        # the healthy sink saw everything; the failures were counted
        assert [e.detail for e in recorder.snapshot()] == ["0", "1", "2"]
        assert METRICS.counter("telemetry.sink_errors") - before == 3


class TestRecordingTelemetry:
    def test_snapshot_is_a_stable_copy(self):
        recorder = RecordingTelemetry()
        recorder(TelemetryEvent(stage="a"))
        snap = recorder.snapshot()
        recorder(TelemetryEvent(stage="b"))
        assert [e.stage for e in snap] == ["a"]
        assert [e.stage for e in recorder.snapshot()] == ["a", "b"]

    def test_concurrent_appends_drop_nothing(self):
        recorder = RecordingTelemetry()
        barrier = threading.Barrier(4)

        def pound(tid):
            barrier.wait()
            for i in range(500):
                recorder(TelemetryEvent(stage="t", detail=f"{tid}:{i}"))

        threads = [threading.Thread(target=pound, args=(tid,))
                   for tid in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(recorder.snapshot()) == 2000
        assert recorder.total_seconds("t") == 0.0

    def test_events_carry_optional_trace_coordinates(self):
        event = TelemetryEvent(stage="farm.sweep", trace_id="t" * 32,
                               span_id="s" * 16, attrs={"jobs": 4})
        assert event.trace_id and event.span_id
        assert event.attrs == {"jobs": 4}
        # emitters that predate tracing just leave them None
        assert TelemetryEvent(stage="old").trace_id is None


class TestStagePrinterUnits:
    def render(self, seconds):
        out = io.StringIO()
        StagePrinter(stream=out)(
            TelemetryEvent(stage="farm.sweep", seconds=seconds))
        return out.getvalue()

    def test_milliseconds_below_ten_seconds(self):
        assert "(1.5 ms)" in self.render(0.0015)
        assert "(9500.0 ms)" in self.render(9.5)

    def test_seconds_for_long_stages(self):
        assert "(90.0 s)" in self.render(90.0)
        assert "(3661.0 s)" in self.render(3661.0)
