"""Durable request journal: records, transitions, replay, compaction."""

import json
from dataclasses import replace

import pytest

from repro.errors import ConfigError, EricError
from repro.service.daemon import (JOURNAL_SCHEMA, JournalRecord,
                                  JournalStore)

FLEET = {"name": "alpha",
         "programs": [{"name": "probe",
                       "source": "int main() { return 0; }"}],
         "device_seeds": [1, 2]}


class TestJournalRecord:
    def test_round_trips_through_json(self):
        record = JournalRecord(request_id="abc", fleet=FLEET,
                              tenant="team-a", priority=3,
                              submitted_at=10.0, updated_at=11.0,
                              total_jobs=2)
        again = JournalRecord.from_json(record.to_json())
        assert again == record
        assert again.fleet_name == "alpha"
        assert again.live and not again.terminal

    def test_corrupt_and_foreign_lines_parse_to_none(self):
        assert JournalRecord.from_json("{truncated") is None
        assert JournalRecord.from_json('"a string"') is None
        record = JournalRecord(request_id="abc", fleet=FLEET)
        foreign = json.loads(record.to_json())
        foreign["schema"] = JOURNAL_SCHEMA + 1
        assert JournalRecord.from_json(json.dumps(foreign)) is None

    def test_validate_rejects_bad_shapes(self):
        good = JournalRecord(request_id="abc", fleet=FLEET)
        with pytest.raises(ConfigError, match="request_id"):
            replace(good, request_id="").validate()
        with pytest.raises(ConfigError, match="fleet"):
            replace(good, fleet={"programs": []}).validate()
        with pytest.raises(ConfigError, match="tenant"):
            replace(good, tenant="").validate()
        with pytest.raises(ConfigError, match="priority"):
            replace(good, priority=True).validate()
        with pytest.raises(ConfigError, match="unknown state"):
            replace(good, state="paused").validate()


class TestJournalStore:
    def test_submit_and_reload_across_instances(self, tmp_path):
        store = JournalStore(tmp_path)
        record = store.submit(FLEET, tenant="team-a", priority=2,
                              total_jobs=2)
        assert record.state == "submitted"
        # a second instance (another process) sees the same record
        other = JournalStore(tmp_path)
        assert other.get(record.request_id) == record
        assert len(other) == 1

    def test_duplicate_request_id_rejected(self, tmp_path):
        store = JournalStore(tmp_path)
        record = store.submit(FLEET, request_id="fixed")
        with pytest.raises(EricError, match="already journaled"):
            store.submit(FLEET, request_id=record.request_id)

    def test_transitions_follow_the_lifecycle(self, tmp_path):
        store = JournalStore(tmp_path)
        record = store.submit(FLEET, total_jobs=2)
        rid = record.request_id
        with pytest.raises(EricError, match="illegal transition"):
            store.transition(rid, "running")  # must be admitted first
        store.transition(rid, "admitted")
        store.transition(rid, "running", attempts=1)
        # shutdown checkpoint: running -> admitted keeps progress
        checkpoint = store.transition(rid, "admitted", done_jobs=1)
        assert checkpoint.done_jobs == 1 and checkpoint.attempts == 1
        store.transition(rid, "running", attempts=2)
        done = store.transition(rid, "done",
                                result={"jobs": 2}, done_jobs=2)
        assert done.terminal and done.result == {"jobs": 2}
        with pytest.raises(EricError, match="illegal transition"):
            store.transition(rid, "running")  # done is terminal
        with pytest.raises(EricError, match="not journaled"):
            store.transition("ghost", "admitted")

    def test_last_line_wins_on_reload(self, tmp_path):
        store = JournalStore(tmp_path)
        rid = store.submit(FLEET).request_id
        store.transition(rid, "admitted")
        store.transition(rid, "running", attempts=1)
        assert len(store.path.read_text().splitlines()) == 3
        again = JournalStore(tmp_path)
        assert len(again) == 1
        assert again.get(rid).state == "running"

    def test_corrupt_tail_is_skipped_not_fatal(self, tmp_path):
        store = JournalStore(tmp_path)
        rid = store.submit(FLEET).request_id
        with store.path.open("a", encoding="utf-8") as handle:
            handle.write('{"request_id": "torn", "fle')  # killed mid-append
        again = JournalStore(tmp_path)
        assert again.get(rid) is not None
        assert again.skipped_lines == 1
        assert "skipped at load" in again.skipped_warning()
        assert store.skipped_warning() is None

    def test_records_sorted_and_state_queries(self, tmp_path):
        store = JournalStore(tmp_path)
        first = store.submit(dict(FLEET, name="a"))
        second = store.submit(dict(FLEET, name="b"))
        store.transition(second.request_id, "admitted")
        assert [r.fleet_name for r in store.records()] == ["a", "b"]
        assert [r.fleet_name for r in store.by_state("admitted")] == ["b"]
        assert len(store.live()) == 2
        store.transition(first.request_id, "cancelled")
        assert len(store.live()) == 1
        with pytest.raises(ConfigError, match="unknown journal state"):
            store.by_state("paused")

    def test_compact_drops_superseded_and_corrupt_lines(self, tmp_path):
        store = JournalStore(tmp_path)
        rid = store.submit(FLEET).request_id
        store.transition(rid, "admitted")
        store.transition(rid, "running", attempts=1)
        store.transition(rid, "done", done_jobs=2)
        with store.path.open("a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
        store = JournalStore(tmp_path)
        assert store.skipped_lines == 1
        assert store.compact() == 1
        lines = store.path.read_text().splitlines()
        assert len(lines) == 1
        assert JournalRecord.from_json(lines[0]).state == "done"
        assert store.skipped_warning() is None

    def test_compact_merges_concurrent_appends(self, tmp_path):
        store = JournalStore(tmp_path)
        store.submit(dict(FLEET, name="mine"), request_id="mine")
        # another process appends a record this instance never loaded
        other = JournalStore(tmp_path)
        other.submit(dict(FLEET, name="theirs"), request_id="theirs")
        assert store.compact() == 2
        merged = JournalStore(tmp_path)
        assert {r.request_id for r in merged.records()} == \
            {"mine", "theirs"}
