"""Async fleet scheduler: single-flight, batching, fan-back, spans."""

import asyncio

import pytest

from repro.core.device import Device
from repro.errors import ConfigError, EricError, ProvisioningError
from repro.farm import (FarmJobResult, FarmReport, ResultStore,
                        SimulationFarm)
from repro.service.scheduler import (AsyncDeploymentSession,
                                     AsyncSingleFlight, FleetRequest,
                                     FleetScheduler, load_fleet_specs)
from repro.service.session import DeploymentSession
from repro.service.telemetry import RecordingTelemetry

PROBE = "int main() { return 0; }\n"


def probe_fleet(name: str, seeds, source: str = PROBE) -> dict:
    return {"name": name,
            "programs": [{"name": "probe", "source": source}],
            "device_seeds": list(seeds)}


class TestAsyncSingleFlight:
    def test_concurrent_runs_coalesce(self):
        flight = AsyncSingleFlight()
        builds = []

        async def build():
            builds.append(1)
            await asyncio.sleep(0.01)
            return "artifact"

        async def go():
            results = await asyncio.gather(
                *(flight.run("key", build) for _ in range(5)))
            return results

        assert asyncio.run(go()) == ["artifact"] * 5
        assert len(builds) == 1

    def test_cancelled_waiter_does_not_poison_the_build(self):
        flight = AsyncSingleFlight()
        builds = []

        async def build():
            builds.append(1)
            await asyncio.sleep(0.05)
            return "artifact"

        async def go():
            first = asyncio.ensure_future(flight.run("key", build))
            await asyncio.sleep(0.01)
            first.cancel()
            with pytest.raises(asyncio.CancelledError):
                await first
            # the build survived its only waiter's cancellation: a new
            # waiter attaches to the same in-flight task
            return await flight.run("key", build)

        assert asyncio.run(go()) == "artifact"
        assert len(builds) == 1

    def test_failed_build_retires_and_retries(self):
        flight = AsyncSingleFlight()
        attempts = []

        async def build():
            attempts.append(1)
            if len(attempts) == 1:
                raise RuntimeError("transient")
            return "artifact"

        async def go():
            with pytest.raises(RuntimeError):
                await flight.run("key", build)
            return await flight.run("key", build)

        assert asyncio.run(go()) == "artifact"
        assert len(attempts) == 2


class TestAsyncDeploymentSession:
    def test_fleet_matches_sync_contract(self):
        session = DeploymentSession()
        async_session = AsyncDeploymentSession(session)
        devices = [Device(device_seed=0x8800 + i) for i in range(4)]

        async def go():
            try:
                return await async_session.deploy_fleet(
                    PROBE, devices, name="probe")
            finally:
                await async_session.aclose()

        report = asyncio.run(go())
        assert report.all_ok
        assert report.device_count == 4
        assert not report.cache_hit
        assert session.cache_stats.compiles == 1
        assert {o.device_id for o in report.outcomes} \
            == {d.device_id for d in devices}
        # the aggregation is the shared build_fleet_report: compile
        # paid once, encryption accounted per device
        assert report.compile_s > 0
        assert report.encryption_s > 0

    def test_concurrent_prepares_compile_once(self):
        async_session = AsyncDeploymentSession(DeploymentSession())

        async def go():
            try:
                artifacts = await asyncio.gather(
                    *(async_session.prepare(PROBE, "probe")
                      for _ in range(6)))
                return artifacts
            finally:
                await async_session.aclose()

        artifacts = asyncio.run(go())
        assert len({id(a) for a in artifacts}) == 1
        assert async_session.cache_stats.compiles == 1

    def test_empty_fleet_rejected(self):
        async_session = AsyncDeploymentSession(DeploymentSession())
        with pytest.raises(ProvisioningError):
            asyncio.run(async_session.deploy_fleet(PROBE, []))

    def test_session_and_config_are_exclusive(self):
        from repro.core.config import EricConfig
        with pytest.raises(ConfigError):
            AsyncDeploymentSession(DeploymentSession(),
                                   config=EricConfig())

    def test_max_concurrency_validated(self):
        with pytest.raises(ConfigError):
            AsyncDeploymentSession(max_concurrency=0)


class TestFleetSpecs:
    def test_entry_requires_a_name(self):
        with pytest.raises(ConfigError):
            FleetRequest.from_spec({"workloads": ["crc32"]})

    def test_fleets_key_required_and_non_empty(self):
        with pytest.raises(ConfigError):
            load_fleet_specs({"fleets": []})
        with pytest.raises(ConfigError):
            load_fleet_specs({"fleet": [probe_fleet("a", [1])]})

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigError):
            load_fleet_specs({"fleets": [probe_fleet("a", [1]),
                                         probe_fleet("a", [2])]})

    def test_round_trip(self):
        requests = load_fleet_specs(
            {"fleets": [probe_fleet("a", [1, 2])]})
        assert len(requests) == 1
        assert requests[0].name == "a"
        assert len(requests[0].jobs) == 2


class TestFleetScheduler:
    def test_overlapping_fleets_execute_each_key_once(self, tmp_path):
        requests = load_fleet_specs({"fleets": [
            probe_fleet("alpha", [1, 2]),
            probe_fleet("beta", [2, 3]),
        ]})
        scheduler = FleetScheduler(store=ResultStore(tmp_path))
        report = scheduler.run(requests)
        report.require_ok()
        assert report.requested == 4
        assert report.unique_jobs == 3
        assert report.executed == 3
        assert report.cache_stats.compiles == 1

    def test_staggered_fleet_attaches_to_inflight_work(self, tmp_path):
        """A fleet arriving while another's batch is queued or already
        executing still costs zero extra simulations."""
        scheduler = FleetScheduler(store=ResultStore(tmp_path),
                                   batch_window=0.0)
        first = FleetRequest.from_spec(probe_fleet("first", [1, 2]))
        second = FleetRequest.from_spec(probe_fleet("second", [2, 3]))

        async def go():
            try:
                task1 = asyncio.ensure_future(
                    scheduler.deploy_fleet(first))
                # land mid-flight: first's batch is queued or executing
                await asyncio.sleep(0.05)
                task2 = asyncio.ensure_future(
                    scheduler.deploy_fleet(second))
                return await asyncio.gather(task1, task2)
            finally:
                await scheduler.aclose()

        fleet1, fleet2 = asyncio.run(go())
        fleet1.require_ok()
        fleet2.require_ok()
        executed = sum(batch.executed
                       for batch in scheduler.batch_reports)
        hits = sum(batch.hits for batch in scheduler.batch_reports)
        # 3 unique keys total: every one simulated exactly once, the
        # overlap served from the in-flight future or the store
        assert executed == 3
        assert executed + hits <= 4

    def test_cancelled_fleet_leaves_shared_jobs_intact(self, tmp_path):
        scheduler = FleetScheduler(store=ResultStore(tmp_path))
        request = FleetRequest.from_spec(probe_fleet("shared", [5]))

        async def go():
            try:
                doomed = asyncio.ensure_future(
                    scheduler.deploy_fleet(request))
                survivor = asyncio.ensure_future(
                    scheduler.deploy_fleet(request))
                await asyncio.sleep(0.01)
                doomed.cancel()
                report = await survivor
                with pytest.raises(asyncio.CancelledError):
                    await doomed
                return report
            finally:
                await scheduler.aclose()

        report = asyncio.run(go())
        report.require_ok()
        assert len(report.results) == 1

    def test_batch_failure_fans_back_and_batcher_survives(self, tmp_path):
        class ExplodingFarm:
            def on_event(self, sink):
                pass

            def run_batch(self, specs, force=False):
                raise RuntimeError("store melted")

        scheduler = FleetScheduler(store=ResultStore(tmp_path))
        request = FleetRequest.from_spec(probe_fleet("doomed", [7]))
        real_farm = scheduler.farm
        scheduler.farm = ExplodingFarm()

        async def go():
            try:
                with pytest.raises(EricError, match="store melted"):
                    await scheduler.deploy_fleet(request)
                # the batcher outlives a failed batch: restore the real
                # farm and the same scheduler serves the fleet
                scheduler.farm = real_farm
                return await scheduler.deploy_fleet(request)
            finally:
                await scheduler.aclose()

        report = asyncio.run(go())
        report.require_ok()

    def test_invalid_spec_does_not_poison_the_queue(self):
        """A spec failing validation raises before any shared state is
        touched: the same key measured later must not deadlock on an
        orphaned in-flight future."""
        from repro.farm import JobSpec

        scheduler = FleetScheduler()
        bad = JobSpec(workload="crc32", repeats=0)
        good = JobSpec(workload="crc32", simulate=False)

        async def go():
            try:
                with pytest.raises(ConfigError):
                    await scheduler.measure([bad])
                # the same invalid spec again: must raise again, not
                # hang on a future the first call left behind
                with pytest.raises(ConfigError):
                    await asyncio.wait_for(scheduler.measure([bad]),
                                           timeout=30)
                # and a mixed batch fails whole, stranding nothing
                with pytest.raises(ConfigError):
                    await scheduler.measure([good, bad])
                return await asyncio.wait_for(
                    scheduler.measure([good]), timeout=30)
            finally:
                await scheduler.aclose()

        results = asyncio.run(go())
        assert results[0].ok

    def test_serve_requires_fleets(self, tmp_path):
        scheduler = FleetScheduler(store=ResultStore(tmp_path))
        with pytest.raises(ConfigError):
            scheduler.run([])

    def test_sharded_scheduling_requires_a_store(self):
        with pytest.raises(ConfigError):
            FleetScheduler(shards=2)

    def test_negative_batch_window_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            FleetScheduler(store=ResultStore(tmp_path),
                           batch_window=-1.0)

    def test_storeless_scheduler_measures_in_memory(self):
        scheduler = FleetScheduler()
        assert isinstance(scheduler.farm, SimulationFarm)
        report = scheduler.run(
            [FleetRequest.from_spec(probe_fleet("mem", [11]))])
        report.require_ok()
        assert report.store_path is None
        assert report.executed == 1

    def test_storeless_exactly_once_across_batches(self):
        """Without a store, a key resolved by an earlier batch must be
        served from the scheduler's memo, never re-simulated."""
        scheduler = FleetScheduler()
        requests = load_fleet_specs(
            {"fleets": [probe_fleet("mem", [11, 12])]})
        cold = scheduler.run(requests)
        again = scheduler.run(requests)
        cold.require_ok()
        again.require_ok()
        assert cold.executed == 2
        # the second serve lands in fresh batches (or none at all),
        # but executes nothing: the memo stands in for the store
        assert again.executed == 0, again.summary()
        assert [r.record.eric_cycles for f in again.fleets
                for r in f.results] \
            == [r.record.eric_cycles for f in cold.fleets
                for r in f.results]

    def test_concurrent_serves_account_only_their_own_keys(self,
                                                           tmp_path):
        """Two serve() calls sharing one batch must not double-count
        the shared work: each report's executed stays bounded by its
        own unique_jobs."""
        scheduler = FleetScheduler(store=ResultStore(tmp_path),
                                   batch_window=0.05)
        shared = probe_fleet("a", [31])
        other = probe_fleet("b", [31, 32])

        async def go():
            try:
                return await asyncio.gather(
                    scheduler.serve([FleetRequest.from_spec(shared)]),
                    scheduler.serve([FleetRequest.from_spec(other)]))
            finally:
                await scheduler.aclose()

        report_a, report_b = asyncio.run(go())
        report_a.require_ok()
        report_b.require_ok()
        for report in (report_a, report_b):
            assert report.executed <= report.unique_jobs, \
                report.summary()
        # the actual work was deduped: 2 unique keys, 2 simulations
        assert sum(b.executed for b in scheduler.batch_reports) == 2

    def test_storeless_memo_does_not_cache_failures(self):
        """Without a store, a failed job must retry on the next request
        (parity with the store-backed path); only ok outcomes memoize."""
        calls = []

        class FlakyFarm:
            def on_event(self, sink):
                pass

            def run_batch(self, specs, force=False):
                calls.append(len(specs))
                error = "flaky" if len(calls) == 1 else None
                results = tuple(
                    FarmJobResult(spec=spec, record=None, error=error,
                                  from_store=False, wall_s=0.0)
                    for spec in specs)
                report = FarmReport(results=results, wall_s=0.0,
                                    jobs=1, store_path=None)
                return report, report.by_key()

        scheduler = FleetScheduler()
        scheduler.farm = FlakyFarm()
        spec = FleetRequest.from_spec(probe_fleet("flaky", [41])).jobs[0]

        async def go():
            try:
                first = await scheduler.measure([spec])
                second = await scheduler.measure([spec])
                third = await scheduler.measure([spec])
                return first[0], second[0], third[0]
            finally:
                await scheduler.aclose()

        first, second, third = asyncio.run(go())
        assert not first.ok
        assert second.ok and third.ok
        # exactly one retry: the failure was not memoized, the ok
        # outcome was
        assert calls == [1, 1]

    def test_force_is_isolated_per_request(self, tmp_path):
        """A forced request re-measures without attaching to un-forced
        work — and without dragging un-forced jobs into the re-measure."""
        scheduler = FleetScheduler(store=ResultStore(tmp_path),
                                   batch_window=0.05)
        request = FleetRequest.from_spec(probe_fleet("shared", [21]))
        spec = request.jobs[0]
        # cold: the key lands in the store
        scheduler.run([request]).require_ok()

        async def go():
            try:
                plain, forced = await asyncio.gather(
                    scheduler.measure([spec], force=False),
                    scheduler.measure([spec], force=True))
                return plain[0], forced[0]
            finally:
                await scheduler.aclose()

        plain, forced = asyncio.run(go())
        # the un-forced request is a store hit; the forced one really
        # re-measured (it must not be served the stale record)
        assert plain.ok and plain.from_store
        assert forced.ok and not forced.from_store and not forced.shared
        executed = sum(b.executed for b in scheduler.batch_reports)
        assert executed == 2  # one cold measure + one forced re-measure

    def test_telemetry_spans(self, tmp_path):
        recorder = RecordingTelemetry()
        scheduler = FleetScheduler(store=ResultStore(tmp_path),
                                   telemetry=recorder)
        report = scheduler.run(load_fleet_specs({"fleets": [
            probe_fleet("alpha", [1]),
            probe_fleet("beta", [1, 2]),
        ]}))
        report.require_ok()
        begins = recorder.stages("scheduler.fleet.begin")
        ends = recorder.stages("scheduler.fleet.end")
        assert {e.program for e in begins} == {"alpha", "beta"}
        assert {e.program for e in ends} == {"alpha", "beta"}
        # spans nest: every begin precedes its fleet's end
        order = [(e.stage, e.program) for e in recorder.events
                 if e.stage.startswith("scheduler.fleet")]
        for name in ("alpha", "beta"):
            assert order.index(("scheduler.fleet.begin", name)) \
                < order.index(("scheduler.fleet.end", name))
        assert recorder.stages("scheduler.batch")
        assert recorder.stages("scheduler.serve")
        # one hook observes the whole stack: farm + session stages too
        assert recorder.stages("farm.job")
        assert recorder.stages("compile")

    def test_warm_rerun_reuses_the_scheduler(self, tmp_path):
        """The same scheduler instance serves sequential asyncio.run
        loops (per-loop primitives are re-created)."""
        scheduler = FleetScheduler(store=ResultStore(tmp_path))
        requests = load_fleet_specs(
            {"fleets": [probe_fleet("alpha", [1, 2])]})
        cold = scheduler.run(requests)
        warm = scheduler.run(requests)
        cold.require_ok()
        warm.require_ok()
        assert cold.executed == 2
        assert warm.executed == 0
        assert warm.store_hits == 2

    def test_fully_warm_serve_compiles_nothing(self, tmp_path):
        """Warm resume costs ~nothing: with every job already stored,
        a fresh scheduler neither simulates nor compiles."""
        requests = load_fleet_specs(
            {"fleets": [probe_fleet("a", [1, 2])]})
        FleetScheduler(store=ResultStore(tmp_path)) \
            .run(requests).require_ok()
        warm = FleetScheduler(store=ResultStore(tmp_path)).run(requests)
        warm.require_ok()
        assert warm.executed == 0
        assert warm.cache_stats.compiles == 0
        # forcing re-measures — and therefore warms artifacts again
        forced = FleetScheduler(store=ResultStore(tmp_path)) \
            .run(requests, force=True)
        forced.require_ok()
        assert forced.executed == 2
        assert forced.cache_stats.compiles == 1
