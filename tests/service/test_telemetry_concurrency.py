"""Telemetry under concurrency: whole lines, no dropped events.

The async scheduler emits from event-loop tasks while farm worker
callbacks and fleet worker threads emit from executor threads — all
into the same sinks.  A :class:`StagePrinter` that interleaves
half-lines corrupts the narration (and anything CI greps out of it),
so line-atomicity is a regression contract.
"""

import io
import re
import threading

from repro.farm import ResultStore
from repro.service.scheduler import FleetScheduler, load_fleet_specs
from repro.service.telemetry import (RecordingTelemetry, StagePrinter,
                                     TelemetryEvent, TelemetryHub)

THREADS = 8
EVENTS_PER_THREAD = 50

#: what one intact StagePrinter line looks like for the events below
LINE = re.compile(r"^  \[farm\.job\] w(\d+): evt(\d+) \(1\.0 ms\)$")


def test_stage_printer_lines_stay_atomic_under_threads():
    out = io.StringIO()
    hub = TelemetryHub()
    hub.add(StagePrinter(stream=out))
    barrier = threading.Barrier(THREADS)

    def worker(tid: int) -> None:
        barrier.wait()  # maximize overlap
        for i in range(EVENTS_PER_THREAD):
            hub.emit(TelemetryEvent(stage="farm.job", seconds=0.001,
                                    program=f"w{tid}",
                                    detail=f"evt{i}"))

    threads = [threading.Thread(target=worker, args=(tid,))
               for tid in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    lines = out.getvalue().splitlines()
    assert len(lines) == THREADS * EVENTS_PER_THREAD
    seen: dict[int, set[int]] = {tid: set() for tid in range(THREADS)}
    for line in lines:
        match = LINE.match(line)
        assert match, f"corrupt (interleaved?) line: {line!r}"
        seen[int(match.group(1))].add(int(match.group(2)))
    # nothing dropped, nothing duplicated
    assert all(len(events) == EVENTS_PER_THREAD
               for events in seen.values())


def test_hub_emit_tolerates_sinks_added_concurrently():
    hub = TelemetryHub()
    recorder = RecordingTelemetry()
    hub.add(recorder)
    total = 2000

    def churn() -> None:
        # registration racing emission: 500 sinks appear while the
        # emitter iterates its per-event snapshots
        for _ in range(500):
            hub.add(lambda event: None)

    churner = threading.Thread(target=churn)
    churner.start()
    try:
        for i in range(total):
            hub.emit(TelemetryEvent(stage="noise", detail=str(i)))
    finally:
        churner.join()
    # the pre-registered sink saw every event, in order, exactly once
    assert [e.detail for e in recorder.events] \
        == [str(i) for i in range(total)]


def test_scheduler_and_farm_events_print_as_whole_lines(tmp_path):
    """End to end: scheduler tasks + farm callbacks + session threads
    all narrate through one printer without corrupting a line."""
    out = io.StringIO()
    scheduler = FleetScheduler(store=ResultStore(tmp_path),
                               telemetry=StagePrinter(stream=out))
    report = scheduler.run(load_fleet_specs({"fleets": [
        {"name": "alpha",
         "programs": [{"name": "p", "source": "int main() { return 1; }\n"}],
         "device_seeds": [1, 2]},
        {"name": "beta",
         "programs": [{"name": "p", "source": "int main() { return 1; }\n"}],
         "device_seeds": [2, 3]},
    ]}))
    report.require_ok()
    lines = out.getvalue().splitlines()
    assert lines, "the printer saw no events"
    shape = re.compile(r"^  \[[a-z.]+\].* \(\d+\.\d ms\)( \[FAILED\])?$")
    for line in lines:
        assert shape.match(line), f"corrupt line: {line!r}"
    # the one printer really did see all three emitters
    assert any("[scheduler.batch]" in line for line in lines)
    assert any("[farm.job]" in line for line in lines)
    assert any("[compile]" in line for line in lines)
