"""DeploymentSession: artifact cache, fleet fan-out, wrapper parity."""

import pytest

from repro.core.config import EncryptionMode, EricConfig
from repro.core.device import Device
from repro.core.workflow import deploy
from repro.errors import ConfigError, ProvisioningError, ValidationError
from repro.net.channel import BitFlipper, UntrustedChannel
from repro.service.cache import ArtifactCache
from repro.service.session import DeploymentSession
from repro.service.telemetry import RecordingTelemetry

SOURCE = """
int main() {
    print_str("fleet says hi\\n");
    return 9;
}
"""

OTHER_SOURCE = """
int main() {
    print_str("other\\n");
    return 2;
}
"""


@pytest.fixture
def session():
    return DeploymentSession()


class TestArtifactCache:
    def test_miss_then_hit(self, session):
        a = session.prepare(SOURCE, name="p")
        b = session.prepare(SOURCE, name="p")
        assert a is b
        stats = session.cache_stats
        assert (stats.lookups, stats.hits, stats.misses) == (2, 1, 1)
        assert stats.compiles == 1

    def test_distinct_sources_miss(self, session):
        session.prepare(SOURCE, name="p")
        session.prepare(OTHER_SOURCE, name="p")
        assert session.cache_stats.misses == 2

    def test_distinct_names_miss(self, session):
        session.prepare(SOURCE, name="a")
        session.prepare(SOURCE, name="b")
        assert session.cache_stats.misses == 2

    def test_config_partitions_cache(self):
        full = DeploymentSession(EricConfig())
        partial = DeploymentSession(
            EricConfig(mode=EncryptionMode.PARTIAL))
        a = full.prepare(SOURCE)
        b = partial.prepare(SOURCE)
        assert a.enc_map.encrypted_count != b.enc_map.encrypted_count

    def test_lru_eviction(self, session):
        cache = ArtifactCache(max_entries=2)
        build = lambda n: (lambda: n)
        cache.get_or_build("d1", "p", None, build(1))
        cache.get_or_build("d2", "p", None, build(2))
        cache.get_or_build("d3", "p", None, build(3))
        stats = cache.stats
        assert stats.evictions == 1
        assert stats.entries == 2
        # d1 was evicted: asking again rebuilds
        cache.get_or_build("d1", "p", None, build(1))
        assert cache.stats.misses == 4

    def test_failed_build_not_cached_and_retryable(self):
        cache = ArtifactCache()

        def boom():
            raise RuntimeError("compile exploded")

        with pytest.raises(RuntimeError):
            cache.get_or_build("d", "p", None, boom)
        # the failure left no entry and no leaked per-key build lock
        assert len(cache) == 0
        assert not cache._building
        assert cache.get_or_build("d", "p", None, lambda: "ok") == "ok"

    def test_single_flight_concurrent_builds(self):
        import threading
        import time as time_mod

        cache = ArtifactCache()
        calls = []

        def build():
            calls.append(1)
            time_mod.sleep(0.05)
            return "artifact"

        results = []
        threads = [
            threading.Thread(target=lambda: results.append(
                cache.get_or_build("d", "p", None, build)))
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # exactly one thread compiled; the rest waited and hit
        assert len(calls) == 1
        assert results == ["artifact"] * 4
        stats = cache.stats
        assert stats.misses == 1
        assert stats.hits == 3

    def test_deploys_share_artifact(self, session):
        session.deploy(SOURCE, Device(device_seed=0xA1))
        session.deploy(SOURCE, Device(device_seed=0xA2))
        session.package_for(SOURCE, Device(device_seed=0xA3))
        assert session.cache_stats.compiles == 1


class TestFleetDeployment:
    def test_compile_once_for_ten_devices(self, session):
        devices = [Device(device_seed=0x100 + i) for i in range(10)]
        report = session.deploy_fleet(SOURCE, devices, max_workers=4)
        assert report.all_ok
        assert report.device_count == 10
        # the acceptance criterion: one MiniC invocation for the fleet
        stats = session.cache_stats
        assert stats.compiles == 1
        assert stats.misses == 1
        for outcome in report.outcomes:
            assert outcome.result.stdout == "fleet says hi\n"
            assert outcome.result.exit_code == 9

    def test_packages_differ_per_device(self, session):
        devices = [Device(device_seed=0x200 + i) for i in range(3)]
        report = session.deploy_fleet(SOURCE, devices)
        blobs = {o.result.compile_result.package_bytes
                 for o in report.outcomes}
        assert len(blobs) == 3  # same program, device-unique ciphertext

    def test_failure_isolation(self, session):
        good = [Device(device_seed=0x300 + i) for i in range(3)]
        # an impostor claiming an enrolled identity: its package is
        # encrypted under good[0]'s key, which its own PUF cannot derive
        impostor = Device(device_seed=0xBAD)
        impostor.device_id = good[0].device_id
        report = session.deploy_fleet(SOURCE, good + [impostor],
                                      max_workers=2)
        assert not report.all_ok
        assert len(report.succeeded) == 3
        assert len(report.failed) == 1
        bad = report.failed[0]
        assert isinstance(bad.error, ValidationError)
        assert bad.result is None
        # the failed device still paid encrypt+package: its timings are
        # recorded and included in the report aggregates
        assert bad.timings is not None
        assert report.encryption_s >= bad.timings.encryption_s
        # the good devices were untouched by the failure
        for outcome in report.succeeded:
            assert outcome.result.exit_code == 9

    def test_hostile_channel_failures_reported(self):
        session = DeploymentSession(
            channel_factory=lambda: UntrustedChannel(
                [BitFlipper(flips=3, seed=7)]))
        devices = [Device(device_seed=0x400 + i) for i in range(2)]
        report = session.deploy_fleet(SOURCE, devices)
        assert len(report.failed) == 2
        assert all(isinstance(e, ValidationError)
                   for e in report.failures.values())

    def test_sequential_matches_parallel(self, session):
        devices = [Device(device_seed=0x500 + i) for i in range(4)]
        report = session.deploy_fleet(SOURCE, devices, max_workers=1)
        parallel = DeploymentSession().deploy_fleet(
            SOURCE, [Device(device_seed=0x500 + i) for i in range(4)],
            max_workers=4)
        assert [o.result.compile_result.package_bytes
                for o in report.outcomes] == \
               [o.result.compile_result.package_bytes
                for o in parallel.outcomes]

    def test_empty_fleet_rejected(self, session):
        with pytest.raises(ProvisioningError):
            session.deploy_fleet(SOURCE, [])

    def test_bad_max_workers_rejected(self, session):
        with pytest.raises(ConfigError):
            session.deploy_fleet(SOURCE, [Device(device_seed=1)],
                                 max_workers=0)

    def test_report_timings_and_summary(self, session):
        devices = [Device(device_seed=0x600 + i) for i in range(3)]
        report = session.deploy_fleet(SOURCE, devices, name="fw")
        assert report.compile_s > 0
        assert report.encryption_s > 0
        assert not report.cache_hit
        text = report.summary()
        assert "3/3 devices ok" in text
        assert "paid once" in text
        # second rollout of the same program: artifact comes from cache
        again = session.deploy_fleet(
            SOURCE, [Device(device_seed=0x700)], name="fw")
        assert again.cache_hit
        assert "cached" in again.summary()


class TestDeployWrapperParity:
    def test_wrapper_equivalent_to_session(self, session):
        device = Device(device_seed=0xD0)
        via_session = session.deploy(SOURCE, device, name="program")
        via_wrapper = deploy(SOURCE, Device(device_seed=0xD0))
        assert via_wrapper.stdout == via_session.stdout == "fleet says hi\n"
        assert via_wrapper.exit_code == via_session.exit_code == 9
        assert (via_wrapper.compile_result.package_bytes
                == via_session.compile_result.package_bytes)
        assert via_wrapper.total_cycles == via_session.total_cycles

    def test_wrapper_propagates_validation_error(self):
        device = Device(device_seed=0xD0)
        channel = UntrustedChannel([BitFlipper(flips=3, seed=9)])
        with pytest.raises(ValidationError):
            deploy(SOURCE, device, channel=channel)


class TestPackageFor:
    def test_package_runs_on_target_only(self, session):
        device = Device(device_seed=0xE0)
        result = session.package_for(SOURCE, device)
        outcome = device.load_and_run(result.package_bytes)
        assert outcome.run.stdout == "fleet says hi\n"
        with pytest.raises(ValidationError):
            Device(device_seed=0xE1).load_and_run(result.package_bytes)

    def test_package_for_enrolls_via_registry(self, session):
        device = Device(device_seed=0xE2)
        session.package_for(SOURCE, device)
        assert device.device_id in session.registry.enrolled


class TestTelemetry:
    def test_stage_events_emitted(self):
        telemetry = RecordingTelemetry()
        session = DeploymentSession(telemetry=telemetry)
        devices = [Device(device_seed=0x800 + i) for i in range(2)]
        session.deploy_fleet(SOURCE, devices)
        assert len(telemetry.stages("compile")) == 1
        assert len(telemetry.stages("package")) == 2
        assert len(telemetry.stages("execute")) == 2
        assert len(telemetry.stages("fleet")) == 1
        session.deploy(SOURCE, Device(device_seed=0x900))
        assert len(telemetry.stages("cache.hit")) == 1
        assert len(telemetry.stages("compile")) == 1

    def test_sink_may_read_cache_stats(self):
        # regression: compile events were emitted while holding the
        # cache lock, so a sink touching cache_stats deadlocked
        seen = []
        session = DeploymentSession(
            telemetry=lambda e: seen.append(session.cache_stats.compiles))
        session.deploy(SOURCE, Device(device_seed=0xB00))
        assert seen and seen[-1] == 1

    def test_broken_sink_is_isolated(self):
        def broken(event):
            raise RuntimeError("sink crashed")
        session = DeploymentSession(telemetry=broken)
        result = session.deploy(SOURCE, Device(device_seed=0xA00))
        assert result.exit_code == 9
