"""AsyncSingleFlight under real concurrency: waiter storms, failures.

The base single-waiter behaviors live in test_scheduler.py; these tests
put many concurrent waiters on one flight and check that failures
propagate to all of them, that a failed entry retires (so a later call
rebuilds), and that cancellation storms neither poison the build nor
leak results to the cancelled.
"""

import asyncio

import pytest

from repro.service.scheduler import AsyncSingleFlight


class TestConcurrentFailure:
    def test_failure_propagates_to_every_waiter_then_retries(self):
        flight = AsyncSingleFlight()
        attempts = []
        release = None

        async def build():
            attempts.append(len(attempts) + 1)
            await release.wait()
            if len(attempts) == 1:
                raise RuntimeError("transient")
            return "artifact"

        async def waiter():
            try:
                return await flight.run("key", build)
            except RuntimeError as exc:
                return f"raised: {exc}"

        async def go():
            nonlocal release
            release = asyncio.Event()
            first = [asyncio.ensure_future(waiter())
                     for _ in range(5)]
            await asyncio.sleep(0.01)  # all five join one in-flight build
            release.set()
            storm = await asyncio.gather(*first)
            # the failure retired the entry: the next wave rebuilds
            second = await asyncio.gather(*(flight.run("key", build)
                                            for _ in range(3)))
            return storm, second

        storm, second = asyncio.run(go())
        assert storm == ["raised: transient"] * 5
        assert second == ["artifact"] * 3
        assert len(attempts) == 2  # one failed build, one retry

    def test_failure_in_one_key_leaves_other_keys_alone(self):
        flight = AsyncSingleFlight()

        async def bad():
            raise RuntimeError("boom")

        async def good():
            await asyncio.sleep(0.01)
            return "fine"

        async def go():
            results = await asyncio.gather(
                flight.run("bad", bad), flight.run("good", good),
                return_exceptions=True)
            # the bad key retried independently of the good one
            retry = await flight.run("good", good)
            return results, retry

        results, retry = asyncio.run(go())
        assert isinstance(results[0], RuntimeError)
        assert results[1] == "fine" and retry == "fine"


class TestCancellationStorm:
    def test_surviving_waiters_get_the_result(self):
        flight = AsyncSingleFlight()
        builds = []
        release = None

        async def build():
            builds.append(1)
            await release.wait()
            return "artifact"

        async def go():
            nonlocal release
            release = asyncio.Event()
            tasks = [asyncio.ensure_future(flight.run("key", build))
                     for _ in range(6)]
            await asyncio.sleep(0.01)
            for task in tasks[:4]:  # cancel most of the storm
                task.cancel()
            release.set()
            settled = await asyncio.gather(*tasks,
                                           return_exceptions=True)
            return settled

        settled = asyncio.run(go())
        assert all(isinstance(r, asyncio.CancelledError)
                   for r in settled[:4])
        assert settled[4:] == ["artifact", "artifact"]
        assert len(builds) == 1  # the storm never restarted the build

    def test_cancelling_every_waiter_keeps_the_flight_usable(self):
        flight = AsyncSingleFlight()
        builds = []
        release = None

        async def build():
            builds.append(1)
            await release.wait()
            return f"artifact-{len(builds)}"

        async def go():
            nonlocal release
            release = asyncio.Event()
            tasks = [asyncio.ensure_future(flight.run("key", build))
                     for _ in range(3)]
            await asyncio.sleep(0.01)
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
            # a late waiter still gets an answer: either the shielded
            # original build or a fresh one, never a stuck flight
            release.set()
            return await asyncio.wait_for(flight.run("key", build),
                                          timeout=1.0)

        result = asyncio.run(go())
        assert result.startswith("artifact-")
        assert len(builds) >= 1


class TestDistinctKeysRunConcurrently:
    def test_two_keys_overlap_in_time(self):
        flight = AsyncSingleFlight()
        started = []
        both_started = None

        async def build(tag):
            started.append(tag)
            if len(started) == 2:
                both_started.set()
            # deadlocks unless the other key's build runs concurrently
            await asyncio.wait_for(both_started.wait(), timeout=1.0)
            return tag

        async def go():
            nonlocal both_started
            both_started = asyncio.Event()
            return await asyncio.gather(
                flight.run("a", lambda: build("a")),
                flight.run("b", lambda: build("b")))

        assert asyncio.run(go()) == ["a", "b"]
        assert sorted(started) == ["a", "b"]
