"""ServeDaemon: admission, priorities, checkpoints, crash resume."""

import asyncio
from dataclasses import dataclass

import pytest

from repro.errors import ConfigError
from repro.farm import ResultStore
from repro.service.daemon import (AdmissionController, AdmissionPolicy,
                                  JournalStore, ServeDaemon,
                                  submit_fleets)
from repro.service.telemetry import RecordingTelemetry

PROBE = "int main() { return 0; }\n"


def fleet(name: str, seeds) -> dict:
    return {"name": name,
            "programs": [{"name": name, "source": PROBE}],
            "device_seeds": list(seeds)}


@dataclass(frozen=True)
class FakeResult:
    spec: object
    ok: bool = True
    from_store: bool = False
    error: str | None = None


@dataclass(frozen=True)
class FakeBatch:
    executed: int
    hits: int = 0


class FakeScheduler:
    """Stands in for FleetScheduler: instant, order-recording."""

    def __init__(self, fail_names=(), hook=None):
        self.batch_reports = []
        self.served = []  # display_name per job, in measure order
        self.fail_names = set(fail_names)
        self.hook = hook  # async callback before each measure returns

    async def measure(self, specs, force=False):
        results = []
        for spec in specs:
            self.served.append(spec.display_name)
            failed = spec.display_name in self.fail_names
            results.append(FakeResult(
                spec=spec, ok=not failed,
                error="boom" if failed else None))
        self.batch_reports.append(FakeBatch(executed=len(specs)))
        if self.hook is not None:
            await self.hook(specs)
        return results

    def on_event(self, sink):
        pass

    async def aclose(self):
        pass


def run_once(daemon):
    return asyncio.run(daemon.run(once=True))


class TestAdmissionController:
    def test_policy_validation(self):
        with pytest.raises(ConfigError, match="max_pending_jobs"):
            AdmissionController(AdmissionPolicy(max_pending_jobs=0))
        with pytest.raises(ConfigError, match="overflow"):
            AdmissionController(AdmissionPolicy(overflow="drop"))

    def test_watermark_defers_but_never_livelocks(self, tmp_path):
        journal = JournalStore(tmp_path)
        big = journal.submit(fleet("big", range(9)), total_jobs=9)
        controller = AdmissionController(
            AdmissionPolicy(max_pending_jobs=4))
        # larger than the watermark, but nothing pending: admit anyway
        decision = controller.decide(big, pending_jobs=0, tenant_live=0)
        assert decision.admitted
        # with work pending, the watermark holds
        decision = controller.decide(big, pending_jobs=2, tenant_live=0)
        assert decision.action == "defer"
        assert "watermark" in decision.describe()

    def test_tenant_quota_and_reject_mode(self, tmp_path):
        journal = JournalStore(tmp_path)
        record = journal.submit(fleet("a", [1]), tenant="noisy",
                                total_jobs=1)
        controller = AdmissionController(AdmissionPolicy(
            tenant_quota=2, overflow="reject", retry_after_s=7.0))
        assert controller.decide(record, pending_jobs=0,
                                 tenant_live=1).admitted
        decision = controller.decide(record, pending_jobs=0,
                                     tenant_live=2)
        assert decision.action == "reject"
        assert decision.retry_after_s == 7.0
        assert "'noisy' at quota" in decision.reason


class TestServeDaemon:
    def test_rejects_conflicting_scheduler_args(self, tmp_path):
        journal = JournalStore(tmp_path)
        with pytest.raises(ConfigError, match="not both"):
            ServeDaemon(journal, scheduler=FakeScheduler(),
                        store=ResultStore(tmp_path / "farm"))

    def test_serves_submissions_to_done(self, tmp_path):
        journal = JournalStore(tmp_path)
        submit_fleets(journal, {"fleets": [fleet("alpha", [1, 2]),
                                           fleet("beta", [3])]})
        daemon = ServeDaemon(journal, scheduler=FakeScheduler())
        report = run_once(daemon)
        assert report.admitted == 2 and report.completed == 2
        assert report.failed == 0 and report.all_ok
        assert report.executed == 3 and not report.stopped
        states = {r.fleet_name: r.state for r in journal.records()}
        assert states == {"alpha": "done", "beta": "done"}
        done = journal.records()[0]
        assert done.result["jobs"] == 2 and done.done_jobs == 2

    def test_priority_orders_dispatch(self, tmp_path):
        journal = JournalStore(tmp_path)
        for name, priority in (("low", 0), ("high", 5), ("mid", 2)):
            submit_fleets(journal, fleet(name, [1]), priority=priority)
        scheduler = FakeScheduler()
        daemon = ServeDaemon(journal, scheduler=scheduler, max_active=1)
        run_once(daemon)
        assert scheduler.served == ["high", "mid", "low"]

    def test_backpressure_bounds_pending_jobs(self, tmp_path):
        journal = JournalStore(tmp_path)
        for name in ("a", "b", "c"):
            submit_fleets(journal, fleet(name, [1, 2]))
        telemetry = RecordingTelemetry()
        daemon = ServeDaemon(
            journal, scheduler=FakeScheduler(),
            policy=AdmissionPolicy(max_pending_jobs=2),
            max_active=1, telemetry=telemetry)
        report = run_once(daemon)
        # every fleet still completes, but never more than the
        # watermark's worth of jobs was admitted at once
        assert report.completed == 3
        assert report.peak_pending_jobs <= 2
        assert report.deferred >= 1
        deferrals = telemetry.stages("daemon.reject")
        assert deferrals and all("defer" in e.detail for e in deferrals)

    def test_reject_mode_cancels_with_retry_after(self, tmp_path):
        journal = JournalStore(tmp_path)
        submit_fleets(journal, fleet("first", [1]), tenant="noisy")
        submit_fleets(journal, fleet("second", [2]), tenant="noisy")
        telemetry = RecordingTelemetry()
        daemon = ServeDaemon(
            journal, scheduler=FakeScheduler(),
            policy=AdmissionPolicy(tenant_quota=1, overflow="reject",
                                   retry_after_s=5.0),
            telemetry=telemetry)
        report = run_once(daemon)
        assert report.rejected == 1 and report.completed == 1
        cancelled = journal.by_state("cancelled")
        assert len(cancelled) == 1
        assert "retry after 5s" in cancelled[0].error
        rejects = telemetry.stages("daemon.reject")
        assert rejects and not rejects[0].ok

    def test_failed_jobs_fail_the_request_only(self, tmp_path):
        journal = JournalStore(tmp_path)
        submit_fleets(journal, {"fleets": [fleet("good", [1]),
                                           fleet("bad", [2])]})
        telemetry = RecordingTelemetry()
        daemon = ServeDaemon(journal,
                             scheduler=FakeScheduler(fail_names={"bad"}),
                             telemetry=telemetry)
        report = run_once(daemon)
        assert report.completed == 1 and report.failed == 1
        assert not report.all_ok
        failed = journal.by_state("failed")[0]
        assert failed.fleet_name == "bad"
        assert "1 job(s) failed: bad: boom" in failed.error
        outcomes = telemetry.stages("daemon.request")
        assert sorted(e.ok for e in outcomes) == [False, True]

    def test_broken_spec_fails_terminally(self, tmp_path):
        journal = JournalStore(tmp_path)
        # journaled shape is valid, but the matrix spec is not — it
        # must fail once, not crash-loop through re-admission
        journal.submit({"name": "broken", "programs": []}, total_jobs=0)
        daemon = ServeDaemon(journal, scheduler=FakeScheduler())
        report = run_once(daemon)
        assert report.failed == 1 and report.completed == 0
        assert journal.records()[0].state == "failed"

    def test_graceful_shutdown_checkpoints_then_resumes(self, tmp_path):
        journal = JournalStore(tmp_path)
        submit_fleets(journal, fleet("alpha", [1, 2, 3]))
        telemetry = RecordingTelemetry()
        daemon = None

        async def stop_after_first_chunk(specs):
            daemon.request_shutdown()

        scheduler = FakeScheduler(hook=stop_after_first_chunk)
        daemon = ServeDaemon(journal, scheduler=scheduler,
                             checkpoint_every=1, telemetry=telemetry)
        report = run_once(daemon)
        assert report.stopped and report.checkpointed == 1
        leftover = journal.records()[0]
        assert leftover.state == "admitted"
        assert 1 <= leftover.done_jobs < 3
        checkpoints = telemetry.stages("daemon.checkpoint")
        assert any("journaled for resume" in e.detail
                   for e in checkpoints)
        # a fresh daemon replays the checkpointed request to done
        resumed = RecordingTelemetry()
        daemon2 = ServeDaemon(JournalStore(tmp_path),
                              scheduler=FakeScheduler(),
                              telemetry=resumed)
        report2 = run_once(daemon2)
        assert report2.resumed == 1 and report2.completed == 1
        assert resumed.stages("daemon.resume")
        assert JournalStore(tmp_path).records()[0].state == "done"

    def test_hard_crash_leftover_running_is_resumed(self, tmp_path):
        journal = JournalStore(tmp_path)
        record = submit_fleets(journal, fleet("alpha", [1]))[0]
        journal.transition(record.request_id, "admitted")
        journal.transition(record.request_id, "running", attempts=1)
        # a hard crash leaves "running" on disk; a new daemon resumes
        daemon = ServeDaemon(JournalStore(tmp_path),
                             scheduler=FakeScheduler())
        report = run_once(daemon)
        assert report.resumed == 1 and report.completed == 1
        done = JournalStore(tmp_path).records()[0]
        assert done.state == "done" and done.attempts == 2

    def test_prestop_run_exits_immediately(self, tmp_path):
        journal = JournalStore(tmp_path)
        submit_fleets(journal, fleet("alpha", [1]))
        daemon = ServeDaemon(journal, scheduler=FakeScheduler())
        daemon.request_shutdown()
        report = run_once(daemon)
        assert report.stopped and report.completed == 0
        assert journal.records()[0].state == "submitted"


class TestServeDaemonWithRealFarm:
    def test_resume_is_incremental_through_the_store(self, tmp_path):
        store = ResultStore(tmp_path / "farm")
        journal = JournalStore(tmp_path / "journal")
        submit_fleets(journal, {"fleets": [fleet("alpha", [1, 2]),
                                           fleet("beta", [2, 3])]})
        daemon = ServeDaemon(journal, store=store, checkpoint_every=2)
        report = run_once(daemon)
        assert report.completed == 2 and report.all_ok
        # seeds overlap: 4 fleet jobs, 3 unique keys simulated
        assert report.executed == 3
        assert len(store) == 3
        # the same fleets submitted again ride the warm store
        journal2 = JournalStore(tmp_path / "journal2")
        submit_fleets(journal2, {"fleets": [fleet("alpha", [1, 2]),
                                            fleet("beta", [2, 3])]})
        daemon2 = ServeDaemon(journal2, store=ResultStore(store.root))
        report2 = run_once(daemon2)
        assert report2.completed == 2
        # zero re-simulation: every unique key is a store hit (the
        # shared seed-2 job is coalesced, so hits count unique keys)
        assert report2.executed == 0 and report2.store_hits == 3
        assert len(ResultStore(store.root)) == 3
