"""Evaluation-harness plumbing: rendering, summaries, CLI entry."""

import pytest

from repro.eval import EXPERIMENTS, table1, table2
from repro.eval.report import format_table


class TestFormatTable:
    def test_basic_render(self):
        text = format_table(["a", "b"], [["x", 1], ["yy", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "| a" in lines[2]
        assert text.count("+-") >= 3

    def test_number_alignment(self):
        text = format_table(["name", "val"], [["x", 5], ["y", 123]])
        # numbers right-aligned within their column
        assert "|   5 |" in text
        assert "| 123 |" in text

    def test_float_formatting(self):
        text = format_table(["v"], [[3.14159]])
        assert "3.14" in text
        assert "3.14159" not in text

    def test_empty_rows(self):
        text = format_table(["only", "headers"], [])
        assert "only" in text


class TestExperimentRegistry:
    def test_all_five_experiments(self):
        assert set(EXPERIMENTS) == {"table1", "table2", "fig5", "fig6",
                                    "fig7"}

    def test_each_module_has_run(self):
        for module in EXPERIMENTS.values():
            assert callable(module.run)

    def test_table_results_render(self):
        for module in (table1, table2):
            rendered = module.run().render()
            assert "Table" in rendered
            assert "+" in rendered

    def test_runner_rejects_unknown(self, capsys):
        from repro.eval.__main__ import main
        assert main(["figure9"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_runner_runs_cheap_experiments(self, capsys):
        from repro.eval.__main__ import main
        assert main(["table1", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Test Environment" in out
        assert "Area Results" in out

    def test_runner_accepts_farm_flags(self, capsys):
        from repro.eval.__main__ import main
        # table experiments don't construct a farm, but the flags parse
        assert main(["table1", "--jobs", "4"]) == 0
        assert "Test Environment" in capsys.readouterr().out


class TestVolatileCells:
    def test_live_render_shows_value(self):
        from repro.eval.report import Volatile
        text = format_table(["t ms"], [[Volatile(12.345)]])
        assert "12.35" in text

    def test_stable_render_masks_value(self):
        from repro.eval.report import Volatile
        text = format_table(["t ms"], [[Volatile(12.345)]], stable=True)
        assert "12.35" not in text
        assert Volatile.PLACEHOLDER in text

    def test_stable_render_is_run_independent(self):
        from repro.eval.report import Volatile
        one = format_table(["n", "t"], [["x", Volatile(1.0)]], stable=True)
        two = format_table(["n", "t"], [["x", Volatile(999999.0)]],
                           stable=True)
        assert one == two


class TestFarmBackedFigures:
    """fig5/6/7 source their rows through the simulation farm."""

    def test_fig7_resumes_from_store(self, tmp_path):
        from repro.eval import fig7
        from repro.farm import ResultStore, SimulationFarm

        store = ResultStore(tmp_path)
        first = fig7.run(farm=SimulationFarm(store=store))
        telemetry_farm = SimulationFarm(store=ResultStore(tmp_path))
        second = fig7.run(farm=telemetry_farm)
        assert [r.eric_cycles for r in second.rows] \
            == [r.eric_cycles for r in first.rows]

    def test_figure_matrices_are_well_formed(self):
        from repro.eval import fig5, fig6, fig7
        from repro.workloads import all_workloads

        n = len(all_workloads())
        assert fig7.matrix().job_count == n
        assert fig5.matrix().job_count == 3 * n
        assert fig6.matrix().job_count == n
        assert not fig5.matrix().simulate
        assert not fig6.matrix().simulate
        assert fig6.matrix(repeats=3).repeats == 3
        assert fig7.matrix().simulate
