"""Evaluation-harness plumbing: rendering, summaries, CLI entry."""

import pytest

from repro.eval import EXPERIMENTS, table1, table2
from repro.eval.report import format_table


class TestFormatTable:
    def test_basic_render(self):
        text = format_table(["a", "b"], [["x", 1], ["yy", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "| a" in lines[2]
        assert text.count("+-") >= 3

    def test_number_alignment(self):
        text = format_table(["name", "val"], [["x", 5], ["y", 123]])
        # numbers right-aligned within their column
        assert "|   5 |" in text
        assert "| 123 |" in text

    def test_float_formatting(self):
        text = format_table(["v"], [[3.14159]])
        assert "3.14" in text
        assert "3.14159" not in text

    def test_empty_rows(self):
        text = format_table(["only", "headers"], [])
        assert "only" in text


class TestExperimentRegistry:
    def test_all_five_experiments(self):
        assert set(EXPERIMENTS) == {"table1", "table2", "fig5", "fig6",
                                    "fig7"}

    def test_each_module_has_run(self):
        for module in EXPERIMENTS.values():
            assert callable(module.run)

    def test_table_results_render(self):
        for module in (table1, table2):
            rendered = module.run().render()
            assert "Table" in rendered
            assert "+" in rendered

    def test_runner_rejects_unknown(self, capsys):
        from repro.eval.__main__ import main
        assert main(["figure9"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_runner_runs_cheap_experiments(self, capsys):
        from repro.eval.__main__ import main
        assert main(["table1", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Test Environment" in out
        assert "Area Results" in out
