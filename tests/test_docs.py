"""The docs/ tree: generated-page freshness and example correctness.

Two failure modes these tests exist to catch:

* **drift** — a new CLI flag ships while the committed ``docs/cli.md``
  still documents the old tree (the page is generated, so the fix is
  one command, and CI points at it);
* **rot** — a fenced ``python`` or ``json`` block in a hand-written
  page stops being valid as the code evolves.  Blocks are
  syntax-checked, not executed: ``python`` blocks must compile,
  ``json`` blocks must parse, and ``json`` policy/sweep examples must
  additionally survive the real spec parsers.
"""

import json
import re
from pathlib import Path

import pytest

DOCS = Path(__file__).resolve().parent.parent / "docs"
README = DOCS.parent / "README.md"

_FENCE = re.compile(r"^```(\w*)\s*$")


def fenced_blocks(path: Path):
    """(language, first_line_no, text) per fenced block in a page."""
    blocks = []
    language = None
    start = 0
    body: list[str] = []
    for number, line in enumerate(path.read_text(
            encoding="utf-8").splitlines(), start=1):
        match = _FENCE.match(line)
        if match and language is None:
            language, start, body = match.group(1), number, []
        elif line.strip() == "```" and language is not None:
            blocks.append((language, start, "\n".join(body)))
            language = None
        elif language is not None:
            body.append(line)
    assert language is None, f"{path}: unclosed fence at line {start}"
    return blocks


def doc_pages():
    pages = sorted(DOCS.glob("*.md")) + [README]
    assert len(pages) >= 5  # architecture, cli, policy, store-formats +
    return pages


class TestDocsTree:
    def test_required_pages_exist(self):
        for name in ("architecture.md", "policy.md", "store-formats.md",
                     "cli.md"):
            assert (DOCS / name).is_file(), f"docs/{name} is missing"

    def test_readme_links_every_docs_page(self):
        readme = README.read_text(encoding="utf-8")
        for page in DOCS.glob("*.md"):
            assert f"docs/{page.name}" in readme, \
                f"README does not link docs/{page.name}"

    def test_internal_doc_links_resolve(self):
        link = re.compile(r"\]\((?!https?://|#)([^)#]+)")
        for page in doc_pages():
            for target in link.findall(page.read_text(encoding="utf-8")):
                resolved = (page.parent / target).resolve()
                assert resolved.exists(), \
                    f"{page.name} links to missing {target}"


class TestGeneratedCliPage:
    def test_committed_page_is_current(self):
        from repro.cli import build_parser
        from repro.cli_docs import render_cli_docs

        committed = (DOCS / "cli.md").read_text(encoding="utf-8")
        assert committed == render_cli_docs(build_parser()), (
            "docs/cli.md is stale; regenerate with: "
            "PYTHONPATH=src python -m repro.cli docs-cli > docs/cli.md")

    def test_renderer_is_deterministic(self):
        from repro.cli import build_parser
        from repro.cli_docs import render_cli_docs

        assert render_cli_docs(build_parser()) \
            == render_cli_docs(build_parser())

    def test_every_subcommand_is_documented(self):
        from repro.cli import build_parser
        from repro.cli_docs import _subcommands

        page = (DOCS / "cli.md").read_text(encoding="utf-8")
        for name in _subcommands(build_parser()):
            assert f"## `eric {name}`" in page


@pytest.mark.parametrize("page", doc_pages(), ids=lambda p: p.name)
class TestFencedBlocks:
    def test_python_blocks_compile(self, page):
        for language, line, text in fenced_blocks(page):
            if language == "python":
                try:
                    compile(text, f"{page.name}:{line}", "exec")
                except SyntaxError as exc:
                    pytest.fail(f"{page.name}:{line} python block does "
                                f"not compile: {exc}")

    def test_json_blocks_parse(self, page):
        for language, line, text in fenced_blocks(page):
            if language == "json":
                try:
                    json.loads(text)
                except json.JSONDecodeError as exc:
                    pytest.fail(f"{page.name}:{line} json block is not "
                                f"valid JSON: {exc}")


class TestPolicyExamplesAreLive:
    """docs/policy.md's JSON examples must survive the real parsers —
    a dialect change that forgets the reference page fails here."""

    def test_policy_objects_parse(self):
        from repro.policy import policy_from_dict

        checked = 0
        for language, line, text in fenced_blocks(DOCS / "policy.md"):
            if language != "json":
                continue
            data = json.loads(text)
            if isinstance(data, dict) and (
                    {"encrypt", "obfuscate", "mode", "cipher",
                     "seed"} & set(data)):
                policy_from_dict(data)
                checked += 1
            elif isinstance(data, dict) and "kind" in data:
                from repro.policy import Region
                Region.from_dict(data)
                checked += 1
            elif isinstance(data, dict) and "region" in data:
                from repro.policy import EncryptRule, ObfuscateRule
                rule_cls = (ObfuscateRule if "density" in data
                            else EncryptRule)
                rule_cls.from_dict(data)
                checked += 1
        assert checked >= 5

    def test_sweep_spec_example_parses(self):
        from repro.farm import JobMatrix

        specs = 0
        for language, line, text in fenced_blocks(DOCS / "policy.md"):
            if language != "json":
                continue
            data = json.loads(text)
            if isinstance(data, dict) and "policies" in data:
                matrix = JobMatrix.from_spec(data)
                assert len(matrix.jobs()) >= 2
                specs += 1
        assert specs >= 1
