"""Assembler behaviour: parsing, labels, pseudos, fixups, sections."""

import pytest

from repro.asm.assembler import assemble
from repro.errors import AssemblerError
from repro.isa.decoding import decode_at
from repro.isa.disassembler import disassemble_text


def decode_all(program):
    """Decode the whole text section into (name, instr) tuples."""
    result = []
    offset = 0
    while offset < len(program.text):
        instr, size = decode_at(program.text, offset)
        result.append(instr)
        offset += size
    return result


class TestBasicAssembly:
    def test_single_instruction(self):
        program = assemble("addi a0, zero, 42\n")
        instrs = decode_all(program)
        assert len(instrs) == 1
        assert instrs[0].name == "addi"
        assert instrs[0].rd == 10
        assert instrs[0].imm == 42

    def test_r_type_and_memory_operands(self):
        program = assemble(
            """
            add t0, t1, t2
            ld a0, 16(sp)
            sd a1, -8(s0)
            """
        )
        instrs = decode_all(program)
        assert [i.name for i in instrs] == ["add", "ld", "sd"]
        assert instrs[1].imm == 16 and instrs[1].rs1 == 2
        assert instrs[2].imm == -8 and instrs[2].rs1 == 8

    def test_comments_and_blank_lines(self):
        program = assemble(
            """
            # full-line comment
            addi a0, zero, 1   # trailing comment
            // slash comment
            addi a1, zero, 2
            """
        )
        assert len(program.layout) == 2

    def test_immediate_bases(self):
        program = assemble(
            """
            addi a0, zero, 0x10
            addi a1, zero, 0b101
            addi a2, zero, -3
            addi a3, zero, 'A'
            addi a4, zero, '\\n'
            """
        )
        imms = [i.imm for i in decode_all(program)]
        assert imms == [16, 5, -3, 65, 10]

    def test_unknown_instruction(self):
        with pytest.raises(AssemblerError, match="unknown instruction"):
            assemble("frobnicate a0, a1\n")

    def test_bad_operand_count(self):
        with pytest.raises(AssemblerError):
            assemble("add a0, a1\n")

    def test_unknown_register(self):
        with pytest.raises(AssemblerError):
            assemble("add a0, a1, q7\n")


class TestLabelsAndBranches:
    def test_backward_branch(self):
        program = assemble(
            """
            loop:
              addi a0, a0, 1
              beq a0, a1, loop
            """
        )
        instrs = decode_all(program)
        assert instrs[1].name == "beq"
        assert instrs[1].imm == -4

    def test_forward_branch(self):
        program = assemble(
            """
            beq a0, a1, done
            addi a0, a0, 1
            done:
              addi a1, zero, 0
            """
        )
        instrs = decode_all(program)
        assert instrs[0].imm == 8

    def test_jal_and_j(self):
        program = assemble(
            """
            _start:
              jal ra, func
              j end
            func:
              ret
            end:
              nop
            """
        )
        instrs = decode_all(program)
        assert instrs[0].name == "jal" and instrs[0].rd == 1
        assert instrs[0].imm == 8
        assert instrs[1].name == "jal" and instrs[1].rd == 0
        assert instrs[1].imm == 8

    def test_branch_pseudos(self):
        program = assemble(
            """
            target:
              beqz a0, target
              bnez a1, target
              blez a2, target
              bgez a3, target
              bgt a4, a5, target
              bleu a6, a7, target
            """
        )
        instrs = decode_all(program)
        assert instrs[0].name == "beq" and instrs[0].rs2 == 0
        assert instrs[1].name == "bne"
        assert instrs[2].name == "bge" and instrs[2].rs1 == 0
        assert instrs[3].name == "bge" and instrs[3].rs2 == 0
        assert instrs[4].name == "blt" and instrs[4].rs1 == 15
        assert instrs[5].name == "bgeu" and instrs[5].rs1 == 17

    def test_label_with_offset(self):
        program = assemble(
            """
            .data
            table: .dword 1, 2, 3
            .text
            la a0, table+8
            """
        )
        # la expands to lui+addiw producing table's address + 8
        address = program.symbols["table"] + 8
        instrs = decode_all(program)
        hi = instrs[0].imm << 12
        assert hi + instrs[1].imm == address

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError, match="duplicate"):
            assemble("x:\nx:\n  nop\n")

    def test_undefined_symbol_rejected(self):
        with pytest.raises(AssemblerError, match="undefined symbol"):
            assemble("j nowhere\n")

    def test_entry_is_start_symbol(self):
        program = assemble(
            """
            nop
            _start:
              nop
            """
        )
        assert program.entry == program.text_base + 4

    def test_entry_defaults_to_text_base(self):
        program = assemble("nop\n", text_base=0x4000)
        assert program.entry == 0x4000


class TestPseudos:
    def test_li_small(self):
        program = assemble("li a0, 100\n")
        instrs = decode_all(program)
        assert len(instrs) == 1
        assert instrs[0].name == "addi"

    def test_li_32bit(self):
        program = assemble("li a0, 0x12345678\n")
        instrs = decode_all(program)
        assert [i.name for i in instrs] == ["lui", "addiw"]

    def test_li_64bit(self):
        program = assemble("li a0, 0x123456789ABCDEF0\n")
        names = {i.name for i in decode_all(program)}
        assert "slli" in names  # 64-bit path shifts

    def test_mv_not_neg(self):
        program = assemble("mv a0, a1\nnot a2, a3\nneg a4, a5\n")
        names = [i.name for i in decode_all(program)]
        assert names == ["addi", "xori", "sub"]

    def test_ret_and_call(self):
        program = assemble(
            """
            _start:
              call f
              ret
            f:
              ret
            """
        )
        instrs = decode_all(program)
        assert instrs[0].name == "jal" and instrs[0].rd == 1
        assert instrs[1].name == "jalr" and instrs[1].rd == 0
        assert instrs[1].rs1 == 1

    def test_hi_lo(self):
        program = assemble(
            """
            .data
            v: .dword 7
            .text
            lui a0, %hi(v)
            ld a1, %lo(v)(a0)
            """
        )
        instrs = decode_all(program)
        address = program.symbols["v"]
        hi = instrs[0].imm << 12
        # lui sign-extension irrelevant at our small addresses
        assert hi + instrs[1].imm == address


class TestDataSection:
    def test_word_dword_byte(self):
        program = assemble(
            """
            .data
            a: .byte 1, 2
            b: .half 0x0304
            c: .word 0x05060708
            d: .dword 0x090A0B0C0D0E0F10
            """
        )
        assert program.data[:2] == bytes([1, 2])
        assert program.data[2:4] == (0x0304).to_bytes(2, "little")
        assert program.data[4:8] == (0x05060708).to_bytes(4, "little")
        assert program.data[8:16] == (0x090A0B0C0D0E0F10).to_bytes(8, "little")

    def test_asciz(self):
        program = assemble('.data\nmsg: .asciz "hi\\n"\n')
        assert program.data == b"hi\n\x00"

    def test_space_and_align(self):
        program = assemble(
            """
            .data
            x: .byte 1
            .align 8
            y: .dword 2
            """
        )
        assert program.symbols["y"] % 8 == 0
        assert program.symbols["y"] - program.symbols["x"] == 8

    def test_data_base_follows_text(self):
        program = assemble(
            """
            nop
            .data
            v: .word 1
            """
        )
        assert program.data_base >= program.text_base + len(program.text)
        assert program.data_base % 8 == 0

    def test_equ(self):
        program = assemble(
            """
            .equ SIZE, 40
            li a0, SIZE
            """
        )
        assert decode_all(program)[0].imm == 40

    def test_instruction_in_data_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".data\naddi a0, a0, 1\n")

    def test_data_directive_in_text_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".word 5\n")

    def test_negative_space_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".data\n.space -1\n")

    def test_align_power_of_two(self):
        with pytest.raises(AssemblerError):
            assemble(".data\n.align 3\n")


class TestCompression:
    SOURCE = """
        _start:
          li a0, 5
          mv a1, a0
          add a1, a1, a0
          addi sp, sp, -32
          sd a0, 8(sp)
          ld a2, 8(sp)
          addi sp, sp, 32
          sub s0, s0, s1
          beq a0, a1, _start
          ecall
    """

    def test_compression_shrinks_text(self):
        plain = assemble(self.SOURCE, compress=False)
        small = assemble(self.SOURCE, compress=True)
        assert len(small.text) < len(plain.text)
        assert small.instruction_count == plain.instruction_count
        assert small.compressed_count > 0
        assert plain.compressed_count == 0

    def test_compressed_program_decodes_identically(self):
        plain = assemble(self.SOURCE, compress=False)
        small = assemble(self.SOURCE, compress=True)
        # Same instruction semantics in both images (branch offsets differ).
        plain_names = [i.name for i in decode_all(plain)]
        small_names = [i.name for i in decode_all(small)]
        assert plain_names == small_names

    def test_layout_matches_text(self):
        program = assemble(self.SOURCE, compress=True)
        end = program.layout[-1].offset + program.layout[-1].size
        assert end == len(program.text)
        # slots are contiguous
        cursor = 0
        for slot in program.layout:
            assert slot.offset == cursor
            cursor += slot.size

    def test_branches_stay_uncompressed(self):
        program = assemble(self.SOURCE, compress=True)
        lines = disassemble_text(program.text)
        assert any("beq" in line and "c." not in line for line in lines)


class TestPlainSerialization:
    def test_roundtrip(self):
        from repro.asm.program import Program
        program = assemble(self.source(), compress=True)
        blob = program.serialize_plain()
        back = Program.deserialize_plain(blob)
        assert back.text == program.text
        assert back.data == program.data
        assert back.entry == program.entry
        assert back.layout == program.layout

    def test_corrupt_magic_rejected(self):
        from repro.asm.program import Program
        from repro.errors import PackageFormatError
        blob = bytearray(assemble(self.source()).serialize_plain())
        blob[0] ^= 0xFF
        with pytest.raises(PackageFormatError):
            Program.deserialize_plain(bytes(blob))

    def test_truncated_rejected(self):
        from repro.asm.program import Program
        from repro.errors import PackageFormatError
        blob = assemble(self.source()).serialize_plain()
        with pytest.raises(PackageFormatError):
            Program.deserialize_plain(blob[:10])
        with pytest.raises(PackageFormatError):
            Program.deserialize_plain(blob[:-1])

    @staticmethod
    def source():
        return """
        _start:
          li a0, 1
          sd a0, 0(sp)
          ecall
        .data
        v: .dword 99
        """
