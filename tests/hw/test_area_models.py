"""Unit tests for the structural area model and the AES-memory model."""

import pytest

from repro.errors import ConfigError
from repro.hw.aes_memory import AesMemoryModel
from repro.hw.area import (
    PAPER_HDE_FFS,
    PAPER_HDE_LUTS,
    ROCKET_BASELINE_FFS,
    ROCKET_BASELINE_LUTS,
    HdeAreaModel,
    area_table,
)
from repro.hw.primitives import AreaEstimate, Primitives
from repro.soc.counters import PerfCounters


class TestPrimitives:
    def test_register_is_ffs_only(self):
        est = Primitives().register(64)
        assert est.ffs == 64
        assert est.luts == 0

    def test_xor_array_scales_with_width(self):
        p = Primitives()
        assert p.xor_array(128).luts > p.xor_array(32).luts

    def test_srl_and_lutram_use_no_ffs(self):
        p = Primitives()
        assert p.shift_register_srl(512).ffs == 0
        assert p.lutram(256).ffs == 0
        assert p.shift_register_srl(512).luts == 16
        assert p.lutram(256).luts == 4

    def test_packing_efficiency_bounds(self):
        with pytest.raises(ConfigError):
            Primitives(packing_efficiency=0.05)
        with pytest.raises(ConfigError):
            Primitives(packing_efficiency=1.5)

    def test_packing_efficiency_scales_luts(self):
        loose = Primitives(packing_efficiency=1.0).adder(64)
        tight = Primitives(packing_efficiency=0.5).adder(64)
        assert tight.luts < loose.luts

    def test_area_estimate_addition_and_scaling(self):
        total = AreaEstimate(10, 20) + AreaEstimate(1, 2)
        assert (total.luts, total.ffs) == (11, 22)
        scaled = AreaEstimate(10, 20).scaled(2.5)
        assert (scaled.luts, scaled.ffs) == (25, 50)


class TestHdeAreaModel:
    def test_paper_baseline_constants(self):
        assert ROCKET_BASELINE_LUTS == 33894
        assert ROCKET_BASELINE_FFS == 19093
        assert PAPER_HDE_LUTS == 34811 - 33894
        assert PAPER_HDE_FFS == 19854 - 19093

    def test_total_is_sum_of_units(self):
        model = HdeAreaModel()
        total = model.total()
        unit_sum_luts = sum(e.luts for e in model.units().values())
        unit_sum_ffs = sum(e.ffs for e in model.units().values())
        assert total.luts == unit_sum_luts
        assert total.ffs == unit_sum_ffs

    def test_area_table_consistency(self):
        table = area_table()
        assert table["with_hde_luts"] == (table["rocket_luts"]
                                          + table["hde_luts"])
        assert table["with_hde_ffs"] == (table["rocket_ffs"]
                                         + table["hde_ffs"])
        assert table["lut_increase_pct"] == pytest.approx(
            100 * table["hde_luts"] / table["rocket_luts"])

    def test_wider_datapath_costs_more(self):
        narrow = HdeAreaModel(datapath_bits=32).decryption_unit()
        wide = HdeAreaModel(datapath_bits=128).decryption_unit()
        assert wide.luts > narrow.luts
        assert wide.ffs > narrow.ffs

    def test_more_puf_instances_cost_more(self):
        small = HdeAreaModel(puf_width=16).puf_key_generator()
        large = HdeAreaModel(puf_width=64).puf_key_generator()
        assert large.luts > small.luts
        assert large.ffs > small.ffs


class TestAesMemoryModel:
    def _counters(self, cycles=100_000, imiss=50, dmiss=50):
        counters = PerfCounters()
        counters.cycles = cycles
        counters.icache_misses = imiss
        counters.dcache_misses = dmiss
        return counters

    def test_cycles_per_line(self):
        model = AesMemoryModel(line_bytes=64)
        assert model.cycles_per_line == 4 * 11  # 4 AES blocks per line

    def test_extra_cycles_scale_with_misses(self):
        model = AesMemoryModel()
        light = model.extra_cycles(self._counters(imiss=10, dmiss=10))
        heavy = model.extra_cycles(self._counters(imiss=100, dmiss=100))
        assert heavy == 10 * light

    def test_slowdown_pct(self):
        model = AesMemoryModel(writeback_fraction=0.0)
        counters = self._counters(cycles=44_000, imiss=100, dmiss=0)
        assert model.slowdown_pct(counters) == pytest.approx(10.0)

    def test_zero_cycles_guard(self):
        assert AesMemoryModel().slowdown_pct(PerfCounters()) == 0.0

    def test_writeback_fraction_adds_cost(self):
        counters = self._counters()
        base = AesMemoryModel(writeback_fraction=0.0).extra_cycles(counters)
        with_wb = AesMemoryModel(writeback_fraction=0.5).extra_cycles(
            counters)
        assert with_wb > base
