"""Security-vs-overhead frontier: scoring, stability, warm resume."""

import pytest

from repro.core.config import EricConfig
from repro.errors import ConfigError
from repro.eval.frontier import (UNPOLICIED, frontier_matrix,
                                 frontier_report)
from repro.farm import JobSpec, ResultStore, SimulationFarm
from repro.policy import policy_from_dict

HELLO = 'int main() { print_int(41); print_char(10); return 0; }\n'
LOOPY = ('int main() { int i; int s; s = 0; '
         'for (i = 0; i < 50; i = i + 1) { s = s + i; } '
         'print_int(s); print_char(10); return 0; }\n')

LIGHT = policy_from_dict({
    "name": "light",
    "encrypt": [{"region": {"kind": "program"}, "fraction": 0.25}],
})
HEAVY = policy_from_dict({
    "name": "heavy",
    "encrypt": [{"region": {"kind": "program"}, "fraction": 1.0}],
    "obfuscate": [{"region": {"kind": "program"},
                   "density": 0.1, "junk": 3}],
})


@pytest.fixture(scope="module")
def report():
    from repro.farm.spec import JobMatrix, SimParams
    matrix = JobMatrix(
        programs=(("hello", HELLO), ("loopy", LOOPY)),
        params=tuple(SimParams(policy=policy)
                     for policy in (None, LIGHT, HEAVY)),
        simulate=True, analyze=True)
    farm_report = SimulationFarm().run(matrix)
    farm_report.require_ok()
    return farm_report


class TestFrontierMatrix:
    def test_builds_the_policy_grid(self):
        matrix = frontier_matrix([None, LIGHT], ["crc32", "bitcount"])
        jobs = matrix.jobs()
        assert len(jobs) == 4
        assert all(job.simulate and job.analyze for job in jobs)
        names = {job.params.policy.name if job.params.policy else None
                 for job in jobs}
        assert names == {None, "light"}

    def test_rejects_empty_axes(self):
        with pytest.raises(ConfigError, match="at least one policy"):
            frontier_matrix([], ["crc32"])
        with pytest.raises(ConfigError, match="at least one workload"):
            frontier_matrix([None], [])

    def test_forwards_config_and_param_overrides(self):
        matrix = frontier_matrix(
            [None], ["crc32"], config=EricConfig(compress=True),
            device_seed=0xBEEF, max_instructions=1_000_000)
        [job] = matrix.jobs()
        assert job.config.compress is True
        assert job.params.device_seed == 0xBEEF
        assert job.params.max_instructions == 1_000_000


class TestFrontierReport:
    def test_groups_by_policy_in_sweep_order(self, report):
        result = frontier_report(report)
        assert [s.policy for s in result.scores] \
            == [UNPOLICIED, "light", "heavy"]
        assert all(s.jobs == 2 for s in result.scores)

    def test_scores_reflect_the_protection_gradient(self, report):
        result = frontier_report(report)
        by_name = {score.policy: score for score in result.scores}
        # encrypting everything + opaque predicates must cost more
        # cycles than encrypting a quarter of the slots
        assert by_name["heavy"].overhead_pct \
            > by_name["light"].overhead_pct
        # and hide more: full-map ciphertext decodes worse and looks
        # more random than a quarter-map's
        assert by_name["heavy"].byte_entropy > by_name["light"].byte_entropy
        for score in result.scores:
            assert 0.0 <= score.decode_fraction <= 1.0
            assert 0.0 < score.byte_entropy <= 8.0
            assert score.dynamic_attempts == 2 * 3  # 3 attacker seeds

    def test_render_is_byte_stable(self, report):
        a = frontier_report(report).render()
        b = frontier_report(report).render()
        assert a == b
        assert a == frontier_report(report).render(stable=True)
        assert "Security-vs-overhead frontier" in a
        assert "light" in a and "heavy" in a and UNPOLICIED in a

    def test_rejects_unmeasured_records(self):
        farm_report = SimulationFarm().run(
            [JobSpec(source=HELLO, name="hello", simulate=False)])
        with pytest.raises(ConfigError, match="simulate"):
            frontier_report(farm_report)

    def test_rejects_empty_reports(self):
        broken = SimulationFarm().run(
            [JobSpec(source="int main( {", name="broken")])
        with pytest.raises(ConfigError, match="at least one"):
            frontier_report(broken)


class TestWarmResume:
    def test_second_run_serves_from_store_and_renders_identically(
            self, tmp_path):
        from repro.farm.spec import JobMatrix, SimParams
        matrix = JobMatrix(
            programs=(("hello", HELLO),),
            params=(SimParams(policy=LIGHT), SimParams(policy=HEAVY)),
            simulate=True, analyze=True)
        store = ResultStore(tmp_path)
        cold = SimulationFarm(store=store).run(matrix)
        assert cold.executed == 2
        warm = SimulationFarm(store=ResultStore(tmp_path)).run(matrix)
        assert warm.executed == 0 and warm.hit_rate == 1.0
        assert frontier_report(cold).render() \
            == frontier_report(warm).render()
