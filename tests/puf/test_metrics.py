"""Standard PUF quality metrics on the delay model."""

import pytest

from repro.errors import ConfigError
from repro.puf.arbiter import ArbiterPuf
from repro.puf.metrics import (
    bit_aliasing,
    inter_chip_uniqueness,
    intra_chip_reliability,
    key_failure_probability,
    uniformity,
)

CHALLENGES = list(range(256))


def make_population(count=10, noise=0.04):
    return [ArbiterPuf(n_stages=8, seed=1000 + s, noise_sigma=noise)
            for s in range(count)]


class TestUniformity:
    def test_near_half(self):
        # Averaged over devices, uniformity of the delay model is ~0.5.
        values = [uniformity(p, CHALLENGES) for p in make_population(12)]
        assert 0.35 < sum(values) / len(values) < 0.65

    def test_empty_challenges_rejected(self):
        with pytest.raises(ConfigError):
            uniformity(make_population(1)[0], [])


class TestUniqueness:
    def test_near_half(self):
        value = inter_chip_uniqueness(make_population(8), CHALLENGES)
        assert 0.35 < value < 0.65

    def test_identical_devices_have_zero_distance(self):
        twin_a = ArbiterPuf(n_stages=8, seed=5, noise_sigma=0.0)
        twin_b = ArbiterPuf(n_stages=8, seed=5, noise_sigma=0.0)
        assert inter_chip_uniqueness([twin_a, twin_b], CHALLENGES) == 0.0

    def test_needs_two_devices(self):
        with pytest.raises(ConfigError):
            inter_chip_uniqueness(make_population(1), CHALLENGES)


class TestReliability:
    def test_noiseless_is_perfect(self):
        puf = ArbiterPuf(n_stages=8, seed=3, noise_sigma=0.0)
        assert intra_chip_reliability(puf, CHALLENGES) == 1.0

    def test_nominal_noise_high_reliability(self):
        puf = ArbiterPuf(n_stages=8, seed=3, noise_sigma=0.04)
        assert intra_chip_reliability(puf, CHALLENGES) > 0.93

    def test_more_noise_less_reliable(self):
        quiet = ArbiterPuf(n_stages=8, seed=3, noise_sigma=0.02)
        loud = ArbiterPuf(n_stages=8, seed=3, noise_sigma=0.5)
        assert (intra_chip_reliability(loud, CHALLENGES, repeats=8)
                <= intra_chip_reliability(quiet, CHALLENGES, repeats=8))

    def test_needs_two_repeats(self):
        with pytest.raises(ConfigError):
            intra_chip_reliability(make_population(1)[0], CHALLENGES,
                                   repeats=1)


class TestBitAliasing:
    def test_shape_and_range(self):
        values = bit_aliasing(make_population(8), CHALLENGES[:32])
        assert len(values) == 32
        assert all(0.0 <= v <= 1.0 for v in values)

    def test_mean_near_half(self):
        values = bit_aliasing(make_population(16), CHALLENGES)
        assert 0.35 < sum(values) / len(values) < 0.65


class TestKeyFailureProbability:
    def test_all_same_is_zero(self):
        assert key_failure_probability([b"k"] * 10 ) == 0.0

    def test_half_split(self):
        assert key_failure_probability([b"a"] * 5 + [b"b"] * 5) == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            key_failure_probability([])
