"""Arbiter PUF delay-model behaviour."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.puf.arbiter import ArbiterPuf, PufArray
from repro.puf.environment import Environment


class TestSingleInstance:
    def test_response_is_bit(self):
        puf = ArbiterPuf(n_stages=8, seed=1)
        for challenge in range(256):
            assert puf.evaluate(challenge) in (0, 1)

    def test_noiseless_sign_decides_ideal_response(self):
        puf = ArbiterPuf(n_stages=8, seed=2, noise_sigma=0.0)
        for challenge in (0, 1, 17, 200, 255):
            expected = 1 if puf.delay_difference(challenge) > 0 else 0
            assert puf.evaluate(challenge) == expected

    def test_same_seed_same_circuit(self):
        a = ArbiterPuf(n_stages=8, seed=77, noise_sigma=0.0)
        b = ArbiterPuf(n_stages=8, seed=77, noise_sigma=0.0)
        assert all(a.evaluate(c) == b.evaluate(c) for c in range(256))

    def test_different_seeds_differ_somewhere(self):
        a = ArbiterPuf(n_stages=8, seed=1, noise_sigma=0.0)
        b = ArbiterPuf(n_stages=8, seed=2, noise_sigma=0.0)
        responses_a = [a.evaluate(c) for c in range(256)]
        responses_b = [b.evaluate(c) for c in range(256)]
        assert responses_a != responses_b

    def test_challenge_range_enforced(self):
        puf = ArbiterPuf(n_stages=8, seed=1)
        with pytest.raises(ConfigError):
            puf.evaluate(256)
        with pytest.raises(ConfigError):
            puf.evaluate(-1)

    def test_stage_count_enforced(self):
        with pytest.raises(ConfigError):
            ArbiterPuf(n_stages=0)

    @given(st.integers(min_value=0, max_value=255))
    @settings(max_examples=40, deadline=None)
    def test_phi_transform_values(self, challenge):
        puf = ArbiterPuf(n_stages=8, seed=5)
        phi = puf._phi(challenge)
        assert len(phi) == 9
        assert phi[8] == 1
        assert all(p in (-1, 1) for p in phi)

    def test_phi_linearity_of_delay(self):
        # delta must be linear in the weights: scaling all weights scales
        # delta for every challenge.
        puf = ArbiterPuf(n_stages=8, seed=9)
        reference = [puf.delay_difference(c) for c in range(64)]
        puf._weights = [w * 3.0 for w in puf._weights]
        scaled = [puf.delay_difference(c) for c in range(64)]
        for r, s in zip(reference, scaled):
            assert s == pytest.approx(3.0 * r)


class TestNoiseAndVoting:
    def test_noise_flips_marginal_bits(self):
        # With huge noise, repeated evaluations of some challenge disagree.
        puf = ArbiterPuf(n_stages=8, seed=3, noise_sigma=5.0)
        for challenge in range(40):
            outcomes = {puf.evaluate(challenge) for _ in range(60)}
            if len(outcomes) == 2:
                break
        else:
            pytest.fail("huge noise never flipped any response")

    def test_majority_vote_stabilizes(self):
        puf = ArbiterPuf(n_stages=8, seed=4, noise_sigma=0.04)
        for challenge in range(32):
            first = puf.evaluate_majority(challenge, votes=15)
            assert all(puf.evaluate_majority(challenge, votes=15) == first
                       for _ in range(5))

    def test_votes_must_be_odd(self):
        puf = ArbiterPuf(n_stages=8, seed=1)
        with pytest.raises(ConfigError):
            puf.evaluate_majority(0, votes=4)
        with pytest.raises(ConfigError):
            puf.evaluate_majority(0, votes=0)

    def test_environment_scales_noise(self):
        harsh = Environment(temperature_c=105.0, voltage=0.85)
        assert harsh.noise_scale() > Environment().noise_scale()
        # Error rate at the harsh corner must be >= nominal error rate.
        puf = ArbiterPuf(n_stages=8, seed=6, noise_sigma=0.08)
        challenges = list(range(64))
        ideal = {c: 1 if puf.delay_difference(c) > 0 else 0
                 for c in challenges}

        def error_rate(env):
            errors = 0
            for c in challenges:
                errors += sum(puf.evaluate(c, env) != ideal[c]
                              for _ in range(30))
            return errors

        assert error_rate(harsh) >= error_rate(Environment())

    def test_noise_scale_floor(self):
        assert Environment(temperature_c=25.0, voltage=1.0).noise_scale() == 1.0
        # noise_scale never returns < 0.25 even for nonsense input
        assert Environment(temperature_c=25.0, voltage=1.0,
                           frequency_mhz=1.0).noise_scale() >= 0.25


class TestPufArray:
    def test_paper_configuration(self):
        # Table I: 32 instances, 8-bit challenge, 1-bit response each.
        array = PufArray(width=32, n_stages=8, device_seed=42)
        challenges = [c % 256 for c in range(32)]
        word = array.evaluate(challenges)
        assert 0 <= word < (1 << 32)

    def test_bit_packing_order(self):
        array = PufArray(width=4, n_stages=8, device_seed=1,
                         noise_sigma=0.0)
        challenges = [10, 20, 30, 40]
        word = array.evaluate(challenges)
        for i in range(4):
            assert (word >> i) & 1 == array.instances[i].evaluate(challenges[i])

    def test_devices_unique(self):
        challenges = [c * 7 % 256 for c in range(32)]
        words = {
            PufArray(32, 8, device_seed=s, noise_sigma=0.0)
            .evaluate(challenges)
            for s in range(12)
        }
        assert len(words) >= 11  # 32-bit words from 12 devices: collisions rare

    def test_challenge_count_enforced(self):
        array = PufArray(width=8, n_stages=8, device_seed=1)
        with pytest.raises(ConfigError):
            array.evaluate([0] * 7)

    def test_width_enforced(self):
        with pytest.raises(ConfigError):
            PufArray(width=0)

    def test_majority_word_stable_when_noiseless(self):
        # Unscreened challenges can sit on a near-zero delay margin, where
        # no amount of voting stabilizes them (that is why the PKG screens
        # at enrollment) — so exact stability is only guaranteed noiseless.
        array = PufArray(width=16, n_stages=8, device_seed=5,
                         noise_sigma=0.0)
        challenges = [c % 256 for c in range(16)]
        first = array.evaluate_majority(challenges, votes=15)
        assert all(array.evaluate_majority(challenges, votes=15) == first
                   for _ in range(5))

    def test_majority_word_mostly_stable_with_noise(self):
        array = PufArray(width=16, n_stages=8, device_seed=5,
                         noise_sigma=0.04)
        challenges = [c % 256 for c in range(16)]
        reads = [array.evaluate_majority(challenges, votes=15)
                 for _ in range(6)]
        worst = max(bin(reads[0] ^ r).count("1") for r in reads)
        assert worst <= 3  # only marginal bits may flip
