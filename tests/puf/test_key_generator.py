"""PUF Key Generator (PKG) behaviour and cycle model."""

import pytest

from repro.errors import ConfigError
from repro.puf.arbiter import PufArray
from repro.puf.environment import Environment
from repro.puf.key_generator import ARBITER_LATCH_CYCLES, PufKeyGenerator
from repro.puf.metrics import key_failure_probability
from repro.puf.response import collect_crps, verify_crps


def make_array(seed=42, noise=0.04):
    return PufArray(width=32, n_stages=8, device_seed=seed, noise_sigma=noise)


class TestKeyGeneration:
    def test_paper_key_is_32_bits(self):
        pkg = PufKeyGenerator(make_array(), key_bits=32)
        readout = pkg.generate()
        assert len(readout.key) == 4

    def test_key_stable_across_reads(self):
        pkg = PufKeyGenerator(make_array(), key_bits=32, votes=15)
        first = pkg.generate().key
        assert all(pkg.generate().key == first for _ in range(10))

    def test_key_unique_per_device(self):
        keys = {
            PufKeyGenerator(make_array(seed=s), key_bits=32).generate().key
            for s in range(10)
        }
        assert len(keys) >= 9

    def test_wider_keys(self):
        pkg = PufKeyGenerator(make_array(), key_bits=128)
        assert len(pkg.generate().key) == 16

    def test_key_bits_multiple_of_width(self):
        with pytest.raises(ConfigError):
            PufKeyGenerator(make_array(), key_bits=48)

    def test_votes_must_be_odd(self):
        with pytest.raises(ConfigError):
            PufKeyGenerator(make_array(), votes=2)

    def test_challenge_seed_changes_key(self):
        array = make_array()
        a = PufKeyGenerator(array, challenge_seed=1).generate().key
        b = PufKeyGenerator(array, challenge_seed=2).generate().key
        assert a != b

    def test_raw_readout_noisier_than_voted(self):
        array = make_array(noise=0.25)
        pkg = PufKeyGenerator(array, key_bits=32, votes=21)
        raw = [pkg.generate_raw() for _ in range(40)]
        voted = [pkg.generate().key for _ in range(40)]
        assert key_failure_probability(raw) >= key_failure_probability(voted)


class TestCycleModel:
    def test_cycle_cost_formula(self):
        pkg = PufKeyGenerator(make_array(), key_bits=64, votes=11)
        per_vote = 8 + ARBITER_LATCH_CYCLES
        assert pkg.cycle_cost() == 2 * 11 * per_vote

    def test_readout_carries_cycles(self):
        pkg = PufKeyGenerator(make_array(), key_bits=32, votes=11)
        readout = pkg.generate()
        assert readout.cycles == pkg.cycle_cost()
        assert readout.votes == 11


class TestCrpProtocol:
    def test_enrolled_device_verifies(self):
        array = make_array(seed=7)
        pairs = collect_crps(array, count=6, votes=15)
        assert verify_crps(array, pairs, votes=15)

    def test_impostor_device_fails(self):
        genuine = make_array(seed=7)
        impostor = make_array(seed=8)
        pairs = collect_crps(genuine, count=6, votes=15)
        assert not verify_crps(impostor, pairs, votes=15)

    def test_mismatch_tolerance(self):
        genuine = make_array(seed=7)
        pairs = collect_crps(genuine, count=6, votes=15)
        # The genuine device trivially satisfies a loose threshold too.
        assert verify_crps(genuine, pairs, votes=15, max_mismatch_bits=8)
