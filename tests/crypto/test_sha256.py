"""SHA-256 correctness: FIPS vectors, hashlib cross-check, streaming."""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.sha256 import SHA256, blocks_for_length, sha256


class TestKnownVectors:
    def test_empty(self):
        assert sha256(b"").hex() == (
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        )

    def test_abc(self):
        assert sha256(b"abc").hex() == (
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )

    def test_two_block_message(self):
        msg = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
        assert sha256(msg).hex() == (
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        )

    def test_million_a(self):
        h = SHA256()
        for _ in range(1000):
            h.update(b"a" * 1000)
        assert h.hexdigest() == (
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        )


class TestStreaming:
    def test_update_split_equivalence(self):
        data = bytes(range(256)) * 5
        whole = SHA256(data).digest()
        split = SHA256()
        split.update(data[:100])
        split.update(data[100:101])
        split.update(data[101:])
        assert split.digest() == whole

    def test_digest_does_not_consume_state(self):
        h = SHA256(b"hello")
        first = h.digest()
        assert h.digest() == first
        h.update(b" world")
        assert h.digest() == sha256(b"hello world")

    def test_copy_is_independent(self):
        h = SHA256(b"prefix")
        clone = h.copy()
        clone.update(b"-a")
        h.update(b"-b")
        assert clone.digest() == sha256(b"prefix-a")
        assert h.digest() == sha256(b"prefix-b")

    def test_blocks_processed_counter(self):
        h = SHA256()
        h.update(b"x" * 64)
        assert h.blocks_processed == 1
        h.update(b"x" * 63)
        assert h.blocks_processed == 1
        h.update(b"x")
        assert h.blocks_processed == 2


class TestAgainstHashlib:
    @given(st.binary(min_size=0, max_size=4096))
    @settings(max_examples=60, deadline=None)
    def test_matches_hashlib(self, data):
        assert sha256(data) == hashlib.sha256(data).digest()

    @given(st.lists(st.binary(max_size=300), max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_streaming_matches_hashlib(self, chunks):
        ours = SHA256()
        ref = hashlib.sha256()
        for chunk in chunks:
            ours.update(chunk)
            ref.update(chunk)
        assert ours.digest() == ref.digest()

    @pytest.mark.parametrize("length", [0, 1, 55, 56, 57, 63, 64, 65, 119, 120, 128])
    def test_padding_boundaries(self, length):
        data = b"\xAB" * length
        assert sha256(data) == hashlib.sha256(data).digest()


class TestBlockCount:
    @pytest.mark.parametrize(
        "length,expected",
        [(0, 1), (1, 1), (55, 1), (56, 2), (64, 2), (119, 2), (120, 3)],
    )
    def test_blocks_for_length(self, length, expected):
        assert blocks_for_length(length) == expected

    @given(st.integers(min_value=0, max_value=2000))
    @settings(max_examples=50, deadline=None)
    def test_blocks_for_length_matches_actual(self, length):
        h = SHA256(b"z" * length)
        final = h.copy()
        final._pad()
        assert final.blocks_processed == blocks_for_length(length)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            blocks_for_length(-1)
