"""Determinism and distribution sanity for the PRNG substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.prng import SplitMix64, Xoshiro256StarStar


class TestSplitMix64:
    def test_reference_sequence(self):
        # Reference values for seed 1234567 (computed from the canonical
        # C implementation's algebra, stable across runs by construction).
        gen_a = SplitMix64(1234567)
        gen_b = SplitMix64(1234567)
        assert [gen_a.next_u64() for _ in range(4)] == [
            gen_b.next_u64() for _ in range(4)
        ]

    def test_different_seeds_diverge(self):
        assert SplitMix64(1).next_u64() != SplitMix64(2).next_u64()

    def test_output_is_64_bit(self):
        gen = SplitMix64(42)
        for _ in range(100):
            assert 0 <= gen.next_u64() < (1 << 64)


class TestXoshiro:
    def test_deterministic(self):
        a = Xoshiro256StarStar(99)
        b = Xoshiro256StarStar(99)
        assert [a.next_u64() for _ in range(10)] == [
            b.next_u64() for _ in range(10)
        ]

    def test_random_in_unit_interval(self):
        gen = Xoshiro256StarStar(7)
        values = [gen.random() for _ in range(1000)]
        assert all(0.0 <= v < 1.0 for v in values)
        mean = sum(values) / len(values)
        assert 0.45 < mean < 0.55

    @given(st.integers(min_value=-50, max_value=50),
           st.integers(min_value=0, max_value=100))
    @settings(max_examples=40, deadline=None)
    def test_randint_range(self, low, span):
        gen = Xoshiro256StarStar(5)
        high = low + span
        for _ in range(20):
            assert low <= gen.randint(low, high) <= high

    def test_randint_empty_range(self):
        with pytest.raises(ValueError):
            Xoshiro256StarStar(1).randint(5, 4)

    def test_randint_covers_small_range(self):
        gen = Xoshiro256StarStar(11)
        seen = {gen.randint(0, 3) for _ in range(200)}
        assert seen == {0, 1, 2, 3}

    def test_gauss_moments(self):
        gen = Xoshiro256StarStar(13)
        values = [gen.gauss(10.0, 2.0) for _ in range(4000)]
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / len(values)
        assert 9.8 < mean < 10.2
        assert 3.4 < var < 4.6

    def test_bytes_length_and_determinism(self):
        a = Xoshiro256StarStar(3).bytes(37)
        b = Xoshiro256StarStar(3).bytes(37)
        assert a == b
        assert len(a) == 37

    def test_shuffle_is_permutation(self):
        gen = Xoshiro256StarStar(17)
        items = list(range(50))
        shuffled = list(items)
        gen.shuffle(shuffled)
        assert sorted(shuffled) == items
        assert shuffled != items  # astronomically unlikely to be identity

    def test_sample_indices_distinct_sorted(self):
        gen = Xoshiro256StarStar(23)
        sample = gen.sample_indices(100, 30)
        assert len(sample) == 30
        assert sample == sorted(set(sample))
        assert all(0 <= i < 100 for i in sample)

    def test_sample_indices_full_population(self):
        gen = Xoshiro256StarStar(29)
        assert gen.sample_indices(10, 10) == list(range(10))

    def test_sample_too_large_rejected(self):
        with pytest.raises(ValueError):
            Xoshiro256StarStar(1).sample_indices(5, 6)
