"""HMAC-SHA256 (RFC 4231 vectors) and the counter-mode KDF."""

import hashlib
import hmac as std_hmac

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hmac import hmac_sha256
from repro.crypto.kdf import derive_key, expand_keystream


class TestHmacVectors:
    def test_rfc4231_case_1(self):
        key = b"\x0b" * 20
        data = b"Hi There"
        assert hmac_sha256(key, data).hex() == (
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        )

    def test_rfc4231_case_2(self):
        assert hmac_sha256(b"Jefe", b"what do ya want for nothing?").hex() == (
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        )

    def test_rfc4231_case_6_long_key(self):
        key = b"\xaa" * 131
        data = b"Test Using Larger Than Block-Size Key - Hash Key First"
        assert hmac_sha256(key, data).hex() == (
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        )

    @given(st.binary(max_size=200), st.binary(max_size=500))
    @settings(max_examples=40, deadline=None)
    def test_matches_stdlib(self, key, msg):
        expected = std_hmac.new(key, msg, hashlib.sha256).digest()
        assert hmac_sha256(key, msg) == expected


class TestDeriveKey:
    def test_deterministic(self):
        assert derive_key(b"secret", "enc") == derive_key(b"secret", "enc")

    def test_label_separates(self):
        assert derive_key(b"secret", "enc") != derive_key(b"secret", "sig")

    def test_context_separates(self):
        base = derive_key(b"secret", "enc", context=b"device-1")
        other = derive_key(b"secret", "enc", context=b"device-2")
        assert base != other

    def test_secret_separates(self):
        assert derive_key(b"a", "enc") != derive_key(b"b", "enc")

    @pytest.mark.parametrize("length", [1, 16, 32, 33, 64, 100])
    def test_lengths(self, length):
        key = derive_key(b"secret", "enc", length=length)
        assert len(key) == length

    def test_long_output_prefix_property(self):
        # Counter-mode KDFs with length in the PRF input do NOT promise
        # prefix consistency; ours binds length, so 32- and 64-byte outputs
        # must differ even in their first 32 bytes.
        short = derive_key(b"secret", "enc", length=32)
        long = derive_key(b"secret", "enc", length=64)
        assert long[:32] != short

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            derive_key(b"secret", "enc", length=0)


class TestExpandKeystream:
    def test_deterministic_and_nonce_bound(self):
        a = expand_keystream(b"k", b"n1", 100)
        assert a == expand_keystream(b"k", b"n1", 100)
        assert a != expand_keystream(b"k", b"n2", 100)

    @given(st.integers(min_value=0, max_value=300),
           st.integers(min_value=0, max_value=300))
    @settings(max_examples=40, deadline=None)
    def test_prefix_property(self, short, extra):
        # Same key/nonce: a longer expansion extends the shorter one.
        stream = expand_keystream(b"key", b"nonce", short + extra)
        assert stream[:short] == expand_keystream(b"key", b"nonce", short)

    def test_zero_length(self):
        assert expand_keystream(b"k", b"n", 0) == b""

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            expand_keystream(b"k", b"n", -1)
