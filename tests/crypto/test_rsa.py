"""RSA keygen / OAEP wrap-unwrap (the §VI future-work extension)."""

import pytest

from repro.crypto import rsa
from repro.errors import ConfigError

# One shared keypair per module: keygen is the slow part.
KEY = rsa.generate_keypair(bits=1024, seed=7)
PUB = KEY.public()


class TestKeygen:
    def test_deterministic(self):
        again = rsa.generate_keypair(bits=1024, seed=7)
        assert again.n == KEY.n
        assert again.d == KEY.d

    def test_different_seeds_differ(self):
        other = rsa.generate_keypair(bits=1024, seed=8)
        assert other.n != KEY.n

    def test_modulus_width(self):
        assert 1023 <= KEY.n.bit_length() <= 1024

    def test_keypair_consistency(self):
        message = 0x1234567890ABCDEF
        assert pow(pow(message, PUB.e, PUB.n), KEY.d, KEY.n) == message

    def test_bad_parameters(self):
        with pytest.raises(ConfigError):
            rsa.generate_keypair(bits=256)
        with pytest.raises(ConfigError):
            rsa.generate_keypair(bits=1023)


class TestOaepRoundTrip:
    @pytest.mark.parametrize("message", [
        b"", b"x", b"\x00" * 32, bytes(range(32)),
        b"a 32-byte PUF-based key....!!..."
    ])
    def test_roundtrip(self, message):
        wrapped = rsa.encrypt(PUB, message, entropy=b"test")
        assert rsa.decrypt(KEY, wrapped) == message

    def test_ciphertext_not_plaintext(self):
        message = bytes(range(32))
        wrapped = rsa.encrypt(PUB, message, entropy=b"e")
        assert message not in wrapped

    def test_entropy_randomizes(self):
        message = bytes(32)
        a = rsa.encrypt(PUB, message, entropy=b"one")
        b = rsa.encrypt(PUB, message, entropy=b"two")
        assert a != b
        assert rsa.decrypt(KEY, a) == rsa.decrypt(KEY, b) == message

    def test_tampered_ciphertext_rejected(self):
        wrapped = bytearray(rsa.encrypt(PUB, b"secret", entropy=b"t"))
        wrapped[10] ^= 0x01
        with pytest.raises(ConfigError):
            rsa.decrypt(KEY, bytes(wrapped))

    def test_wrong_key_rejected(self):
        other = rsa.generate_keypair(bits=1024, seed=99)
        wrapped = rsa.encrypt(PUB, b"secret", entropy=b"t")
        with pytest.raises(ConfigError):
            rsa.decrypt(other, wrapped)

    def test_oversize_message_rejected(self):
        with pytest.raises(ConfigError, match="capacity"):
            rsa.encrypt(PUB, bytes(200))

    def test_wrong_length_ciphertext_rejected(self):
        with pytest.raises(ConfigError):
            rsa.decrypt(KEY, b"short")
