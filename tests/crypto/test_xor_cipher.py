"""XOR cipher properties: involution, offset addressing, registry."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.xor_cipher import (
    Cipher,
    RepeatingKeyXor,
    Sha256CtrCipher,
    make_cipher,
    register_cipher,
    registered_ciphers,
)
from repro.errors import ConfigError

CIPHER_CLASSES = [RepeatingKeyXor, Sha256CtrCipher]


@pytest.fixture(params=CIPHER_CLASSES, ids=lambda c: c.name)
def cipher(request):
    return request.param(b"\x13\x37\xC0\xDE" * 8)


class TestInvolution:
    @given(data=st.binary(max_size=2048), offset=st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_repeating(self, data, offset):
        c = RepeatingKeyXor(b"0123456789abcdef")
        assert c.transform(c.transform(data, offset), offset) == data

    @given(data=st.binary(max_size=2048), offset=st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_ctr(self, data, offset):
        c = Sha256CtrCipher(b"0123456789abcdef")
        assert c.transform(c.transform(data, offset), offset) == data

    def test_encrypt_changes_data(self, cipher):
        data = b"the quick brown fox jumps over the lazy dog"
        assert cipher.transform(data) != data


class TestOffsetAddressing:
    @given(data=st.binary(min_size=2, max_size=1024),
           split=st.integers(min_value=1, max_value=1023))
    @settings(max_examples=40, deadline=None)
    def test_fragment_equals_whole_repeating(self, data, split):
        split = min(split, len(data) - 1)
        c = RepeatingKeyXor(b"secret-key")
        whole = c.transform(data, 0)
        assert c.transform(data[:split], 0) == whole[:split]
        assert c.transform(data[split:], split) == whole[split:]

    @given(data=st.binary(min_size=2, max_size=1024),
           split=st.integers(min_value=1, max_value=1023))
    @settings(max_examples=40, deadline=None)
    def test_fragment_equals_whole_ctr(self, data, split):
        split = min(split, len(data) - 1)
        c = Sha256CtrCipher(b"secret-key")
        whole = c.transform(data, 0)
        assert c.transform(data[:split], 0) == whole[:split]
        assert c.transform(data[split:], split) == whole[split:]

    def test_keystream_window(self, cipher):
        # keystream(offset, n) must be the [offset, offset+n) window of
        # keystream(0, offset+n).
        base = cipher.keystream(0, 300)
        assert cipher.keystream(100, 50) == base[100:150]
        assert cipher.keystream(0, 0) == b""

    def test_repeating_key_periodicity(self):
        key = b"ABCD"
        c = RepeatingKeyXor(key)
        assert c.keystream(0, 12) == key * 3
        assert c.keystream(2, 6) == b"CDABCD"


class TestKeySeparation:
    def test_different_keys_differ(self):
        data = bytes(64)
        for cls in CIPHER_CLASSES:
            a = cls(b"key-a-key-a-key-").transform(data)
            b = cls(b"key-b-key-b-key-").transform(data)
            assert a != b

    def test_ctr_nonce_separates(self):
        data = bytes(64)
        a = Sha256CtrCipher(b"k" * 16, nonce=b"text").transform(data)
        b = Sha256CtrCipher(b"k" * 16, nonce=b"sig").transform(data)
        assert a != b


class TestRegistry:
    def test_make_cipher_known(self):
        c = make_cipher("xor-repeating", b"key")
        assert isinstance(c, RepeatingKeyXor)
        c = make_cipher("xor-sha256ctr", b"key")
        assert isinstance(c, Sha256CtrCipher)

    def test_make_cipher_unknown(self):
        with pytest.raises(ConfigError):
            make_cipher("rot13", b"key")

    def test_register_custom_cipher(self):
        @register_cipher
        class NullCipher(Cipher):
            name = "null-test-cipher"

            def __init__(self, key):
                pass

            def keystream(self, offset, length):
                return bytes(length)

            def transform(self, data, offset=0):
                return data

        assert "null-test-cipher" in registered_ciphers()
        assert make_cipher("null-test-cipher", b"").transform(b"abc") == b"abc"

    def test_register_rejects_anonymous(self):
        class Bad(Cipher):
            name = ""

        with pytest.raises(ConfigError):
            register_cipher(Bad)

    def test_empty_key_rejected(self):
        for cls in CIPHER_CLASSES:
            with pytest.raises(ConfigError):
                cls(b"")
