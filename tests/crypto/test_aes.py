"""AES-128 known-answer tests (FIPS 197) and CTR keystream behaviour."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES128, aes128_ctr_keystream
from repro.errors import ConfigError


class TestFips197:
    KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    PLAIN = bytes.fromhex("00112233445566778899aabbccddeeff")
    CIPHER = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")

    def test_encrypt_appendix_c1(self):
        assert AES128(self.KEY).encrypt_block(self.PLAIN) == self.CIPHER

    def test_decrypt_appendix_c1(self):
        assert AES128(self.KEY).decrypt_block(self.CIPHER) == self.PLAIN

    def test_nist_sp800_38a_ecb_vector(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plain = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        expected = bytes.fromhex("3ad77bb40d7a3660a89ecaf32466ef97")
        assert AES128(key).encrypt_block(plain) == expected


class TestRoundTrip:
    @given(key=st.binary(min_size=16, max_size=16),
           block=st.binary(min_size=16, max_size=16))
    @settings(max_examples=25, deadline=None)
    def test_decrypt_inverts_encrypt(self, key, block):
        aes = AES128(key)
        assert aes.decrypt_block(aes.encrypt_block(block)) == block

    def test_block_size_enforced(self):
        aes = AES128(bytes(16))
        with pytest.raises(ConfigError):
            aes.encrypt_block(b"short")
        with pytest.raises(ConfigError):
            aes.decrypt_block(b"x" * 17)

    def test_key_size_enforced(self):
        with pytest.raises(ConfigError):
            AES128(bytes(15))


class TestCtrKeystream:
    def test_deterministic(self):
        a = aes128_ctr_keystream(bytes(16), nonce=7, length=100)
        assert a == aes128_ctr_keystream(bytes(16), nonce=7, length=100)

    def test_nonce_separates(self):
        a = aes128_ctr_keystream(bytes(16), nonce=1, length=64)
        b = aes128_ctr_keystream(bytes(16), nonce=2, length=64)
        assert a != b

    def test_prefix_property(self):
        long = aes128_ctr_keystream(bytes(16), nonce=3, length=80)
        short = aes128_ctr_keystream(bytes(16), nonce=3, length=48)
        assert long[:48] == short

    def test_length_exact(self):
        assert len(aes128_ctr_keystream(bytes(16), 0, 33)) == 33
