"""Trace context across process boundaries: pool, shards, daemon.

These are the acceptance tests for end-to-end tracing: every layer of
a real run — daemon request, scheduler batch, farm sweep, worker
subprocess, job — must land in ONE connected tree per request, even
when the spans were written by different processes into different
files and merged back afterwards.
"""

import asyncio

from repro.core.config import EncryptionMode, EricConfig
from repro.farm import (FarmCoordinator, JobMatrix, ResultStore,
                        SimulationFarm)
from repro.obs.metrics import METRICS
from repro.obs.trace import Tracer, build_trees, read_trace
from repro.service.daemon import JournalStore, ServeDaemon, submit_fleets

HELLO = 'int main() { print_int(41); print_char(10); return 0; }\n'
GOODBYE = 'int main() { print_int(13); print_char(10); return 0; }\n'

#: packaging-only jobs: fast enough to fan out in tests
MATRIX = JobMatrix(programs=(("hello", HELLO), ("goodbye", GOODBYE)),
                   simulate=False)


def one_connected_tree(root):
    spans, skipped = read_trace(root)
    assert skipped == 0
    trees = build_trees(spans.values())
    assert len(trees) == 1, [t.trace_id for t in trees]
    (tree,) = trees
    assert tree.connected, f"roots={tree.roots} orphans={tree.orphans}"
    return tree


def names(tree):
    return sorted(span.name for span in tree.spans)


class TestPoolPropagation:
    def test_subprocess_jobs_join_the_sweep_trace(self, tmp_path):
        store = ResultStore(tmp_path)
        farm = SimulationFarm(store, jobs=2, tracer=Tracer(store.root))
        farm.run(MATRIX).require_ok()
        tree = one_connected_tree(store.root)
        assert names(tree) == ["farm.job", "farm.job", "farm.sweep"]
        # pool workers parent their job spans under the sweep
        (sweep,) = tree.roots
        assert sweep.name == "farm.sweep"
        assert all(span.finished and span.ok for span in tree.spans)


class TestShardPropagation:
    def test_merged_shard_traces_reconstruct_one_tree(self, tmp_path):
        store = ResultStore(tmp_path)
        coordinator = FarmCoordinator(store, shards=2,
                                      tracer=Tracer(store.root))
        matrix = JobMatrix(
            programs=(("hello", HELLO), ("goodbye", GOODBYE)),
            configs=(EricConfig(),
                     EricConfig(mode=EncryptionMode.PARTIAL)),
            simulate=False)
        coordinator.run(matrix).require_ok()
        tree = one_connected_tree(store.root)
        # coordinator sweep -> 2 worker shards -> their sweeps -> jobs
        assert names(tree) == (["farm.job"] * 4 + ["farm.sweep"] * 3
                               + ["worker.shard"] * 2)
        (root,) = tree.roots
        assert root.name == "farm.sweep"
        shard_spans = [s for s in tree.spans if s.name == "worker.shard"]
        assert {s.parent_id for s in shard_spans} == {root.span_id}

    def test_untraced_shard_run_stays_untraced(self, tmp_path):
        store = ResultStore(tmp_path)
        FarmCoordinator(store, shards=2).run(MATRIX).require_ok()
        spans, _ = read_trace(store.root)
        assert spans == {}


class TestDaemonPropagation:
    def test_served_request_is_one_connected_trace(self, tmp_path):
        journal = JournalStore(tmp_path / "journal")
        submit_fleets(journal, {"fleets": [
            {"name": "edge",
             "programs": [{"name": "hello", "source": HELLO}],
             "device_seeds": [1, 2]}]})
        daemon = ServeDaemon(journal,
                             store=ResultStore(tmp_path / "store"),
                             tracer=Tracer(journal.root))
        report = asyncio.run(daemon.run(once=True))
        assert report.completed == 1 and report.all_ok
        tree = one_connected_tree(journal.root)
        (root,) = tree.roots
        assert root.name == "daemon.request"
        assert root.attrs["fleet"] == "edge"
        assert "scheduler.batch" in names(tree)
        assert names(tree).count("farm.job") == 2
        # the request span records its terminal state
        assert "done" in root.detail

    def test_two_requests_make_two_disjoint_traces(self, tmp_path):
        journal = JournalStore(tmp_path / "journal")
        submit_fleets(journal, {"fleets": [
            {"name": name,
             "programs": [{"name": "hello", "source": HELLO}],
             "device_seeds": [seed]}
            for name, seed in (("a", 1), ("b", 2))]})
        daemon = ServeDaemon(journal,
                             store=ResultStore(tmp_path / "store"),
                             tracer=Tracer(journal.root))
        asyncio.run(daemon.run(once=True))
        spans, _ = read_trace(journal.root)
        trees = build_trees(spans.values())
        assert len(trees) == 2
        assert all(tree.connected for tree in trees)
        assert sorted(tree.roots[0].attrs["fleet"] for tree in trees) \
            == ["a", "b"]


class TestMetricsFromRealRuns:
    def test_warm_rerun_counts_every_job_as_store_hit(self, tmp_path):
        store = ResultStore(tmp_path)
        farm = SimulationFarm(store)
        farm.run(MATRIX).require_ok()
        before = METRICS.counter("store.hits")
        report = farm.run(MATRIX)
        report.require_ok()
        assert report.hits == len(report.results) == 2
        assert METRICS.counter("store.hits") - before == 2

    def test_sharded_rerun_counts_hits_at_the_coordinator(self, tmp_path):
        store = ResultStore(tmp_path)
        coordinator = FarmCoordinator(store, shards=2)
        coordinator.run(MATRIX).require_ok()
        before = METRICS.counter("store.hits")
        report = coordinator.run(MATRIX)
        # shard farms run with metrics off; only the coordinator's
        # merge-time announcement counts, so no double counting
        assert METRICS.counter("store.hits") - before \
            == report.hits == 2
