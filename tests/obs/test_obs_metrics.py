"""MetricsRegistry: counters, gauges, histograms, persistence."""

import json
import threading

import pytest

from repro.obs.metrics import (METRICS_FILENAME, MetricsRegistry,
                               format_duration, load_metrics,
                               render_snapshot)


class TestRegistry:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.inc("store.hits")
        registry.inc("store.hits", by=2)
        assert registry.counter("store.hits") == 3
        assert registry.counter("never.touched") == 0

    def test_gauges_overwrite(self):
        registry = MetricsRegistry()
        registry.set_gauge("journal.running", 4)
        registry.set_gauge("journal.running", 1)
        assert registry.gauge("journal.running") == 1
        assert registry.gauge("missing") is None

    def test_histogram_quantiles_nearest_rank(self):
        registry = MetricsRegistry()
        for value in range(1, 101):
            registry.observe("wall_s", float(value))
        snapshot = registry.snapshot()["histograms"]["wall_s"]
        assert snapshot["count"] == 100
        assert snapshot["sum"] == pytest.approx(5050.0)
        assert snapshot["p50"] == 50.0
        assert snapshot["p95"] == 95.0
        assert snapshot["p99"] == 99.0

    def test_concurrent_increments_are_not_lost(self):
        registry = MetricsRegistry()

        def spin():
            for _ in range(1000):
                registry.inc("n")
                registry.observe("h", 1.0)

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter("n") == 8000
        assert registry.snapshot()["histograms"]["h"]["count"] == 8000

    def test_reset_forgets_everything(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.set_gauge("b", 1)
        registry.observe("c", 1.0)
        registry.reset()
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["gauges"] == {}
        assert snapshot["histograms"] == {}


class TestPersistence:
    def test_dump_and_load_round_trip(self, tmp_path):
        registry = MetricsRegistry()
        registry.inc("cache.hits", by=5)
        path = registry.dump(tmp_path)
        assert path == tmp_path / METRICS_FILENAME
        data = load_metrics(tmp_path)  # directory form
        assert data["counters"]["cache.hits"] == 5
        assert load_metrics(path) == data  # file form

    def test_dump_replaces_atomically_leaving_no_temp(self, tmp_path):
        registry = MetricsRegistry()
        registry.dump(tmp_path)
        registry.inc("x")
        registry.dump(tmp_path)
        leftovers = [p for p in tmp_path.iterdir()
                     if p.name != METRICS_FILENAME]
        assert leftovers == []

    def test_load_missing_or_corrupt_raises_value_error(self, tmp_path):
        with pytest.raises(ValueError, match="no metrics snapshot"):
            load_metrics(tmp_path)
        (tmp_path / METRICS_FILENAME).write_text("{not json")
        with pytest.raises(ValueError, match="corrupt"):
            load_metrics(tmp_path)
        (tmp_path / METRICS_FILENAME).write_text(
            json.dumps({"schema": 999}))
        with pytest.raises(ValueError, match="unsupported schema"):
            load_metrics(tmp_path)


class TestRendering:
    def test_prometheus_text_shape(self):
        registry = MetricsRegistry()
        registry.inc("cache.hits", by=2)
        registry.set_gauge("journal.running", 3)
        registry.observe("farm.job.wall_s", 0.5)
        text = registry.render()
        assert "# TYPE eric_cache_hits counter\neric_cache_hits 2" in text
        assert ("# TYPE eric_journal_running gauge\n"
                "eric_journal_running 3") in text
        assert "# TYPE eric_farm_job_wall_s summary" in text
        assert 'eric_farm_job_wall_s{quantile="0.5"} 0.5' in text
        assert "eric_farm_job_wall_s_count 1" in text

    def test_render_snapshot_of_empty_registry_is_empty(self):
        assert render_snapshot(MetricsRegistry().snapshot()) == ""


class TestFormatDuration:
    def test_milliseconds_below_ten_seconds(self):
        assert format_duration(0.0123) == "12.3 ms"
        assert format_duration(9.99) == "9990.0 ms"

    def test_seconds_from_ten_seconds_up(self):
        assert format_duration(10.0) == "10.0 s"
        assert format_duration(3600.12) == "3600.1 s"
