"""Tracing: spans, persistence discipline, tree reconstruction, doctor."""

import json

from repro.obs.trace import (TRACE_FILENAME, TRACE_SCHEMA, TraceContext,
                             Tracer, build_trees, diagnose_trace,
                             merge_trace_files, read_trace, render_traces)


def read_lines(path):
    return [json.loads(line)
            for line in path.read_text().splitlines() if line.strip()]


class TestTracer:
    def test_span_written_at_start_and_again_at_finish(self, tmp_path):
        tracer = Tracer(tmp_path)
        span = tracer.start("daemon.request", attrs={"fleet": "edge"})
        lines = read_lines(tracer.path)
        assert len(lines) == 1 and lines[0]["end_s"] is None
        span.finish(detail="served")
        lines = read_lines(tracer.path)
        assert len(lines) == 2
        assert lines[1]["end_s"] is not None
        assert lines[1]["detail"] == "served"
        assert lines[1]["attrs"] == {"fleet": "edge"}

    def test_finish_is_idempotent(self, tmp_path):
        tracer = Tracer(tmp_path)
        span = tracer.start("x")
        span.finish()
        span.finish(ok=False, detail="ignored")
        assert len(read_lines(tracer.path)) == 2
        assert span.ok is True and span.detail == ""

    def test_child_inherits_trace_id_and_parent_link(self):
        tracer = Tracer()  # memory-only
        root = tracer.start("root")
        child = tracer.start("child", parent=root)
        grandchild = tracer.start("leaf", parent=child.context)
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert grandchild.parent_id == child.span_id
        assert root.parent_id is None
        for span in (grandchild, child, root):
            span.finish()

    def test_context_manager_marks_failure_with_exception_detail(self):
        tracer = Tracer()
        try:
            with tracer.span("boom"):
                raise RuntimeError("pipeline meltdown")
        except RuntimeError:
            pass
        (record,) = tracer.spans
        assert record["ok"] is False
        assert record["detail"] == "RuntimeError: pipeline meltdown"

    def test_memory_tracer_writes_no_file(self, tmp_path):
        tracer = Tracer()
        with tracer.span("quiet"):
            pass
        assert tracer.path is None
        assert list(tmp_path.iterdir()) == []


class TestWire:
    def test_round_trip(self):
        ctx = TraceContext(trace_id="t" * 32, span_id="s" * 16)
        assert TraceContext.from_wire(ctx.to_wire()) == ctx

    def test_malformed_wire_is_none_not_an_error(self):
        assert TraceContext.from_wire(None) is None
        assert TraceContext.from_wire("junk") is None
        assert TraceContext.from_wire({"trace_id": "t"}) is None
        assert TraceContext.from_wire(
            {"trace_id": "", "span_id": "s"}) is None


class TestReadTrace:
    def test_last_record_per_span_wins(self, tmp_path):
        tracer = Tracer(tmp_path)
        span = tracer.start("job")
        span.finish()
        spans, skipped = read_trace(tmp_path)
        assert skipped == 0
        assert spans[span.span_id].finished

    def test_torn_tail_and_junk_lines_are_counted_not_fatal(self, tmp_path):
        tracer = Tracer(tmp_path)
        with tracer.span("ok"):
            pass
        with tracer.path.open("a") as handle:
            handle.write("not json\n")
            handle.write(json.dumps({"schema": 999}) + "\n")
            handle.write('{"schema": 1, "trace_id": "t", "spa')  # torn
        spans, skipped = read_trace(tmp_path)
        assert len(spans) == 1
        assert skipped == 3

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_trace(tmp_path) == ({}, 0)


class TestMerge:
    def test_concatenation_reconnects_shard_spans(self, tmp_path):
        parent_dir = tmp_path / "store"
        parent = Tracer(parent_dir)
        root = parent.start("farm.sweep")
        for name in ("s0", "s1"):
            shard = Tracer(tmp_path / name)
            with shard.span("worker.shard", parent=root.context):
                pass
        root.finish()
        appended = merge_trace_files(
            parent.path,
            [tmp_path / name / TRACE_FILENAME for name in ("s0", "s1")])
        assert appended == 2
        spans, _ = read_trace(parent_dir)
        (tree,) = build_trees(spans.values())
        assert tree.connected
        assert len(tree.spans) == 3

    def test_missing_source_is_harmless(self, tmp_path):
        dest = tmp_path / TRACE_FILENAME
        assert merge_trace_files(dest, [tmp_path / "ghost"]) == 0


class TestTraceTree:
    def build(self, tmp_path):
        tracer = Tracer(tmp_path)
        root = tracer.start("daemon.request")
        fast = tracer.start("farm.job", parent=root)
        fast.finish()
        slow = tracer.start("farm.sweep", parent=root)
        leaf = tracer.start("farm.job", parent=slow)
        leaf.end_s = leaf.start_s + 5.0
        tracer._record(leaf)
        slow.end_s = slow.start_s + 6.0
        tracer._record(slow)
        root.end_s = root.start_s + 7.0
        tracer._record(root)
        spans, _ = read_trace(tmp_path)
        (tree,) = build_trees(spans.values())
        return tree

    def test_connected_tree_and_critical_path(self, tmp_path):
        tree = self.build(tmp_path)
        assert tree.connected and not tree.orphans
        assert [s.name for s in tree.critical_path()] == \
            ["daemon.request", "farm.sweep", "farm.job"]

    def test_render_shows_waterfall_and_critical_path(self, tmp_path):
        text = self.build(tmp_path).render()
        assert "4 span(s)" in text
        assert "critical path: daemon.request -> farm.sweep -> farm.job" \
            in text

    def test_orphan_breaks_connectivity(self, tmp_path):
        tracer = Tracer(tmp_path)
        with tracer.span("root"):
            pass
        orphan = tracer.start(
            "lost", parent=TraceContext(trace_id="other", span_id="gone"))
        orphan.finish()
        trees = build_trees(read_trace(tmp_path)[0].values())
        lost = next(t for t in trees if t.trace_id == "other")
        assert not lost.connected
        assert lost.orphans[0].name == "lost"


class TestRenderTraces:
    def test_prefix_filter_and_empty_messages(self, tmp_path):
        assert render_traces(tmp_path) == "no traces recorded"
        tracer = Tracer(tmp_path)
        with tracer.span("a"):
            pass
        trace_id = tracer.spans[0]["trace_id"]
        assert "a  (" in render_traces(tmp_path, trace_id=trace_id[:8])
        assert render_traces(tmp_path, trace_id="zzzz") == \
            "no matching trace found"


class TestDoctor:
    def test_healthy_trace(self, tmp_path):
        tracer = Tracer(tmp_path)
        root = tracer.start("daemon.request")
        with tracer.span("farm.job", parent=root):
            pass
        root.finish()
        diagnosis = diagnose_trace(tmp_path)
        assert diagnosis.healthy
        assert "verdict: healthy" in diagnosis.describe()

    def test_unfinished_root_is_unhealthy(self, tmp_path):
        tracer = Tracer(tmp_path)
        tracer.start("daemon.request")  # never finished: daemon killed
        diagnosis = diagnose_trace(tmp_path)
        assert not diagnosis.healthy
        assert diagnosis.unfinished_roots == 1
        assert "NEEDS ATTENTION" in diagnosis.describe()

    def test_dangling_parent_is_unhealthy(self, tmp_path):
        tracer = Tracer(tmp_path)
        span = tracer.start(
            "worker.shard",
            parent=TraceContext(trace_id="t", span_id="missing"))
        span.finish()
        diagnosis = diagnose_trace(tmp_path)
        assert not diagnosis.healthy
        assert diagnosis.orphan_spans == 1

    def test_corrupt_metrics_flips_verdict(self, tmp_path):
        tracer = Tracer(tmp_path)
        with tracer.span("root"):
            pass
        (tmp_path / "metrics.json").write_text("{broken")
        diagnosis = diagnose_trace(tmp_path)
        assert diagnosis.metrics_ok is False
        assert not diagnosis.healthy

    def test_empty_directory_is_healthy_nothing_recorded(self, tmp_path):
        diagnosis = diagnose_trace(tmp_path)
        assert diagnosis.healthy and not diagnosis.exists
        assert "nothing recorded" in diagnosis.describe()
