"""Every workload must match its Python oracle on the SoC — this is the
equivalence that lets the figure benchmarks trust the whole stack."""

import pytest

from repro.cc.driver import compile_source
from repro.soc.soc import RocketLikeSoC
from repro.workloads import WORKLOADS, all_workloads, get_workload

NAMES = sorted(WORKLOADS)


@pytest.fixture(scope="module")
def compiled():
    return {name: compile_source(w.source, name=name).program
            for name, w in WORKLOADS.items()}


class TestRegistry:
    def test_eight_workloads(self):
        assert len(WORKLOADS) == 8

    def test_names_match_modules(self):
        assert set(NAMES) == {
            "basicmath", "bitcount", "qsort", "crc32",
            "dijkstra", "fft", "sha", "stringsearch",
        }

    def test_get_workload(self):
        assert get_workload("sha").name == "sha"
        with pytest.raises(KeyError):
            get_workload("nonesuch")

    def test_all_have_counterparts_and_oracles(self):
        for workload in all_workloads().values():
            assert "/" in workload.mibench_counterpart
            assert workload.expected_stdout.endswith("\n")
            assert workload.description


@pytest.mark.parametrize("name", NAMES)
class TestOracles:
    def test_output_matches_oracle(self, name, compiled):
        workload = WORKLOADS[name]
        result = RocketLikeSoC().run(compiled[name])
        assert result.stdout == workload.expected_stdout
        assert result.exit_code == 0

    def test_optimized_and_unoptimized_agree(self, name):
        workload = WORKLOADS[name]
        o0 = compile_source(workload.source, optimize=False).program
        result = RocketLikeSoC().run(o0)
        assert result.stdout == workload.expected_stdout

    def test_compressed_build_agrees(self, name):
        workload = WORKLOADS[name]
        rvc = compile_source(workload.source, compress=True).program
        result = RocketLikeSoC().run(rvc)
        assert result.stdout == workload.expected_stdout
        assert rvc.compressed_count > 0


class TestSizeDiversity:
    def test_static_sizes_spread(self, compiled):
        sizes = sorted(len(p.text) for p in compiled.values())
        assert sizes[-1] > 2 * sizes[0]  # Fig. 5/7 need size diversity

    def test_dynamic_lengths_spread(self, compiled):
        cycles = {}
        for name, program in compiled.items():
            cycles[name] = RocketLikeSoC().run(program).counters.cycles
        values = sorted(cycles.values())
        assert values[-1] > 2 * values[0]
