"""CLI observability: sweep --trace/--metrics, eric trace/metrics/doctor."""

import json

import pytest

from repro.cli import main
from repro.obs.trace import TRACE_FILENAME, Tracer

SPEC = {
    "programs": [
        {"name": "hello",
         "source": "int main() { print_int(41); return 0; }\n"},
        {"name": "answer",
         "source": "int main() { print_int(42); return 0; }\n"},
    ],
    "simulate": False,
}


@pytest.fixture
def spec_file(tmp_path):
    path = tmp_path / "matrix.json"
    path.write_text(json.dumps(SPEC))
    return str(path)


class TestSweepTraceMetrics:
    def test_traced_sweep_renders_and_diagnoses(self, spec_file,
                                                tmp_path, capsys):
        store = str(tmp_path / "farm")
        assert main(["sweep", spec_file, "--store", store,
                     "--trace", "--metrics", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert f"trace: {store}/{TRACE_FILENAME}" in out
        assert f"metrics: {store}/metrics.json" in out
        assert "profile:" in out

        assert main(["trace", store]) == 0
        out = capsys.readouterr().out
        assert "farm.sweep" in out and "farm.job" in out
        assert "critical path: farm.sweep -> farm.job" in out

        assert main(["metrics", store]) == 0
        out = capsys.readouterr().out
        assert "eric_farm_executed 2" in out

        assert main(["doctor", "--store", store, "--trace", store]) == 0
        assert "verdict: healthy" in capsys.readouterr().out

    def test_trace_needs_a_store(self, spec_file, capsys):
        assert main(["sweep", spec_file, "--no-store", "--trace"]) == 1
        assert "--trace/--metrics" in capsys.readouterr().err

    def test_trace_id_filter(self, spec_file, tmp_path, capsys):
        store = str(tmp_path / "farm")
        main(["sweep", spec_file, "--store", store, "--trace", "--quiet"])
        capsys.readouterr()
        assert main(["trace", store, "--trace-id", "zzzz"]) == 0
        assert "no matching trace" in capsys.readouterr().out


class TestTraceCommandEdges:
    def test_empty_directory(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path)]) == 0
        assert "no traces recorded" in capsys.readouterr().out

    def test_metrics_without_snapshot_is_an_error(self, tmp_path, capsys):
        assert main(["metrics", str(tmp_path)]) == 1
        assert "no metrics snapshot" in capsys.readouterr().err


class TestDoctorTrace:
    def test_unfinished_root_fails_doctor(self, tmp_path, capsys):
        tracer = Tracer(tmp_path)
        tracer.start("daemon.request")  # crash: never finished
        assert main(["doctor", "--trace", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "unfinished root" in out
        assert "NEEDS ATTENTION" in out

    def test_empty_trace_dir_is_healthy(self, tmp_path, capsys):
        assert main(["doctor", "--trace", str(tmp_path)]) == 0
        assert "nothing recorded" in capsys.readouterr().out
