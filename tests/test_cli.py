"""CLI front end: package/run/inspect/describe round trips."""

import json

import pytest

from repro.cli import main

SOURCE = """
int main() {
    print_str("cli says hi\\n");
    return 3;
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(SOURCE)
    return str(path)


class TestPackageRunFlow:
    def test_package_then_run(self, source_file, tmp_path, capsys):
        out = str(tmp_path / "prog.eric")
        assert main(["package", source_file, "-o", out,
                     "--device-seed", "0x42"]) == 0
        captured = capsys.readouterr().out
        assert "package size" in captured

        code = main(["run", out, "--device-seed", "0x42"])
        captured = capsys.readouterr().out
        assert "cli says hi" in captured
        assert code == 3

    def test_wrong_device_blocked(self, source_file, tmp_path, capsys):
        out = str(tmp_path / "prog.eric")
        main(["package", source_file, "-o", out, "--device-seed", "0x42"])
        capsys.readouterr()
        code = main(["run", out, "--device-seed", "0x43"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_inspect(self, source_file, tmp_path, capsys):
        out = str(tmp_path / "prog.eric")
        main(["package", source_file, "-o", out])
        capsys.readouterr()
        assert main(["inspect", out]) == 0
        captured = capsys.readouterr().out
        assert "mode          : full" in captured
        assert "xor-repeating" in captured

    def test_package_with_config(self, source_file, tmp_path, capsys):
        config = tmp_path / "cfg.json"
        config.write_text(json.dumps({"mode": "partial",
                                      "partial_fraction": 0.25}))
        out = str(tmp_path / "prog.eric")
        assert main(["package", source_file, "-o", out,
                     "--config", str(config)]) == 0
        capsys.readouterr()
        main(["inspect", out])
        assert "partial" in capsys.readouterr().out


class TestFleetCommand:
    def test_fleet_compiles_once(self, source_file, capsys):
        assert main(["fleet", source_file, "--devices", "3",
                     "--max-workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "3/3 devices ok" in out
        assert "compiles     : 1" in out

    def test_fleet_explicit_seeds(self, source_file, capsys):
        assert main(["fleet", source_file,
                     "--device-seeds", "0x10,0x11"]) == 0
        out = capsys.readouterr().out
        assert "2/2 devices ok" in out


class TestOtherCommands:
    def test_describe_default(self, capsys):
        assert main(["describe"]) == 0
        assert "mode:" in capsys.readouterr().out.replace(" ", "")

    def test_describe_config(self, tmp_path, capsys):
        config = tmp_path / "cfg.json"
        config.write_text(json.dumps({"mode": "field"}))
        assert main(["describe", "--config", str(config)]) == 0
        assert "field" in capsys.readouterr().out

    def test_disasm(self, source_file, capsys):
        assert main(["disasm", source_file]) == 0
        captured = capsys.readouterr().out
        assert "jal" in captured or "addi" in captured

    def test_bad_config_reports_error(self, source_file, tmp_path, capsys):
        config = tmp_path / "cfg.json"
        config.write_text(json.dumps({"mode": "nonsense"}))
        assert main(["describe", "--config", str(config)]) == 1
        assert "error" in capsys.readouterr().err

    def test_missing_file_reports_error(self, capsys):
        assert main(["run", "/nonexistent.eric"]) == 1
        assert "No such file" in capsys.readouterr().err
