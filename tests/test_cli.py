"""CLI front end: package/run/inspect/describe round trips."""

import json

import pytest

from repro.cli import main

SOURCE = """
int main() {
    print_str("cli says hi\\n");
    return 3;
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(SOURCE)
    return str(path)


class TestPackageRunFlow:
    def test_package_then_run(self, source_file, tmp_path, capsys):
        out = str(tmp_path / "prog.eric")
        assert main(["package", source_file, "-o", out,
                     "--device-seed", "0x42"]) == 0
        captured = capsys.readouterr().out
        assert "package size" in captured

        code = main(["run", out, "--device-seed", "0x42"])
        captured = capsys.readouterr().out
        assert "cli says hi" in captured
        assert code == 3

    def test_wrong_device_blocked(self, source_file, tmp_path, capsys):
        out = str(tmp_path / "prog.eric")
        main(["package", source_file, "-o", out, "--device-seed", "0x42"])
        capsys.readouterr()
        code = main(["run", out, "--device-seed", "0x43"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_inspect(self, source_file, tmp_path, capsys):
        out = str(tmp_path / "prog.eric")
        main(["package", source_file, "-o", out])
        capsys.readouterr()
        assert main(["inspect", out]) == 0
        captured = capsys.readouterr().out
        assert "mode          : full" in captured
        assert "xor-repeating" in captured

    def test_package_with_config(self, source_file, tmp_path, capsys):
        config = tmp_path / "cfg.json"
        config.write_text(json.dumps({"mode": "partial",
                                      "partial_fraction": 0.25}))
        out = str(tmp_path / "prog.eric")
        assert main(["package", source_file, "-o", out,
                     "--config", str(config)]) == 0
        capsys.readouterr()
        main(["inspect", out])
        assert "partial" in capsys.readouterr().out


class TestFleetCommand:
    def test_fleet_compiles_once(self, source_file, capsys):
        assert main(["fleet", source_file, "--devices", "3",
                     "--max-workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "3/3 devices ok" in out
        assert "compiles     : 1" in out

    def test_fleet_explicit_seeds(self, source_file, capsys):
        assert main(["fleet", source_file,
                     "--device-seeds", "0x10,0x11"]) == 0
        out = capsys.readouterr().out
        assert "2/2 devices ok" in out

    def test_fleet_async_path(self, source_file, capsys):
        assert main(["fleet", source_file, "--devices", "3",
                     "--async"]) == 0
        out = capsys.readouterr().out
        assert "3/3 devices ok" in out
        assert "compiles     : 1" in out


class TestServeCommand:
    FLEETS = {"fleets": [
        {"name": "alpha", "programs": [{"name": "probe",
                                        "source": SOURCE}],
         "device_seeds": [1, 2]},
        {"name": "beta", "programs": [{"name": "probe",
                                       "source": SOURCE}],
         "device_seeds": [2, 3]},
    ]}

    @pytest.fixture
    def fleets_file(self, tmp_path):
        path = tmp_path / "fleets.json"
        path.write_text(json.dumps(self.FLEETS))
        return str(path)

    def test_serve_then_warm_resume(self, fleets_file, tmp_path, capsys):
        store = str(tmp_path / "farm")
        assert main(["serve", "--fleets", fleets_file,
                     "--store", store, "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "fleet 'alpha'" in out and "fleet 'beta'" in out
        assert "4 job request(s) -> 3 unique, 3 executed" in out

        assert main(["serve", "--fleets", fleets_file,
                     "--store", store, "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "3 unique, 0 executed, 3 store hit(s)" in out

    def test_serve_narrates_scheduler_stages(self, fleets_file,
                                             tmp_path, capsys):
        assert main(["serve", "--fleets", fleets_file,
                     "--store", str(tmp_path / "farm")]) == 0
        out = capsys.readouterr().out
        assert "[scheduler.fleet.begin]" in out
        assert "[scheduler.batch]" in out

    def test_serve_rejects_bad_spec(self, tmp_path, capsys):
        path = tmp_path / "fleets.json"
        path.write_text(json.dumps({"fleets": [{"workloads": ["crc32"]}]}))
        assert main(["serve", "--fleets", str(path), "--no-store"]) == 1
        assert "eric: error:" in capsys.readouterr().err

    def test_serve_shards_require_a_store(self, fleets_file, capsys):
        assert main(["serve", "--fleets", fleets_file, "--shards", "2",
                     "--no-store"]) == 1
        assert "drop --no-store" in capsys.readouterr().err

    def test_serve_names_failed_jobs_and_exits_nonzero(self, tmp_path,
                                                       capsys):
        path = tmp_path / "fleets.json"
        # "starved" compiles but blows its simulator budget at run
        # time, so the failure surfaces as a per-job result
        path.write_text(json.dumps({"fleets": [
            {"name": "good", "programs": [{"name": "probe",
                                           "source": SOURCE}]},
            {"name": "bad", "programs": [{"name": "starved",
                                          "source": SOURCE}],
             "max_instructions": 5},
        ]}))
        assert main(["serve", "--fleets", str(path), "--no-store",
                     "--quiet"]) == 1
        out = capsys.readouterr().out
        # the summary names each failed job so the operator does not
        # have to re-run with telemetry on
        assert "FAILED bad/starved:" in out
        assert "FAILED good" not in out


class TestDaemonCommands:
    FLEETS = {"fleets": [
        {"name": "alpha", "programs": [{"name": "probe",
                                        "source": SOURCE}],
         "device_seeds": [1, 2]},
        {"name": "beta", "programs": [{"name": "probe",
                                       "source": SOURCE}],
         "device_seeds": [2, 3]},
    ]}

    @pytest.fixture
    def spec_file(self, tmp_path):
        path = tmp_path / "fleets.json"
        path.write_text(json.dumps(self.FLEETS))
        return str(path)

    def test_submit_daemon_status_round_trip(self, spec_file, tmp_path,
                                             capsys):
        journal = str(tmp_path / "journal")
        store = str(tmp_path / "farm")
        assert main(["submit", spec_file, "--journal", journal,
                     "--priority", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("submitted ") == 2

        assert main(["status", "--journal", journal]) == 0
        out = capsys.readouterr().out
        assert "2 submitted" in out and "p2" in out

        assert main(["daemon", "--journal", journal, "--store", store,
                     "--once", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "2 admitted" in out and "2 done" in out

        assert main(["status", "--journal", journal]) == 0
        out = capsys.readouterr().out
        assert "2 done" in out and "no live requests" in out

    def test_daemon_submits_fleets_and_narrates(self, spec_file,
                                                tmp_path, capsys):
        assert main(["daemon", "--journal", str(tmp_path / "journal"),
                     "--fleets", spec_file, "--store",
                     str(tmp_path / "farm"), "--once"]) == 0
        out = capsys.readouterr().out
        assert "[daemon.admit]" in out
        assert "[daemon.request]" in out

    def test_daemon_shards_require_a_store(self, tmp_path, capsys):
        assert main(["daemon", "--journal", str(tmp_path / "journal"),
                     "--shards", "2", "--no-store", "--once"]) == 1
        assert "drop --no-store" in capsys.readouterr().err

    def test_submit_rejects_bad_spec_without_journaling(self, tmp_path,
                                                        capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"fleets": [
            {"name": "ok", "programs": [{"name": "p",
                                         "source": SOURCE}]},
            {"workloads": ["crc32"]},
        ]}))
        journal = tmp_path / "journal"
        assert main(["submit", str(path),
                     "--journal", str(journal)]) == 1
        assert "eric: error:" in capsys.readouterr().err
        # the valid first fleet was not half-submitted
        assert not (journal / "journal.jsonl").exists()

    def test_status_compact_rewrites_the_journal(self, spec_file,
                                                 tmp_path, capsys):
        journal = str(tmp_path / "journal")
        store = str(tmp_path / "farm")
        main(["submit", spec_file, "--journal", journal])
        main(["daemon", "--journal", journal, "--store", store,
              "--once", "--quiet"])
        capsys.readouterr()
        assert main(["status", "--journal", journal,
                     "--compact"]) == 0
        assert "journal compacted: 2" in capsys.readouterr().out
        lines = (tmp_path / "journal" /
                 "journal.jsonl").read_text().splitlines()
        assert len(lines) == 2

    def test_doctor_reports_stuck_running_requests(self, tmp_path,
                                                   capsys):
        from dataclasses import replace

        from repro.service.daemon import JournalStore

        journal = JournalStore(tmp_path / "journal")
        record = journal.submit(self.FLEETS["fleets"][0], total_jobs=2)
        stale = replace(record, state="running",
                        updated_at=record.updated_at - 3600.0)
        journal.append(stale)
        assert main(["doctor", "--store", str(tmp_path / "farm"),
                     "--journal", str(tmp_path / "journal")]) == 1
        out = capsys.readouterr().out
        assert "STUCK" in out and "restart the daemon" in out
        assert "NEEDS ATTENTION" in out
        # a generous staleness window clears the verdict
        assert main(["doctor", "--store", str(tmp_path / "farm"),
                     "--journal", str(tmp_path / "journal"),
                     "--stale-after", "7200"]) == 0


class TestDoctorCommand:
    def test_doctor_healthy_store(self, tmp_path, capsys):
        from repro.farm import JobMatrix, ResultStore, SimulationFarm

        store = tmp_path / "farm"
        SimulationFarm(store=ResultStore(store)).run(
            JobMatrix(programs=(("probe", SOURCE),), simulate=False))
        assert main(["doctor", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "1 live record(s)" in out
        assert "verdict: healthy" in out

    def test_doctor_flags_junk(self, tmp_path, capsys):
        store = tmp_path / "farm"
        store.mkdir()
        (store / "results.jsonl").write_text(
            '{"schema": 1, "key": "old"}\nnot json\n')
        assert main(["doctor", "--store", str(store)]) == 1
        out = capsys.readouterr().out
        assert "NEEDS ATTENTION" in out
        assert "1 corrupt, 1 foreign-schema" in out

    def test_doctor_empty_store_dir(self, tmp_path, capsys):
        assert main(["doctor", "--store", str(tmp_path)]) == 0
        assert "nothing measured yet" in capsys.readouterr().out


class TestSweepCommand:
    SPEC = {
        "programs": [
            {"name": "hello", "source": SOURCE},
            {"name": "answer",
             "source": "int main() { print_int(42); return 0; }\n"},
        ],
        "configs": [{}, {"mode": "partial", "partial_fraction": 0.25}],
    }

    @pytest.fixture
    def spec_file(self, tmp_path):
        path = tmp_path / "matrix.json"
        path.write_text(json.dumps(self.SPEC))
        return str(path)

    def test_sweep_then_resume_hits_everything(self, spec_file, tmp_path,
                                               capsys):
        store = str(tmp_path / "farm")
        assert main(["sweep", spec_file, "--store", store]) == 0
        out = capsys.readouterr().out
        assert "4 jobs -> 0 store hits, 4 executed" in out
        assert "results.jsonl (4 records)" in out

        # the acceptance criterion: a repeated sweep simulates nothing
        assert main(["sweep", spec_file, "--store", store]) == 0
        out = capsys.readouterr().out
        assert "4 jobs -> 4 store hits, 0 executed" in out
        assert "hit rate 100%" in out

    def test_sweep_force_re_measures(self, spec_file, tmp_path, capsys):
        store = str(tmp_path / "farm")
        main(["sweep", spec_file, "--store", store, "--quiet"])
        capsys.readouterr()
        assert main(["sweep", spec_file, "--store", store,
                     "--force", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "0 store hits, 4 executed" in out

    def test_sweep_no_store(self, spec_file, capsys):
        assert main(["sweep", spec_file, "--no-store", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "0 store hits, 4 executed" in out
        assert "store:" not in out

    def test_sweep_progress_lines(self, spec_file, tmp_path, capsys):
        assert main(["sweep", spec_file,
                     "--store", str(tmp_path / "farm")]) == 0
        out = capsys.readouterr().out
        assert "[farm.job] hello" in out
        assert "[farm.job] answer" in out

    def test_sweep_reports_failures(self, tmp_path, capsys):
        spec = tmp_path / "bad.json"
        spec.write_text(json.dumps({
            "programs": [{"name": "broken", "source": "int main( {"}]}))
        assert main(["sweep", str(spec), "--no-store", "--quiet"]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_sweep_compact_rewrites_and_warns_on_junk(self, spec_file,
                                                      tmp_path, capsys):
        store = str(tmp_path / "farm")
        main(["sweep", spec_file, "--store", store, "--quiet"])
        results = tmp_path / "farm" / "results.jsonl"
        with results.open("a") as handle:
            handle.write("not json at all\n")
        capsys.readouterr()

        # the skipped line is surfaced, --compact drops it
        assert main(["sweep", spec_file, "--store", store,
                     "--quiet", "--compact"]) == 0
        captured = capsys.readouterr()
        assert "1 corrupt or schema-mismatched line(s)" in captured.err
        assert "store compacted: 4 live record(s)" in captured.out
        assert len(results.read_text().strip().splitlines()) == 4

        # a compacted store loads clean: no warning the next time
        assert main(["sweep", spec_file, "--store", store,
                     "--quiet"]) == 0
        assert "corrupt" not in capsys.readouterr().err

    def test_sweep_compact_requires_a_store(self, spec_file, capsys):
        assert main(["sweep", spec_file, "--no-store", "--compact"]) == 1
        assert "--compact" in capsys.readouterr().err

    def test_sweep_environment_axis(self, tmp_path, capsys):
        spec = tmp_path / "env.json"
        spec.write_text(json.dumps({
            "programs": self.SPEC["programs"][:1],
            "environments": [{}, {"temperature_c": 85.0}],
            "simulate": False,
        }))
        assert main(["sweep", str(spec), "--no-store", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "2 jobs -> 0 store hits, 2 executed" in out
        assert "85C/1.00V" in out and "25C/1.00V" in out

    def test_sweep_sharded_then_unsharded_resume(self, spec_file,
                                                 tmp_path, capsys):
        """The distributed acceptance path: a --shards 2 cold sweep
        merges every shard store into the main store, after which a
        plain sweep simulates nothing."""
        store = str(tmp_path / "farm")
        assert main(["sweep", spec_file, "--store", store,
                     "--shards", "2"]) == 0
        out = capsys.readouterr().out
        assert "4 jobs -> 0 store hits, 4 executed" in out
        assert "shards=2" in out
        assert "shard 1/2 merged: 2 record(s) merged" in out
        assert "shard 2/2 merged: 2 record(s) merged" in out
        assert "[farm.shard]" in out
        # the coordinator's shard artifacts live under the store
        shards = tmp_path / "farm" / "shards"
        assert (shards / "shard-00" / "shard.json").exists()
        assert (shards / "shard-01" / "results.jsonl").exists()

        assert main(["sweep", spec_file, "--store", store]) == 0
        out = capsys.readouterr().out
        assert "4 jobs -> 4 store hits, 0 executed" in out
        assert "hit rate 100%" in out

    def test_sweep_shards_require_a_store(self, spec_file, capsys):
        assert main(["sweep", spec_file, "--no-store",
                     "--shards", "2"]) == 1
        assert "--shards" in capsys.readouterr().err

    def test_worker_runs_a_shard_spec(self, spec_file, tmp_path, capsys):
        """The remote-machine flow: plan locally, run the shard via
        `eric worker`, merge the shipped-back store."""
        import json as json_module

        from repro.farm import (FarmCoordinator, JobMatrix, ResultStore)

        matrix = JobMatrix.from_spec(
            json_module.loads(open(spec_file).read()))
        coordinator = FarmCoordinator(
            store=ResultStore(tmp_path / "main"), shards=2,
            shard_root=tmp_path / "shards")
        [first, _] = coordinator.write_shard_specs(
            coordinator.plan(matrix))

        remote = str(tmp_path / "remote")
        assert main(["worker", str(first), "--store", remote,
                     "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "shard 1/2" in out
        assert "2 executed" in out
        stats = ResultStore(tmp_path / "main").merge_from(remote)
        assert stats.added == 2

    def test_worker_rejects_a_stale_shard_spec(self, tmp_path, capsys):
        (tmp_path / "shard.json").write_text(json.dumps({
            "kind": "eric-shard", "key_schema": -1, "index": 0,
            "count": 1, "start": "0", "stop": "f", "jobs": []}))
        assert main(["worker", str(tmp_path / "shard.json"),
                     "--store", str(tmp_path / "store")]) == 1
        assert "KEY_SCHEMA" in capsys.readouterr().err

    def test_sweep_rejects_bad_spec(self, tmp_path, capsys):
        spec = tmp_path / "bad.json"
        spec.write_text(json.dumps({"workloads": ["no-such-workload"]}))
        assert main(["sweep", str(spec)]) == 1
        assert "error" in capsys.readouterr().err

    def test_sweep_rejects_malformed_json(self, tmp_path, capsys):
        spec = tmp_path / "notjson.txt"
        spec.write_text("{this is not json")
        assert main(["sweep", str(spec)]) == 1
        err = capsys.readouterr().err
        assert "eric: error:" in err
        assert "not valid JSON" in err


class TestOtherCommands:
    def test_describe_default(self, capsys):
        assert main(["describe"]) == 0
        assert "mode:" in capsys.readouterr().out.replace(" ", "")

    def test_describe_config(self, tmp_path, capsys):
        config = tmp_path / "cfg.json"
        config.write_text(json.dumps({"mode": "field"}))
        assert main(["describe", "--config", str(config)]) == 0
        assert "field" in capsys.readouterr().out

    def test_disasm(self, source_file, capsys):
        assert main(["disasm", source_file]) == 0
        captured = capsys.readouterr().out
        assert "jal" in captured or "addi" in captured

    def test_bad_config_reports_error(self, source_file, tmp_path, capsys):
        config = tmp_path / "cfg.json"
        config.write_text(json.dumps({"mode": "nonsense"}))
        assert main(["describe", "--config", str(config)]) == 1
        assert "error" in capsys.readouterr().err

    def test_missing_file_reports_error(self, capsys):
        assert main(["run", "/nonexistent.eric"]) == 1
        assert "No such file" in capsys.readouterr().err
