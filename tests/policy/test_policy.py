"""ProtectionPolicy: JSON dialect, validation, compile-down to maps."""

import pytest

from repro.cc.driver import compile_source
from repro.core.config import EncryptionMode, EricConfig
from repro.errors import ConfigError
from repro.policy import (EncryptRule, ObfuscateRule, ProtectionPolicy,
                          Region, build_policy_map, function_bounds,
                          policy_from_dict, policy_to_dict,
                          region_slot_indices)

TWO_FUNCTIONS = """
int helper(int x) { return x * 3 + 1; }
int main() { print_int(helper(13)); print_char(10); return 0; }
"""


@pytest.fixture(scope="module")
def program():
    return compile_source(TWO_FUNCTIONS, name="two").program


class TestDialect:
    def test_round_trip_preserves_everything(self):
        policy = ProtectionPolicy(
            name="locked", mode="field", cipher="xor-sha256ctr",
            encrypt=(EncryptRule(Region("program"), 0.5),
                     EncryptRule(Region("function", name="helper"), 1.0)),
            obfuscate=(ObfuscateRule(Region("function", name="main"),
                                     density=0.2, junk=4),),
            sign_data=True, overlap_hde=False, seed=99).validate()
        revived = policy_from_dict(policy_to_dict(policy))
        assert revived == policy
        # and the dict itself is JSON-portable
        import json
        assert policy_from_dict(
            json.loads(json.dumps(policy_to_dict(policy)))) == policy

    def test_minimal_dict_gets_defaults(self):
        policy = policy_from_dict({"name": "p"})
        assert policy.mode == "partial"
        assert policy.encrypt == () and policy.obfuscate == ()
        assert policy.cipher is None and policy.overlap_hde is None

    def test_unknown_keys_fail_loudly(self):
        with pytest.raises(ConfigError, match="unknown policy keys"):
            policy_from_dict({"encrpyt": []})
        with pytest.raises(ConfigError, match="unknown encrypt rule keys"):
            policy_from_dict({"encrypt": [{"fractoin": 0.5}]})
        with pytest.raises(ConfigError, match="unknown region keys"):
            policy_from_dict(
                {"encrypt": [{"region": {"kind": "program",
                                         "nmae": "x"}}]})

    def test_validation_rejects_bad_shapes(self):
        with pytest.raises(ConfigError, match="region kind"):
            Region(kind="module").validate()
        with pytest.raises(ConfigError, match="symbol name"):
            Region(kind="function").validate()
        with pytest.raises(ConfigError, match="empty or inverted"):
            Region(kind="window", start=0x200, stop=0x100).validate()
        with pytest.raises(ConfigError, match="takes no name"):
            Region(kind="window", name="f", start=0, stop=4).validate()
        with pytest.raises(ConfigError, match=r"fraction must be in"):
            EncryptRule(fraction=1.5).validate()
        with pytest.raises(ConfigError, match="density"):
            ObfuscateRule(density=-0.1).validate()
        with pytest.raises(ConfigError, match="junk"):
            ObfuscateRule(junk=0).validate()
        with pytest.raises(ConfigError, match="program/function"):
            ObfuscateRule(Region("window", start=0, stop=8)).validate()
        with pytest.raises(ConfigError, match="policy mode"):
            ProtectionPolicy(mode="full").validate()
        with pytest.raises(ConfigError, match="unknown cipher"):
            ProtectionPolicy(cipher="rot13").validate()
        with pytest.raises(ConfigError, match="seed"):
            ProtectionPolicy(seed=-1).validate()

    def test_describe_reads_like_a_sentence(self):
        policy = policy_from_dict({
            "name": "demo",
            "encrypt": [{"region": {"kind": "function", "name": "main"},
                         "fraction": 0.25}],
            "obfuscate": [{"region": {"kind": "program"}}]})
        text = policy.describe()
        assert "demo" in text and "fn main" in text and "@0.25" in text


class TestEffectiveConfig:
    def test_encrypt_rules_force_the_policy_mode(self):
        base = EricConfig()
        policy = policy_from_dict(
            {"mode": "field", "encrypt": [{"region": {}}]})
        assert policy.effective_config(base).mode is EncryptionMode.FIELD

    def test_without_encrypt_rules_base_mode_stands(self):
        base = EricConfig()
        policy = policy_from_dict({"mode": "field"})
        assert policy.effective_config(base).mode is base.mode

    def test_tri_state_overrides(self):
        base = EricConfig()
        keep = policy_from_dict({})
        assert keep.effective_config(base).sign_data == base.sign_data
        flip = policy_from_dict({"sign_data": not base.sign_data,
                                 "cipher": "xor-sha256ctr"})
        effective = flip.effective_config(base)
        assert effective.sign_data == (not base.sign_data)
        assert effective.cipher == "xor-sha256ctr"


class TestRegionResolution:
    def test_function_bounds_partition_the_text(self, program):
        helper = function_bounds(program, "helper")
        main = function_bounds(program, "main")
        assert helper[0] < helper[1] and main[0] < main[1]
        # functions never overlap; each starts where its symbol points
        assert helper[1] <= main[0] or main[1] <= helper[0]
        assert helper[0] == program.symbols["helper"]

    def test_unknown_function_names_the_candidates(self, program):
        with pytest.raises(ConfigError, match="unknown function 'nope'"):
            function_bounds(program, "nope")

    def test_program_region_covers_every_slot(self, program):
        indices = region_slot_indices(program, Region("program"),
                                      EncryptionMode.PARTIAL)
        assert indices == list(range(program.instruction_count))

    def test_function_regions_partition_program_slots(self, program):
        total = set()
        symbols = [s for s in program.symbols
                   if not s.startswith(".")
                   and program.text_base <= program.symbols[s]
                   < program.text_base + len(program.text)]
        for name in symbols:
            slots = region_slot_indices(
                program, Region("function", name=name),
                EncryptionMode.PARTIAL)
            assert not total & set(slots)
            total |= set(slots)
        assert total == set(range(program.instruction_count))

    def test_window_region_selects_by_address(self, program):
        base = program.text_base
        indices = region_slot_indices(
            program, Region("window", start=base, stop=base + 16),
            EncryptionMode.PARTIAL)
        assert indices and all(program.layout[i].offset < 16
                               for i in indices)


class TestBuildPolicyMap:
    def test_fraction_one_program_rule_is_the_full_map(self, program):
        policy = policy_from_dict(
            {"encrypt": [{"region": {}, "fraction": 1.0}]})
        enc_map = build_policy_map(program, policy,
                                   policy.effective_config(EricConfig()))
        assert enc_map.encrypted_count == program.instruction_count

    def test_function_rule_stays_inside_its_range(self, program):
        policy = policy_from_dict(
            {"encrypt": [{"region": {"kind": "function",
                                     "name": "helper"}}]})
        enc_map = build_policy_map(program, policy,
                                   policy.effective_config(EricConfig()))
        inside = set(region_slot_indices(
            program, Region("function", name="helper"),
            EncryptionMode.PARTIAL))
        chosen = {i for i in range(enc_map.count) if enc_map[i]}
        assert chosen == inside

    def test_rules_union_monotonically(self, program):
        one = policy_from_dict(
            {"encrypt": [{"region": {}, "fraction": 0.3}]})
        two = policy_from_dict(
            {"encrypt": [{"region": {}, "fraction": 0.3},
                         {"region": {"kind": "function",
                                     "name": "helper"}}]})
        config = one.effective_config(EricConfig())
        base = build_policy_map(program, one, config)
        more = build_policy_map(program, two, config)
        assert more.encrypted_count >= base.encrypted_count
        for i in range(base.count):
            if base[i]:
                assert more[i]  # adding a rule never un-encrypts

    def test_field_mode_keeps_only_four_byte_slots(self):
        program = compile_source(TWO_FUNCTIONS, name="two",
                                 compress=True).program
        sizes = {slot.size for slot in program.layout}
        assert 2 in sizes  # compression produced some RVC slots
        policy = policy_from_dict(
            {"mode": "field", "encrypt": [{"region": {}}]})
        enc_map = build_policy_map(program, policy,
                                   policy.effective_config(
                                       EricConfig(compress=True)))
        for i, slot in enumerate(program.layout):
            if slot.size != 4:
                assert not enc_map[i]

    def test_same_seed_same_map_different_seed_differs(self, program):
        def build(seed):
            policy = policy_from_dict(
                {"seed": seed,
                 "encrypt": [{"region": {}, "fraction": 0.5}]})
            return build_policy_map(
                program, policy, policy.effective_config(EricConfig()))

        assert build(7).bits == build(7).bits
        assert build(7).bits != build(8).bits

    def test_name_never_changes_the_map(self, program):
        a = policy_from_dict(
            {"name": "a", "encrypt": [{"region": {}, "fraction": 0.5}]})
        b = policy_from_dict(
            {"name": "b", "encrypt": [{"region": {}, "fraction": 0.5}]})
        config = a.effective_config(EricConfig())
        assert build_policy_map(program, a, config).bits \
            == build_policy_map(program, b, config).bits
