"""Opaque-predicate pass: architectural equivalence and determinism.

The acceptance gate for the obfuscation pass mirrors the decode-once
refactor's: for *every* registry workload, the obfuscated program must
produce the same console bytes and exit code as the unobfuscated one
(and as the workload's pure-Python oracle), under both the fast
superblock interpreter and the reference loop — while retiring strictly
more instructions (each guard branch really executes).
"""

import pytest

from repro.asm.assembler import assemble
from repro.cc.driver import compile_source
from repro.policy import insert_opaque_predicates, policy_from_dict
from repro.policy.opaque import LABEL_PREFIX, MARK
from repro.soc.soc import RocketLikeSoC
from repro.workloads import all_workloads

WORKLOAD_NAMES = sorted(all_workloads())

OBFUSCATE_ALL = {
    "name": "opq",
    "obfuscate": [{"region": {"kind": "program"},
                   "density": 0.1, "junk": 3}],
}


@pytest.fixture(scope="module")
def compiled():
    return {name: compile_source(wl.source, name=name)
            for name, wl in all_workloads().items()}


def obfuscated_program(result, policy_dict=OBFUSCATE_ALL):
    policy = policy_from_dict(policy_dict)
    rewritten = insert_opaque_predicates(result.asm_text, policy)
    return rewritten, assemble(rewritten.asm_text, name=result.name)


class TestLockstepEquivalence:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_obfuscation_preserves_architectural_results(self, compiled,
                                                         name):
        result = compiled[name]
        rewritten, program = obfuscated_program(result)
        assert rewritten.guards > 0
        baseline = RocketLikeSoC().run(result.program)
        fast = RocketLikeSoC().run(program)
        ref = RocketLikeSoC(run_mode="reference").run(program)
        # fast and reference agree on every observable
        assert fast.counters.snapshot() == ref.counters.snapshot()
        assert fast.counters.mix == ref.counters.mix
        assert fast.console == ref.console
        assert fast.exit_code == ref.exit_code
        # the program still does its job (oracle + baseline identity)
        assert fast.stdout == all_workloads()[name].expected_stdout
        assert fast.console == baseline.console
        assert fast.exit_code == baseline.exit_code
        # and honestly pays for it: guards retire (once per dynamic
        # execution of their site — loops multiply the static count)
        extra = fast.counters.instret - baseline.counters.instret
        assert extra > 0
        # the only new dynamic instructions are the guard branches,
        # and every single one is taken (the predicates are opaque to
        # an attacker, not to the machine)
        guard_mnemonics = {"beq", "bge", "bgeu"}
        for mnemonic in set(fast.counters.mix) | set(baseline.counters.mix):
            delta = fast.counters.mix.get(mnemonic, 0) \
                - baseline.counters.mix.get(mnemonic, 0)
            if mnemonic in guard_mnemonics:
                assert delta >= 0
            else:
                assert delta == 0, f"junk executed: {mnemonic}"
        assert fast.counters.branches \
            == baseline.counters.branches + extra
        assert fast.counters.branches_taken \
            == baseline.counters.branches_taken + extra

    def test_junk_never_executes(self, compiled):
        """Fattening the junk blocks changes the static image only —
        the dynamic instruction count is exactly the thin variant's."""
        result = compiled["crc32"]
        fat = dict(OBFUSCATE_ALL)
        fat["obfuscate"] = [{"region": {"kind": "program"},
                             "density": 0.1, "junk": 8}]
        thin_rewritten, thin = obfuscated_program(result)
        fat_rewritten, fat_program = obfuscated_program(result, fat)
        assert fat_rewritten.junk_instructions == fat_rewritten.guards * 8
        assert fat_rewritten.guards == thin_rewritten.guards
        thin_run = RocketLikeSoC().run(thin)
        fat_run = RocketLikeSoC().run(fat_program)
        assert fat_run.counters.instret == thin_run.counters.instret
        assert fat_run.console == thin_run.console
        assert len(fat_program.text) > len(thin.text)


class TestRewriteMechanics:
    def test_deterministic_bytes(self, compiled):
        result = compiled["bitcount"]
        policy = policy_from_dict(OBFUSCATE_ALL)
        a = insert_opaque_predicates(result.asm_text, policy)
        b = insert_opaque_predicates(result.asm_text, policy)
        assert a.asm_text == b.asm_text
        assert (a.guards, a.junk_instructions) \
            == (b.guards, b.junk_instructions)

    def test_seed_changes_the_rewrite(self, compiled):
        result = compiled["bitcount"]
        seeded = dict(OBFUSCATE_ALL)
        seeded["seed"] = 12345
        a = insert_opaque_predicates(result.asm_text,
                                     policy_from_dict(OBFUSCATE_ALL))
        b = insert_opaque_predicates(result.asm_text,
                                     policy_from_dict(seeded))
        assert a.asm_text != b.asm_text

    def test_inserted_lines_carry_the_marker(self, compiled):
        result = compiled["qsort"]
        rewritten, _ = obfuscated_program(result)
        inserted = [line for line in rewritten.asm_text.splitlines()
                    if line.endswith(MARK)]
        labels = [line for line in inserted
                  if line.startswith(LABEL_PREFIX)]
        # one label per guard; guards + junk + labels = all insertions
        assert len(labels) == rewritten.guards
        assert len(inserted) \
            == rewritten.guards * 2 + rewritten.junk_instructions
        # stripping every marked line restores the original text
        kept = [line for line in rewritten.asm_text.splitlines()
                if not line.endswith(MARK)]
        assert "\n".join(kept) + "\n" == result.asm_text + (
            "" if result.asm_text.endswith("\n") else "\n")

    def test_function_region_scopes_the_insertions(self, compiled):
        """A rule targeting one function must leave the others'
        instruction streams byte-identical."""
        result = compiled["fft"]
        scoped = {
            "name": "scoped",
            "obfuscate": [{"region": {"kind": "function", "name": "main"},
                           "density": 0.3, "junk": 2}],
        }
        rewritten, program = obfuscated_program(result, scoped)
        assert rewritten.guards > 0
        original_lines = result.asm_text.splitlines()
        new_lines = rewritten.asm_text.splitlines()
        inserted = [line for line in new_lines if line.endswith(MARK)]
        assert len(new_lines) - len(original_lines) == len(inserted)
        # every insertion lands inside main's span: between the `main:`
        # label and the next column-0 function label
        spans = []
        current = None
        for index, line in enumerate(new_lines):
            if line and not line[0].isspace() and line.rstrip().endswith(":") \
                    and not line.startswith("."):
                current = line.split(":", 1)[0]
            if line.endswith(MARK):
                spans.append(current)
        # guard/junk lines appear under main (labels inserted by the
        # pass itself start with .L$opq and don't change the owner)
        assert set(spans) <= {"main"}
        run = RocketLikeSoC().run(program)
        assert run.stdout == all_workloads()["fft"].expected_stdout

    def test_no_rules_is_identity(self, compiled):
        result = compiled["sha"]
        policy = policy_from_dict({"name": "noop"})
        rewritten = insert_opaque_predicates(result.asm_text, policy)
        assert rewritten.asm_text == result.asm_text
        assert rewritten.inserted_instructions == 0

    def test_unknown_function_fails_loudly(self, compiled):
        from repro.errors import ConfigError
        policy = policy_from_dict({
            "obfuscate": [{"region": {"kind": "function",
                                      "name": "ghost"}}]})
        with pytest.raises(ConfigError, match="unknown function 'ghost'"):
            insert_opaque_predicates(compiled["sha"].asm_text, policy)

    def test_compressed_assembly_survives(self, compiled):
        """The rewritten text must assemble under RVC compression too
        (policy packages may set compress=true)."""
        wl = all_workloads()["crc32"]
        result = compile_source(wl.source, name="crc32", compress=True)
        rewritten = insert_opaque_predicates(
            result.asm_text, policy_from_dict(OBFUSCATE_ALL))
        program = assemble(rewritten.asm_text, name="crc32",
                           compress=True)
        run = RocketLikeSoC().run(program)
        assert run.stdout == wl.expected_stdout
