"""Functional CPU semantics via small assembly programs."""

import pytest

from repro.asm.assembler import assemble
from repro.errors import (
    ExecutionLimitExceeded,
    IllegalInstruction,
    SimulatorError,
)
from repro.soc.soc import RocketLikeSoC


def run_asm(body, **kwargs):
    """Assemble `body` (with an exit epilogue available as `exit_a0`) and run."""
    source = f"""
    _start:
    {body}
    exit_a0:
      li a7, 93
      ecall
    """
    soc = RocketLikeSoC()
    return soc.run(assemble(source), **kwargs)


class TestArithmetic:
    def test_addi_add_sub(self):
        result = run_asm(
            """
            li a0, 10
            addi a0, a0, 5
            li t0, 3
            sub a0, a0, t0
            """
        )
        assert result.exit_code == 12

    def test_64bit_wraparound(self):
        result = run_asm(
            """
            li t0, -1
            addi t0, t0, 1
            seqz a0, t0
            """
        )
        assert result.exit_code == 1

    def test_w_arithmetic_sign_extends(self):
        # 0x7FFFFFFF + 1 overflows 32-bit: addw gives negative, add doesn't.
        result = run_asm(
            """
            li t0, 0x7FFFFFFF
            addiw t1, t0, 1
            sltz a0, t1
            """
        )
        assert result.exit_code == 1

    def test_slt_family(self):
        result = run_asm(
            """
            li t0, -5
            li t1, 3
            slt t2, t0, t1        # signed: -5 < 3 -> 1
            sltu t3, t0, t1       # unsigned: huge < 3 -> 0
            slli t2, t2, 1
            or a0, t2, t3
            """
        )
        assert result.exit_code == 2

    def test_logic_ops(self):
        result = run_asm(
            """
            li t0, 0b1100
            li t1, 0b1010
            and t2, t0, t1
            or t3, t0, t1
            xor t4, t0, t1
            add a0, t2, t3
            add a0, a0, t4
            """
        )
        assert result.exit_code == (0b1000 + 0b1110 + 0b0110)

    def test_shifts(self):
        result = run_asm(
            """
            li t0, 1
            slli t0, t0, 10       # 1024
            srli t1, t0, 3        # 128
            li t2, -16
            srai t2, t2, 2        # -4
            add a0, t1, t2        # 124
            """
        )
        assert result.exit_code == 124

    def test_sraw_vs_srlw(self):
        result = run_asm(
            """
            li t0, 0x80000000
            sraiw t1, t0, 31      # -1
            srliw t2, t0, 31      # 1
            add a0, t1, t2        # 0
            addi a0, a0, 7
            """
        )
        assert result.exit_code == 7


class TestMulDiv:
    def test_mul(self):
        assert run_asm("li t0, 7\nli t1, 6\nmul a0, t0, t1\n").exit_code == 42

    def test_mulh_signed(self):
        result = run_asm(
            """
            li t0, -1
            li t1, 2
            mulh a0, t0, t1       # high word of -2 is -1
            addi a0, a0, 2        # 1
            """
        )
        assert result.exit_code == 1

    def test_div_truncates_toward_zero(self):
        result = run_asm(
            """
            li t0, -7
            li t1, 2
            div t2, t0, t1        # -3 (C-style), not -4 (floor)
            addi a0, t2, 10
            """
        )
        assert result.exit_code == 7

    def test_rem_sign_follows_dividend(self):
        result = run_asm(
            """
            li t0, -7
            li t1, 2
            rem t2, t0, t1        # -1
            addi a0, t2, 4
            """
        )
        assert result.exit_code == 3

    def test_div_by_zero_is_all_ones(self):
        result = run_asm(
            """
            li t0, 5
            div t1, t0, zero
            li t2, -1
            sub t3, t1, t2
            seqz a0, t3
            """
        )
        assert result.exit_code == 1

    def test_rem_by_zero_is_dividend(self):
        result = run_asm(
            """
            li t0, 5
            rem a0, t0, zero
            """
        )
        assert result.exit_code == 5

    def test_divw(self):
        assert run_asm(
            "li t0, 100\nli t1, 7\ndivw a0, t0, t1\n").exit_code == 14

    def test_remu(self):
        assert run_asm(
            "li t0, 100\nli t1, 7\nremu a0, t0, t1\n").exit_code == 2


class TestMemory:
    def test_store_load_roundtrip(self):
        result = run_asm(
            """
            li t0, 0xAB
            addi sp, sp, -16
            sd t0, 0(sp)
            ld a0, 0(sp)
            addi sp, sp, 16
            """
        )
        assert result.exit_code == 0xAB

    def test_byte_halfword_word_access(self):
        result = run_asm(
            """
            addi sp, sp, -16
            li t0, 0x1234
            sh t0, 0(sp)
            lbu t1, 0(sp)         # 0x34
            lbu t2, 1(sp)         # 0x12
            add a0, t1, t2        # 0x46
            addi sp, sp, 16
            """
        )
        assert result.exit_code == 0x46

    def test_signed_byte_load(self):
        result = run_asm(
            """
            addi sp, sp, -16
            li t0, 0xFF
            sb t0, 0(sp)
            lb t1, 0(sp)          # -1
            lbu t2, 0(sp)         # 255
            add t3, t1, t2        # 254
            addi a0, t3, -200     # 54
            addi sp, sp, 16
            """
        )
        assert result.exit_code == 54

    def test_data_section_access(self):
        source = """
        _start:
          la t0, values
          ld a0, 8(t0)
          li a7, 93
          ecall
        .data
        values: .dword 11, 22, 33
        """
        soc = RocketLikeSoC()
        assert soc.run(assemble(source)).exit_code == 22

    def test_memory_fault_on_wild_store(self):
        from repro.errors import MemoryFault
        with pytest.raises(MemoryFault):
            run_asm("li t0, 0x7FFFFFFF\nsd zero, 0(t0)\n")


class TestControlFlow:
    def test_loop_sum(self):
        # sum 1..10 = 55
        result = run_asm(
            """
            li t0, 0
            li t1, 1
            li t2, 11
            loop:
              add t0, t0, t1
              addi t1, t1, 1
              bne t1, t2, loop
            mv a0, t0
            """
        )
        assert result.exit_code == 55

    def test_function_call_and_return(self):
        result = run_asm(
            """
            li a0, 5
            call double
            call double
            j exit_a0
            double:
              add a0, a0, a0
              ret
            """
        )
        assert result.exit_code == 20

    def test_branch_variants(self):
        result = run_asm(
            """
            li a0, 0
            li t0, -1
            li t1, 1
            bltu t1, t0, u_ok      # unsigned: 1 < huge
            j exit_a0
            u_ok:
              blt t0, t1, s_ok     # signed: -1 < 1
              j exit_a0
            s_ok:
              li a0, 9
            """
        )
        assert result.exit_code == 9

    def test_jalr_link(self):
        result = run_asm(
            """
            la t0, target
            jalr ra, t0, 0
            after:
              j exit_a0
            target:
              li a0, 33
              ret
            """
        )
        assert result.exit_code == 33


class TestSyscallsAndTraps:
    def test_console_putchar(self):
        result = run_asm(
            """
            li a0, 'H'
            li a7, 1
            ecall
            li a0, 'i'
            li a7, 1
            ecall
            li a0, 0
            """
        )
        assert result.stdout == "Hi"
        assert result.exit_code == 0

    def test_console_write_buffer(self):
        source = """
        _start:
          la a1, msg
          li a2, 5
          li a7, 64
          ecall
          li a0, 0
          li a7, 93
          ecall
        .data
        msg: .asciz "hello"
        """
        soc = RocketLikeSoC()
        assert soc.run(assemble(source)).stdout == "hello"

    def test_unknown_syscall(self):
        with pytest.raises(SimulatorError, match="unknown syscall"):
            run_asm("li a7, 999\necall\nli a0, 0\n")

    def test_ebreak_raises(self):
        with pytest.raises(SimulatorError, match="ebreak"):
            run_asm("ebreak\n")

    def test_instruction_budget(self):
        with pytest.raises(ExecutionLimitExceeded):
            run_asm("spin: j spin\n", max_instructions=1000)

    def test_illegal_instruction_on_data_execution(self):
        source = """
        _start:
          la t0, junk
          jr t0
        .data
        junk: .word 0xFFFFFFFF
        """
        soc = RocketLikeSoC()
        with pytest.raises(IllegalInstruction):
            soc.run(assemble(source))


class TestCompressedExecution:
    SOURCE = """
    _start:
      li a0, 0
      li t0, 10
      loop:
        addi a0, a0, 3
        addi t0, t0, -1
        bnez t0, loop
      li a7, 93
      ecall
    """

    def test_same_result_compressed(self):
        soc = RocketLikeSoC()
        plain = soc.run(assemble(self.SOURCE, compress=False))
        compressed = RocketLikeSoC().run(assemble(self.SOURCE, compress=True))
        assert plain.exit_code == compressed.exit_code == 30
        assert plain.counters.instret == compressed.counters.instret

    def test_compressed_text_is_smaller(self):
        plain = assemble(self.SOURCE, compress=False)
        compressed = assemble(self.SOURCE, compress=True)
        assert len(compressed.text) < len(plain.text)
