"""Unit tests for the superblock predecoder and the fast-path plumbing:
digest caching, budget handoff, exception forensics, memory fast paths.

The workload-scale fast-vs-reference lockstep lives in
``test_interp_equivalence.py``; these tests pin the machinery itself.
"""

import pytest

from repro.asm.assembler import assemble
from repro.errors import (
    ConfigError,
    ExecutionLimitExceeded,
    IllegalInstruction,
    MemoryFault,
)
from repro.soc.cache import CacheConfig
from repro.soc.memory import Memory, fix_load, fix_store
from repro.soc.predecode import predecoded_for
from repro.soc.soc import RocketLikeSoC


LOOP_SOURCE = """
_start:
  li t0, 0
  li t1, 40
  li a0, 0
loop:
  addi a0, a0, 3
  addi t0, t0, 1
  bne t0, t1, loop
  andi a0, a0, 0xFF
  li a7, 93
  ecall
"""


def both_socs():
    return RocketLikeSoC(), RocketLikeSoC(run_mode="reference")


class TestRunModeSelection:
    def test_unknown_run_mode_rejected(self):
        with pytest.raises(ConfigError):
            RocketLikeSoC(run_mode="turbo")

    def test_modes_agree_on_a_loop(self):
        program = assemble(LOOP_SOURCE)
        fast, ref = both_socs()
        a = fast.run(program)
        b = ref.run(program)
        assert a.exit_code == b.exit_code == 120
        assert a.counters.snapshot() == b.counters.snapshot()
        assert a.counters.mix == b.counters.mix


class TestMemoryFastPath:
    def test_raw_identity_stable_across_runs(self):
        # regression: run() used to reallocate a fresh 1 MiB buffer per
        # job via raw[:] = bytes(len(raw))
        program = assemble(LOOP_SOURCE)
        soc = RocketLikeSoC()
        raw_before = soc.memory.raw
        soc.run(program)
        soc.run(program)
        assert soc.memory.raw is raw_before

    def test_clear_zeroes_in_place(self):
        mem = Memory(size=256)
        mem.raw[10:14] = b"\xde\xad\xbe\xef"
        ident = mem.raw
        mem.clear()
        assert mem.raw is ident
        assert bytes(mem.raw) == bytes(256)

    def test_fixups_match_checked_api_messages(self):
        # the generated code's recovery helpers must raise byte-identical
        # MemoryFault messages to Memory.check_range's
        mem = Memory(size=256)
        with pytest.raises(MemoryFault) as checked:
            mem.load(300, 8)
        with pytest.raises(MemoryFault) as fast:
            fix_load(mem.raw, 300, 8, 1)
        assert str(fast.value) == str(checked.value)
        with pytest.raises(MemoryFault) as checked:
            mem.store(255, 2, 7)
        with pytest.raises(MemoryFault) as fast:
            fix_store(mem.raw, 255, 2, 7)
        assert str(fast.value) == str(checked.value)

    def test_fixup_wraparound_load(self):
        mem = Memory(size=256)
        mem.raw[4] = 0x5A
        # address congruent to 4 modulo 2^64: the reference masks before
        # the bounds check, so this is a legal access
        assert fix_load(mem.raw, (1 << 64) + 4, 1, 0) == 0x5A


class TestPredecodeCache:
    def test_same_digest_same_object(self):
        cfg = CacheConfig()
        a = predecoded_for(assemble(LOOP_SOURCE), cfg, cfg)
        b = predecoded_for(assemble(LOOP_SOURCE), cfg, cfg)
        assert a is b

    def test_different_text_different_object(self):
        cfg = CacheConfig()
        a = predecoded_for(assemble(LOOP_SOURCE), cfg, cfg)
        other = LOOP_SOURCE.replace("li t1, 40", "li t1, 41")
        b = predecoded_for(assemble(other), cfg, cfg)
        assert a is not b

    def test_blocks_compile_lazily_and_memoize(self):
        cfg = CacheConfig()
        program = assemble(LOOP_SOURCE)
        pre = predecoded_for(program, cfg, cfg)
        soc = RocketLikeSoC()
        soc.run(program)
        assert pre.blocks, "dispatch should have populated the block map"
        blk = pre.blocks[program.entry]
        soc.run(program)
        assert pre.blocks[program.entry] is blk


class TestExceptionForensics:
    def test_limit_carries_partial_counters_both_modes(self):
        program = assemble(LOOP_SOURCE)
        snapshots = []
        for soc in both_socs():
            with pytest.raises(ExecutionLimitExceeded) as info:
                soc.run(program, max_instructions=50)
            exc = info.value
            assert exc.counters is not None
            assert exc.counters.instret == 50
            assert isinstance(exc.pc, int)
            snapshots.append((str(exc), exc.pc,
                              exc.counters.snapshot(), exc.counters.mix))
        assert snapshots[0] == snapshots[1]

    def test_illegal_carries_partial_counters_both_modes(self):
        # a few real instructions, then undecodable bytes
        program = assemble("_start:\n  li a0, 7\n  li a1, 9\n")
        snapshots = []
        for soc in both_socs():
            with pytest.raises(IllegalInstruction) as info:
                soc.run(program)
            exc = info.value
            assert exc.counters is not None
            assert exc.counters.instret > 0
            snapshots.append((str(exc), exc.pc, exc.word,
                              exc.counters.snapshot(), exc.counters.mix))
        assert snapshots[0] == snapshots[1]

    def test_farm_error_line_surfaces_partial_counters(self):
        from repro.farm.executor import _format_error
        program = assemble(LOOP_SOURCE)
        soc = RocketLikeSoC()
        try:
            soc.run(program, max_instructions=50)
        except ExecutionLimitExceeded as exc:
            line = _format_error(exc)
        assert "partial:" in line
        assert "instret=50" in line
        assert "pc=0x" in line


class TestBudgetHandoff:
    def test_truncation_sweep_matches_reference(self):
        # every budget from 1 upward crosses the fast loop's trace
        # boundaries somewhere; each handoff must be invisible
        program = assemble(LOOP_SOURCE)
        fast, ref = both_socs()
        for limit in range(1, 135):
            outcomes = []
            for soc in (fast, ref):
                try:
                    result = soc.run(program, max_instructions=limit)
                    outcomes.append(("exit", result.exit_code,
                                     result.counters.snapshot(),
                                     result.counters.mix))
                except ExecutionLimitExceeded as exc:
                    outcomes.append(("limit", exc.pc,
                                     exc.counters.snapshot(),
                                     exc.counters.mix))
            assert outcomes[0] == outcomes[1], f"diverged at limit={limit}"


class TestGluedReturns:
    def test_clobbered_ra_falls_back_to_real_target(self):
        # the call-site gluing predicts ra; overwriting it inside the
        # callee must take the guard exit and jump where ra really points
        source = """
_start:
  jal ra, func
after:
  li a7, 93
  ecall
func:
  la t0, elsewhere
  mv ra, t0
  ret
elsewhere:
  li a0, 42
  li a7, 93
  ecall
"""
        program = assemble(source)
        fast, ref = both_socs()
        a = fast.run(program)
        b = ref.run(program)
        assert a.exit_code == b.exit_code == 42
        assert a.counters.snapshot() == b.counters.snapshot()
        assert a.counters.mix == b.counters.mix
