"""Lockstep differential harness: fast superblock interpreter vs the
reference one-instruction-at-a-time loop, over every registry workload.

This is the acceptance gate for the decode-once refactor: *every*
observable — ``PerfCounters.snapshot()``, the per-mnemonic mix, console
bytes, exit code — must be identical, including on the failure paths
(ciphertext fetch, instruction-budget truncation) and at the farm-record
level (``FarmRecord.stable_dict()``).
"""

import pytest

from repro.cc.driver import compile_source
from repro.errors import (
    ExecutionLimitExceeded,
    IllegalInstruction,
    MemoryFault,
)
from repro.soc.soc import RocketLikeSoC
from repro.workloads import all_workloads

WORKLOAD_NAMES = sorted(all_workloads())


@pytest.fixture(scope="module")
def programs():
    return {name: compile_source(wl.source, name=name).program
            for name, wl in all_workloads().items()}


def observables(result):
    return (result.exit_code, result.console,
            result.counters.snapshot(), result.counters.mix)


class TestWorkloadLockstep:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_identical_observables(self, programs, name):
        program = programs[name]
        fast = RocketLikeSoC().run(program)
        ref = RocketLikeSoC(run_mode="reference").run(program)
        assert fast.counters.snapshot() == ref.counters.snapshot()
        assert fast.counters.mix == ref.counters.mix
        assert fast.console == ref.console
        assert fast.exit_code == ref.exit_code

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_oracle_still_satisfied(self, programs, name):
        # bit-identity to the reference is necessary; also re-pin both
        # against the workload's pure-Python oracle
        result = RocketLikeSoC().run(programs[name])
        assert result.stdout == all_workloads()[name].expected_stdout


class TestFailurePathLockstep:
    def test_encrypted_text_illegal_instruction(self, programs):
        # running ciphertext without decryption is the paper's core
        # failure mode; both interpreters must fault identically.  Seed 21
        # executes a few accidentally-valid instructions before hitting an
        # undecodable word; the other seeds cover instant-illegal and
        # wild-access flavors of garbage text.
        import dataclasses
        import random
        program = programs["crc32"]
        kinds = set()
        for seed in (3, 14, 21, 35):
            rng = random.Random(seed)
            scrambled = bytes(rng.randrange(256)
                              for _ in range(len(program.text)))
            garbled = dataclasses.replace(program, text=scrambled)
            outcomes = []
            for soc in (RocketLikeSoC(),
                        RocketLikeSoC(run_mode="reference")):
                try:
                    result = soc.run(garbled, max_instructions=100_000)
                    outcomes.append(("exit", observables(result)))
                except IllegalInstruction as exc:
                    outcomes.append(("illegal", str(exc), exc.pc, exc.word,
                                     exc.counters.snapshot(),
                                     exc.counters.mix))
                except ExecutionLimitExceeded as exc:
                    outcomes.append(("limit", exc.pc,
                                     exc.counters.snapshot(),
                                     exc.counters.mix))
                except MemoryFault as exc:
                    outcomes.append(("fault", str(exc)))
            assert outcomes[0] == outcomes[1], f"diverged at seed={seed}"
            kinds.add(outcomes[0][0])
        assert "illegal" in kinds

    def test_max_instructions_truncation(self, programs):
        program = programs["basicmath"]
        for limit in (1, 997, 20_000):
            snaps = []
            for soc in (RocketLikeSoC(),
                        RocketLikeSoC(run_mode="reference")):
                with pytest.raises(ExecutionLimitExceeded) as info:
                    soc.run(program, max_instructions=limit)
                exc = info.value
                assert exc.counters.instret == limit
                snaps.append((str(exc), exc.pc, exc.counters.snapshot(),
                              exc.counters.mix))
            assert snaps[0] == snaps[1], f"diverged at limit={limit}"


class TestFarmRecordLockstep:
    def test_stable_dict_identical_across_interpreters(self):
        # whole-stack proof: one farm job (compile, encrypt, HDE run,
        # attacker metrics) executed under each interpreter must produce
        # byte-comparable stored records
        import repro.soc.soc as socmod
        from repro.farm.executor import execute_job
        from repro.farm.spec import JobSpec

        spec = JobSpec(workload="crc32")
        saved = socmod.DEFAULT_RUN_MODE
        try:
            socmod.DEFAULT_RUN_MODE = "fast"
            fast = execute_job(spec).stable_dict()
            socmod.DEFAULT_RUN_MODE = "reference"
            ref = execute_job(spec).stable_dict()
        finally:
            socmod.DEFAULT_RUN_MODE = saved
        assert fast == ref
