"""Timing model and cache behaviour."""

import pytest

from repro.asm.assembler import assemble
from repro.errors import ConfigError
from repro.soc.cache import Cache, CacheConfig
from repro.soc.pipeline import PipelineModel
from repro.soc.soc import RocketLikeSoC


def run(source, **soc_kwargs):
    soc = RocketLikeSoC(**soc_kwargs)
    return soc.run(assemble(source))


EXIT = "\nli a7, 93\necall\n"


class TestCacheModel:
    def test_cold_miss_then_hit(self):
        cache = Cache(CacheConfig())
        assert cache.access(0x1000) is False
        assert cache.access(0x1000) is True
        assert cache.access(0x1008) is True  # same 64B line
        assert cache.misses == 1
        assert cache.hits == 2

    def test_lru_eviction(self):
        # 4 ways: fill a set with 4 lines, touch line 0, add a 5th ->
        # line 1 (the LRU) must be evicted.
        config = CacheConfig(size_bytes=16 * 1024, ways=4, line_bytes=64)
        cache = Cache(config)
        set_stride = config.n_sets * config.line_bytes
        lines = [i * set_stride for i in range(5)]  # all map to set 0
        for line in lines[:4]:
            cache.access(line)
        assert cache.access(lines[0]) is True   # refresh LRU order
        cache.access(lines[4])                  # evicts lines[1]
        assert cache.access(lines[0]) is True
        assert cache.access(lines[1]) is False  # was evicted

    def test_flush(self):
        cache = Cache()
        cache.access(0)
        cache.flush()
        assert cache.access(0) is False

    def test_geometry_validation(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=1000)  # not a power of two
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=64, ways=4, line_bytes=64)

    def test_paper_geometry(self):
        config = CacheConfig()
        assert config.size_bytes == 16 * 1024
        assert config.ways == 4
        assert config.n_sets == 64

    def test_hit_rate(self):
        cache = Cache()
        cache.access(0)
        cache.access(0)
        assert cache.hit_rate == pytest.approx(0.5)


class TestTimingModel:
    def test_cycles_at_least_instructions(self):
        result = run("li a0, 0" + EXIT)
        assert result.counters.cycles >= result.counters.instret

    def test_div_much_slower_than_add(self):
        adds = run("li t0, 9\nli t1, 4\n" + "add t2, t0, t1\n" * 20 + EXIT)
        divs = run("li t0, 9\nli t1, 4\n" + "div t2, t0, t1\n" * 20 + EXIT)
        assert divs.counters.cycles > adds.counters.cycles + 20 * 20

    def test_taken_branch_costs_flush(self):
        taken = run(
            "li t0, 0\nli t1, 64\nloop: addi t0, t0, 1\nbne t0, t1, loop\n"
            "li a0, 0" + EXIT)
        assert taken.counters.branches_taken == 63
        assert taken.counters.flush_cycles >= 63 * 2

    def test_load_use_stall_counted(self):
        stalled = run(
            """
            addi sp, sp, -16
            sd zero, 0(sp)
            ld t0, 0(sp)
            addi t1, t0, 1     # consumes t0 right after the load
            li a0, 0
            """ + EXIT)
        assert stalled.counters.load_use_stalls >= 1

    def test_no_load_use_stall_with_gap(self):
        free = run(
            """
            addi sp, sp, -16
            sd zero, 0(sp)
            ld t0, 0(sp)
            addi t2, zero, 5   # unrelated instruction in between
            addi t1, t0, 1
            li a0, 0
            """ + EXIT)
        stalled = run(
            """
            addi sp, sp, -16
            sd zero, 0(sp)
            ld t0, 0(sp)
            addi t1, t0, 1
            addi t2, zero, 5
            li a0, 0
            """ + EXIT)
        assert stalled.counters.load_use_stalls \
            == free.counters.load_use_stalls + 1

    def test_custom_pipeline_model(self):
        slow_div = PipelineModel(div_latency=100)
        source = "li t0, 9\nli t1, 4\ndiv t2, t0, t1\nli a0, 0" + EXIT
        fast = run(source)
        slow = run(source, pipeline=slow_div)
        assert slow.counters.cycles > fast.counters.cycles + 50

    def test_icache_hits_dominate_in_loop(self):
        result = run(
            "li t0, 0\nli t1, 1000\nloop: addi t0, t0, 1\nbne t0, t1, loop\n"
            "li a0, 0" + EXIT)
        counters = result.counters
        assert counters.icache_hits > counters.icache_misses * 50

    def test_dcache_miss_on_strided_walk(self):
        # Touch 128 distinct lines: at least 128 cold misses.
        result = run(
            """
            li t0, 0
            li t1, 128
            li t2, 0x40000     # in-memory scratch area
            loop:
              sd t0, 0(t2)
              addi t2, t2, 64
              addi t0, t0, 1
              bne t0, t1, loop
            li a0, 0
            """ + EXIT)
        assert result.counters.dcache_misses >= 128

    def test_mix_histogram(self):
        result = run("li a0, 1\nli a1, 2\nadd a0, a0, a1" + EXIT)
        assert result.counters.mix.get("addi", 0) >= 2
        assert result.counters.mix.get("add", 0) == 1
        assert result.counters.mix.get("ecall", 0) == 1

    def test_wall_time_conversion(self):
        result = run("li a0, 0" + EXIT)
        at_25mhz = result.wall_time_at_clock(25.0)
        at_50mhz = result.wall_time_at_clock(50.0)
        assert at_25mhz == pytest.approx(2 * at_50mhz)
        assert at_25mhz > 0
