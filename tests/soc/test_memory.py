"""Memory unit: bounds, endianness, signed loads."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MemoryFault
from repro.soc.memory import Memory


class TestBounds:
    def test_size_positive(self):
        with pytest.raises(MemoryFault):
            Memory(0)

    def test_in_range_access(self):
        mem = Memory(64)
        mem.store(0, 8, 0x1122334455667788)
        assert mem.load(0, 8) == 0x1122334455667788

    @pytest.mark.parametrize("address,length", [
        (-1, 1), (64, 1), (60, 8), (2**40, 4),
    ])
    def test_out_of_range_rejected(self, address, length):
        mem = Memory(64)
        with pytest.raises(MemoryFault):
            mem.load(address, length)
        with pytest.raises(MemoryFault):
            mem.store(address, length, 0)


class TestEndianness:
    def test_little_endian_layout(self):
        mem = Memory(16)
        mem.store(0, 4, 0x11223344)
        assert mem.raw[0] == 0x44
        assert mem.raw[3] == 0x11

    def test_store_truncates_to_width(self):
        mem = Memory(16)
        mem.store(0, 1, 0x1FF)
        assert mem.load(0, 1) == 0xFF

    def test_bytes_roundtrip(self):
        mem = Memory(16)
        mem.store_bytes(4, b"\x01\x02\x03")
        assert mem.load_bytes(4, 3) == b"\x01\x02\x03"


class TestSignedLoads:
    @pytest.mark.parametrize("width,raw,expected", [
        (1, 0x7F, 127), (1, 0x80, -128), (1, 0xFF, -1),
        (2, 0x8000, -32768), (4, 0xFFFFFFFF, -1),
        (8, (1 << 63), -(1 << 63)),
    ])
    def test_sign_extension(self, width, raw, expected):
        mem = Memory(16)
        mem.store(0, width, raw)
        assert mem.load_signed(0, width) == expected

    @given(value=st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1))
    @settings(max_examples=40, deadline=None)
    def test_signed_roundtrip_property(self, value):
        mem = Memory(16)
        mem.store(0, 4, value)
        assert mem.load_signed(0, 4) == value
