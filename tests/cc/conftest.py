"""Shared helpers for MiniC compiler tests."""

import pytest

from repro.cc.driver import compile_source
from repro.soc.soc import RocketLikeSoC


@pytest.fixture
def run_c():
    """Compile and execute MiniC source; returns the RunResult."""

    def runner(source, optimize=True, compress=False, **run_kwargs):
        result = compile_source(source, optimize=optimize, compress=compress)
        soc = RocketLikeSoC()
        return soc.run(result.program, **run_kwargs)

    return runner
