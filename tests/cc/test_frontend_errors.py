"""Lexer/parser/sema diagnostics and -O0 vs -O1 equivalence."""

import pytest

from repro.cc.driver import compile_source
from repro.cc.lexer import tokenize
from repro.cc.parser import parse
from repro.cc.sema import analyze
from repro.errors import CompileError, LexError, ParseError, SemanticError
from repro.soc.soc import RocketLikeSoC


class TestLexer:
    def test_token_kinds(self):
        tokens = tokenize('int x = 0x1F; // c\n"s" \'a\'')
        kinds = [t.kind for t in tokens]
        assert kinds == ["keyword", "ident", "=", "int", ";", "string",
                         "int", "eof"]

    def test_line_tracking(self):
        tokens = tokenize("int a;\nint b;\n")
        b_token = [t for t in tokens if t.text == "b"][0]
        assert b_token.line == 2

    def test_block_comment(self):
        tokens = tokenize("int /* hi \n there */ x;")
        assert [t.text for t in tokens[:2]] == ["int", "x"]

    def test_unterminated_comment(self):
        with pytest.raises(LexError, match="unterminated block comment"):
            tokenize("/* forever")

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"no close')

    def test_bad_char(self):
        with pytest.raises(LexError):
            tokenize("int a @ b;")

    def test_char_escapes(self):
        tokens = tokenize(r"'\n' '\t' '\0' '\\'")
        assert [t.value for t in tokens[:-1]] == [10, 9, 0, 92]

    def test_maximal_munch(self):
        tokens = tokenize("a <<= b >> c >= d")
        kinds = [t.kind for t in tokens]
        assert "<<=" in kinds and ">>" in kinds and ">=" in kinds


class TestParserErrors:
    @pytest.mark.parametrize("source", [
        "int main( { return 0; }",
        "int main() { return 0 }",
        "int main() { if return; }",
        "int main() { int x = ; }",
        "int 3x;",
        "int main() { x[; }",
    ])
    def test_syntax_errors(self, source):
        with pytest.raises(ParseError):
            parse(source)

    def test_unsized_local_array(self):
        with pytest.raises(ParseError, match="explicit size"):
            parse("int main() { int a[]; return 0; }")


class TestSemaErrors:
    @pytest.mark.parametrize("source,match", [
        ("int main() { return y; }", "undeclared"),
        ("int main() { int x; int x; return 0; }", "redeclaration"),
        ("int main() { break; }", "break outside"),
        ("int main() { continue; }", "continue outside"),
        ("void f() {} void f() {} int main() { return 0; }",
         "redefinition"),
        ("int main() { f(1); }", "undefined function"),
        ("int f(int a) { return a; } int main() { return f(); }",
         "expects 1 arguments"),
        ("int main() { 5 = 6; return 0; }", "lvalue"),
        ("int main() { int x; return *x; }", "dereferencing non-pointer"),
        ("int main() { int a[3]; a = 0; return 0; }", "not .?assignable"),
        ("void v; int main() { return 0; }", "type void"),
        ("int main() { int *p; return p % 3; }", "invalid operands"),
        ("int main() { return exit; }", "undeclared"),
    ])
    def test_semantic_errors(self, source, match):
        with pytest.raises(SemanticError, match=match):
            analyze(parse(source))

    def test_missing_main(self):
        with pytest.raises(CompileError, match="no main"):
            compile_source("int helper() { return 1; }")

    def test_too_many_params(self):
        params = ", ".join(f"int p{i}" for i in range(9))
        with pytest.raises(SemanticError, match="more than 8"):
            analyze(parse(f"int f({params}) {{ return 0; }}"))

    def test_string_too_long_for_array(self):
        with pytest.raises(SemanticError, match="too long"):
            analyze(parse('char s[2] = "abc"; int main() { return 0; }'))


PROGRAMS = [
    """
    int main() {
        int sum = 0;
        for (int i = 0; i < 50; i++) {
            if (i % 3 == 0) { sum += i * 2; }
            else { sum -= 1; }
        }
        print_int(sum);
        return 0;
    }
    """,
    """
    int fib(int n) {
        if (n < 2) { return n; }
        return fib(n - 1) + fib(n - 2);
    }
    int main() { print_int(fib(15)); return 0; }
    """,
    """
    int main() {
        char text[32];
        char *src = "optimization";
        int n = 0;
        while (src[n]) { text[n] = src[n]; n++; }
        text[n] = 0;
        int vowels = 0;
        for (int i = 0; i < n; i++) {
            char c = text[i];
            if (c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u') {
                vowels++;
            }
        }
        print_int(vowels);
        print_str(text);
        return 0;
    }
    """,
    """
    int data[16] = {5, 3, 8, 1, 9, 2, 7, 4, 6, 0, 15, 11, 13, 10, 14, 12};
    int main() {
        // insertion sort then checksum
        for (int i = 1; i < 16; i++) {
            int key = data[i];
            int j = i - 1;
            while (j >= 0 && data[j] > key) {
                data[j + 1] = data[j];
                j--;
            }
            data[j + 1] = key;
        }
        int acc = 0;
        for (int i = 0; i < 16; i++) { acc = acc * 3 + data[i]; }
        print_int(acc);
        return 0;
    }
    """,
]


class TestOptimizationEquivalence:
    @pytest.mark.parametrize("source", PROGRAMS, ids=range(len(PROGRAMS)))
    def test_o0_o1_same_output(self, source):
        o0 = compile_source(source, optimize=False)
        o1 = compile_source(source, optimize=True)
        r0 = RocketLikeSoC().run(o0.program)
        r1 = RocketLikeSoC().run(o1.program)
        assert r0.stdout == r1.stdout
        assert r0.exit_code == r1.exit_code

    @pytest.mark.parametrize("source", PROGRAMS, ids=range(len(PROGRAMS)))
    def test_optimizer_not_slower(self, source):
        o0 = compile_source(source, optimize=False)
        o1 = compile_source(source, optimize=True)
        r0 = RocketLikeSoC().run(o0.program)
        r1 = RocketLikeSoC().run(o1.program)
        assert r1.counters.instret <= r0.counters.instret

    @pytest.mark.parametrize("source", PROGRAMS, ids=range(len(PROGRAMS)))
    def test_compressed_same_output(self, source):
        plain = compile_source(source, compress=False)
        rvc = compile_source(source, compress=True)
        r0 = RocketLikeSoC().run(plain.program)
        r1 = RocketLikeSoC().run(rvc.program)
        assert r0.stdout == r1.stdout
        assert len(rvc.program.text) < len(plain.program.text)


class TestCompileResult:
    def test_asm_text_present(self):
        result = compile_source("int main() { return 0; }")
        assert "main:" in result.asm_text
        assert "_start:" in result.asm_text

    def test_program_layout_nonempty(self):
        result = compile_source("int main() { return 0; }")
        assert result.program.instruction_count > 10
        assert result.program.entry == result.program.symbols["_start"]
