"""End-to-end MiniC programs: compile, run, check output/exit code."""

import pytest


class TestBasics:
    def test_return_value(self, run_c):
        assert run_c("int main() { return 42; }").exit_code == 42

    def test_print_int(self, run_c):
        assert run_c(
            "int main() { print_int(12345); return 0; }").stdout == "12345"

    def test_print_negative(self, run_c):
        assert run_c(
            "int main() { print_int(-987); return 0; }").stdout == "-987"

    def test_print_zero(self, run_c):
        assert run_c(
            "int main() { print_int(0); return 0; }").stdout == "0"

    def test_print_str(self, run_c):
        source = 'int main() { print_str("hello world\\n"); return 0; }'
        assert run_c(source).stdout == "hello world\n"

    def test_print_char(self, run_c):
        assert run_c(
            "int main() { print_char('A' + 1); return 0; }").stdout == "B"

    def test_arithmetic_precedence(self, run_c):
        assert run_c(
            "int main() { return 2 + 3 * 4 - 6 / 2; }").exit_code == 11

    def test_hex_literals(self, run_c):
        assert run_c(
            "int main() { return 0xFF & 0x0F; }").exit_code == 15

    def test_exit_builtin(self, run_c):
        assert run_c(
            "int main() { exit(7); return 0; }").exit_code == 7


class TestVariablesAndScope:
    def test_locals(self, run_c):
        source = """
        int main() {
            int a = 10;
            int b = 20;
            int c = a + b;
            return c;
        }
        """
        assert run_c(source).exit_code == 30

    def test_shadowing(self, run_c):
        source = """
        int main() {
            int x = 1;
            {
                int x = 2;
                print_int(x);
            }
            print_int(x);
            return 0;
        }
        """
        assert run_c(source).stdout == "21"

    def test_globals(self, run_c):
        source = """
        int counter = 5;
        int limit;
        int main() {
            limit = 3;
            counter = counter + limit;
            return counter;
        }
        """
        assert run_c(source).exit_code == 8

    def test_global_array_init(self, run_c):
        source = """
        int table[5] = {10, 20, 30};
        int main() {
            return table[0] + table[1] + table[2] + table[3] + table[4];
        }
        """
        assert run_c(source).exit_code == 60

    def test_global_string_pointer(self, run_c):
        source = """
        char *greeting = "hi";
        int main() {
            print_str(greeting);
            return 0;
        }
        """
        assert run_c(source).stdout == "hi"

    def test_global_char_array_string(self, run_c):
        source = """
        char name[] = "abc";
        int main() {
            print_str(name);
            return name[1];
        }
        """
        result = run_c(source)
        assert result.stdout == "abc"
        assert result.exit_code == ord("b")


class TestControlFlow:
    def test_if_else_chain(self, run_c):
        source = """
        int classify(int x) {
            if (x < 0) { return 1; }
            else if (x == 0) { return 2; }
            else { return 3; }
        }
        int main() {
            return classify(-5) * 100 + classify(0) * 10 + classify(9);
        }
        """
        assert run_c(source).exit_code == 123

    def test_while_loop(self, run_c):
        source = """
        int main() {
            int sum = 0;
            int i = 1;
            while (i <= 10) {
                sum += i;
                i++;
            }
            return sum;
        }
        """
        assert run_c(source).exit_code == 55

    def test_for_loop(self, run_c):
        source = """
        int main() {
            int product = 1;
            for (int i = 1; i <= 5; i++) {
                product *= i;
            }
            return product;
        }
        """
        assert run_c(source).exit_code == 120

    def test_break_continue(self, run_c):
        source = """
        int main() {
            int sum = 0;
            for (int i = 0; i < 100; i++) {
                if (i % 2) { continue; }
                if (i > 10) { break; }
                sum += i;
            }
            return sum;      // 0+2+4+6+8+10 = 30
        }
        """
        assert run_c(source).exit_code == 30

    def test_nested_loops(self, run_c):
        source = """
        int main() {
            int count = 0;
            for (int i = 0; i < 5; i++) {
                for (int j = 0; j < 5; j++) {
                    if (i == j) { continue; }
                    count++;
                }
            }
            return count;    // 25 - 5
        }
        """
        assert run_c(source).exit_code == 20

    def test_logical_short_circuit(self, run_c):
        source = """
        int calls = 0;
        int bump() { calls++; return 1; }
        int main() {
            int a = 0 && bump();
            int b = 1 || bump();
            return calls * 10 + a + b;   // calls must stay 0
        }
        """
        assert run_c(source).exit_code == 1

    def test_logical_values(self, run_c):
        source = """
        int main() {
            return (3 && 5) * 8 + (0 || 7) * 4 + (0 && 9) * 2 + (0 || 0);
        }
        """
        assert run_c(source).exit_code == 12


class TestFunctions:
    def test_recursion_factorial(self, run_c):
        source = """
        int fact(int n) {
            if (n <= 1) { return 1; }
            return n * fact(n - 1);
        }
        int main() { return fact(5); }
        """
        assert run_c(source).exit_code == 120

    def test_recursion_fibonacci(self, run_c):
        source = """
        int fib(int n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        int main() { return fib(10); }
        """
        assert run_c(source).exit_code == 55

    def test_many_parameters(self, run_c):
        source = """
        int sum8(int a, int b, int c, int d, int e, int f, int g, int h) {
            return a + b + c + d + e + f + g + h;
        }
        int main() { return sum8(1, 2, 3, 4, 5, 6, 7, 8); }
        """
        assert run_c(source).exit_code == 36

    def test_void_function(self, run_c):
        source = """
        int total = 0;
        void add(int x) { total += x; }
        int main() {
            add(3);
            add(4);
            return total;
        }
        """
        assert run_c(source).exit_code == 7

    def test_mutual_recursion(self, run_c):
        source = """
        int is_odd(int n);
        int is_even(int n) {
            if (n == 0) { return 1; }
            return is_odd(n - 1);
        }
        int is_odd(int n) {
            if (n == 0) { return 0; }
            return is_even(n - 1);
        }
        int main() { return is_even(10) * 10 + is_odd(7); }
        """
        # MiniC has no prototypes; rewrite without forward declaration.
        source = """
        int is_even(int n) {
            if (n == 0) { return 1; }
            if (n == 1) { return 0; }
            return is_even(n - 2);
        }
        int main() { return is_even(10) * 10 + is_even(7); }
        """
        assert run_c(source).exit_code == 10


class TestPointersAndArrays:
    def test_address_of_and_deref(self, run_c):
        source = """
        int main() {
            int x = 5;
            int *p = &x;
            *p = 9;
            return x;
        }
        """
        assert run_c(source).exit_code == 9

    def test_pointer_parameter(self, run_c):
        source = """
        void swap(int *a, int *b) {
            int t = *a;
            *a = *b;
            *b = t;
        }
        int main() {
            int x = 3;
            int y = 4;
            swap(&x, &y);
            return x * 10 + y;
        }
        """
        assert run_c(source).exit_code == 43

    def test_local_array(self, run_c):
        source = """
        int main() {
            int a[10];
            for (int i = 0; i < 10; i++) { a[i] = i * i; }
            return a[7];
        }
        """
        assert run_c(source).exit_code == 49

    def test_array_as_argument(self, run_c):
        source = """
        int sum(int *a, int n) {
            int s = 0;
            for (int i = 0; i < n; i++) { s += a[i]; }
            return s;
        }
        int main() {
            int data[4];
            data[0] = 1; data[1] = 2; data[2] = 3; data[3] = 4;
            return sum(data, 4);
        }
        """
        assert run_c(source).exit_code == 10

    def test_pointer_arithmetic(self, run_c):
        source = """
        int main() {
            int a[5];
            for (int i = 0; i < 5; i++) { a[i] = i + 1; }
            int *p = a;
            p = p + 2;
            return *p + *(p + 1);   // 3 + 4
        }
        """
        assert run_c(source).exit_code == 7

    def test_char_array_bytes(self, run_c):
        source = """
        int main() {
            char buf[4];
            buf[0] = 300;        // truncates to 44
            return buf[0];
        }
        """
        assert run_c(source).exit_code == 44

    def test_pointer_increment_through_string(self, run_c):
        source = """
        int main() {
            char *s = "xyz";
            int count = 0;
            while (*s) {
                count++;
                s++;
            }
            return count;
        }
        """
        assert run_c(source).exit_code == 3


class TestOperators:
    def test_compound_assignment(self, run_c):
        source = """
        int main() {
            int x = 100;
            x += 5; x -= 3; x *= 2; x /= 4; x %= 13;
            x <<= 2; x >>= 1; x |= 8; x &= 14; x ^= 5;
            return x;
        }
        """
        x = 100
        x += 5; x -= 3; x *= 2; x //= 4; x %= 13
        x <<= 2; x >>= 1; x |= 8; x &= 14; x ^= 5
        assert run_c(source).exit_code == x

    def test_prefix_postfix(self, run_c):
        source = """
        int main() {
            int i = 5;
            int a = i++;
            int b = ++i;
            return a * 10 + b;   // 5, 7 -> 57
        }
        """
        assert run_c(source).exit_code == 57

    def test_negative_division_c_semantics(self, run_c):
        source = """
        int main() {
            int a = -7 / 2;     // -3
            int b = -7 % 2;     // -1
            return (a == -3) * 10 + (b == -1);
        }
        """
        assert run_c(source).exit_code == 11

    def test_bitwise_and_shifts(self, run_c):
        source = """
        int main() {
            int x = 0xF0;
            return ((x >> 4) | (1 << 8)) ^ 0x10F;
        }
        """
        assert run_c(source).exit_code == ((0xF0 >> 4) | (1 << 8)) ^ 0x10F

    def test_unary_ops(self, run_c):
        source = """
        int main() {
            int x = 6;
            return (-x + 10) * 100 + (~x & 0xF) * 10 + !x + !(!x);
        }
        """
        expected = (4 * 100 + (~6 & 0xF) * 10 + 0 + 1) & 0xFF
        assert run_c(source).exit_code == expected

    def test_comparisons(self, run_c):
        source = """
        int main() {
            return (1 < 2) + (2 <= 2) + (3 > 2) + (2 >= 3) + (5 == 5)
                 + (5 != 5);
        }
        """
        assert run_c(source).exit_code == 4


class TestLargerPrograms:
    def test_iterative_gcd(self, run_c):
        source = """
        int gcd(int a, int b) {
            while (b != 0) {
                int t = b;
                b = a % b;
                a = t;
            }
            return a;
        }
        int main() { return gcd(1071, 462); }
        """
        assert run_c(source).exit_code == 21

    def test_sieve(self, run_c):
        source = """
        int main() {
            char sieve[100];
            for (int i = 0; i < 100; i++) { sieve[i] = 1; }
            sieve[0] = 0; sieve[1] = 0;
            for (int i = 2; i < 100; i++) {
                if (sieve[i]) {
                    for (int j = i + i; j < 100; j += i) { sieve[j] = 0; }
                }
            }
            int count = 0;
            for (int i = 0; i < 100; i++) { count += sieve[i]; }
            return count;    // 25 primes below 100
        }
        """
        assert run_c(source).exit_code == 25

    def test_string_reverse(self, run_c):
        source = """
        int main() {
            char buf[16];
            char *src = "minic";
            int n = 0;
            while (src[n]) { n++; }
            for (int i = 0; i < n; i++) { buf[i] = src[n - 1 - i]; }
            buf[n] = 0;
            print_str(buf);
            return 0;
        }
        """
        assert run_c(source).stdout == "cinim"

    def test_64bit_values(self, run_c):
        source = """
        int main() {
            int big = 0x123456789AB;
            int x = big / 1000000;
            print_int(x);
            return 0;
        }
        """
        assert run_c(source).stdout == str(0x123456789AB // 1000000)
