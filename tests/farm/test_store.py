"""ResultStore: JSONL persistence, resumability, corruption handling."""

import json
import multiprocessing
import os

import pytest

from repro.farm import (STORE_SCHEMA, WALL_CLOCK_FIELDS, FarmRecord,
                        ResultStore)


def _record(key: str, **overrides) -> FarmRecord:
    base = dict(
        key=key, name="toy", workload=None, source_digest="d" * 64,
        config={"mode": "full"}, params={"device_seed": 1},
        simulate=True, analyze=False, repeats=1,
        plain_size=100, package_size=153, signed_bytes=96,
        baseline_s=0.01, package_total_s=0.02, compile_s=0.01,
        signature_s=0.004, encryption_s=0.003, packaging_s=0.001,
        plain_cycles=1000, hde_cycles=50, eric_cycles=1050,
        stdout_ok=True,
    )
    base.update(overrides)
    return FarmRecord(**base)


class TestRoundTrip:
    def test_put_get_and_reload(self, tmp_path):
        store = ResultStore(tmp_path)
        record = _record("k1")
        store.put(record)
        assert store.get("k1") == record
        assert "k1" in store

        # a fresh instance reads the same file — the resume path
        reloaded = ResultStore(tmp_path)
        assert len(reloaded) == 1
        assert reloaded.get("k1") == record

    def test_json_round_trip_preserves_optional_fields(self):
        record = _record("k2", analysis={"enc_slots": 3},
                         eric_run={"exit_code": 0, "console": "hi\n",
                                   "counters": {"cycles": 1050}})
        assert FarmRecord.from_json(record.to_json()) == record

    def test_json_round_trip_environment_and_dynamic_payloads(self):
        """The PR-3 record extensions: environment in params, the
        dynamic/plain analysis payloads, and the key-stability fields."""
        record = _record(
            "k-env",
            params={"device_seed": 1,
                    "environment": {"temperature_c": 85.0,
                                    "voltage": 0.9,
                                    "frequency_mhz": 25.0},
                    "overlapped_hde": True,
                    "puf_votes": 5},
            hde_serial_cycles=70,
            key_failure=0.025,
            key_digest="ab" * 32,
            analysis={
                "enc_slots": 3,
                "byte_entropy": 7.3,
                "plain": {"byte_entropy": 5.1,
                          "looks_like_code": True},
                "dynamic": [{"device_seed": 1, "outcome": "rejected",
                             "executed": False,
                             "instructions_observed": 0,
                             "leaked": False}],
            })
        revived = FarmRecord.from_json(record.to_json())
        assert revived == record
        assert revived.analysis["dynamic"][0]["outcome"] == "rejected"
        assert revived.params["environment"]["voltage"] == 0.9

    def test_missing_directory_is_created(self, tmp_path):
        store = ResultStore(tmp_path / "a" / "b")
        store.put(_record("k"))
        assert (tmp_path / "a" / "b" / "results.jsonl").exists()


class TestRobustness:
    def test_corrupt_lines_are_skipped(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(_record("good"))
        with store.path.open("a") as handle:
            handle.write('{"truncated": \n')
            handle.write("not json at all\n")
        reloaded = ResultStore(tmp_path)
        assert len(reloaded) == 1
        assert reloaded.skipped_lines == 2

    def test_schema_mismatch_is_skipped(self, tmp_path):
        store = ResultStore(tmp_path)
        old = json.loads(_record("old-schema").to_json())
        old["schema"] = STORE_SCHEMA + 1
        with store.path.open("a") as handle:
            handle.write(json.dumps(old) + "\n")
        reloaded = ResultStore(tmp_path)
        assert reloaded.get("old-schema") is None
        assert reloaded.skipped_lines == 1

    def test_duplicate_keys_last_wins(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(_record("k", eric_cycles=1050))
        store.put(_record("k", eric_cycles=2222))  # a --force re-measure
        assert store.get("k").eric_cycles == 2222
        reloaded = ResultStore(tmp_path)
        assert reloaded.get("k").eric_cycles == 2222
        assert len(reloaded) == 1

    def test_compact_drops_superseded_lines(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(_record("k", eric_cycles=1))
        store.put(_record("k", eric_cycles=2))
        store.put(_record("j"))
        assert store.compact() == 2
        text = store.path.read_text().strip().splitlines()
        assert len(text) == 2
        reloaded = ResultStore(tmp_path)
        assert reloaded.get("k").eric_cycles == 2

    def test_compact_keeps_records_appended_by_another_process(
            self, tmp_path):
        """Regression: compact() used to rewrite from the in-memory dict
        alone, silently discarding records another process appended
        after this store loaded."""
        ours = ResultStore(tmp_path)
        ours.put(_record("mine"))
        other = ResultStore(tmp_path)  # models a second process
        other.put(_record("theirs"))
        other.put(_record("mine", eric_cycles=9999))  # their re-measure

        assert ours.compact() == 2
        reloaded = ResultStore(tmp_path)
        assert reloaded.get("theirs") is not None
        # last record on disk wins, exactly like a plain reload
        assert reloaded.get("mine").eric_cycles == 9999
        assert len(reloaded) == 2


class TestAtomicRewrite:
    def test_compact_failure_leaves_the_old_file_intact(self, tmp_path,
                                                        monkeypatch):
        """Regression: compact() used to write_text the store in place,
        so a crash mid-write destroyed every record.  The rewrite now
        lands in a temp file and os.replace()s it atomically."""
        store = ResultStore(tmp_path)
        store.put(_record("k1"))
        store.put(_record("k2"))
        before = store.path.read_text()

        def explode(src, dst):
            raise OSError("simulated crash at replace time")

        monkeypatch.setattr(os, "replace", explode)
        with pytest.raises(OSError, match="simulated crash"):
            store.compact()
        monkeypatch.undo()
        # the original file survived, byte for byte, and no temp litter
        assert store.path.read_text() == before
        assert [p.name for p in tmp_path.iterdir()] == ["results.jsonl"]
        assert len(ResultStore(tmp_path)) == 2

    def test_merge_failure_leaves_the_old_file_intact(self, tmp_path,
                                                      monkeypatch):
        main, shard = ResultStore(tmp_path / "a"), ResultStore(tmp_path / "b")
        main.put(_record("mine"))
        shard.put(_record("theirs"))
        before = main.path.read_text()
        monkeypatch.setattr(
            os, "replace",
            lambda src, dst: (_ for _ in ()).throw(OSError("crash")))
        with pytest.raises(OSError):
            main.merge_from(shard.root)
        monkeypatch.undo()
        assert main.path.read_text() == before
        assert len(ResultStore(tmp_path / "a")) == 1


class TestMergeFrom:
    def test_merge_adds_and_overrides_last_record_wins(self, tmp_path):
        main = ResultStore(tmp_path / "main")
        main.put(_record("shared", eric_cycles=1))
        main.put(_record("only-main"))
        shard = ResultStore(tmp_path / "shard")
        shard.put(_record("shared", eric_cycles=2))  # the newer writer
        shard.put(_record("only-shard"))

        stats = main.merge_from(shard.root)
        assert stats.added == 1 and stats.replaced == 1
        assert stats.merged == 2 and stats.skipped == 0
        assert main.get("shared").eric_cycles == 2
        assert main.get("only-shard") is not None
        assert len(main) == 3
        # persisted, compacted, and reloadable
        reloaded = ResultStore(tmp_path / "main")
        assert len(reloaded) == 3
        assert reloaded.get("shared").eric_cycles == 2
        assert len(main.path.read_text().strip().splitlines()) == 3

    def test_merge_accepts_a_jsonl_file_path(self, tmp_path):
        shard = ResultStore(tmp_path / "shard")
        shard.put(_record("k"))
        main = ResultStore(tmp_path / "main")
        assert main.merge_from(shard.path).added == 1

    def test_merge_counts_skipped_lines_and_tolerates_torn_tail(
            self, tmp_path):
        """A worker killed mid-append leaves a torn final line; the
        merge must skip (and count) it, never fail."""
        shard = ResultStore(tmp_path / "shard")
        shard.put(_record("good"))
        with shard.path.open("a") as handle:
            handle.write(_record("torn").to_json()[:40])  # no newline
        main = ResultStore(tmp_path / "main")
        stats = main.merge_from(shard.root)
        assert stats.added == 1
        assert stats.skipped == 1
        assert "skipped" in stats.describe()
        assert main.get("torn") is None

    def test_merge_keys_filter_ignores_out_of_plan_records(self, tmp_path):
        """The coordinator's guard: only a shard's *planned* keys may
        merge, so leftovers in a reused shard directory cannot
        resurrect over fresher main-store records."""
        shard = ResultStore(tmp_path / "shard")
        shard.put(_record("planned"))
        shard.put(_record("leftover", eric_cycles=777))
        main = ResultStore(tmp_path / "main")
        main.put(_record("leftover", eric_cycles=1))  # the fresher record

        stats = main.merge_from(shard.root, keys={"planned"})
        assert stats.added == 1 and stats.replaced == 0
        assert stats.ignored == 1
        assert "out-of-plan" in stats.describe()
        assert main.get("leftover").eric_cycles == 1  # not resurrected
        assert main.get("planned") is not None

    def test_merge_of_an_empty_or_absent_store_is_a_no_op(self, tmp_path):
        main = ResultStore(tmp_path / "main")
        main.put(_record("k"))
        empty = ResultStore(tmp_path / "empty")  # dir exists, no file
        stats = main.merge_from(empty.root)
        assert stats.merged == 0 and stats.skipped == 0
        assert main.merge_from(tmp_path / "never-existed").merged == 0
        assert len(main) == 1

    def test_merge_keeps_records_appended_by_another_process(self,
                                                             tmp_path):
        """Like compact(): the on-disk file is re-read before the
        rewrite, so another writer's appends survive the merge."""
        ours = ResultStore(tmp_path / "main")
        ours.put(_record("mine"))
        other = ResultStore(tmp_path / "main")
        other.put(_record("concurrent"))
        shard = ResultStore(tmp_path / "shard")
        shard.put(_record("theirs"))

        ours.merge_from(shard.root)
        assert {"mine", "concurrent", "theirs"} == ours.keys()


def _append_records(store_dir, prefix, count, shared_value):
    """Child-process body: hammer a shard store with appends."""
    store = ResultStore(store_dir)
    for i in range(count):
        store.put(_record(f"{prefix}-{i}", eric_cycles=i))
    store.put(_record("shared", eric_cycles=shared_value))


class TestMultiWriter:
    def test_concurrent_shard_writers_then_merge_and_compact(
            self, tmp_path):
        """The distributed-farm write path end to end: two real
        processes append to their shard stores concurrently, one store
        gains a torn final line, then both merge into the main store
        and compact.  Nothing may be lost and last-record-wins must
        hold throughout."""
        count = 25
        writers = [
            multiprocessing.Process(
                target=_append_records,
                args=(tmp_path / f"shard-{n}", f"w{n}", count, n))
            for n in (0, 1)
        ]
        for writer in writers:
            writer.start()
        for writer in writers:
            writer.join(timeout=60)
            assert writer.exitcode == 0

        # a killed worker's signature: a torn final line in shard-0
        with (tmp_path / "shard-0" / "results.jsonl").open("a") as handle:
            handle.write(_record("torn").to_json()[:25])

        main = ResultStore(tmp_path / "main")
        stats0 = main.merge_from(tmp_path / "shard-0")
        stats1 = main.merge_from(tmp_path / "shard-1")
        assert stats0.skipped == 1  # the torn line, counted not fatal
        assert stats1.skipped == 0

        # zero lost keys: every appended record made it through
        expected = ({f"w0-{i}" for i in range(count)}
                    | {f"w1-{i}" for i in range(count)} | {"shared"})
        assert main.keys() == expected
        # last merge wins the contended key
        assert main.get("shared").eric_cycles == 1

        live = main.compact()
        assert live == len(expected)
        reloaded = ResultStore(tmp_path / "main")
        assert reloaded.keys() == expected
        assert reloaded.skipped_lines == 0
        assert reloaded.get("shared").eric_cycles == 1


class TestRecordViews:
    def test_overhead_pct(self):
        assert _record("k").overhead_pct == pytest.approx(5.0)

    def test_overhead_requires_simulation(self):
        record = _record("k", plain_cycles=None, hde_cycles=None,
                         eric_cycles=None, stdout_ok=None)
        with pytest.raises(ValueError, match="was not simulated"):
            record.overhead_pct

    def test_overhead_distinguishes_zero_from_unsimulated(self):
        """Regression: ``if not plain_cycles`` conflated a measured 0
        with None and blamed the record for "not being simulated"."""
        record = _record("k", plain_cycles=0, eric_cycles=50)
        with pytest.raises(ValueError, match="zero baseline cycles"):
            record.overhead_pct

    def test_size_increase_pct(self):
        assert _record("k").size_increase_pct == 53.0
        # an empty program image has no meaningful ratio, not an error
        assert _record("k", plain_size=0).size_increase_pct == 0.0

    def test_stable_dict_masks_exactly_the_wall_clock_fields(self):
        from dataclasses import fields

        fast = _record("k", compile_s=0.001, wall_s=0.1)
        slow = _record("k", compile_s=9.0, wall_s=99.0)
        assert fast.stable_dict() == slow.stable_dict()
        assert set(fast.stable_dict()) \
            == {f.name for f in fields(FarmRecord)} - WALL_CLOCK_FIELDS
