"""ResultStore: JSONL persistence, resumability, corruption handling."""

import json

import pytest

from repro.farm import STORE_SCHEMA, FarmRecord, ResultStore


def _record(key: str, **overrides) -> FarmRecord:
    base = dict(
        key=key, name="toy", workload=None, source_digest="d" * 64,
        config={"mode": "full"}, params={"device_seed": 1},
        simulate=True, analyze=False, repeats=1,
        plain_size=100, package_size=153, signed_bytes=96,
        baseline_s=0.01, package_total_s=0.02, compile_s=0.01,
        signature_s=0.004, encryption_s=0.003, packaging_s=0.001,
        plain_cycles=1000, hde_cycles=50, eric_cycles=1050,
        stdout_ok=True,
    )
    base.update(overrides)
    return FarmRecord(**base)


class TestRoundTrip:
    def test_put_get_and_reload(self, tmp_path):
        store = ResultStore(tmp_path)
        record = _record("k1")
        store.put(record)
        assert store.get("k1") == record
        assert "k1" in store

        # a fresh instance reads the same file — the resume path
        reloaded = ResultStore(tmp_path)
        assert len(reloaded) == 1
        assert reloaded.get("k1") == record

    def test_json_round_trip_preserves_optional_fields(self):
        record = _record("k2", analysis={"enc_slots": 3},
                         eric_run={"exit_code": 0, "console": "hi\n",
                                   "counters": {"cycles": 1050}})
        assert FarmRecord.from_json(record.to_json()) == record

    def test_json_round_trip_environment_and_dynamic_payloads(self):
        """The PR-3 record extensions: environment in params, the
        dynamic/plain analysis payloads, and the key-stability fields."""
        record = _record(
            "k-env",
            params={"device_seed": 1,
                    "environment": {"temperature_c": 85.0,
                                    "voltage": 0.9,
                                    "frequency_mhz": 25.0},
                    "overlapped_hde": True,
                    "puf_votes": 5},
            hde_serial_cycles=70,
            key_failure=0.025,
            key_digest="ab" * 32,
            analysis={
                "enc_slots": 3,
                "byte_entropy": 7.3,
                "plain": {"byte_entropy": 5.1,
                          "looks_like_code": True},
                "dynamic": [{"device_seed": 1, "outcome": "rejected",
                             "executed": False,
                             "instructions_observed": 0,
                             "leaked": False}],
            })
        revived = FarmRecord.from_json(record.to_json())
        assert revived == record
        assert revived.analysis["dynamic"][0]["outcome"] == "rejected"
        assert revived.params["environment"]["voltage"] == 0.9

    def test_missing_directory_is_created(self, tmp_path):
        store = ResultStore(tmp_path / "a" / "b")
        store.put(_record("k"))
        assert (tmp_path / "a" / "b" / "results.jsonl").exists()


class TestRobustness:
    def test_corrupt_lines_are_skipped(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(_record("good"))
        with store.path.open("a") as handle:
            handle.write('{"truncated": \n')
            handle.write("not json at all\n")
        reloaded = ResultStore(tmp_path)
        assert len(reloaded) == 1
        assert reloaded.skipped_lines == 2

    def test_schema_mismatch_is_skipped(self, tmp_path):
        store = ResultStore(tmp_path)
        old = json.loads(_record("old-schema").to_json())
        old["schema"] = STORE_SCHEMA + 1
        with store.path.open("a") as handle:
            handle.write(json.dumps(old) + "\n")
        reloaded = ResultStore(tmp_path)
        assert reloaded.get("old-schema") is None
        assert reloaded.skipped_lines == 1

    def test_duplicate_keys_last_wins(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(_record("k", eric_cycles=1050))
        store.put(_record("k", eric_cycles=2222))  # a --force re-measure
        assert store.get("k").eric_cycles == 2222
        reloaded = ResultStore(tmp_path)
        assert reloaded.get("k").eric_cycles == 2222
        assert len(reloaded) == 1

    def test_compact_drops_superseded_lines(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(_record("k", eric_cycles=1))
        store.put(_record("k", eric_cycles=2))
        store.put(_record("j"))
        assert store.compact() == 2
        text = store.path.read_text().strip().splitlines()
        assert len(text) == 2
        reloaded = ResultStore(tmp_path)
        assert reloaded.get("k").eric_cycles == 2

    def test_compact_keeps_records_appended_by_another_process(
            self, tmp_path):
        """Regression: compact() used to rewrite from the in-memory dict
        alone, silently discarding records another process appended
        after this store loaded."""
        ours = ResultStore(tmp_path)
        ours.put(_record("mine"))
        other = ResultStore(tmp_path)  # models a second process
        other.put(_record("theirs"))
        other.put(_record("mine", eric_cycles=9999))  # their re-measure

        assert ours.compact() == 2
        reloaded = ResultStore(tmp_path)
        assert reloaded.get("theirs") is not None
        # last record on disk wins, exactly like a plain reload
        assert reloaded.get("mine").eric_cycles == 9999
        assert len(reloaded) == 2


class TestRecordViews:
    def test_overhead_pct(self):
        assert _record("k").overhead_pct == pytest.approx(5.0)

    def test_overhead_requires_simulation(self):
        record = _record("k", plain_cycles=None, hde_cycles=None,
                         eric_cycles=None, stdout_ok=None)
        with pytest.raises(ValueError, match="was not simulated"):
            record.overhead_pct

    def test_overhead_distinguishes_zero_from_unsimulated(self):
        """Regression: ``if not plain_cycles`` conflated a measured 0
        with None and blamed the record for "not being simulated"."""
        record = _record("k", plain_cycles=0, eric_cycles=50)
        with pytest.raises(ValueError, match="zero baseline cycles"):
            record.overhead_pct

    def test_size_increase_pct(self):
        assert _record("k").size_increase_pct == 53.0
        # an empty program image has no meaningful ratio, not an error
        assert _record("k", plain_size=0).size_increase_pct == 0.0
