"""ResultStore: JSONL persistence, resumability, corruption handling."""

import json

import pytest

from repro.farm import STORE_SCHEMA, FarmRecord, ResultStore


def _record(key: str, **overrides) -> FarmRecord:
    base = dict(
        key=key, name="toy", workload=None, source_digest="d" * 64,
        config={"mode": "full"}, params={"device_seed": 1},
        simulate=True, analyze=False, repeats=1,
        plain_size=100, package_size=153, signed_bytes=96,
        baseline_s=0.01, package_total_s=0.02, compile_s=0.01,
        signature_s=0.004, encryption_s=0.003, packaging_s=0.001,
        plain_cycles=1000, hde_cycles=50, eric_cycles=1050,
        stdout_ok=True,
    )
    base.update(overrides)
    return FarmRecord(**base)


class TestRoundTrip:
    def test_put_get_and_reload(self, tmp_path):
        store = ResultStore(tmp_path)
        record = _record("k1")
        store.put(record)
        assert store.get("k1") == record
        assert "k1" in store

        # a fresh instance reads the same file — the resume path
        reloaded = ResultStore(tmp_path)
        assert len(reloaded) == 1
        assert reloaded.get("k1") == record

    def test_json_round_trip_preserves_optional_fields(self):
        record = _record("k2", analysis={"enc_slots": 3},
                         eric_run={"exit_code": 0, "console": "hi\n",
                                   "counters": {"cycles": 1050}})
        assert FarmRecord.from_json(record.to_json()) == record

    def test_missing_directory_is_created(self, tmp_path):
        store = ResultStore(tmp_path / "a" / "b")
        store.put(_record("k"))
        assert (tmp_path / "a" / "b" / "results.jsonl").exists()


class TestRobustness:
    def test_corrupt_lines_are_skipped(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(_record("good"))
        with store.path.open("a") as handle:
            handle.write('{"truncated": \n')
            handle.write("not json at all\n")
        reloaded = ResultStore(tmp_path)
        assert len(reloaded) == 1
        assert reloaded.skipped_lines == 2

    def test_schema_mismatch_is_skipped(self, tmp_path):
        store = ResultStore(tmp_path)
        old = json.loads(_record("old-schema").to_json())
        old["schema"] = STORE_SCHEMA + 1
        with store.path.open("a") as handle:
            handle.write(json.dumps(old) + "\n")
        reloaded = ResultStore(tmp_path)
        assert reloaded.get("old-schema") is None
        assert reloaded.skipped_lines == 1

    def test_duplicate_keys_last_wins(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(_record("k", eric_cycles=1050))
        store.put(_record("k", eric_cycles=2222))  # a --force re-measure
        assert store.get("k").eric_cycles == 2222
        reloaded = ResultStore(tmp_path)
        assert reloaded.get("k").eric_cycles == 2222
        assert len(reloaded) == 1

    def test_compact_drops_superseded_lines(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(_record("k", eric_cycles=1))
        store.put(_record("k", eric_cycles=2))
        store.put(_record("j"))
        assert store.compact() == 2
        text = store.path.read_text().strip().splitlines()
        assert len(text) == 2
        reloaded = ResultStore(tmp_path)
        assert reloaded.get("k").eric_cycles == 2


class TestRecordViews:
    def test_overhead_pct(self):
        assert _record("k").overhead_pct == pytest.approx(5.0)

    def test_overhead_requires_simulation(self):
        record = _record("k", plain_cycles=None, hde_cycles=None,
                         eric_cycles=None, stdout_ok=None)
        with pytest.raises(ValueError):
            record.overhead_pct

    def test_size_increase_pct(self):
        assert _record("k").size_increase_pct == 53.0
