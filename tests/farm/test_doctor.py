"""Store diagnostics: counts, schema drift, shard leftovers — no sweep."""

import json

from repro.farm import KEY_SCHEMA, STORE_SCHEMA, FarmRecord
from repro.farm.doctor import diagnose_store


def make_record(key: str, **overrides) -> FarmRecord:
    fields = dict(
        key=key, name="probe", workload=None, source_digest="d" * 64,
        config={}, params={}, simulate=False, analyze=False, repeats=1,
        plain_size=10, package_size=12, signed_bytes=10,
        baseline_s=0.0, package_total_s=0.0, compile_s=0.0,
        signature_s=0.0, encryption_s=0.0, packaging_s=0.0,
    )
    fields.update(overrides)
    return FarmRecord(**fields)


def write_store(root, lines) -> None:
    root.mkdir(parents=True, exist_ok=True)
    (root / "results.jsonl").write_text(
        "".join(line + "\n" for line in lines), encoding="utf-8")


class TestDiagnoseStore:
    def test_missing_store_is_healthy_and_empty(self, tmp_path):
        diagnosis = diagnose_store(tmp_path / "nowhere")
        assert not diagnosis.exists
        assert diagnosis.total_lines == 0
        assert diagnosis.healthy
        assert "nothing measured yet" in diagnosis.describe()

    def test_live_and_superseded_counts(self, tmp_path):
        write_store(tmp_path, [
            make_record("k1").to_json(),
            make_record("k1", package_size=99).to_json(),  # supersedes
            make_record("k2").to_json(),
        ])
        diagnosis = diagnose_store(tmp_path)
        assert diagnosis.total_lines == 3
        assert diagnosis.live_records == 2
        assert diagnosis.superseded == 1
        assert diagnosis.healthy
        assert "--compact" in diagnosis.describe()

    def test_corrupt_and_foreign_schema_lines(self, tmp_path):
        write_store(tmp_path, [
            make_record("k1").to_json(),
            "{not json",
            json.dumps({"schema": 1, "key": "old-world"}),
            json.dumps(["schema-less", "array"]),
        ])
        diagnosis = diagnose_store(tmp_path)
        assert diagnosis.corrupt == 2
        assert diagnosis.foreign_schema == 1
        assert diagnosis.schema_counts == {1: 1, STORE_SCHEMA: 1}
        assert not diagnosis.healthy
        assert "NEEDS ATTENTION" in diagnosis.describe()

    def test_valid_json_missing_record_fields_counts_corrupt(self,
                                                             tmp_path):
        # current-schema line that does not revive as a FarmRecord
        write_store(tmp_path, [json.dumps({"schema": STORE_SCHEMA,
                                           "key": "k1"})])
        diagnosis = diagnose_store(tmp_path)
        assert diagnosis.corrupt == 1
        assert diagnosis.live_records == 0

    def test_shard_leftovers_reported(self, tmp_path):
        write_store(tmp_path, [make_record("k1").to_json()])
        clean = tmp_path / "shards" / "shard-00"
        write_store(clean, [make_record("k1").to_json()])
        (clean / "shard.json").write_text(json.dumps(
            {"kind": "eric-shard", "key_schema": KEY_SCHEMA,
             "jobs": [{}, {}]}), encoding="utf-8")
        bare = tmp_path / "shards" / "shard-01"
        bare.mkdir(parents=True)

        diagnosis = diagnose_store(tmp_path)
        assert len(diagnosis.shard_leftovers) == 2
        first, second = diagnosis.shard_leftovers
        assert first.records == 1
        assert first.spec_key_schema == KEY_SCHEMA
        assert first.spec_jobs == 2
        assert not first.drifted
        assert second.spec_key_schema is None
        assert not second.drifted
        assert diagnosis.healthy

    def test_drifted_shard_spec_flags_unhealthy(self, tmp_path):
        write_store(tmp_path, [make_record("k1").to_json()])
        stale = tmp_path / "shards" / "shard-00"
        stale.mkdir(parents=True)
        (stale / "shard.json").write_text(json.dumps(
            {"kind": "eric-shard", "key_schema": KEY_SCHEMA - 1,
             "jobs": []}), encoding="utf-8")
        diagnosis = diagnose_store(tmp_path)
        assert diagnosis.drifted_shards
        assert not diagnosis.healthy
        assert "DRIFTED" in diagnosis.describe()

    def test_non_object_shard_spec_reports_as_unreadable(self, tmp_path):
        write_store(tmp_path, [make_record("k1").to_json()])
        mangled = tmp_path / "shards" / "shard-00"
        mangled.mkdir(parents=True)
        (mangled / "shard.json").write_text("[1, 2, 3]",
                                            encoding="utf-8")
        diagnosis = diagnose_store(tmp_path)  # must not crash
        leftover = diagnosis.shard_leftovers[0]
        assert leftover.spec_key_schema is None
        assert not leftover.drifted
        assert "no shard.json" in diagnosis.describe()

    def test_explicit_shard_root(self, tmp_path):
        write_store(tmp_path / "store", [make_record("k1").to_json()])
        elsewhere = tmp_path / "elsewhere" / "shard-07"
        write_store(elsewhere, [make_record("k2").to_json()])
        diagnosis = diagnose_store(tmp_path / "store",
                                   shard_root=tmp_path / "elsewhere")
        assert len(diagnosis.shard_leftovers) == 1
        assert diagnosis.shard_leftovers[0].records == 1

    def test_committed_store_is_healthy(self):
        import pathlib
        committed = (pathlib.Path(__file__).resolve().parents[2]
                     / "benchmarks" / "results" / "farm")
        diagnosis = diagnose_store(committed)
        assert diagnosis.exists
        assert diagnosis.live_records == 149
        assert diagnosis.superseded == 0
        assert diagnosis.corrupt == 0
        assert diagnosis.foreign_schema == 0
        assert diagnosis.healthy
