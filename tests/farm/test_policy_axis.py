"""The policy axis: job keys, sweep specs, execution, reporting."""

import pytest

from repro.errors import ConfigError
from repro.farm import (JobMatrix, JobSpec, ResultStore, SimParams,
                        SimulationFarm, execute_job)
from repro.policy import policy_from_dict, policy_to_dict

HELLO = 'int main() { print_int(41); print_char(10); return 0; }\n'

PARTIAL_HALF = {
    "name": "half",
    "encrypt": [{"region": {"kind": "program"}, "fraction": 0.5}],
}


def policied_spec(policy_dict=PARTIAL_HALF, **overrides):
    options = dict(source=HELLO, name="hello",
                   params=SimParams(policy=policy_from_dict(policy_dict)))
    options.update(overrides)
    return JobSpec(**options)


class TestPolicyInTheKey:
    def test_policy_changes_the_key(self):
        assert policied_spec().key() != JobSpec(source=HELLO).key()

    def test_renaming_a_policy_does_not_re_measure(self):
        """The name is display-only; two policies differing only by it
        must address the same stored record."""
        a = dict(PARTIAL_HALF, name="alpha")
        b = dict(PARTIAL_HALF, name="beta")
        assert policied_spec(a).key() == policied_spec(b).key()

    def test_substantive_policy_edits_change_the_key(self):
        quarter = {"name": "half",
                   "encrypt": [{"region": {"kind": "program"},
                                "fraction": 0.25}]}
        reseeded = dict(PARTIAL_HALF, seed=777)
        base = policied_spec().key()
        assert policied_spec(quarter).key() != base
        assert policied_spec(reseeded).key() != base

    def test_key_is_deterministic_across_revivals(self):
        revived = policy_from_dict(
            policy_to_dict(policy_from_dict(PARTIAL_HALF)))
        assert JobSpec(source=HELLO, name="hello",
                       params=SimParams(policy=revived)).key() \
            == policied_spec().key()

    def test_key_schema_bump_orphans_policy_records(self, tmp_path,
                                                    monkeypatch):
        from repro.farm import spec as spec_module

        matrix = JobMatrix(programs=(("hello", HELLO),),
                           params=(SimParams(
                               policy=policy_from_dict(PARTIAL_HALF)),))
        store = ResultStore(tmp_path)
        warm = SimulationFarm(store=store).run(matrix)
        assert warm.executed == 1
        assert SimulationFarm(store=store).run(matrix).hits == 1

        monkeypatch.setattr(spec_module, "KEY_SCHEMA",
                            spec_module.KEY_SCHEMA + 1)
        bumped = SimulationFarm(store=store).run(matrix)
        assert bumped.hits == 0 and bumped.executed == 1


class TestSweepSpecAxis:
    def test_policies_axis_expands_the_grid(self):
        matrix = JobMatrix.from_spec({
            "programs": [{"name": "hello", "source": HELLO}],
            "policies": [None, PARTIAL_HALF],
        })
        jobs = matrix.jobs()
        assert len(jobs) == 2
        policies = [job.params.policy for job in jobs]
        assert sum(p is None for p in policies) == 1
        assert sum(p is not None and p.name == "half"
                   for p in policies) == 1

    def test_omitted_axis_means_unpolicied(self):
        [job] = JobMatrix.from_spec({
            "programs": [{"name": "hello", "source": HELLO}]}).jobs()
        assert job.params.policy is None

    def test_bad_policy_entries_fail_loudly(self):
        with pytest.raises(ConfigError, match="unknown policy keys"):
            JobMatrix.from_spec({
                "programs": [{"name": "hello", "source": HELLO}],
                "policies": [{"encrpyt": []}]})
        with pytest.raises(ConfigError):
            JobMatrix.from_spec({
                "programs": [{"name": "hello", "source": HELLO}],
                "policies": []})


class TestPolicyExecution:
    def test_record_round_trips_the_policy(self):
        record = execute_job(policied_spec(simulate=False, analyze=True))
        assert record.params["policy"]["name"] == "half"
        assert policy_from_dict(record.params["policy"]) \
            == policy_from_dict(PARTIAL_HALF)
        assert record.analysis["enc_slots"] > 0

    def test_policy_overlap_hde_overrides_params(self):
        base = dict(PARTIAL_HALF)
        overlapped = dict(PARTIAL_HALF, overlap_hde=True)
        serial = execute_job(policied_spec(base))
        fast = execute_job(policied_spec(overlapped))
        assert fast.hde_cycles < fast.hde_serial_cycles
        assert serial.hde_serial_cycles == serial.hde_cycles

    def test_obfuscating_policy_overhead_prices_the_whole_stack(self):
        """The plain baseline of a policied job is the *unobfuscated*
        program, so overhead_pct includes the opaque-predicate cost."""
        plain = execute_job(JobSpec(source=HELLO, name="hello"))
        policy = {
            "name": "guarded",
            "obfuscate": [{"region": {"kind": "program"},
                           "density": 0.2, "junk": 3}],
        }
        guarded = execute_job(policied_spec(policy))
        assert guarded.plain_cycles == plain.plain_cycles
        assert guarded.eric_cycles > guarded.plain_cycles

    def test_report_renders_the_policy_column(self, tmp_path):
        matrix = JobMatrix.from_spec({
            "programs": [{"name": "hello", "source": HELLO}],
            "policies": [None, PARTIAL_HALF],
        })
        report = SimulationFarm(store=ResultStore(tmp_path)).run(matrix)
        rendered = report.render()
        assert "policy" in rendered
        assert "half" in rendered
        # unpolicied rows show a dash, not an empty cell
        assert "-" in rendered
