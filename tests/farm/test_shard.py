"""Distributed farm: shard planning, worker execution, store merging."""

import json

import pytest

from repro.core.config import EncryptionMode, EricConfig
from repro.errors import ConfigError, EricError
from repro.farm import (FarmCoordinator, JobMatrix, JobSpec, ResultStore,
                        ShardPlan, ShardSpec, SimParams, SimulationFarm,
                        load_shard, run_shard)
from repro.puf.environment import Environment

HELLO = 'int main() { print_int(41); print_char(10); return 0; }\n'
GOODBYE = 'int main() { print_int(13); print_char(10); return 0; }\n'
BROKEN = "int main( {"

#: 2 programs x 2 configs, packaging-only: fast enough to shard in tests
MATRIX = JobMatrix(
    programs=(("hello", HELLO), ("goodbye", GOODBYE)),
    configs=(EricConfig(), EricConfig(mode=EncryptionMode.PARTIAL)),
    simulate=False,
)


class TestJobSpecSerialization:
    def test_round_trip_is_key_identical(self):
        spec = JobSpec(
            source=HELLO, name="hello",
            config=EricConfig(mode=EncryptionMode.PARTIAL,
                              partial_fraction=0.25),
            params=SimParams(device_seed=0xBEEF, pipeline="slow-memory",
                             environment=Environment(temperature_c=85.0),
                             overlapped_hde=True, puf_votes=5),
            simulate=False, analyze=True, repeats=2)
        revived = JobSpec.from_dict(spec.to_dict())
        assert revived == spec
        assert revived.key() == spec.key()

    def test_round_trip_survives_json(self):
        spec = JobSpec(workload="crc32")
        revived = JobSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert revived.key() == spec.key()

    def test_from_dict_rejects_junk(self):
        with pytest.raises(ConfigError):
            JobSpec.from_dict({"workload": "crc32", "banana": 1})
        with pytest.raises(ConfigError):
            JobSpec.from_dict("not a dict")
        with pytest.raises(ConfigError):
            JobSpec.from_dict({"workload": "crc32",
                               "params": {"warp_drive": True}})
        with pytest.raises(ConfigError):
            JobSpec.from_dict({})  # neither workload nor source


class TestShardPlan:
    def test_partition_is_contiguous_and_covers_the_key_space(self):
        plan = ShardPlan.partition(MATRIX, shards=3)
        keys = sorted(j.key() for j in MATRIX.jobs())
        planned = [job.key() for shard in plan.shards
                   for job in shard.jobs]
        assert planned == keys  # sorted, deduplicated, complete
        for shard in plan.shards:
            shard_keys = [j.key() for j in shard.jobs]
            assert shard.start == shard_keys[0]
            assert shard.stop == shard_keys[-1]
        # ranges are disjoint and ordered
        for left, right in zip(plan.shards, plan.shards[1:]):
            assert left.stop < right.start

    def test_partition_is_stable_across_runs(self):
        a = ShardPlan.partition(MATRIX, shards=2)
        b = ShardPlan.partition(MATRIX, shards=2)
        assert [s.to_spec() for s in a.shards] \
            == [s.to_spec() for s in b.shards]

    def test_partition_is_near_even(self):
        plan = ShardPlan.partition(MATRIX, shards=3)  # 4 keys over 3
        sizes = [len(s.jobs) for s in plan.shards]
        assert sorted(sizes) == [1, 1, 2]
        assert sizes[0] == 2  # the remainder lands on the first shards

    def test_partition_deduplicates_and_never_yields_empty_shards(self):
        specs = [JobSpec(source=HELLO, name="a", simulate=False),
                 JobSpec(source=HELLO, name="b", simulate=False)]
        plan = ShardPlan.partition(specs, shards=8)
        assert plan.count == 1  # one unique key -> one shard
        assert plan.job_count == 1

    def test_partition_rejects_bad_inputs(self):
        with pytest.raises(ConfigError):
            ShardPlan.partition(MATRIX, shards=0)
        with pytest.raises(ConfigError):
            ShardPlan.partition([], shards=2)


class TestShardSpecSerialization:
    def test_json_round_trip(self):
        [shard] = ShardPlan.partition(MATRIX, shards=1).shards
        revived = ShardSpec.from_spec(
            json.loads(json.dumps(shard.to_spec())))
        assert revived == shard

    def test_rejects_wrong_key_schema(self, monkeypatch):
        """A shard planned under another KEY_SCHEMA must be refused —
        its key ranges no longer address what this code measures."""
        from repro.farm import spec as spec_module

        [shard] = ShardPlan.partition(MATRIX, shards=1).shards
        data = shard.to_spec()
        monkeypatch.setattr(spec_module, "KEY_SCHEMA",
                            spec_module.KEY_SCHEMA + 1)
        with pytest.raises(ConfigError, match="KEY_SCHEMA"):
            ShardSpec.from_spec(data)

    def test_rejects_keys_outside_the_declared_range(self):
        shard = ShardPlan.partition(MATRIX, shards=2).shards[0]
        data = shard.to_spec()
        # graft in a job whose key falls outside this shard's range
        foreign = ShardPlan.partition(MATRIX, shards=2).shards[1]
        data["jobs"].append(foreign.to_spec()["jobs"][-1])
        with pytest.raises(ConfigError, match="different code version"):
            ShardSpec.from_spec(data)

    def test_rejects_junk(self):
        with pytest.raises(ConfigError, match="not a shard spec"):
            ShardSpec.from_spec({"kind": "grocery-list"})
        [shard] = ShardPlan.partition(MATRIX, shards=1).shards
        data = shard.to_spec()
        del data["stop"]
        with pytest.raises(ConfigError, match="misses"):
            ShardSpec.from_spec(data)

    def test_rejects_mistyped_fields_with_config_errors(self):
        """A hand-edited shard.json must fail through the curated
        ConfigError path (-> `eric: error:`), never a raw TypeError."""
        [shard] = ShardPlan.partition(MATRIX, shards=1).shards
        for field, bad in [("index", "0"), ("count", None),
                           ("count", True), ("start", 7), ("stop", [])]:
            data = shard.to_spec()
            data[field] = bad
            with pytest.raises(ConfigError, match=f"shard {field}"):
                ShardSpec.from_spec(data)


class TestWorker:
    def test_load_and_run_shard(self, tmp_path):
        [shard] = ShardPlan.partition(MATRIX, shards=1).shards
        path = tmp_path / "shard.json"
        path.write_text(json.dumps(shard.to_spec()))
        loaded = load_shard(path)
        assert loaded == shard

        report = run_shard(loaded, tmp_path / "store")
        report.require_ok()
        assert report.executed == 4
        # the shard store is itself resumable
        resumed = run_shard(loaded, tmp_path / "store")
        assert resumed.executed == 0 and resumed.hit_rate == 1.0

    def test_load_shard_rejects_malformed_json(self, tmp_path):
        path = tmp_path / "shard.json"
        path.write_text("{nope")
        with pytest.raises(EricError, match="not valid JSON"):
            load_shard(path)


class TestCoordinator:
    def test_sharded_records_match_unsharded(self, tmp_path):
        """The acceptance criterion: a sharded sweep's records are
        byte-identical (modulo wall-clock fields) to a jobs=1 sweep of
        the same matrix, and the merged store then serves an unsharded
        resume with zero simulations."""
        reference = SimulationFarm(
            store=ResultStore(tmp_path / "ref")).run(MATRIX)
        reference.require_ok()

        coordinator = FarmCoordinator(store=ResultStore(tmp_path / "main"),
                                      shards=2)
        report = coordinator.run(MATRIX)
        report.require_ok()
        assert report.executed == 4 and report.hits == 0
        assert report.shards == 2
        assert "shards=2" in report.summary()
        assert {r.key: r.stable_dict() for r in report.records} \
            == {r.key: r.stable_dict() for r in reference.records}
        assert [stats.merged for stats in coordinator.last_merge] == [2, 2]

        resumed = SimulationFarm(
            store=ResultStore(tmp_path / "main")).run(MATRIX)
        assert resumed.executed == 0
        assert resumed.hit_rate == 1.0

    def test_warm_main_store_dispatches_nothing(self, tmp_path):
        store = ResultStore(tmp_path)
        coordinator = FarmCoordinator(store=store, shards=2)
        coordinator.run(MATRIX)
        again = coordinator.run(MATRIX)
        assert again.executed == 0 and again.hit_rate == 1.0
        assert coordinator.plan(MATRIX).count == 0
        assert coordinator.last_merge == ()

    def test_partial_resume_shards_only_the_missing_keys(self, tmp_path):
        store = ResultStore(tmp_path)
        half = JobMatrix(programs=(("hello", HELLO),),
                         configs=MATRIX.configs, simulate=False)
        SimulationFarm(store=store).run(half)

        coordinator = FarmCoordinator(store=store, shards=2)
        assert coordinator.plan(MATRIX).job_count == 2
        report = coordinator.run(MATRIX)
        assert report.hits == 2
        assert report.executed == 2

    def test_failures_carry_worker_tracebacks(self, tmp_path):
        coordinator = FarmCoordinator(store=ResultStore(tmp_path),
                                      shards=2)
        report = coordinator.run([
            JobSpec(source=BROKEN, name="broken", simulate=False),
            JobSpec(source=HELLO, name="hello", simulate=False),
        ])
        assert report.executed == 1
        [failure] = report.failures
        assert failure.spec.display_name == "broken"
        assert "ParseError" in failure.error
        # the trimmed traceback crossed the process boundary
        assert "[at " in failure.error
        with pytest.raises(EricError, match="broken"):
            report.require_ok()
        # the good job's record still merged into the main store
        assert len(ResultStore(tmp_path)) == 1

    def test_duplicate_keys_share_one_shard_slot(self, tmp_path):
        coordinator = FarmCoordinator(store=ResultStore(tmp_path),
                                      shards=2)
        report = coordinator.run([
            JobSpec(source=HELLO, name="a", simulate=False),
            JobSpec(source=HELLO, name="b", simulate=False),
        ])
        report.require_ok()
        assert report.executed == 1
        assert len(report.records) == 2
        assert report.records[0].key == report.records[1].key

    def test_crashed_coordinator_resumes_from_shard_stores(self, tmp_path):
        """If the coordinator dies after workers finish but before the
        merge, a re-run serves the shard stores' records as hits
        instead of re-simulating."""
        first = FarmCoordinator(store=ResultStore(tmp_path / "a"),
                                shards=2, shard_root=tmp_path / "shards")
        first.run(MATRIX)
        # model the crash: a fresh main store, same shard root
        second = FarmCoordinator(store=ResultStore(tmp_path / "b"),
                                 shards=2, shard_root=tmp_path / "shards")
        report = second.run(MATRIX)
        report.require_ok()
        assert report.executed == 0
        assert report.hits == 4  # all served from warm shard stores
        assert len(ResultStore(tmp_path / "b")) == 4

    def test_reused_shard_dirs_cannot_resurrect_stale_records(
            self, tmp_path):
        """Regression: merge_from used to adopt a reused shard store
        wholesale, so leftover records from an earlier run (stale
        relative to a later --force re-measure) would win over fresher
        main-store data.  Merges are now restricted to each shard's
        planned keys."""
        from dataclasses import replace

        main = ResultStore(tmp_path / "main")
        # a fresher main-store record whose key is NOT in this run's
        # plan, plus a stale twin lurking in the reused shard-00 dir
        fresh = replace(
            SimulationFarm().run(
                [JobSpec(source=HELLO, name="other", simulate=False,
                         analyze=True)]).records[0])
        main.put(fresh)
        stale = replace(fresh, package_size=fresh.package_size + 999)
        ResultStore(tmp_path / "shards" / "shard-00").put(stale)

        coordinator = FarmCoordinator(store=main, shards=2,
                                      shard_root=tmp_path / "shards")
        report = coordinator.run(MATRIX)
        report.require_ok()
        assert main.get(fresh.key).package_size == fresh.package_size
        assert sum(stats.ignored for stats in coordinator.last_merge) == 1
        assert "out-of-plan" in coordinator.last_merge[0].describe()

    def test_worker_death_spares_already_completed_jobs(self, tmp_path,
                                                        monkeypatch):
        """Regression: a dying worker's fabricated 'worker died' error
        used to fail every job of its shard, including jobs whose
        records had already been persisted and merged."""
        from repro.farm import ShardOutcome

        coordinator = FarmCoordinator(store=ResultStore(tmp_path / "main"),
                                      shards=2,
                                      shard_root=tmp_path / "shards")
        real_dispatch = coordinator._dispatch

        def dying_dispatch(plan, force):
            # workers complete and persist normally, but shard 0's
            # outcome is lost as if its process died at the very end
            outcomes = real_dispatch(plan, force)
            return [
                outcome if outcome.index != 0 else ShardOutcome(
                    index=0, store_dir=outcome.store_dir, executed=0,
                    hit_keys=(),
                    failures=tuple(
                        (job.key(), "shard 0 worker died: boom")
                        for job in plan.shards[0].jobs),
                    wall_s=0.0)
                for outcome in outcomes]

        monkeypatch.setattr(coordinator, "_dispatch", dying_dispatch)
        report = coordinator.run(MATRIX)
        # every record merged, so no job may be reported as failed
        report.require_ok()
        assert len(report.records) == 4
        assert len(ResultStore(tmp_path / "main")) == 4

        # under --force the record may predate the re-measure, so the
        # worker death must surface as a failure there
        forced = coordinator.run(MATRIX, force=True)
        assert len(forced.failures) == 2
        assert all("worker died" in f.error for f in forced.failures)
        # the farm invariant: a failed slot carries no record
        assert all(f.record is None for f in forced.failures)

    def test_rejects_bad_configuration(self, tmp_path):
        with pytest.raises(ConfigError, match="main store"):
            FarmCoordinator(store=None)
        with pytest.raises(ConfigError):
            FarmCoordinator(store=ResultStore(tmp_path), shards=0)
        with pytest.raises(ConfigError):
            FarmCoordinator(store=ResultStore(tmp_path),
                            jobs_per_shard=0)
        with pytest.raises(ConfigError):
            FarmCoordinator(store=ResultStore(tmp_path)).run([])

    def test_telemetry_and_progress(self, tmp_path):
        from repro.service.telemetry import RecordingTelemetry

        sink = RecordingTelemetry()
        seen = []
        coordinator = FarmCoordinator(
            store=ResultStore(tmp_path), shards=2, telemetry=sink,
            progress=lambda done, total, result:
                seen.append((done, total, result.from_store)))
        coordinator.run(MATRIX)
        assert len(sink.stages("farm.shard")) == 2
        [sweep] = sink.stages("farm.sweep")
        assert "2 shard(s)" in sweep.detail
        assert [s[:2] for s in seen] == [(1, 4), (2, 4), (3, 4), (4, 4)]
