"""SimulationFarm: execution, resume, isolation, fan-out, telemetry."""

import pytest

from repro.errors import ConfigError, EricError
from repro.farm import (DYNAMIC_ATTACKER_SEEDS, JobMatrix, JobSpec,
                        ResultStore, SimParams, SimulationFarm,
                        execute_job)
from repro.puf.environment import Environment
from repro.service.telemetry import RecordingTelemetry
from repro.soc.soc import RunResult

HELLO = 'int main() { print_int(41); print_char(10); return 0; }\n'
GOODBYE = 'int main() { print_int(13); print_char(10); return 0; }\n'
BROKEN = "int main( {"


def hello_matrix(**overrides):
    options = dict(programs=(("hello", HELLO), ("goodbye", GOODBYE)))
    options.update(overrides)
    return JobMatrix(**options)


class TestExecuteJob:
    def test_simulated_record_is_complete(self):
        record = execute_job(JobSpec(source=HELLO, name="hello"))
        assert record.name == "hello"
        assert record.plain_cycles > 0
        assert record.eric_cycles == record.plain_cycles + record.hde_cycles
        assert record.package_size > record.plain_size
        assert record.baseline_s > 0
        assert record.package_total_s > record.baseline_s
        # inline sources have no oracle; registry workloads do
        assert record.stdout_ok is None
        assert record.workload is None

    def test_run_result_serializer_round_trips(self):
        record = execute_job(JobSpec(source=HELLO, name="hello"))
        run = RunResult.from_record(record.eric_run)
        assert run.stdout == "41\n"
        assert run.exit_code == 0
        assert run.counters.cycles == record.eric_run["counters"]["cycles"]

    def test_packaging_only_job_skips_simulation(self):
        record = execute_job(JobSpec(source=HELLO, simulate=False))
        assert record.plain_cycles is None
        assert record.eric_run is None
        assert record.package_size > 0

    def test_registry_workload_checks_oracle(self):
        record = execute_job(JobSpec(workload="basicmath"))
        assert record.stdout_ok is True
        assert record.workload == "basicmath"

    def test_analysis_metrics(self):
        record = execute_job(JobSpec(source=HELLO, simulate=False,
                                     analyze=True))
        assert record.analysis["enc_slots"] > 0
        assert 0.0 <= record.analysis["decode_fraction"] <= 1.0

    def test_analysis_carries_plain_baseline_and_dynamic_outcomes(self):
        record = execute_job(JobSpec(source=HELLO, simulate=False,
                                     analyze=True))
        # the unencrypted text is the static attacker's control sample
        assert record.analysis["plain"]["looks_like_code"] is True
        dynamic = record.analysis["dynamic"]
        assert [d["device_seed"] for d in dynamic] \
            == list(DYNAMIC_ATTACKER_SEEDS)
        # non-target devices must reject the package without leaking
        assert all(d["outcome"] == "rejected" for d in dynamic)
        assert all(not d["leaked"] for d in dynamic)

    def test_dynamic_attack_skips_the_target_device(self):
        """A job whose own seed is in DYNAMIC_ATTACKER_SEEDS must not
        'attack' itself and record a bogus leak."""
        seed = DYNAMIC_ATTACKER_SEEDS[0]
        record = execute_job(JobSpec(
            source=HELLO, simulate=False, analyze=True,
            params=SimParams(device_seed=seed)))
        dynamic = record.analysis["dynamic"]
        assert seed not in {d["device_seed"] for d in dynamic}
        assert len(dynamic) == len(DYNAMIC_ATTACKER_SEEDS) - 1
        assert all(not d["leaked"] for d in dynamic)

    def test_key_stability_fields(self):
        record = execute_job(JobSpec(source=HELLO, simulate=False))
        # Table I policy (screened, 11 votes, nominal point): rock stable
        assert record.key_failure == 0.0
        assert len(record.key_digest) == 64

        noisy = execute_job(JobSpec(
            source=HELLO, simulate=False,
            params=SimParams(puf_noise_sigma=0.4, puf_votes=1,
                             puf_margin_sigmas=0.0)))
        assert noisy.key_failure > 0.0

    def test_environment_threads_into_device_and_key(self):
        nominal = JobSpec(source=HELLO, simulate=False)
        hot = JobSpec(source=HELLO, simulate=False,
                      params=SimParams(environment=Environment(
                          temperature_c=125.0, voltage=0.8)))
        assert nominal.key() != hot.key()
        record = execute_job(hot)
        assert record.params["environment"]["temperature_c"] == 125.0
        # screened + voted keys survive the extreme corner on this die
        assert record.key_failure == 0.0

    def test_overlapped_hde_serial_accounting(self):
        serial = execute_job(JobSpec(source=HELLO))
        overlapped = execute_job(JobSpec(
            source=HELLO, params=SimParams(overlapped_hde=True)))
        assert serial.hde_serial_cycles == serial.hde_cycles
        assert overlapped.hde_cycles < overlapped.hde_serial_cycles
        assert overlapped.hde_serial_cycles == serial.hde_cycles
        # overlap hides HDE latency; the program run is untouched
        assert overlapped.plain_cycles == serial.plain_cycles


class TestFarmRun:
    def test_resume_serves_everything_from_store(self, tmp_path):
        matrix = hello_matrix()
        first = SimulationFarm(store=ResultStore(tmp_path)).run(matrix)
        assert first.executed == 2 and first.hits == 0

        second = SimulationFarm(store=ResultStore(tmp_path)).run(matrix)
        assert second.executed == 0
        assert second.hits == 2
        assert second.hit_rate == 1.0
        assert [r.key for r in second.records] \
            == [r.key for r in first.records]

    def test_force_re_measures(self, tmp_path):
        matrix = hello_matrix()
        farm = SimulationFarm(store=ResultStore(tmp_path))
        farm.run(matrix)
        forced = farm.run(matrix, force=True)
        assert forced.executed == 2 and forced.hits == 0

    def test_partial_resume_only_runs_new_jobs(self, tmp_path):
        store = ResultStore(tmp_path)
        SimulationFarm(store=store).run(
            JobMatrix(programs=(("hello", HELLO),)))
        report = SimulationFarm(store=store).run(hello_matrix())
        assert report.hits == 1
        assert report.executed == 1

    def test_key_schema_bump_re_measures_a_warm_store(self, tmp_path,
                                                      monkeypatch):
        """A KEY_SCHEMA bump orphans every stored record: resume must
        re-measure instead of serving stale results."""
        from repro.farm import spec as spec_module

        matrix = hello_matrix()
        store = ResultStore(tmp_path)
        warm = SimulationFarm(store=store).run(matrix)
        assert warm.executed == 2

        monkeypatch.setattr(spec_module, "KEY_SCHEMA",
                            spec_module.KEY_SCHEMA + 1)
        bumped = SimulationFarm(store=store).run(matrix)
        assert bumped.hits == 0
        assert bumped.executed == 2
        # old records stay on disk (harmless) until a compact + reload
        assert len(store) == 4

    def test_no_store_always_measures(self):
        farm = SimulationFarm()
        matrix = JobMatrix(programs=(("hello", HELLO),))
        assert farm.run(matrix).executed == 1
        assert farm.run(matrix).executed == 1

    def test_failure_isolation(self, tmp_path):
        store = ResultStore(tmp_path)
        report = SimulationFarm(store=store).run([
            JobSpec(source=BROKEN, name="broken"),
            JobSpec(source=HELLO, name="hello"),
        ])
        assert report.executed == 1
        [failure] = report.failures
        assert failure.spec.display_name == "broken"
        assert "ParseError" in failure.error
        # failed jobs are never persisted: the next run retries them
        assert len(store) == 1
        with pytest.raises(EricError, match="broken"):
            report.require_ok()

    def test_errors_carry_a_trimmed_traceback(self):
        """Regression: errors used to keep only the exception's last
        line, which made remote shard failures undebuggable.  The
        single-line error now names the innermost frames, and
        require_ok surfaces them."""
        report = SimulationFarm().run(
            [JobSpec(source=BROKEN, name="broken")])
        [failure] = report.failures
        assert "ParseError" in failure.error
        assert "[at " in failure.error
        assert ".py:" in failure.error  # file:line of a real frame
        assert "\n" not in failure.error  # stays one line for summaries
        with pytest.raises(EricError, match=r"\[at .*\.py:"):
            report.require_ok()

    def test_total_eric_cycles_sums_only_simulated_records(self, tmp_path):
        """Regression: `or 0` conflated unsimulated records
        (eric_cycles is None) with a measured zero; the sum now skips
        records that were never simulated."""
        report = SimulationFarm(store=ResultStore(tmp_path)).run([
            JobSpec(source=HELLO, name="sim"),
            JobSpec(source=GOODBYE, name="nosim", simulate=False),
        ])
        report.require_ok()
        simulated = [r for r in report.records
                     if r.eric_cycles is not None]
        assert len(simulated) == 1  # the simulate=False record is out
        assert report.total_eric_cycles == simulated[0].eric_cycles
        assert report.total_eric_cycles > 0

    def test_process_pool_fan_out(self, tmp_path):
        report = SimulationFarm(store=ResultStore(tmp_path),
                                jobs=2).run(hello_matrix())
        assert report.executed == 2
        assert report.failures == ()
        inline = SimulationFarm().run(hello_matrix())
        assert [r.eric_cycles for r in report.records] \
            == [r.eric_cycles for r in inline.records]

    def test_pool_failure_isolation(self):
        report = SimulationFarm(jobs=2).run([
            JobSpec(source=BROKEN, name="broken"),
            JobSpec(source=HELLO, name="hello"),
            JobSpec(source=GOODBYE, name="goodbye"),
        ])
        assert report.executed == 2
        assert len(report.failures) == 1

    def test_empty_and_invalid_inputs(self):
        farm = SimulationFarm()
        with pytest.raises(ConfigError):
            farm.run([])
        with pytest.raises(ConfigError):
            SimulationFarm(jobs=0)

    def test_keyboard_interrupt_aborts_the_sweep(self, monkeypatch):
        """Ctrl-C must stop a sweep, not be recorded as a job failure."""
        from repro.farm import executor

        monkeypatch.setattr(
            executor, "execute_job",
            lambda spec: (_ for _ in ()).throw(KeyboardInterrupt()))
        with pytest.raises(KeyboardInterrupt):
            SimulationFarm().run([JobSpec(source=HELLO, name="hello")])

    def test_inline_record_satisfies_registry_lookup(self, tmp_path):
        """The key ignores how a source was provided, so a record
        measured from an inline source (no oracle, stdout_ok=None) may
        serve a registry-workload job; output_ok re-checks the console
        against the caller's oracle instead of failing."""
        from repro.workloads import get_workload

        store = ResultStore(tmp_path)
        inline = JobSpec(source=get_workload("basicmath").source,
                         name="whatever")
        SimulationFarm(store=store).run([inline])

        report = SimulationFarm(store=store).run(
            JobMatrix(workloads=("basicmath",)))
        assert report.hits == 1
        [job] = report.results
        record = job.record
        assert record.stdout_ok is None  # measured without an oracle
        expected = get_workload("basicmath").expected_stdout
        assert record.output_ok(expected)
        assert not record.output_ok("something else entirely\n")


class TestObservability:
    def test_telemetry_and_progress(self, tmp_path):
        sink = RecordingTelemetry()
        seen = []
        farm = SimulationFarm(
            store=ResultStore(tmp_path), telemetry=sink,
            progress=lambda done, total, result:
                seen.append((done, total, result.from_store)))
        farm.run(hello_matrix())
        assert len(sink.stages("farm.job")) == 2
        [sweep] = sink.stages("farm.sweep")
        assert "2 executed" in sweep.detail
        assert seen == [(1, 2, False), (2, 2, False)]

        seen.clear()
        farm.run(hello_matrix())
        assert seen == [(1, 2, True), (2, 2, True)]

    def test_progress_failures_are_isolated(self, tmp_path):
        def explode(done, total, result):
            raise RuntimeError("bad progress hook")

        farm = SimulationFarm(store=ResultStore(tmp_path),
                              progress=explode)
        report = farm.run(JobMatrix(programs=(("hello", HELLO),)))
        assert report.failures == ()

    def test_report_render_is_sorted_and_stable(self, tmp_path):
        farm = SimulationFarm(store=ResultStore(tmp_path))
        farm.run(hello_matrix())  # populate the store
        # submission order differs; rendering must not
        a = farm.run([JobSpec(source=HELLO, name="hello"),
                      JobSpec(source=GOODBYE, name="goodbye")])
        b = farm.run([JobSpec(source=GOODBYE, name="goodbye"),
                      JobSpec(source=HELLO, name="hello")])
        assert a.render() == b.render()
        assert "hit" in b.render()
