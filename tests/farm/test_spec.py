"""Job keys and matrix expansion: the farm's content-addressing layer."""

import pytest

from repro.core.config import EncryptionMode, EricConfig
from repro.errors import ConfigError
from repro.farm import PIPELINE_VARIANTS, JobMatrix, JobSpec, SimParams
from repro.puf.environment import Environment
from repro.workloads import get_workload

HELLO = "int main() { print_int(7); return 0; }\n"


class TestJobKeys:
    def test_key_is_stable(self):
        spec = JobSpec(workload="crc32")
        assert spec.key() == spec.key()
        assert spec.key() == JobSpec(workload="crc32").key()

    def test_key_ignores_display_name(self):
        # renaming a job must not invalidate its stored measurement
        a = JobSpec(workload="crc32", name="a")
        b = JobSpec(workload="crc32", name="b")
        assert a.key() == b.key()

    def test_inline_source_matches_registry_workload(self):
        by_name = JobSpec(workload="crc32")
        inline = JobSpec(source=get_workload("crc32").source, name="x")
        assert by_name.key() == inline.key()

    def test_key_covers_every_measurement_input(self):
        base = JobSpec(workload="crc32")
        variants = [
            JobSpec(workload="fft"),
            JobSpec(workload="crc32",
                    config=EricConfig(mode=EncryptionMode.PARTIAL)),
            JobSpec(workload="crc32",
                    params=SimParams(device_seed=0xBEEF)),
            JobSpec(workload="crc32",
                    params=SimParams(pipeline="slow-memory")),
            JobSpec(workload="crc32",
                    params=SimParams(
                        environment=Environment(temperature_c=85.0))),
            JobSpec(workload="crc32",
                    params=SimParams(overlapped_hde=True)),
            JobSpec(workload="crc32",
                    params=SimParams(puf_noise_sigma=0.15)),
            JobSpec(workload="crc32", params=SimParams(puf_votes=5)),
            JobSpec(workload="crc32",
                    params=SimParams(puf_margin_sigmas=0.0)),
            JobSpec(workload="crc32", simulate=False),
            JobSpec(workload="crc32", analyze=True),
            JobSpec(workload="crc32", repeats=3),
        ]
        keys = {base.key()} | {v.key() for v in variants}
        assert len(keys) == len(variants) + 1

    def test_key_schema_bump_orphans_old_keys(self, monkeypatch):
        """The store resumes by exact key match, so bumping KEY_SCHEMA
        must re-address every job (old records stop being served)."""
        from repro.farm import spec as spec_module

        spec = JobSpec(workload="crc32")
        old_key = spec.key()
        monkeypatch.setattr(spec_module, "KEY_SCHEMA",
                            spec_module.KEY_SCHEMA + 1)
        assert spec.key() != old_key

    def test_validation_rejects_bad_specs(self):
        with pytest.raises(ConfigError):
            JobSpec().validate()  # neither workload nor source
        with pytest.raises(ConfigError):
            JobSpec(workload="crc32", source=HELLO).validate()  # both
        with pytest.raises(ConfigError):
            JobSpec(workload="no-such-workload").validate()
        with pytest.raises(ConfigError):
            JobSpec(workload="crc32", repeats=0).validate()
        with pytest.raises(ConfigError):
            JobSpec(workload="crc32",
                    params=SimParams(pipeline="warp-speed")).validate()
        with pytest.raises(ConfigError):
            JobSpec(workload="crc32",
                    params=SimParams(puf_votes=4)).validate()
        with pytest.raises(ConfigError):
            JobSpec(workload="crc32",
                    params=SimParams(puf_noise_sigma=-0.1)).validate()
        with pytest.raises(ConfigError):
            JobSpec(workload="crc32",
                    params=SimParams(environment="hot")).validate()
        with pytest.raises(ConfigError):
            JobSpec(workload="crc32", params=SimParams(
                environment=Environment(voltage=0.0))).validate()

    def test_oracle_resolution(self):
        source, expected = JobSpec(workload="crc32").resolve_source()
        assert expected == get_workload("crc32").expected_stdout
        source, expected = JobSpec(source=HELLO).resolve_source()
        assert expected is None and source == HELLO


class TestJobMatrix:
    def test_expansion_is_workload_major_and_deterministic(self):
        matrix = JobMatrix(
            workloads=("crc32", "fft"),
            configs=(EricConfig(),
                     EricConfig(mode=EncryptionMode.PARTIAL)),
            params=(SimParams(), SimParams(device_seed=1)),
        )
        jobs = matrix.jobs()
        assert len(jobs) == matrix.job_count == 8
        assert [j.display_name for j in jobs[:4]] == ["crc32"] * 4
        assert jobs == matrix.jobs()  # stable expansion

    def test_empty_matrix_rejected(self):
        with pytest.raises(ConfigError):
            JobMatrix().jobs()
        with pytest.raises(ConfigError):
            JobMatrix(workloads=("crc32",), configs=()).jobs()

    def test_from_spec_full_dialect(self):
        matrix = JobMatrix.from_spec({
            "workloads": ["crc32"],
            "programs": [{"name": "hello", "source": HELLO}],
            "configs": [{}, {"mode": "partial", "partial_fraction": 0.25}],
            "device_seeds": [16, 17],
            "pipelines": ["default", "slow-memory"],
            "simulate": False,
            "repeats": 2,
        })
        jobs = matrix.jobs()
        assert len(jobs) == 2 * 2 * (2 * 2)
        assert not jobs[0].simulate
        assert jobs[0].repeats == 2
        seeds = {j.params.device_seed for j in jobs}
        assert seeds == {16, 17}

    def test_from_spec_environment_and_overlap_axes(self):
        matrix = JobMatrix.from_spec({
            "workloads": ["crc32"],
            "environments": [{}, {"temperature_c": 85.0, "voltage": 0.9}],
            "overlapped_hde": [False, True],
        })
        jobs = matrix.jobs()
        assert len(jobs) == 4
        environments = {j.params.environment for j in jobs}
        assert environments == {Environment(),
                                Environment(temperature_c=85.0,
                                            voltage=0.9)}
        assert {j.params.overlapped_hde for j in jobs} == {False, True}
        assert len({j.key() for j in jobs}) == 4

    def test_from_spec_overlapped_scalar_back_compat(self):
        # the pre-environments dialect spelled overlapped_hde as a bool
        matrix = JobMatrix.from_spec({"workloads": ["crc32"],
                                      "overlapped_hde": True})
        [job] = matrix.jobs()
        assert job.params.overlapped_hde is True
        assert job.params.environment == Environment()

    def test_from_spec_rejects_bad_environment_axes(self):
        for bad in [[], "hot", [[]], [{"planet": "mars"}],
                    [{"temperature_c": "warm"}],
                    [{"voltage": True}]]:
            with pytest.raises(ConfigError):
                JobMatrix.from_spec({"workloads": ["crc32"],
                                     "environments": bad})
        for bad in [[], "yes", [False, "yes"], 1]:
            with pytest.raises(ConfigError):
                JobMatrix.from_spec({"workloads": ["crc32"],
                                     "overlapped_hde": bad})

    def test_from_spec_accepts_hex_seed_strings(self):
        # JSON has no hex literals; "0x10" is the natural spelling
        matrix = JobMatrix.from_spec({"workloads": ["crc32"],
                                      "device_seeds": ["0x10", 17]})
        assert {j.params.device_seed for j in matrix.jobs()} == {16, 17}

    def test_from_spec_rejects_non_integer_seeds(self):
        for bad in [1.5, True, None, "seventeen", [16]]:
            with pytest.raises(ConfigError):
                JobMatrix.from_spec({"workloads": ["crc32"],
                                     "device_seeds": [bad]})
        with pytest.raises(ConfigError):
            JobMatrix.from_spec({"workloads": ["crc32"],
                                 "repeats": "many"})

    def test_from_spec_rejects_junk(self):
        with pytest.raises(ConfigError):
            JobMatrix.from_spec({"workload": ["crc32"]})  # typo'd key
        with pytest.raises(ConfigError):
            JobMatrix.from_spec({"workloads": ["nope"]})
        with pytest.raises(ConfigError):
            JobMatrix.from_spec({"workloads": ["crc32"],
                                 "pipelines": ["warp"]})
        with pytest.raises(ConfigError):
            JobMatrix.from_spec({"programs": [{"name": "x"}]})
        with pytest.raises(ConfigError):
            JobMatrix.from_spec({"workloads": ["crc32"],
                                 "configs": [{"mode": "nonsense"}]})
        with pytest.raises(ConfigError):
            JobMatrix.from_spec([])  # not an object

    def test_pipeline_variants_cover_the_ablation(self):
        assert {"default", "slow-divider", "fast-memory", "slow-memory",
                "costly-flush"} <= set(PIPELINE_VARIANTS)
