"""Job keys and matrix expansion: the farm's content-addressing layer."""

import pytest

from repro.core.config import EncryptionMode, EricConfig
from repro.errors import ConfigError
from repro.farm import PIPELINE_VARIANTS, JobMatrix, JobSpec, SimParams
from repro.workloads import get_workload

HELLO = "int main() { print_int(7); return 0; }\n"


class TestJobKeys:
    def test_key_is_stable(self):
        spec = JobSpec(workload="crc32")
        assert spec.key() == spec.key()
        assert spec.key() == JobSpec(workload="crc32").key()

    def test_key_ignores_display_name(self):
        # renaming a job must not invalidate its stored measurement
        a = JobSpec(workload="crc32", name="a")
        b = JobSpec(workload="crc32", name="b")
        assert a.key() == b.key()

    def test_inline_source_matches_registry_workload(self):
        by_name = JobSpec(workload="crc32")
        inline = JobSpec(source=get_workload("crc32").source, name="x")
        assert by_name.key() == inline.key()

    def test_key_covers_every_measurement_input(self):
        base = JobSpec(workload="crc32")
        variants = [
            JobSpec(workload="fft"),
            JobSpec(workload="crc32",
                    config=EricConfig(mode=EncryptionMode.PARTIAL)),
            JobSpec(workload="crc32",
                    params=SimParams(device_seed=0xBEEF)),
            JobSpec(workload="crc32",
                    params=SimParams(pipeline="slow-memory")),
            JobSpec(workload="crc32", simulate=False),
            JobSpec(workload="crc32", analyze=True),
            JobSpec(workload="crc32", repeats=3),
        ]
        keys = {base.key()} | {v.key() for v in variants}
        assert len(keys) == len(variants) + 1

    def test_validation_rejects_bad_specs(self):
        with pytest.raises(ConfigError):
            JobSpec().validate()  # neither workload nor source
        with pytest.raises(ConfigError):
            JobSpec(workload="crc32", source=HELLO).validate()  # both
        with pytest.raises(ConfigError):
            JobSpec(workload="no-such-workload").validate()
        with pytest.raises(ConfigError):
            JobSpec(workload="crc32", repeats=0).validate()
        with pytest.raises(ConfigError):
            JobSpec(workload="crc32",
                    params=SimParams(pipeline="warp-speed")).validate()

    def test_oracle_resolution(self):
        source, expected = JobSpec(workload="crc32").resolve_source()
        assert expected == get_workload("crc32").expected_stdout
        source, expected = JobSpec(source=HELLO).resolve_source()
        assert expected is None and source == HELLO


class TestJobMatrix:
    def test_expansion_is_workload_major_and_deterministic(self):
        matrix = JobMatrix(
            workloads=("crc32", "fft"),
            configs=(EricConfig(),
                     EricConfig(mode=EncryptionMode.PARTIAL)),
            params=(SimParams(), SimParams(device_seed=1)),
        )
        jobs = matrix.jobs()
        assert len(jobs) == matrix.job_count == 8
        assert [j.display_name for j in jobs[:4]] == ["crc32"] * 4
        assert jobs == matrix.jobs()  # stable expansion

    def test_empty_matrix_rejected(self):
        with pytest.raises(ConfigError):
            JobMatrix().jobs()
        with pytest.raises(ConfigError):
            JobMatrix(workloads=("crc32",), configs=()).jobs()

    def test_from_spec_full_dialect(self):
        matrix = JobMatrix.from_spec({
            "workloads": ["crc32"],
            "programs": [{"name": "hello", "source": HELLO}],
            "configs": [{}, {"mode": "partial", "partial_fraction": 0.25}],
            "device_seeds": [16, 17],
            "pipelines": ["default", "slow-memory"],
            "simulate": False,
            "repeats": 2,
        })
        jobs = matrix.jobs()
        assert len(jobs) == 2 * 2 * (2 * 2)
        assert not jobs[0].simulate
        assert jobs[0].repeats == 2
        seeds = {j.params.device_seed for j in jobs}
        assert seeds == {16, 17}

    def test_from_spec_accepts_hex_seed_strings(self):
        # JSON has no hex literals; "0x10" is the natural spelling
        matrix = JobMatrix.from_spec({"workloads": ["crc32"],
                                      "device_seeds": ["0x10", 17]})
        assert {j.params.device_seed for j in matrix.jobs()} == {16, 17}

    def test_from_spec_rejects_non_integer_seeds(self):
        for bad in [1.5, True, None, "seventeen", [16]]:
            with pytest.raises(ConfigError):
                JobMatrix.from_spec({"workloads": ["crc32"],
                                     "device_seeds": [bad]})
        with pytest.raises(ConfigError):
            JobMatrix.from_spec({"workloads": ["crc32"],
                                 "repeats": "many"})

    def test_from_spec_rejects_junk(self):
        with pytest.raises(ConfigError):
            JobMatrix.from_spec({"workload": ["crc32"]})  # typo'd key
        with pytest.raises(ConfigError):
            JobMatrix.from_spec({"workloads": ["nope"]})
        with pytest.raises(ConfigError):
            JobMatrix.from_spec({"workloads": ["crc32"],
                                 "pipelines": ["warp"]})
        with pytest.raises(ConfigError):
            JobMatrix.from_spec({"programs": [{"name": "x"}]})
        with pytest.raises(ConfigError):
            JobMatrix.from_spec({"workloads": ["crc32"],
                                 "configs": [{"mode": "nonsense"}]})
        with pytest.raises(ConfigError):
            JobMatrix.from_spec([])  # not an object

    def test_pipeline_variants_cover_the_ablation(self):
        assert {"default", "slow-divider", "fast-memory", "slow-memory",
                "costly-flush"} <= set(PIPELINE_VARIANTS)
