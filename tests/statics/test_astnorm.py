"""Canonicalization: formatting-blind, semantics-sensitive."""

from repro.statics.astnorm import canonical, source_fingerprint

BASE = """
class Pipeline:
    def charge(self, op):
        penalty = 24
        return penalty if op == "load" else 1
"""

REFORMATTED = '''
# A comment the AST never sees.

class Pipeline:
    """Docstring, stripped."""

    def charge(
        self,
        op,
    ):
        """Also stripped."""
        penalty = 24
        return (
            penalty
            if op == "load"
            else 1
        )
'''

CONSTANT_EDIT = BASE.replace("penalty = 24", "penalty = 25")
RENAME_EDIT = BASE.replace("charge", "cost")


class TestCanonical:
    def test_formatting_and_docs_are_invisible(self):
        assert canonical(BASE) == canonical(REFORMATTED)
        assert source_fingerprint(BASE) == source_fingerprint(REFORMATTED)

    def test_constant_edit_changes_fingerprint(self):
        assert source_fingerprint(BASE) != source_fingerprint(CONSTANT_EDIT)

    def test_rename_changes_fingerprint(self):
        assert source_fingerprint(BASE) != source_fingerprint(RENAME_EDIT)

    def test_docstring_only_body_equals_pass(self):
        assert canonical('def f():\n    "doc"\n') == \
            canonical("def f():\n    pass\n")

    def test_stable_across_calls(self):
        assert source_fingerprint(BASE) == source_fingerprint(BASE)

    def test_module_docstring_stripped(self):
        assert canonical('"""mod doc"""\nx = 1\n') == canonical("x = 1\n")

    def test_string_constants_still_count(self):
        # only *docstring positions* are stripped; a string used as a
        # value is semantics
        assert canonical('x = "a"\n') != canonical('x = "b"\n')
