"""Good: the payload builder is a pure function of the record; the
wall-clock read happens outside it and lands in a volatile field."""

import time


class Record:
    def __init__(self, key):
        self.key = key
        self.wall_s = 0.0

    def to_record(self):
        return {"key": self.key}


def measure(record):
    start = time.perf_counter()
    payload = record.to_record()
    record.wall_s = time.perf_counter() - start
    return payload
