"""Good: every span a function starts is either finished there or
escapes (returned / passed onward) for the caller to finish."""


def traced_step(tracer):
    span = tracer.start("step")
    try:
        return 42
    finally:
        span.finish()


def open_root(tracer):
    root = tracer.start("root")
    return root


def child_of(tracer, parent):
    child = tracer.start("child", parent=parent)
    register(child)


def register(span):
    span.finish()
