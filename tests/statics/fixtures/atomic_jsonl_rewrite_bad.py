"""Bad: the store file is truncated and rewritten in place — a crash
mid-write leaves a half-written results.jsonl behind."""

import os

FILENAME = "results.jsonl"


def rewrite(root, lines):
    with open(os.path.join(root, FILENAME), "w",
              encoding="utf-8") as handle:
        handle.write("".join(line + "\n" for line in lines))
