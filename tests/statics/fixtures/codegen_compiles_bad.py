"""Bad: the second emitted snippet has a syntax error (an emitter bug
— e.g. a missing newline between statements)."""

SUPERBLOCK_SOURCES = [
    "def sb(cpu, mem):\n    cpu.pc += 4\n    return 1\n",
    "def sb(cpu, mem):\n    cpu.pc += 4 return 1\n",
]
