"""Bad: the record grew a field but PIN_SCHEMA was not bumped, so old
serialized records would still match the unchanged schema value."""

from dataclasses import dataclass

PIN_SCHEMA = 1


@dataclass(frozen=True)
class PinnedRecord:
    key: str
    value: int
    extra: float = 0.0
    schema: int = PIN_SCHEMA
