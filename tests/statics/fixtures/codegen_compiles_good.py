"""Good: every emitted superblock snippet compiles."""

SUPERBLOCK_SOURCES = [
    "def sb(cpu, mem):\n    cpu.pc += 4\n    return 1\n",
    "def sb(cpu, mem):\n    cpu.regs[3] = cpu.regs[1] + cpu.regs[2]\n"
    "    cpu.pc += 4\n    return 1\n",
]
