"""Bad: the span is started, used for nothing, and dropped — every
call leaves an unfinished span in the trace file."""


def leaky_step(tracer):
    span = tracer.start("step")
    result = 40 + 2
    return result
