"""Bad: the payload builder stamps the current wall clock into the
record body, so two measurements of the same key never compare equal."""

import time


class Record:
    def __init__(self, key):
        self.key = key

    def to_record(self):
        return {"key": self.key, "measured_at": time.time()}
