"""Good: the record's field set matches the digest pinned for
PIN_SCHEMA=1 in repro.statics.rules.SCHEMA_PINS."""

from dataclasses import dataclass

PIN_SCHEMA = 1


@dataclass(frozen=True)
class PinnedRecord:
    key: str
    value: int
    schema: int = PIN_SCHEMA
