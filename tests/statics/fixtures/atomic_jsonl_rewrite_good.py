"""Good: the store rewrite lands in a temp file first and is moved
over the live file with os.replace — a crash leaves the old file."""

import os
import tempfile

FILENAME = "results.jsonl"


def rewrite(root, lines):
    handle, tmp_name = tempfile.mkstemp(dir=root, suffix=".tmp")
    with os.fdopen(handle, "w", encoding="utf-8") as tmp:
        tmp.write("".join(line + "\n" for line in lines))
    os.replace(tmp_name, os.path.join(root, FILENAME))
