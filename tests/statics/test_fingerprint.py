"""Model fingerprint: byte-stable, formatting-blind, timing-sensitive."""

import json
import os
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.statics.fingerprint import (FINGERPRINT_MODULES,
                                       FingerprintReport, compute_report,
                                       fingerprint_report,
                                       model_fingerprint)

PACKAGE_ROOT = Path(repro.__file__).resolve().parent


@pytest.fixture
def tree_copy(tmp_path):
    """A private copy of just the fingerprinted modules."""
    root = tmp_path / "repro"
    for rel in FINGERPRINT_MODULES:
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(PACKAGE_ROOT / rel, target)
    return root


class TestFingerprint:
    def test_covers_every_declared_module(self):
        report = compute_report()
        assert set(report.modules) == set(FINGERPRINT_MODULES)

    def test_memoized_report_matches_fresh_compute(self):
        assert fingerprint_report().fingerprint == \
            compute_report().fingerprint
        assert model_fingerprint() == fingerprint_report().fingerprint

    def test_byte_stable_across_processes(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(PACKAGE_ROOT.parent)
        out = subprocess.run(
            [sys.executable, "-c",
             "from repro.statics import model_fingerprint;"
             "print(model_fingerprint())"],
            capture_output=True, text=True, check=True, env=env)
        assert out.stdout.strip() == model_fingerprint()

    def test_comment_and_docstring_edits_change_nothing(self, tree_copy):
        before = compute_report(tree_copy)
        pipeline = tree_copy / "soc" / "pipeline.py"
        pipeline.write_text("# tooling banner\n"
                            + pipeline.read_text(encoding="utf-8")
                            + "\n# trailing note\n", encoding="utf-8")
        assert compute_report(tree_copy).fingerprint == before.fingerprint

    def test_latency_constant_edit_changes_fingerprint(self, tree_copy):
        before = compute_report(tree_copy)
        pipeline = tree_copy / "soc" / "pipeline.py"
        source = pipeline.read_text(encoding="utf-8")
        assert "miss_penalty: int = 24" in source
        pipeline.write_text(
            source.replace("miss_penalty: int = 24",
                           "miss_penalty: int = 25"), encoding="utf-8")
        after = compute_report(tree_copy)
        assert after.fingerprint != before.fingerprint
        changed = [name for name in after.modules
                   if after.modules[name] != before.modules[name]]
        assert changed == ["soc/pipeline.py"]

    def test_report_roundtrips_through_json(self):
        report = compute_report()
        revived = FingerprintReport.from_dict(
            json.loads(report.to_json()))
        assert revived == report

    def test_from_dict_rejects_junk(self):
        with pytest.raises(ValueError, match="not a fingerprint report"):
            FingerprintReport.from_dict(["nope"])
        with pytest.raises(ValueError, match="not a fingerprint report"):
            FingerprintReport.from_dict({"fingerprint": 7, "modules": {}})

    def test_diff_names_the_drifted_module(self, tree_copy):
        before = compute_report(tree_copy)
        pipeline = tree_copy / "soc" / "pipeline.py"
        pipeline.write_text(
            pipeline.read_text(encoding="utf-8").replace(
                "flush_penalty: int = 2", "flush_penalty: int = 3"),
            encoding="utf-8")
        text = compute_report(tree_copy).diff(before)
        assert "fingerprint drifted" in text
        assert "changed  soc/pipeline.py" in text

    def test_diff_of_equal_reports_says_match(self):
        report = compute_report()
        assert "fingerprints match" in report.diff(report)
