"""``eric lint`` / ``eric fingerprint`` / ``eric doctor --fingerprint``."""

import dataclasses
import json
from pathlib import Path

from repro.cli import main
from repro.statics.fingerprint import model_fingerprint

FIXTURES = Path(__file__).parent / "fixtures"


class TestLintCommand:
    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "wallclock-in-payload:" in out
        assert "codegen-compiles:" in out

    def test_clean_file_exits_zero(self, capsys):
        good = str(FIXTURES / "span_must_finish_good.py")
        assert main(["lint", good]) == 0
        assert capsys.readouterr().out == ""

    def test_bad_file_exits_one_with_rule_and_line(self, capsys):
        bad = str(FIXTURES / "span_must_finish_bad.py")
        assert main(["lint", bad]) == 1
        captured = capsys.readouterr()
        assert "[span-must-finish]" in captured.out
        assert ":6:" in captured.out
        assert "1 finding(s)" in captured.err

    def test_rule_filter(self, capsys):
        bad = str(FIXTURES / "span_must_finish_bad.py")
        assert main(["lint", "--rule", "wallclock-in-payload", bad]) == 0
        capsys.readouterr()

    def test_unknown_rule_is_a_cli_error(self, capsys):
        assert main(["lint", "--rule", "nope"]) == 1
        assert "unknown rule" in capsys.readouterr().err


class TestFingerprintCommand:
    def test_prints_the_digest(self, capsys):
        assert main(["fingerprint"]) == 0
        out = capsys.readouterr().out.strip()
        assert out == model_fingerprint()

    def test_explain_lists_modules(self, capsys):
        assert main(["fingerprint", "--explain"]) == 0
        out = capsys.readouterr().out
        assert "soc/pipeline.py" in out
        assert model_fingerprint() in out

    def test_diff_roundtrip_and_drift(self, tmp_path, capsys):
        report = tmp_path / "fp.json"
        assert main(["fingerprint", "--json"]) == 0
        report.write_text(capsys.readouterr().out)

        assert main(["fingerprint", "--diff", str(report)]) == 0
        assert "fingerprints match" in capsys.readouterr().out

        data = json.loads(report.read_text())
        data["fingerprint"] = "0" * 64
        data["modules"]["soc/pipeline.py"] = "0" * 64
        report.write_text(json.dumps(data))
        assert main(["fingerprint", "--diff", str(report)]) == 1
        out = capsys.readouterr().out
        assert "fingerprint drifted" in out
        assert "changed  soc/pipeline.py" in out

    def test_diff_rejects_junk_report(self, tmp_path, capsys):
        junk = tmp_path / "junk.json"
        junk.write_text('{"modules": {}}')
        assert main(["fingerprint", "--diff", str(junk)]) == 1
        assert "not a fingerprint report" in capsys.readouterr().err


class TestDoctorFingerprintFlag:
    def make_store(self, tmp_path, fingerprint):
        from repro.farm.executor import execute_job
        from repro.farm.spec import JobSpec
        record = execute_job(JobSpec(
            source="int main() { return 0; }", name="probe",
            simulate=False).validate())
        record = dataclasses.replace(record,
                                     model_fingerprint=fingerprint)
        (tmp_path / "results.jsonl").write_text(record.to_json() + "\n")
        return str(tmp_path)

    def test_matching_store_passes(self, tmp_path, capsys):
        store = self.make_store(tmp_path, model_fingerprint())
        assert main(["doctor", "--store", store, "--fingerprint"]) == 0
        out = capsys.readouterr().out
        assert "1 matching, 0 drifted" in out

    def test_drifted_store_fails(self, tmp_path, capsys):
        store = self.make_store(tmp_path, "d" * 64)
        assert main(["doctor", "--store", store, "--fingerprint"]) == 1
        out = capsys.readouterr().out
        assert "0 matching, 1 drifted" in out
        assert "NEEDS ATTENTION" in out

    def test_without_flag_drift_is_invisible(self, tmp_path, capsys):
        store = self.make_store(tmp_path, "d" * 64)
        assert main(["doctor", "--store", store]) == 0
        assert "fingerprint:" not in capsys.readouterr().out
