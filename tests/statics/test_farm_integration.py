"""The fingerprint reaches the farm: job keys, records, shard specs,
and the doctor's drift audit."""

import dataclasses

import pytest

import repro.statics.fingerprint as fingerprint_mod
from repro.errors import ConfigError
from repro.farm.doctor import audit_fingerprints
from repro.farm.executor import execute_job
from repro.farm.spec import JobSpec, ShardPlan, ShardSpec
from repro.farm.store import STORE_SCHEMA, FarmRecord, ResultStore
from repro.statics.fingerprint import FingerprintReport, model_fingerprint

SOURCE = """
int main() {
    print_str("fingerprinted\\n");
    return 0;
}
"""

FAKE = FingerprintReport(fingerprint="f" * 64, modules={})


def fresh_spec(**overrides) -> JobSpec:
    options = {"source": SOURCE, "name": "probe", "simulate": False}
    options.update(overrides)
    return JobSpec(**options).validate()


class TestKeyEmbedsFingerprint:
    def test_model_drift_changes_the_key(self, monkeypatch):
        before = fresh_spec().key()
        monkeypatch.setattr(fingerprint_mod, "_MEMO", FAKE)
        assert fresh_spec().key() != before

    def test_stable_under_same_model(self):
        assert fresh_spec().key() == fresh_spec().key()


class TestRecordCarriesFingerprint:
    def test_execute_job_records_current_fingerprint(self):
        record = execute_job(fresh_spec())
        assert record.model_fingerprint == model_fingerprint()
        assert record.schema == STORE_SCHEMA

    def test_fingerprint_survives_the_store_roundtrip(self, tmp_path):
        record = execute_job(fresh_spec())
        store = ResultStore(tmp_path)
        store.put(record)
        revived = ResultStore(tmp_path).get(record.key)
        assert revived.model_fingerprint == record.model_fingerprint

    def test_fingerprint_is_a_stable_field(self):
        # same key => same fingerprint: it participates in stable_dict
        record = execute_job(fresh_spec())
        assert "model_fingerprint" in record.stable_dict()


class TestShardSpecPinsFingerprint:
    def plan_spec(self) -> dict:
        (shard,) = ShardPlan.partition([fresh_spec()], 1).shards
        return shard.to_spec()

    def test_roundtrip_under_same_model(self):
        data = self.plan_spec()
        assert data["model_fingerprint"] == model_fingerprint()
        assert ShardSpec.from_spec(data).jobs[0].name == "probe"

    def test_drifted_fingerprint_is_refused(self):
        data = self.plan_spec()
        data["model_fingerprint"] = "f" * 64
        with pytest.raises(ConfigError, match="timing-model "
                                              "fingerprint"):
            ShardSpec.from_spec(data)

    def test_missing_fingerprint_is_refused(self):
        data = self.plan_spec()
        del data["model_fingerprint"]
        with pytest.raises(ConfigError, match="re-plan the sweep"):
            ShardSpec.from_spec(data)


def write_store(tmp_path, fingerprints) -> str:
    """A store whose records carry the given fingerprints (key per
    record); returns the directory."""
    template = execute_job(fresh_spec())
    lines = []
    for i, fp in enumerate(fingerprints):
        record = dataclasses.replace(template, key=f"{i:064x}",
                                     model_fingerprint=fp)
        lines.append(record.to_json())
    (tmp_path / "results.jsonl").write_text("\n".join(lines) + "\n")
    return str(tmp_path)


class TestFingerprintAudit:
    def test_matching_store_is_healthy(self, tmp_path):
        audit = audit_fingerprints(
            write_store(tmp_path, [model_fingerprint()] * 3))
        assert (audit.live_records, audit.matching, audit.drifted,
                audit.missing) == (3, 3, 0, 0)
        assert audit.healthy

    def test_drift_and_missing_are_counted(self, tmp_path):
        audit = audit_fingerprints(write_store(
            tmp_path, [model_fingerprint(), "a" * 64, "a" * 64,
                       "b" * 64, None]))
        assert (audit.matching, audit.drifted, audit.missing) == (1, 3, 1)
        assert audit.drifted_fingerprints == {"a" * 64: 2, "b" * 64: 1}
        assert not audit.healthy
        text = audit.describe()
        assert "3 drifted" in text
        assert "NEEDS ATTENTION" in text

    def test_missing_alone_is_not_fatal(self, tmp_path):
        audit = audit_fingerprints(write_store(tmp_path, [None]))
        assert audit.missing == 1
        assert audit.healthy

    def test_empty_store_dir_audits_clean(self, tmp_path):
        audit = audit_fingerprints(tmp_path)
        assert not audit.exists
        assert audit.healthy

    def test_last_record_per_key_wins(self, tmp_path):
        template = execute_job(fresh_spec())
        stale = dataclasses.replace(template, model_fingerprint="c" * 64)
        path = tmp_path / "results.jsonl"
        path.write_text(stale.to_json() + "\n" + template.to_json() + "\n")
        audit = audit_fingerprints(tmp_path)
        assert (audit.live_records, audit.drifted) == (1, 0)


class TestCommittedStoreMatchesTree:
    def test_committed_records_carry_the_current_fingerprint(self):
        import pathlib
        committed = (pathlib.Path(__file__).resolve().parents[2]
                     / "benchmarks" / "results" / "farm")
        audit = audit_fingerprints(committed)
        assert audit.exists
        assert audit.healthy
        assert audit.drifted == 0 and audit.missing == 0
        assert audit.matching == audit.live_records > 0
