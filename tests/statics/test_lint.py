"""Lint engine and rules: every bad fixture is caught with the right
rule name and line; every good fixture (and the repo tree) is clean."""

from pathlib import Path

import pytest

from repro.statics.lint import (EXCLUDED_DIR_NAMES, LintEngine, all_rules,
                                lint_paths)

FIXTURES = Path(__file__).parent / "fixtures"


def findings_for(name: str, rule: str):
    """Lint one fixture file with one rule (explicit path: scope and
    the fixtures-directory exclusion are bypassed by design)."""
    return lint_paths(paths=[FIXTURES / name], rule=rule,
                      project_checks=False)


class TestRuleFixtures:
    # (rule, bad fixture, expected line of the finding)
    BAD = [
        ("wallclock-in-payload", "wallclock_in_payload_bad.py", 12),
        ("atomic-jsonl-rewrite", "atomic_jsonl_rewrite_bad.py", 10),
        ("schema-pinned-fields", "schema_pinned_fields_bad.py", 10),
        ("span-must-finish", "span_must_finish_bad.py", 6),
        ("codegen-compiles", "codegen_compiles_bad.py", 6),
    ]

    @pytest.mark.parametrize("rule,fixture,line",
                             BAD, ids=[b[0] for b in BAD])
    def test_bad_fixture_is_caught(self, rule, fixture, line):
        findings = findings_for(fixture, rule)
        assert len(findings) == 1
        finding = findings[0]
        assert finding.rule == rule
        assert finding.line == line
        assert finding.path.endswith(fixture)

    @pytest.mark.parametrize("rule,fixture", [
        (b[0], b[1].replace("_bad", "_good")) for b in BAD],
        ids=[b[0] for b in BAD])
    def test_good_fixture_is_clean(self, rule, fixture):
        assert findings_for(fixture, rule) == []

    def test_render_carries_rule_and_line(self):
        (finding,) = findings_for("span_must_finish_bad.py",
                                  "span-must-finish")
        text = finding.render()
        assert "[span-must-finish]" in text
        assert ":6:" in text


class TestEngine:
    def test_unknown_rule_lists_known_names(self):
        with pytest.raises(ValueError, match="span-must-finish"):
            LintEngine().select("no-such-rule")

    def test_syntax_error_is_a_finding_not_a_crash(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        (finding,) = LintEngine().run([bad], project_checks=False)
        assert finding.rule == "syntax"
        assert finding.line == 1

    def test_walk_skips_fixture_directories(self):
        findings = LintEngine().run([Path(__file__).parent],
                                    project_checks=False)
        assert findings == []   # bad fixtures excluded from the walk
        assert "fixtures" in EXCLUDED_DIR_NAMES

    def test_src_scoped_rule_ignores_walked_test_files(self, tmp_path):
        # a deliberate in-place rewrite in a *test* tree is fine ...
        source = (FIXTURES / "atomic_jsonl_rewrite_bad.py").read_text()
        tests_dir = tmp_path / "tests"
        tests_dir.mkdir()
        (tests_dir / "helper.py").write_text(source)
        engine = LintEngine().select("atomic-jsonl-rewrite")
        assert engine.run([tests_dir], project_checks=False) == []
        # ... but the same file under src/ is flagged
        src_dir = tmp_path / "src"
        src_dir.mkdir()
        (src_dir / "helper.py").write_text(source)
        assert len(engine.run([src_dir], project_checks=False)) == 1

    def test_rule_listing_is_complete(self):
        names = {rule.name for rule in all_rules()}
        assert names == {"wallclock-in-payload", "atomic-jsonl-rewrite",
                         "schema-pinned-fields", "span-must-finish",
                         "codegen-compiles"}
        assert all(rule.description for rule in all_rules())

    def test_repo_tree_is_clean(self):
        # file-scoped rules only: the codegen project check gets its
        # own (slower) test below
        repo = Path(__file__).resolve().parents[2]
        roots = [repo / name
                 for name in ("src", "tests", "benchmarks", "examples")
                 if (repo / name).exists()]
        assert lint_paths(paths=roots, project_checks=False) == []


class TestCodegenProjectCheck:
    def test_every_workload_superblock_compiles(self):
        findings = lint_paths(paths=[], rule="codegen-compiles")
        assert findings == []
