"""Two-way authentication workflow, provisioning, config interface."""

import pytest

from repro.core.compiler_driver import EricCompiler
from repro.core.config import EncryptionMode, EricConfig
from repro.core.device import Device
from repro.core.interface import config_from_dict, config_to_dict, describe
from repro.core.provisioning import DeviceRegistry
from repro.core.workflow import deploy
from repro.errors import ConfigError, ProvisioningError, ValidationError
from repro.net.channel import BitFlipper, Eavesdropper, Patcher, \
    UntrustedChannel

SOURCE = """
int main() {
    print_str("deployed\\n");
    return 5;
}
"""


class TestDeployWorkflow:
    def test_clean_deployment(self, device):
        result = deploy(SOURCE, device)
        assert result.stdout == "deployed\n"
        assert result.exit_code == 5
        assert result.total_cycles > 0

    def test_deployment_with_eavesdropper(self, device):
        spy = Eavesdropper()
        channel = UntrustedChannel([spy])
        result = deploy(SOURCE, device, channel=channel)
        assert result.stdout == "deployed\n"
        # the spy captured the package: the *code* is ciphertext (the
        # data section travels plaintext by design — ERIC encrypts
        # instructions, §III.1)
        assert len(spy.captured) == 1
        program_text = result.compile_result.program.text
        assert program_text not in spy.captured[0]

    def test_tampering_blocks_execution(self, device):
        channel = UntrustedChannel([BitFlipper(flips=3, seed=9)])
        with pytest.raises(ValidationError):
            deploy(SOURCE, device, channel=channel)

    def test_patching_blocks_execution(self, device):
        channel = UntrustedChannel([Patcher(offset=120,
                                            patch=b"\xDE\xAD")])
        with pytest.raises(ValidationError):
            deploy(SOURCE, device, channel=channel)

    def test_registry_reuse(self, device):
        registry = DeviceRegistry()
        deploy(SOURCE, device, registry=registry)
        # second deployment: device already enrolled, handshake only
        result = deploy(SOURCE, device, registry=registry)
        assert result.exit_code == 5

    def test_ensure_enrolled_idempotent(self, device):
        registry = DeviceRegistry()
        key = registry.ensure_enrolled(device)
        assert key == registry.ensure_enrolled(device)
        assert key == registry.handshake(device.device_id)
        assert registry.enrolled == (device.device_id,)


class TestRegistry:
    def test_enroll_and_handshake(self, device):
        registry = DeviceRegistry()
        device_id = registry.enroll(device)
        key = registry.handshake(device_id)
        assert key == device.enrollment_key()

    def test_double_enroll_rejected(self, device):
        registry = DeviceRegistry()
        registry.enroll(device)
        with pytest.raises(ProvisioningError):
            registry.enroll(device)

    def test_unknown_device_rejected(self):
        with pytest.raises(ProvisioningError, match="not enrolled"):
            DeviceRegistry().handshake("dev-ffff")

    def test_enrolled_listing(self, device, other_device):
        registry = DeviceRegistry()
        registry.enroll(device)
        registry.enroll(other_device)
        assert set(registry.enrolled) == {device.device_id,
                                          other_device.device_id}


class TestFleetDeployment:
    def test_one_compile_many_devices(self):
        devices = [Device(device_seed=s) for s in (11, 12, 13)]
        registry = DeviceRegistry()
        for dev in devices:
            registry.enroll(dev)
        group = registry.provision_group([d.device_id for d in devices])

        compiler = EricCompiler()
        result = compiler.compile_and_package(SOURCE, group.group_key)
        for dev in devices:
            outcome = dev.load_and_run(result.package_bytes,
                                       key_mask=group.masks[dev.device_id])
            assert outcome.run.stdout == "deployed\n"

    def test_outsider_cannot_use_group_package(self, device):
        registry = DeviceRegistry()
        registry.enroll(device)
        group = registry.provision_group([device.device_id])
        compiler = EricCompiler()
        result = compiler.compile_and_package(SOURCE, group.group_key)
        outsider = Device(device_seed=999)
        # without helper data
        with pytest.raises(ValidationError):
            outsider.load_and_run(result.package_bytes)
        # even with the enrolled device's helper data
        with pytest.raises(ValidationError):
            outsider.load_and_run(result.package_bytes,
                                  key_mask=group.masks[device.device_id])

    def test_group_needs_enrolled_devices(self, device):
        registry = DeviceRegistry()
        with pytest.raises(ProvisioningError):
            registry.provision_group(["dev-nope"])
        with pytest.raises(ProvisioningError):
            registry.provision_group([])


class TestConfigInterface:
    def test_roundtrip(self):
        config = EricConfig(mode=EncryptionMode.PARTIAL,
                            partial_fraction=0.3, compress=True,
                            epoch=b"epoch-7")
        assert config_from_dict(config_to_dict(config)) == config

    def test_from_dict_defaults(self):
        assert config_from_dict({}) == EricConfig()

    def test_high_byte_epoch_roundtrip(self):
        # regression: epoch bytes >= 0x80 were decoded latin-1 but
        # re-encoded UTF-8, corrupting the key-derivation context
        config = EricConfig(epoch=bytes(range(256)))
        restored = config_from_dict(config_to_dict(config))
        assert restored.epoch == config.epoch
        assert restored == config

    def test_epoch_beyond_byte_range_rejected(self):
        with pytest.raises(ConfigError, match="U\\+00FF"):
            config_from_dict({"epoch": "época-€"})

    def test_mode_strings(self):
        for mode in ("full", "partial", "field"):
            config = config_from_dict({"mode": mode})
            assert config.mode.value == mode

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError, match="unknown options"):
            config_from_dict({"modee": "full"})

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigError, match="unknown mode"):
            config_from_dict({"mode": "everything"})

    def test_describe_mentions_mode_specifics(self):
        partial = EricConfig(mode=EncryptionMode.PARTIAL,
                             partial_fraction=0.25)
        text = describe(partial)
        assert "25%" in text
        field = EricConfig(mode=EncryptionMode.FIELD)
        assert "opcode always stays plaintext" in describe(field)
