"""Key Management Unit and Signature Generator units."""

import pytest

from repro.asm.assembler import assemble
from repro.core.keys import (
    KeyManagementUnit,
    group_mask,
    puf_based_key,
    recover_group_key,
)
from repro.core.signature import (
    StreamingSignatureGenerator,
    compute_signature,
)
from repro.errors import ConfigError


class TestPufBasedKey:
    def test_deterministic(self):
        assert puf_based_key(b"\x01\x02") == puf_based_key(b"\x01\x02")

    def test_puf_key_separates(self):
        assert puf_based_key(b"\x01") != puf_based_key(b"\x02")

    def test_epoch_rekeys(self):
        a = puf_based_key(b"\x01", b"epoch-0")
        b = puf_based_key(b"\x01", b"epoch-1")
        assert a != b

    def test_raw_key_not_recoverable_trivially(self):
        # the conversion is a hash: the pbk bytes never contain the raw key
        raw = b"\xAA\xBB\xCC\xDD"
        assert raw not in puf_based_key(raw)

    def test_empty_inputs_rejected(self):
        with pytest.raises(ConfigError):
            puf_based_key(b"")
        with pytest.raises(ConfigError):
            puf_based_key(b"x", b"")


class TestKeyManagementUnit:
    def setup_method(self):
        self.kmu = KeyManagementUnit(puf_based_key(b"device-a"))

    def test_purpose_separation(self):
        assert self.kmu.encryption_key() != self.kmu.signature_key()

    def test_keys_are_32_bytes(self):
        assert len(self.kmu.encryption_key()) == 32
        assert len(self.kmu.signature_key()) == 32

    def test_ciphers_differ_between_purposes(self):
        data = bytes(64)
        text = self.kmu.text_cipher("xor-repeating").transform(data)
        sig = self.kmu.signature_cipher("xor-repeating").transform(data)
        assert text != sig

    def test_wrong_pbk_size_rejected(self):
        with pytest.raises(ConfigError):
            KeyManagementUnit(b"short")

    def test_fingerprint_stable_and_short(self):
        again = KeyManagementUnit(puf_based_key(b"device-a"))
        assert self.kmu.fingerprint() == again.fingerprint()
        assert len(self.kmu.fingerprint()) == 16


class TestGroupHelperData:
    def test_mask_roundtrip(self):
        pbk = puf_based_key(b"dev")
        group_key = puf_based_key(b"group")
        mask = group_mask(pbk, group_key)
        assert recover_group_key(pbk, mask) == group_key

    def test_mask_does_not_leak_either_key(self):
        pbk = puf_based_key(b"dev")
        group_key = puf_based_key(b"group")
        mask = group_mask(pbk, group_key)
        assert mask != pbk
        assert mask != group_key

    def test_size_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            group_mask(b"aa", b"a")
        with pytest.raises(ConfigError):
            recover_group_key(b"aa", b"a")


def make_program(body="nop\n"):
    return assemble(f"_start:\n{body}li a7, 93\necall\n")


class TestSignature:
    def test_deterministic(self):
        program = make_program()
        assert compute_signature(program) == compute_signature(program)

    def test_text_change_changes_signature(self):
        a = make_program("addi a0, zero, 1\n")
        b = make_program("addi a0, zero, 2\n")
        assert compute_signature(a) != compute_signature(b)

    def test_entry_is_bound(self):
        from dataclasses import replace
        program = make_program()
        moved = replace(program, entry=program.entry + 4)
        assert compute_signature(program) != compute_signature(moved)

    def test_data_is_bound(self):
        from dataclasses import replace
        program = make_program()
        tweaked = replace(program, data=b"\x01")
        assert compute_signature(program) != compute_signature(tweaked)

    def test_streaming_matches_one_shot(self):
        program = make_program("addi a0, zero, 3\n")
        generator = StreamingSignatureGenerator.for_program(program)
        generator.absorb(program.text)
        generator.absorb(program.data)
        assert generator.digest() == compute_signature(program)

    def test_cycle_cost_positive_and_monotonic(self):
        small = make_program()
        large = make_program("addi a0, a0, 1\n" * 200)
        def cycles(p):
            g = StreamingSignatureGenerator.for_program(p)
            g.absorb(p.text)
            g.absorb(p.data)
            g.digest()
            return g.cycles
        assert 0 < cycles(small) < cycles(large)
