"""Shared fixtures for ERIC core tests."""

import pytest

from repro.cc.driver import compile_source
from repro.core.device import Device

HELLO_SOURCE = """
int main() {
    print_str("secret payload\\n");
    int acc = 0;
    for (int i = 0; i < 20; i++) { acc += i * i; }
    print_int(acc);
    return acc % 256;
}
"""


@pytest.fixture(scope="module")
def hello_program():
    return compile_source(HELLO_SOURCE, name="hello").program


@pytest.fixture(scope="module")
def hello_program_rvc():
    return compile_source(HELLO_SOURCE, name="hello-rvc",
                          compress=True).program


@pytest.fixture
def device():
    return Device(device_seed=0xD0)


@pytest.fixture
def other_device():
    return Device(device_seed=0xD1)
