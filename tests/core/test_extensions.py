"""Paper §VI future-work extensions: data encryption, RSA handshake,
overlapped HDE."""

import pytest

from repro.core.compiler_driver import EricCompiler
from repro.core.config import EricConfig
from repro.core.device import Device
from repro.core.provisioning import DeviceRegistry
from repro.crypto import rsa
from repro.errors import ValidationError

SOURCE = """
char secret_table[] = "CONFIDENTIAL-COEFFS";
int main() {
    print_str(secret_table);
    return 0;
}
"""


class TestDataEncryption:
    def test_data_section_hidden_on_wire(self, device):
        config = EricConfig(encrypt_data=True, sign_data=True)
        result = EricCompiler(config).compile_and_package(
            SOURCE, device.enrollment_key())
        assert b"CONFIDENTIAL" not in result.package_bytes
        assert result.package.data_encrypted

    def test_plain_config_leaks_data(self, device):
        result = EricCompiler().compile_and_package(
            SOURCE, device.enrollment_key())
        assert b"CONFIDENTIAL" in result.package_bytes

    def test_device_still_runs_correctly(self, device):
        config = EricConfig(encrypt_data=True, sign_data=True)
        result = EricCompiler(config).compile_and_package(
            SOURCE, device.enrollment_key())
        outcome = device.load_and_run(result.package_bytes)
        assert outcome.run.stdout == "CONFIDENTIAL-COEFFS"

    def test_wrong_device_cannot_recover_data(self, device, other_device):
        config = EricConfig(encrypt_data=True, sign_data=True)
        result = EricCompiler(config).compile_and_package(
            SOURCE, device.enrollment_key())
        with pytest.raises(ValidationError):
            other_device.load_and_run(result.package_bytes)

    def test_sign_data_detects_data_tampering(self, device):
        config = EricConfig(encrypt_data=True, sign_data=True)
        result = EricCompiler(config).compile_and_package(
            SOURCE, device.enrollment_key())
        blob = bytearray(result.package_bytes)
        # flip a byte in the encrypted data section (just before the
        # 32-byte signature at the tail)
        blob[-40] ^= 0xFF
        with pytest.raises(ValidationError):
            device.load_and_run(bytes(blob))

    def test_unsigned_data_tampering_is_not_detected(self, device):
        # The paper-faithful default signs instructions only; this test
        # documents the consequence (and why sign_data exists).
        config = EricConfig(encrypt_data=False, sign_data=False)
        result = EricCompiler(config).compile_and_package(
            SOURCE, device.enrollment_key())
        blob = bytearray(result.package_bytes)
        blob[-40] ^= 0xFF  # inside plaintext data
        outcome = device.load_and_run(bytes(blob))
        assert outcome.run.stdout != "CONFIDENTIAL-COEFFS"


class TestRsaHandshake:
    KEYPAIR = rsa.generate_keypair(bits=1024, seed=0x50F7)

    def test_wrapped_handshake_roundtrip(self, device):
        registry = DeviceRegistry()
        registry.enroll(device)
        wrapped = registry.handshake_wrapped(device.device_id,
                                             self.KEYPAIR.public())
        pbk = rsa.decrypt(self.KEYPAIR, wrapped)
        assert pbk == device.enrollment_key()

    def test_wrapped_key_usable_for_packaging(self, device):
        registry = DeviceRegistry()
        registry.enroll(device)
        wrapped = registry.handshake_wrapped(device.device_id,
                                             self.KEYPAIR.public())
        pbk = rsa.decrypt(self.KEYPAIR, wrapped)
        result = EricCompiler().compile_and_package(SOURCE, pbk)
        outcome = device.load_and_run(result.package_bytes)
        assert outcome.run.stdout == "CONFIDENTIAL-COEFFS"

    def test_eavesdropper_cannot_unwrap(self, device):
        registry = DeviceRegistry()
        registry.enroll(device)
        wrapped = registry.handshake_wrapped(device.device_id,
                                             self.KEYPAIR.public())
        eavesdropper_keys = rsa.generate_keypair(bits=1024, seed=0xBAD)
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            rsa.decrypt(eavesdropper_keys, wrapped)

    def test_raw_key_never_in_wrapped_blob(self, device):
        registry = DeviceRegistry()
        registry.enroll(device)
        wrapped = registry.handshake_wrapped(device.device_id,
                                             self.KEYPAIR.public())
        assert device.enrollment_key() not in wrapped


class TestOverlappedHde:
    def test_overlap_reduces_cycles(self):
        serial = Device(device_seed=0x0E0, overlapped_hde=False)
        parallel = Device(device_seed=0x0E0, overlapped_hde=True)
        result = EricCompiler().compile_and_package(
            SOURCE, serial.enrollment_key())
        serial_outcome = serial.load_and_run(result.package_bytes)
        parallel_outcome = parallel.load_and_run(result.package_bytes)
        assert parallel_outcome.hde.total_cycles \
            < serial_outcome.hde.total_cycles
        # functionally identical
        assert parallel_outcome.run.stdout == serial_outcome.run.stdout

    def test_overlap_saves_exactly_the_hidden_stage(self):
        device = Device(device_seed=0x0E1, overlapped_hde=True)
        result = EricCompiler().compile_and_package(
            SOURCE, device.enrollment_key())
        _, report = device.hde.process(result.package_bytes)
        assert report.overlapped
        expected = (report.puf_keygen_cycles + report.kmu_cycles
                    + max(report.decrypt_cycles, report.signature_cycles)
                    + report.validation_cycles)
        assert report.total_cycles == expected
