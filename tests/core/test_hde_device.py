"""HDE + Device integration: the paper's §III.2 hardware flow."""

import pytest

from repro.core.compiler_driver import EricCompiler
from repro.core.config import EncryptionMode, EricConfig
from repro.core.device import Device
from repro.errors import PackageFormatError, ValidationError

SOURCE = """
int main() {
    int total = 0;
    for (int i = 1; i <= 30; i++) {
        if (i % 3 == 0) { total += i; }
    }
    print_int(total);
    return 0;
}
"""
EXPECTED_STDOUT = str(sum(i for i in range(1, 31) if i % 3 == 0))


def package_for(device, config=None, source=SOURCE):
    compiler = EricCompiler(config)
    return compiler.compile_and_package(source, device.enrollment_key())


@pytest.mark.parametrize("mode", list(EncryptionMode))
class TestDecryptExecuteAllModes:
    def test_runs_correctly(self, device, mode):
        config = EricConfig(mode=mode)
        result = package_for(device, config)
        outcome = device.load_and_run(result.package_bytes)
        assert outcome.run.stdout == EXPECTED_STDOUT
        assert outcome.hde.signature_ok

    def test_recovered_program_identical(self, device, mode):
        config = EricConfig(mode=mode)
        result = package_for(device, config)
        program, report = device.hde.process(result.package_bytes)
        assert program.text == result.program.text
        assert program.data == result.program.data
        assert program.entry == result.program.entry
        assert tuple(program.layout) == tuple(result.program.layout)

    def test_ciphertext_differs_from_plaintext(self, device, mode):
        config = EricConfig(mode=mode)
        result = package_for(device, config)
        assert result.package.enc_text != result.program.text


class TestWrongDevice:
    def test_other_device_rejects(self, device, other_device):
        result = package_for(device)
        with pytest.raises(ValidationError):
            other_device.load_and_run(result.package_bytes)

    def test_other_device_rejects_partial(self, device, other_device):
        config = EricConfig(mode=EncryptionMode.PARTIAL,
                            partial_fraction=0.3)
        result = package_for(device, config)
        with pytest.raises(ValidationError):
            other_device.load_and_run(result.package_bytes)

    def test_wrong_epoch_rejects(self, device):
        result = package_for(device)  # epoch-0
        rekeyed = Device(device_seed=device.device_seed, epoch=b"epoch-1")
        with pytest.raises(ValidationError):
            rekeyed.load_and_run(result.package_bytes)

    def test_same_device_same_seed_accepts(self, device):
        result = package_for(device)
        twin = Device(device_seed=device.device_seed)
        outcome = twin.load_and_run(result.package_bytes)
        assert outcome.run.stdout == EXPECTED_STDOUT


class TestTamperDetection:
    def test_text_bitflip_detected(self, device):
        result = package_for(device)
        blob = bytearray(result.package_bytes)
        blob[len(blob) // 2] ^= 0x40  # inside enc_text
        with pytest.raises(ValidationError):
            device.load_and_run(bytes(blob))

    def test_signature_bitflip_detected(self, device):
        result = package_for(device)
        blob = bytearray(result.package_bytes)
        blob[-1] ^= 0x01  # inside enc_signature
        with pytest.raises(ValidationError):
            device.load_and_run(bytes(blob))

    def test_entry_redirect_detected(self, device):
        import struct
        result = package_for(device)
        blob = bytearray(result.package_bytes)
        # entry lives right after fixed header (9B) + cipher name +
        # field-class count byte
        offset = 9 + len("xor-repeating") + 1
        entry = struct.unpack_from("<Q", blob, offset)[0]
        assert entry == result.program.entry  # located correctly
        struct.pack_into("<Q", blob, offset, entry + 4)
        with pytest.raises(ValidationError):
            device.load_and_run(bytes(blob))

    def test_structural_corruption_is_format_error(self, device):
        result = package_for(device)
        with pytest.raises(PackageFormatError):
            device.load_and_run(result.package_bytes[:40])


class TestHdeCycleModel:
    def test_cycle_breakdown_populated(self, device):
        result = package_for(device)
        _, report = device.hde.process(result.package_bytes)
        assert report.puf_keygen_cycles > 0
        assert report.kmu_cycles > 0
        assert report.decrypt_cycles > 0
        assert report.signature_cycles > 0
        assert report.validation_cycles > 0
        assert report.total_cycles == (
            report.puf_keygen_cycles + report.kmu_cycles
            + report.decrypt_cycles + report.signature_cycles
            + report.validation_cycles)

    def test_partial_decrypts_fewer_slots(self, device):
        full = package_for(device, EricConfig(mode=EncryptionMode.FULL))
        partial = package_for(
            device, EricConfig(mode=EncryptionMode.PARTIAL,
                               partial_fraction=0.25))
        _, full_report = device.hde.process(full.package_bytes)
        _, partial_report = device.hde.process(partial.package_bytes)
        assert partial_report.decrypted_slots \
            < full_report.decrypted_slots
        assert partial_report.decrypt_cycles < full_report.decrypt_cycles

    def test_signature_cost_dominates_decrypt(self, device):
        # 64 SHA rounds per 64 bytes vs 1 cycle per 8 bytes
        result = package_for(device)
        _, report = device.hde.process(result.package_bytes)
        assert report.signature_cycles > report.decrypt_cycles

    def test_hde_cycles_much_smaller_than_run(self, device):
        result = package_for(device)
        outcome = device.load_and_run(result.package_bytes)
        assert outcome.hde.total_cycles < outcome.run.counters.cycles

    def test_total_cycles_sum(self, device):
        result = package_for(device)
        outcome = device.load_and_run(result.package_bytes)
        assert outcome.total_cycles == (outcome.hde.total_cycles
                                        + outcome.run.counters.cycles)


class TestRvcPackages:
    def test_compressed_package_roundtrip(self, device):
        config = EricConfig(compress=True)
        result = package_for(device, config)
        assert result.program.compressed_count > 0
        outcome = device.load_and_run(result.package_bytes)
        assert outcome.run.stdout == EXPECTED_STDOUT

    def test_compressed_partial_roundtrip(self, device):
        config = EricConfig(mode=EncryptionMode.PARTIAL,
                            partial_fraction=0.5, compress=True)
        result = package_for(device, config)
        outcome = device.load_and_run(result.package_bytes)
        assert outcome.run.stdout == EXPECTED_STDOUT

    def test_map_bits_equal_slot_count(self, device):
        config = EricConfig(compress=True)
        result = package_for(device, config)
        assert result.package.enc_map.count \
            == result.program.instruction_count


class TestBaselineVsEric:
    def test_run_plain_matches(self, device):
        compiler = EricCompiler()
        compile_result, _ = compiler.compile_baseline(SOURCE)
        plain = device.run_plain(compile_result.program)
        eric = device.load_and_run(
            package_for(device).package_bytes)
        assert plain.stdout == eric.run.stdout
        assert plain.counters.instret == eric.run.counters.instret

    LONG_SOURCE = """
    int main() {
        int acc = 0;
        for (int i = 0; i < 4000; i++) { acc = acc * 31 + i; }
        print_int(acc % 1000000);
        return 0;
    }
    """

    def test_eric_overhead_is_small_for_long_runs(self, device):
        # Fig. 7's effect: overhead is proportional to static size /
        # dynamic length, so a long-running program sees a few percent.
        compiler = EricCompiler()
        compile_result, _ = compiler.compile_baseline(self.LONG_SOURCE)
        plain = device.run_plain(compile_result.program)
        package = compiler.compile_and_package(
            self.LONG_SOURCE, device.enrollment_key())
        eric = device.load_and_run(package.package_bytes)
        overhead = eric.total_cycles / plain.counters.cycles - 1.0
        assert 0.0 < overhead < 0.10

    def test_short_programs_see_larger_relative_overhead(self, device):
        compiler = EricCompiler()
        short_plain, _ = compiler.compile_baseline(SOURCE)
        long_plain, _ = compiler.compile_baseline(self.LONG_SOURCE)
        key = device.enrollment_key()
        short = device.load_and_run(
            compiler.compile_and_package(SOURCE, key).package_bytes)
        long_run = device.load_and_run(
            compiler.compile_and_package(self.LONG_SOURCE,
                                         key).package_bytes)
        short_overhead = (short.total_cycles
                          / device.run_plain(short_plain.program)
                          .counters.cycles)
        long_overhead = (long_run.total_cycles
                         / device.run_plain(long_plain.program)
                         .counters.cycles)
        assert short_overhead > long_overhead
