"""Encryption Unit and package format units."""

import pytest

from repro.core.config import EncryptionMode, EricConfig
from repro.core.encryptor import (
    EncryptionMap,
    build_map,
    encrypt_text,
    select_field_slots,
    select_partial_slots,
)
from repro.core.keys import KeyManagementUnit, puf_based_key
from repro.core.package import ProgramPackage
from repro.errors import ConfigError, PackageFormatError


def kmu():
    return KeyManagementUnit(puf_based_key(b"unit-test-device"))


class TestEncryptionMap:
    def test_full(self):
        m = EncryptionMap.full(10)
        assert len(m) == 10
        assert all(m[i] for i in range(10))
        assert m.encrypted_count == 10

    def test_from_indices(self):
        m = EncryptionMap.from_indices(8, [0, 3, 7])
        assert [m[i] for i in range(8)] == [True, False, False, True,
                                            False, False, False, True]

    def test_index_bounds(self):
        m = EncryptionMap.full(4)
        with pytest.raises(IndexError):
            m[4]
        with pytest.raises(ConfigError):
            EncryptionMap.from_indices(4, [4])

    def test_bit_length_validation(self):
        with pytest.raises(PackageFormatError):
            EncryptionMap(b"\x00\x00", 4)  # needs exactly 1 byte


class TestSlotSelection:
    def test_fraction_zero_and_one(self):
        assert select_partial_slots(100, 0.0, seed=1) == []
        assert select_partial_slots(100, 1.0, seed=1) == list(range(100))

    def test_deterministic_per_seed(self):
        a = select_partial_slots(100, 0.3, seed=7)
        b = select_partial_slots(100, 0.3, seed=7)
        c = select_partial_slots(100, 0.3, seed=8)
        assert a == b
        assert a != c

    def test_count_matches_fraction(self):
        chosen = select_partial_slots(200, 0.25, seed=3)
        assert len(chosen) == 50

    def test_field_selection_skips_compressed(self, hello_program_rvc):
        layout = hello_program_rvc.layout
        indices = select_field_slots(layout, 1.0, seed=1)
        assert indices  # some 32-bit slots exist
        assert all(layout[i].size == 4 for i in indices)
        assert hello_program_rvc.compressed_count > 0


class TestEncryptText:
    def test_full_roundtrip(self, hello_program):
        cipher = kmu().text_cipher("xor-repeating")
        program = hello_program
        enc_map = EncryptionMap.full(program.instruction_count)
        ciphertext = encrypt_text(program.text, program.layout, enc_map,
                                  cipher)
        assert ciphertext != program.text
        plaintext = encrypt_text(ciphertext, program.layout, enc_map,
                                 cipher)
        assert plaintext == program.text

    def test_partial_only_touches_flagged_slots(self, hello_program):
        cipher = kmu().text_cipher("xor-repeating")
        program = hello_program
        indices = [0, 2, 4]
        enc_map = EncryptionMap.from_indices(program.instruction_count,
                                             indices)
        ciphertext = encrypt_text(program.text, program.layout, enc_map,
                                  cipher)
        for i, slot in enumerate(program.layout):
            original = program.text[slot.offset:slot.offset + slot.size]
            result = ciphertext[slot.offset:slot.offset + slot.size]
            if i in indices:
                assert result != original
            else:
                assert result == original

    def test_field_mode_preserves_opcode_bits(self, hello_program):
        config = EricConfig(mode=EncryptionMode.FIELD)
        cipher = kmu().text_cipher("xor-repeating")
        program = hello_program
        enc_map = build_map(program, config)
        ciphertext = encrypt_text(program.text, program.layout, enc_map,
                                  cipher, EncryptionMode.FIELD,
                                  config.field_classes)
        for slot in program.layout:
            original = program.text[slot.offset:slot.offset + slot.size]
            result = ciphertext[slot.offset:slot.offset + slot.size]
            # low 7 bits (opcode) never change in field mode
            assert original[0] & 0x7F == result[0] & 0x7F

    def test_map_layout_mismatch_rejected(self, hello_program):
        cipher = kmu().text_cipher("xor-repeating")
        bad_map = EncryptionMap.full(hello_program.instruction_count + 1)
        with pytest.raises(PackageFormatError):
            encrypt_text(hello_program.text, hello_program.layout, bad_map,
                         cipher)


class TestBuildMap:
    def test_full_flags_everything(self, hello_program):
        config = EricConfig(mode=EncryptionMode.FULL)
        m = build_map(hello_program, config)
        assert m.encrypted_count == hello_program.instruction_count

    def test_partial_respects_fraction(self, hello_program):
        config = EricConfig(mode=EncryptionMode.PARTIAL,
                            partial_fraction=0.5)
        m = build_map(hello_program, config)
        expected = round(hello_program.instruction_count * 0.5)
        assert m.encrypted_count == expected


class TestConfig:
    def test_defaults_valid(self):
        EricConfig().validate()

    def test_opcode_class_rejected(self):
        with pytest.raises(ConfigError, match="opcode"):
            EricConfig(mode=EncryptionMode.FIELD,
                       field_classes=("opcode", "imm")).validate()

    def test_bad_fraction_rejected(self):
        with pytest.raises(ConfigError):
            EricConfig(partial_fraction=1.5).validate()

    def test_unknown_cipher_rejected(self):
        with pytest.raises(ConfigError):
            EricConfig(cipher="rot13").validate()

    def test_unknown_field_class_rejected(self):
        with pytest.raises(ConfigError):
            EricConfig(field_classes=("immediate",)).validate()


class TestPackageFormat:
    def make_package(self, program, mode=EncryptionMode.FULL):
        enc_map = (EncryptionMap.full(program.instruction_count)
                   if mode is EncryptionMode.FULL else
                   EncryptionMap.from_indices(program.instruction_count,
                                              [0, 1]))
        return ProgramPackage(
            mode=mode, cipher="xor-repeating", field_classes=(),
            entry=program.entry, text_base=program.text_base,
            data_base=program.data_base, enc_text=program.text,
            data=program.data, enc_map=enc_map,
            enc_signature=bytes(32),
        )

    def test_roundtrip(self, hello_program):
        package = self.make_package(hello_program)
        blob = package.serialize()
        back = ProgramPackage.deserialize(blob)
        assert back == package

    def test_roundtrip_field_classes(self, hello_program):
        package = ProgramPackage(
            mode=EncryptionMode.FIELD, cipher="xor-sha256ctr",
            field_classes=("imm", "rs1"), entry=hello_program.entry,
            text_base=hello_program.text_base,
            data_base=hello_program.data_base,
            enc_text=hello_program.text, data=hello_program.data,
            enc_map=EncryptionMap.full(hello_program.instruction_count),
            enc_signature=bytes(32),
        )
        back = ProgramPackage.deserialize(package.serialize())
        assert back.field_classes == ("imm", "rs1")
        assert back.cipher == "xor-sha256ctr"

    def test_bad_magic(self, hello_program):
        blob = bytearray(self.make_package(hello_program).serialize())
        blob[0] ^= 0xFF
        with pytest.raises(PackageFormatError, match="magic"):
            ProgramPackage.deserialize(bytes(blob))

    def test_truncation_everywhere(self, hello_program):
        blob = self.make_package(hello_program).serialize()
        for cut in (3, 10, len(blob) // 2, len(blob) - 1):
            with pytest.raises(PackageFormatError):
                ProgramPackage.deserialize(blob[:cut])

    def test_trailing_garbage_rejected(self, hello_program):
        blob = self.make_package(hello_program).serialize()
        with pytest.raises(PackageFormatError, match="trailing"):
            ProgramPackage.deserialize(blob + b"\x00")

    def test_size_accounting_full_vs_partial(self, hello_program):
        # paper §IV.A: full encryption carries no map (all-ones implied),
        # partial pays 1 bit per instruction; both carry the signature.
        full = self.make_package(hello_program).serialize()
        partial = self.make_package(hello_program,
                                    EncryptionMode.PARTIAL).serialize()
        plain = hello_program.serialize_plain()
        map_bytes = (hello_program.instruction_count + 7) // 8
        assert len(partial) == len(full) + map_bytes
        assert len(full) > len(plain)


class TestPackageProgramTimingsContract:
    def test_caller_timings_populated_in_place(self, hello_program):
        from repro.core.compiler_driver import EricCompiler, PackagingTimings

        timings = PackagingTimings(compile_s=1.25)
        result = EricCompiler().package_program(
            hello_program, puf_based_key(b"unit-test-device"), timings)
        assert result.timings is timings
        assert timings.compile_s == 1.25
        assert timings.signature_s > 0
        assert timings.encryption_s > 0
        assert timings.packaging_s >= 0
