"""Table II — FPGA area of Rocket Chip vs Rocket Chip + HDE.

Paper: +2.63 % LUTs (text; +2.71 % from the table's absolute numbers)
and +3.83 % flip-flops (+3.99 % from absolutes).  The structural model
must land in the same single-digit band, robustly across its packing-
efficiency knob.
"""

import pytest

from repro.eval import table2
from repro.hw.area import HdeAreaModel
from repro.hw.primitives import Primitives


def test_table2_area(benchmark, record):
    result = benchmark.pedantic(table2.run, rounds=3, iterations=1)
    record("table2_area", result.render())

    s = result.summary
    # same band as the paper's deltas
    assert 1.5 < s["lut_increase_pct"] < 4.5
    assert 2.0 < s["ff_increase_pct"] < 6.5
    # within ~2x of the paper's exact values
    assert s["lut_increase_pct"] == pytest.approx(
        s["paper_lut_increase_pct"], rel=0.5)
    assert s["ff_increase_pct"] == pytest.approx(
        s["paper_ff_increase_pct"], rel=0.5)


def test_every_unit_contributes(record):
    result = table2.run()
    units = dict(result.table["units"])
    assert set(units) == {
        "PUF Key Generator", "Key Management Unit", "Decryption Unit",
        "Signature Generator", "Validation Unit", "Interconnect",
    }
    for name, (luts, ffs) in units.items():
        assert luts > 0, name
        assert ffs > 0, name
    # the serialized SHA core is the largest block, as in any real HDE
    assert units["Signature Generator"][0] == max(
        l for l, _ in units.values())


def test_conclusion_robust_to_packing_efficiency(record):
    """Sweep the packing-efficiency knob: conclusion must not flip."""
    lines = ["packing-efficiency sensitivity (LUT% / FF%):"]
    for eff in (0.6, 0.75, 0.85, 1.0):
        model = HdeAreaModel(primitives=Primitives(packing_efficiency=eff))
        s = table2.run(model).summary
        lines.append(f"  eff={eff:.2f}: "
                     f"+{s['lut_increase_pct']:.2f}% LUTs, "
                     f"+{s['ff_increase_pct']:.2f}% FFs")
        assert s["lut_increase_pct"] < 5.0
        assert s["ff_increase_pct"] < 7.0
    record("table2_packing_sweep", "\n".join(lines))
