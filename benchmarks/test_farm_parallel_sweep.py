"""Simulation farm — parallel fan-out and store-resume speedups.

Two claims, both load-bearing for matrix-scale evaluation:

* **fan-out**: a multi-workload sweep with ``jobs=4`` beats ``jobs=1``
  wall-clock when the machine has cores to fan out over (the
  interpreter is CPU-bound, so the farm uses processes, not threads);
* **resume**: re-running the same matrix against its store performs
  zero simulations — every job is served from disk in ~milliseconds.

The wall-time columns in the recorded table are machine-dependent and
therefore Volatile-masked; the job/hit counts are the stable content.
"""

import os
import time

from repro.eval.report import Volatile, format_table
from repro.farm import JobMatrix, ResultStore, SimulationFarm

#: A multi-workload matrix heavy enough that per-process pool overhead
#: cannot hide a real speedup (~4-5 s of simulation at jobs=1).
SWEEP_WORKLOADS = ("basicmath", "qsort", "crc32", "fft")
PARALLEL_JOBS = 4


def _sweep(store_dir, jobs):
    matrix = JobMatrix(workloads=SWEEP_WORKLOADS)
    farm = SimulationFarm(store=ResultStore(store_dir), jobs=jobs)
    start = time.perf_counter()
    report = farm.run(matrix)
    return report, time.perf_counter() - start


def test_farm_parallel_sweep(benchmark, record, tmp_path):
    # fresh stores: this bench must measure simulations, not hits
    report1, wall1 = benchmark.pedantic(
        lambda: _sweep(tmp_path / "jobs1", jobs=1),
        rounds=1, iterations=1)
    report4, wall4 = _sweep(tmp_path / "jobs4", jobs=PARALLEL_JOBS)
    # resume against the jobs=4 store: everything is already measured
    resumed, wall_resume = _sweep(tmp_path / "jobs4", jobs=PARALLEL_JOBS)

    headers = ["path", "wall ms", "jobs", "executed", "store hits"]
    rows = [
        ["cold sweep", Volatile(f"{wall1 * 1e3:.1f}"), 1,
         report1.executed, report1.hits],
        ["cold sweep", Volatile(f"{wall4 * 1e3:.1f}"), PARALLEL_JOBS,
         report4.executed, report4.hits],
        ["resumed sweep", Volatile(f"{wall_resume * 1e3:.1f}"),
         PARALLEL_JOBS, resumed.executed, resumed.hits],
    ]
    title = (f"Farm sweep: {len(SWEEP_WORKLOADS)} workloads, "
             "cold vs parallel vs resumed")
    record("farm_parallel_sweep",
           format_table(headers, rows, title=title),
           stable=format_table(headers, rows, title=title, stable=True))

    # both cold sweeps measured everything
    assert report1.executed == len(SWEEP_WORKLOADS)
    assert report4.executed == len(SWEEP_WORKLOADS)
    assert report1.hits == 0 and report4.hits == 0

    # THE resumability guarantee: zero simulations the second time, and
    # serving records beats re-measuring by a wide margin
    assert resumed.executed == 0
    assert resumed.hit_rate == 1.0
    assert wall_resume < wall1 * 0.25

    # identical measurements regardless of execution path
    cycles1 = [r.eric_cycles for r in report1.records]
    cycles4 = [r.eric_cycles for r in report4.records]
    assert cycles1 == cycles4
    assert [r.eric_cycles for r in resumed.records] == cycles4

    # parallel fan-out only wins when there is hardware to fan out
    # over; a single-core runner degenerates to serial + pool overhead
    if os.cpu_count() and os.cpu_count() >= 2:
        assert wall4 < wall1 * 0.9, (
            f"jobs={PARALLEL_JOBS} sweep ({wall4:.2f}s) not faster than "
            f"jobs=1 ({wall1:.2f}s) on {os.cpu_count()} cpus")


def test_farm_duplicate_jobs_execute_once(tmp_path):
    """A matrix that names the same measurement twice simulates once;
    the duplicate shares the record (in order)."""
    matrix = JobMatrix(workloads=("basicmath", "basicmath"))
    farm = SimulationFarm(store=ResultStore(tmp_path), jobs=1)
    report = farm.run(matrix)
    assert report.executed == 1
    assert len(report.records) == 2
    assert report.records[0].key == report.records[1].key
