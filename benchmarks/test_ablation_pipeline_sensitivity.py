"""Ablation — are the Fig. 7 conclusions sensitive to timing constants?

The SoC timing model is cycle-approximate, not RTL-exact (DESIGN.md §5).
This sweep re-runs the Fig. 7 comparison under perturbed pipeline
constants (div latency, miss penalty, flush penalty) and checks the
headline — low single-digit overhead, proportional to size/length —
survives every variant.

The 5-variant × 8-workload grid is a farm matrix: the 40 simulations
resume from the committed result store, and ``--jobs N`` (via ``eric
sweep``) parallelises a cold re-measure.
"""

from repro.eval.report import format_table
from repro.farm import JobMatrix, SimParams
from repro.workloads import all_workloads

# Labels -> repro.farm.spec.PIPELINE_VARIANTS names.
VARIANTS = {
    "default": "default",
    "slow divider": "slow-divider",
    "fast memory": "fast-memory",
    "slow memory": "slow-memory",
    "costly flush": "costly-flush",
}

_DEVICE_SEED = 0x517


def _matrix() -> JobMatrix:
    return JobMatrix(
        workloads=tuple(all_workloads()),
        params=tuple(SimParams(device_seed=_DEVICE_SEED, pipeline=name)
                     for name in VARIANTS.values()),
        simulate=True,
    )


def test_pipeline_sensitivity(benchmark, record, farm):
    report = benchmark.pedantic(lambda: farm.run(_matrix()),
                                rounds=1, iterations=1)
    report.require_ok()
    results = {label: [] for label in VARIANTS}
    by_variant = {name: label for label, name in VARIANTS.items()}
    workloads = all_workloads()
    for job in report.results:
        expected = workloads[job.spec.workload].expected_stdout
        assert job.record.output_ok(expected), job.spec.display_name
        results[by_variant[job.spec.params.pipeline]].append(
            job.record.overhead_pct)

    rows = []
    for label, overheads in results.items():
        rows.append([label,
                     f"{sum(overheads) / len(overheads):.2f}%",
                     f"{max(overheads):.2f}%"])
    record("ablation_pipeline_sensitivity", format_table(
        ["pipeline variant", "avg overhead", "max overhead"], rows,
        title="Fig. 7 headline under perturbed timing constants",
    ))

    for label, overheads in results.items():
        assert len(overheads) == len(all_workloads()), label
        avg = sum(overheads) / len(overheads)
        # the conclusion band survives every variant
        assert 1.0 < avg < 8.0, label
        assert max(overheads) < 12.0, label
