"""Ablation — are the Fig. 7 conclusions sensitive to timing constants?

The SoC timing model is cycle-approximate, not RTL-exact (DESIGN.md §5).
This sweep re-runs the Fig. 7 comparison under perturbed pipeline
constants (div latency, miss penalty, flush penalty) and checks the
headline — low single-digit overhead, proportional to size/length —
survives every variant.
"""

from repro.core.compiler_driver import EricCompiler
from repro.core.device import Device
from repro.eval.report import format_table
from repro.soc.pipeline import PipelineModel
from repro.workloads import all_workloads

VARIANTS = {
    "default": PipelineModel(),
    "slow divider": PipelineModel(div_latency=64, div32_latency=32),
    "fast memory": PipelineModel(miss_penalty=8),
    "slow memory": PipelineModel(miss_penalty=60),
    "costly flush": PipelineModel(flush_penalty=4),
}


def _overheads(pipeline):
    device = Device(device_seed=0x517, pipeline=pipeline)
    compiler = EricCompiler()
    key = device.enrollment_key()
    overheads = []
    for name, workload in all_workloads().items():
        package = compiler.compile_and_package(workload.source, key,
                                               name=name)
        plain = device.run_plain(package.program)
        eric = device.load_and_run(package.package_bytes)
        overheads.append(100.0 * (eric.total_cycles
                                  / plain.counters.cycles - 1.0))
    return overheads


def test_pipeline_sensitivity(benchmark, record):
    def sweep():
        return {label: _overheads(pipe)
                for label, pipe in VARIANTS.items()}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for label, overheads in results.items():
        rows.append([label,
                     f"{sum(overheads) / len(overheads):.2f}%",
                     f"{max(overheads):.2f}%"])
    record("ablation_pipeline_sensitivity", format_table(
        ["pipeline variant", "avg overhead", "max overhead"], rows,
        title="Fig. 7 headline under perturbed timing constants",
    ))

    for label, overheads in results.items():
        avg = sum(overheads) / len(overheads)
        # the conclusion band survives every variant
        assert 1.0 < avg < 8.0, label
        assert max(overheads) < 12.0, label
