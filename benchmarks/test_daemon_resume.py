"""Durable daemon — crash/resume and backpressure at serving scale.

The claims, each load-bearing for the "journaled fleet queue in front
of one farm/store pair" architecture:

* **durable resume**: a daemon stopped mid-serve (graceful checkpoint
  or hard crash) loses no requests — a fresh daemon replays the
  journal and completes every fleet;
* **zero re-simulation**: jobs measured before the stop are served
  from the result store after it, so crash + resume costs exactly one
  simulation per unique job key in total (the store's line count is
  the proof: every real simulation appends exactly one line);
* **backpressure**: the pending-jobs watermark bounds admitted work —
  excess requests defer in the journal (never in daemon memory), are
  observable as ``daemon.reject`` telemetry, and still complete.

Wall-time columns are machine-dependent and Volatile-masked; the
request/executed/store-line counts are the stable content.
"""

import asyncio
import time

from repro.eval.report import Volatile, format_table
from repro.farm import ResultStore
from repro.service.daemon import (AdmissionPolicy, JournalStore,
                                  ServeDaemon, submit_fleets)
from repro.service.telemetry import RecordingTelemetry

PROBE = "int main() { return 0; }\n"

#: Two fleets sharing one seed: 6 job requests over 5 unique keys.
FLEETS_SPEC = {"fleets": [
    {"name": "alpha", "programs": [{"name": "probe", "source": PROBE}],
     "device_seeds": [1, 2, 3]},
    {"name": "beta", "programs": [{"name": "probe", "source": PROBE}],
     "device_seeds": [3, 4, 5]},
]}
REQUESTED = 6
UNIQUE_JOBS = 5


def _run(daemon):
    start = time.perf_counter()
    report = asyncio.run(daemon.run(once=True))
    return report, time.perf_counter() - start


def _store_lines(store_dir) -> int:
    path = ResultStore(store_dir).path
    if not path.exists():
        return 0
    return sum(1 for line in path.read_text().splitlines()
               if line.strip())


class _CrashAtFirstCheckpoint:
    """Telemetry sink that stops the daemon at its first checkpoint —
    an in-process stand-in for SIGTERM landing mid-serve."""

    def __init__(self, daemon):
        self.daemon = daemon

    def __call__(self, event):
        if event.stage == "daemon.checkpoint":
            self.daemon.request_shutdown()


def test_daemon_crash_then_resume_zero_resimulation(record, tmp_path):
    store_dir = tmp_path / "farm"
    journal_dir = tmp_path / "journal"
    submit_fleets(JournalStore(journal_dir), FLEETS_SPEC)

    # phase 1: serve until the first checkpoint, then "crash"
    daemon1 = ServeDaemon(JournalStore(journal_dir),
                          store=ResultStore(store_dir),
                          checkpoint_every=1)
    daemon1.on_event(_CrashAtFirstCheckpoint(daemon1))
    crashed, wall1 = _run(daemon1)
    lines_after_crash = _store_lines(store_dir)

    # phase 2: a fresh daemon (fresh journal/store handles — nothing
    # in-memory survives) resumes and finishes everything
    resumed_telemetry = RecordingTelemetry()
    daemon2 = ServeDaemon(JournalStore(journal_dir),
                          store=ResultStore(store_dir),
                          telemetry=resumed_telemetry)
    finished, wall2 = _run(daemon2)
    lines_final = _store_lines(store_dir)

    headers = ["phase", "wall ms", "completed", "checkpointed",
               "resumed", "executed", "store hits", "store lines"]
    rows = [
        ["crash mid-serve", Volatile(f"{wall1 * 1e3:.1f}"),
         crashed.completed, crashed.checkpointed, crashed.resumed,
         crashed.executed, crashed.store_hits, lines_after_crash],
        ["resume", Volatile(f"{wall2 * 1e3:.1f}"),
         finished.completed, finished.checkpointed, finished.resumed,
         finished.executed, finished.store_hits, lines_final],
    ]
    title = (f"Durable daemon: {len(FLEETS_SPEC['fleets'])} fleets "
             f"({REQUESTED} jobs, {UNIQUE_JOBS} unique), crash at "
             f"first checkpoint, then resume")
    record("daemon_resume",
           format_table(headers, rows, title=title),
           stable=format_table(headers, rows, title=title, stable=True))

    # the crash really interrupted mid-serve: progress was made, but
    # not all of it, and the in-flight requests were checkpointed
    assert crashed.stopped, crashed.summary()
    assert crashed.checkpointed >= 1, crashed.summary()
    assert 1 <= crashed.executed < UNIQUE_JOBS, crashed.summary()
    assert crashed.completed < len(FLEETS_SPEC["fleets"])

    # the resume finished every journaled request
    assert finished.resumed >= 1, finished.summary()
    states = [r.state for r in JournalStore(journal_dir).records()]
    assert states == ["done"] * len(FLEETS_SPEC["fleets"]), states

    # THE durability guarantee: crash + resume simulate each unique
    # key exactly once — every simulation appends one store line, so
    # the file itself is the re-simulation counter
    assert crashed.executed + finished.executed == UNIQUE_JOBS, (
        crashed.summary(), finished.summary())
    assert lines_final == UNIQUE_JOBS, lines_final


def test_watermark_backpressure_defers_and_completes(record, tmp_path):
    journal_dir = tmp_path / "journal"
    journal = JournalStore(journal_dir)
    for name, seeds in (("a", [11, 12]), ("b", [13, 14]),
                        ("c", [15, 16])):
        submit_fleets(journal, {
            "name": name,
            "programs": [{"name": "probe", "source": PROBE}],
            "device_seeds": seeds})

    telemetry = RecordingTelemetry()
    daemon = ServeDaemon(
        JournalStore(journal_dir), store=ResultStore(tmp_path / "farm"),
        policy=AdmissionPolicy(max_pending_jobs=2), max_active=1,
        telemetry=telemetry)
    report, wall = _run(daemon)

    headers = ["watermark", "wall ms", "completed", "deferred",
               "peak pending jobs", "reject spans"]
    deferrals = telemetry.stages("daemon.reject")
    rows = [[2, Volatile(f"{wall * 1e3:.1f}"), report.completed,
             report.deferred, report.peak_pending_jobs,
             len(deferrals)]]
    title = ("Daemon backpressure: 3x2-job fleets through a "
             "2-pending-job watermark")
    record("daemon_backpressure",
           format_table(headers, rows, title=title),
           stable=format_table(headers, rows, title=title, stable=True))

    # every fleet completes, but admitted work never exceeded the
    # watermark: deferrals lived in the journal, not daemon memory
    assert report.completed == 3, report.summary()
    assert report.peak_pending_jobs <= 2, report.summary()
    assert report.deferred >= 1, report.summary()
    assert deferrals, "expected daemon.reject telemetry for deferrals"
    assert all("defer" in event.detail for event in deferrals)
