"""Async fleet scheduler — batching and dedup at deployment scale.

The claims, each load-bearing for the "one farm/store pair behind many
concurrent deployments" architecture:

* **exactly-once measurement**: N overlapping fleets whose workloads
  intersect trigger exactly one simulation per unique farm job key —
  the shared batch queue dedups across fleets, not just within one;
* **compile-once across fleets**: one ``EricCompiler.prepare()`` per
  unique source digest, proven by the shared artifact cache's counter;
* **resume**: a warm-store rerun of the same fleets executes zero
  simulations (100% store hits);
* **fan-out**: with worker processes to fan out over, a batched sweep
  beats ``jobs=1`` wall-clock (gated on ``os.cpu_count() >= 2`` — the
  single-core CI container degenerates to serial + pool overhead).

Wall-time columns are machine-dependent and Volatile-masked; the
request/unique/executed counts are the stable content.
"""

import os
import time

from repro.eval.report import Volatile, format_table
from repro.farm import ResultStore
from repro.service.scheduler import FleetScheduler, load_fleet_specs

#: Three fleets sharing workloads: 8 job requests over 4 unique jobs
#: (and 4 unique source digests).  Heavy enough (~4 real simulations)
#: that per-process pool overhead cannot hide a real speedup.
FLEETS_SPEC = {"fleets": [
    {"name": "alpha", "workloads": ["basicmath", "qsort", "crc32"]},
    {"name": "beta", "workloads": ["qsort", "crc32", "fft"]},
    {"name": "gamma", "workloads": ["basicmath", "fft"]},
]}
REQUESTED = 8
UNIQUE_JOBS = 4
PARALLEL_JOBS = 4


def _serve(store_dir, jobs):
    scheduler = FleetScheduler(store=ResultStore(store_dir), jobs=jobs,
                               batch_window=0.05)
    start = time.perf_counter()
    report = scheduler.run(load_fleet_specs(FLEETS_SPEC))
    return report, time.perf_counter() - start


def _cycles_by_key(report):
    return {r.spec.key(): r.record.eric_cycles
            for fleet in report.fleets for r in fleet.results}


def test_async_scheduler_batches_overlapping_fleets(benchmark, record,
                                                    tmp_path):
    # fresh stores: the cold phases must measure simulations, not hits
    report1, wall1 = benchmark.pedantic(
        lambda: _serve(tmp_path / "jobs1", jobs=1),
        rounds=1, iterations=1)
    reportN, wallN = _serve(tmp_path / "jobsN", jobs=PARALLEL_JOBS)
    # warm resume against the jobs=1 store: everything is measured
    warm, wall_warm = _serve(tmp_path / "jobs1", jobs=1)

    headers = ["path", "wall ms", "jobs", "fleets", "requested",
               "unique", "executed", "store hits"]
    rows = [
        ["cold serve", Volatile(f"{wall1 * 1e3:.1f}"), 1,
         len(report1.fleets), report1.requested, report1.unique_jobs,
         report1.executed, report1.store_hits],
        ["cold serve", Volatile(f"{wallN * 1e3:.1f}"), PARALLEL_JOBS,
         len(reportN.fleets), reportN.requested, reportN.unique_jobs,
         reportN.executed, reportN.store_hits],
        ["warm serve", Volatile(f"{wall_warm * 1e3:.1f}"), 1,
         len(warm.fleets), warm.requested, warm.unique_jobs,
         warm.executed, warm.store_hits],
    ]
    title = ("Async fleet scheduler: 3 overlapping fleets, "
             "cold vs parallel vs warm")
    record("async_fleet_scheduler",
           format_table(headers, rows, title=title),
           stable=format_table(headers, rows, title=title, stable=True))

    for report in (report1, reportN, warm):
        report.require_ok()
        assert report.requested == REQUESTED, report.summary()
        assert report.unique_jobs == UNIQUE_JOBS, report.summary()

    # THE batching guarantee: overlapping fleets cost exactly one
    # simulation per unique job key...
    assert report1.executed == UNIQUE_JOBS, report1.summary()
    assert report1.store_hits == 0, report1.summary()
    assert reportN.executed == UNIQUE_JOBS, reportN.summary()
    # ...and exactly one prepare() per unique source digest, through
    # the one shared artifact cache
    assert report1.cache_stats.compiles == UNIQUE_JOBS
    assert reportN.cache_stats.compiles == UNIQUE_JOBS

    # warm rerun: zero simulations, zero compiles, everything from
    # the store
    assert warm.executed == 0, warm.summary()
    assert warm.store_hits == UNIQUE_JOBS, warm.summary()
    assert warm.cache_stats.compiles == 0
    assert all(result.from_store for fleet in warm.fleets
               for result in fleet.results)

    # identical measurements regardless of execution path
    assert _cycles_by_key(report1) == _cycles_by_key(reportN)
    assert _cycles_by_key(warm) == _cycles_by_key(report1)

    # parallel fan-out only wins with hardware to fan out over; a
    # single-core runner degenerates to serial + pool overhead
    if os.cpu_count() and os.cpu_count() >= 2:
        assert wallN < wall1 * 0.9, (
            f"jobs={PARALLEL_JOBS} serve ({wallN:.2f}s) not faster "
            f"than jobs=1 ({wall1:.2f}s) on {os.cpu_count()} cpus")


def test_scheduler_dedups_within_and_across_fleets(tmp_path):
    """The same job named twice inside a fleet and again by two other
    fleets still simulates once (cheap inline probes)."""
    probe = {"name": "probe", "source": "int main() { return 4; }\n"}
    spec = {"fleets": [
        {"name": "twice", "programs": [probe, probe],
         "device_seeds": [9]},
        {"name": "again", "programs": [probe], "device_seeds": [9]},
        {"name": "wider", "programs": [probe], "device_seeds": [9, 10]},
    ]}
    scheduler = FleetScheduler(store=ResultStore(tmp_path / "store"))
    report = scheduler.run(load_fleet_specs(spec))
    report.require_ok()
    assert report.requested == 5
    assert report.unique_jobs == 2
    assert report.executed == 2, report.summary()
    assert report.cache_stats.compiles == 1
    # every duplicate shares the one measured record
    cycles = {r.record.eric_cycles for fleet in report.fleets
              for r in fleet.results
              if r.spec.params.device_seed == 9}
    assert len(cycles) == 1
