"""Distributed farm — sharded sweep vs single farm, merge, and resume.

Three claims, the distributed counterparts of the parallel-sweep bench:

* **equivalence**: a ``shards=2`` sweep on a fresh store produces
  records byte-identical (modulo wall-clock fields) to a ``jobs=1``
  sweep of the same matrix — sharding changes where a job runs, never
  what it measures;
* **merge**: every shard store merges into the main store
  last-record-wins, after which an *unsharded* run over the merged
  store executes zero simulations;
* **fan-out**: with cores to fan out over, the sharded sweep beats the
  single farm wall-clock (gated on ``os.cpu_count() >= 2`` — the
  single-core CI container degenerates to serial plus pool overhead).

Wall-time columns are machine-dependent and Volatile-masked; job, hit,
and merge counts are the stable content.
"""

import os
import time

from repro.core.config import EncryptionMode, EricConfig
from repro.eval.report import Volatile, format_table
from repro.farm import (FarmCoordinator, JobMatrix, ResultStore,
                        SimulationFarm)

#: 2 workloads x 2 configs: the same shape as examples/sweep_spec.json.
MATRIX = JobMatrix(
    workloads=("basicmath", "crc32"),
    configs=(EricConfig(), EricConfig(mode=EncryptionMode.PARTIAL)),
)
SHARDS = 2


def test_farm_distributed_sweep(benchmark, record, tmp_path):
    # single-farm reference on a fresh store
    farm = SimulationFarm(store=ResultStore(tmp_path / "jobs1"))
    start = time.perf_counter()
    reference = benchmark.pedantic(lambda: farm.run(MATRIX),
                                   rounds=1, iterations=1)
    wall_ref = time.perf_counter() - start
    reference.require_ok()

    # sharded sweep on its own fresh store, merged by the coordinator
    coordinator = FarmCoordinator(store=ResultStore(tmp_path / "sharded"),
                                  shards=SHARDS)
    start = time.perf_counter()
    sharded = coordinator.run(MATRIX)
    wall_sharded = time.perf_counter() - start
    sharded.require_ok()
    merged = sum(stats.merged for stats in coordinator.last_merge)

    # the merged store must serve an unsharded resume entirely
    start = time.perf_counter()
    resumed = SimulationFarm(
        store=ResultStore(tmp_path / "sharded")).run(MATRIX)
    wall_resume = time.perf_counter() - start

    headers = ["path", "wall ms", "shards", "executed", "store hits",
               "merged"]
    rows = [
        ["single farm", Volatile(f"{wall_ref * 1e3:.1f}"), "-",
         reference.executed, reference.hits, "-"],
        ["sharded sweep", Volatile(f"{wall_sharded * 1e3:.1f}"), SHARDS,
         sharded.executed, sharded.hits, merged],
        ["unsharded resume", Volatile(f"{wall_resume * 1e3:.1f}"), "-",
         resumed.executed, resumed.hits, "-"],
    ]
    title = (f"Distributed farm: {MATRIX.job_count} jobs, single farm "
             f"vs {SHARDS} coordinated shards")
    record("farm_distributed_sweep",
           format_table(headers, rows, title=title),
           stable=format_table(headers, rows, title=title, stable=True))

    # both cold runs measured everything
    assert reference.executed == MATRIX.job_count
    assert sharded.executed == MATRIX.job_count
    assert reference.hits == 0 and sharded.hits == 0
    assert merged == MATRIX.job_count

    # sharding never changes the measurement, only where it ran
    assert {r.key: r.stable_dict() for r in sharded.records} \
        == {r.key: r.stable_dict() for r in reference.records}

    # the merged store carries the whole matrix: zero simulations left
    assert resumed.executed == 0
    assert resumed.hit_rate == 1.0
    assert resumed.total_eric_cycles == reference.total_eric_cycles

    # shard fan-out only wins when there is hardware to fan out over
    if os.cpu_count() and os.cpu_count() >= 2:
        assert wall_sharded < wall_ref * 0.9, (
            f"shards={SHARDS} sweep ({wall_sharded:.2f}s) not faster "
            f"than the single farm ({wall_ref:.2f}s) on "
            f"{os.cpu_count()} cpus")
