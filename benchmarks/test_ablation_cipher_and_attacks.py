"""Ablations — pluggable cipher choice and attack-resistance metrics.

* cipher choice: the paper's repeating-key XOR vs the SHA-256-CTR
  keystream variant (the "different encryption methods" hook of §III.1):
  packaging time, HDE cycles, and ciphertext quality.
* attack resistance: static-attacker metrics per encryption mode, and
  dynamic-attacker outcomes on non-target hardware.

Every row is a farm record measured with ``analyze=True``: the worker
stores the static-attacker report (with a ``plain`` baseline sub-report
of the unencrypted text) and the dynamic-attacker outcomes, so the
whole matrix resumes from the committed store.  The encrypt-ms column
is the store-replayed wall time — stable across warm re-runs like the
Fig. 6 timings.
"""

from repro.core.config import EncryptionMode, EricConfig
from repro.eval.report import format_table
from repro.farm import JobMatrix, SimParams
from repro.workloads import get_workload

WORKLOAD = "crc32"
_PARAMS = (SimParams(device_seed=0xC1F),)

CIPHERS = ("xor-repeating", "xor-sha256ctr")


def _cipher_matrix(workload: str, simulate: bool) -> JobMatrix:
    return JobMatrix(workloads=(workload,),
                     configs=tuple(EricConfig(cipher=c) for c in CIPHERS),
                     params=_PARAMS, simulate=simulate, analyze=True)


class TestCipherChoice:
    def test_cipher_sweep(self, benchmark, record, farm):
        report = benchmark.pedantic(
            lambda: farm.run(_cipher_matrix(WORKLOAD, simulate=True)),
            rounds=1, iterations=1)
        report.require_ok()

        expected = get_workload(WORKLOAD).expected_stdout
        rows = [(r.spec.config.cipher,
                 r.record.encryption_s * 1e3,
                 r.record.hde_cycles,
                 r.record.analysis["byte_entropy"],
                 r.record.output_ok(expected))
                for r in report.results]
        record("ablation_cipher_choice", format_table(
            ["cipher", "encrypt ms", "HDE cycles",
             "ciphertext entropy", "output ok"],
            [[c, f"{t:.2f}", h, f"{e:.2f}", ok]
             for c, t, h, e, ok in rows],
            title=f"Cipher-choice ablation ({WORKLOAD})",
        ))
        assert all(ok for *_, ok in rows)
        # the keystream variant raises ciphertext entropy vs repeating-key
        by_name = {r[0]: r for r in rows}
        assert by_name["xor-sha256ctr"][3] >= by_name["xor-repeating"][3]

    def test_repeating_key_is_weaker_on_long_texts(self, farm):
        """Why the pluggable-cipher hook matters: a repeating 32-byte key
        leaves periodic structure that keystream mode removes."""
        report = farm.run(_cipher_matrix("sha", simulate=False))
        report.require_ok()
        entropy = {r.spec.config.cipher: r.record.analysis["byte_entropy"]
                   for r in report.results}
        assert entropy["xor-sha256ctr"] > entropy["xor-repeating"] - 0.2


class TestAttackResistance:
    MODES = [
        ("full", EricConfig(mode=EncryptionMode.FULL)),
        ("partial 50%", EricConfig(mode=EncryptionMode.PARTIAL)),
        ("field", EricConfig(mode=EncryptionMode.FIELD)),
    ]

    def _matrix(self) -> JobMatrix:
        return JobMatrix(workloads=(WORKLOAD,),
                         configs=tuple(c for _, c in self.MODES),
                         params=_PARAMS, simulate=True, analyze=True)

    def test_static_resistance_table(self, benchmark, record, farm):
        report = benchmark.pedantic(lambda: farm.run(self._matrix()),
                                    rounds=1, iterations=1)
        report.require_ok()

        # every record carries the same-source plain baseline; the
        # full-mode record supplies the table's "plain" row
        plain = report.results[0].record.analysis["plain"]
        rows = [("plain", plain["decode_fraction"],
                 plain["byte_entropy"], plain["looks_like_code"])]
        for (label, _), result in zip(self.MODES, report.results):
            analysis = result.record.analysis
            rows.append((label, analysis["decode_fraction"],
                         analysis["byte_entropy"],
                         analysis["looks_like_code"]))

        record("ablation_static_resistance", format_table(
            ["text", "decode rate", "byte entropy", "verdict code?"],
            [[l, f"{d:.1%}", f"{e:.2f}", v] for l, d, e, v in rows],
            title="Static-analysis resistance by mode",
        ))
        by_label = dict((r[0], r) for r in rows)
        assert by_label["plain"][3] is True
        assert by_label["full"][3] is False
        # partial(50%) garbles a solid share of decode windows (the
        # resynchronizing walk recovers quickly, so the drop is smaller
        # than the encrypted fraction)
        assert by_label["partial 50%"][1] < by_label["plain"][1] - 0.15
        # field mode intentionally still *looks* like code
        assert by_label["field"][1] > 0.9

    def test_dynamic_resistance(self, record, farm):
        report = farm.run(JobMatrix(workloads=(WORKLOAD,), params=_PARAMS,
                                    simulate=True, analyze=True))
        report.require_ok()
        [result] = report.results
        outcomes = result.record.analysis["dynamic"]
        record("ablation_dynamic_resistance", "\n".join(
            [f"Dynamic analysis on {len(outcomes)} attacker devices:"]
            + [f"  attacker {i}: outcome={o['outcome']!r} "
               f"instructions={o['instructions_observed']} "
               f"leaked={o['leaked']}"
               for i, o in enumerate(outcomes)]))
        assert all(not o["leaked"] for o in outcomes)
        assert all(o["outcome"] == "rejected" for o in outcomes)
