"""Ablations — pluggable cipher choice and attack-resistance metrics.

* cipher choice: the paper's repeating-key XOR vs the SHA-256-CTR
  keystream variant (the "different encryption methods" hook of §III.1):
  packaging time, HDE cycles, and ciphertext quality.
* attack resistance: static-attacker metrics per encryption mode, and
  dynamic-attacker outcomes on non-target hardware.
"""

import pytest

from repro.core.compiler_driver import EricCompiler
from repro.core.config import EncryptionMode, EricConfig
from repro.core.device import Device
from repro.eval.report import Volatile, format_table
from repro.net.dynamic_attacker import attempt_execution
from repro.net.static_attacker import analyze_blob, byte_entropy
from repro.workloads import get_workload

WORKLOAD = "crc32"


@pytest.fixture(scope="module")
def device():
    return Device(device_seed=0xC1F)


class TestCipherChoice:
    def test_cipher_sweep(self, benchmark, record, device):
        def sweep():
            rows = []
            for cipher in ("xor-repeating", "xor-sha256ctr"):
                compiler = EricCompiler(EricConfig(cipher=cipher))
                result = compiler.compile_and_package(
                    get_workload(WORKLOAD).source,
                    device.enrollment_key(), name=WORKLOAD)
                outcome = device.load_and_run(result.package_bytes)
                entropy = byte_entropy(result.package.enc_text)
                rows.append((cipher,
                             result.timings.encryption_s * 1e3,
                             outcome.hde.total_cycles,
                             entropy,
                             outcome.run.stdout
                             == get_workload(WORKLOAD).expected_stdout))
            return rows

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        # encrypt ms is wall-clock: Volatile keeps it out of the
        # persisted table so regeneration stays diff-clean
        table_rows = [[c, Volatile(f"{t:.2f}"), h, f"{e:.2f}", ok]
                      for c, t, h, e, ok in rows]
        headers = ["cipher", "encrypt ms", "HDE cycles",
                   "ciphertext entropy", "output ok"]
        title = f"Cipher-choice ablation ({WORKLOAD})"
        record("ablation_cipher_choice",
               format_table(headers, table_rows, title=title),
               stable=format_table(headers, table_rows, title=title,
                                   stable=True))
        assert all(ok for *_, ok in rows)
        # the keystream variant raises ciphertext entropy vs repeating-key
        by_name = {r[0]: r for r in rows}
        assert by_name["xor-sha256ctr"][3] >= by_name["xor-repeating"][3]

    def test_repeating_key_is_weaker_on_long_texts(self, device):
        """Why the pluggable-cipher hook matters: a repeating 32-byte key
        leaves periodic structure that keystream mode removes."""
        source = get_workload("sha").source  # the largest text
        results = {}
        for cipher in ("xor-repeating", "xor-sha256ctr"):
            compiler = EricCompiler(EricConfig(cipher=cipher))
            package = compiler.compile_and_package(
                source, device.enrollment_key())
            results[cipher] = byte_entropy(package.package.enc_text)
        assert results["xor-sha256ctr"] > results["xor-repeating"] - 0.2


class TestAttackResistance:
    MODES = [
        ("plain", None),
        ("full", EricConfig(mode=EncryptionMode.FULL)),
        ("partial 50%", EricConfig(mode=EncryptionMode.PARTIAL)),
        ("field", EricConfig(mode=EncryptionMode.FIELD)),
    ]

    def test_static_resistance_table(self, benchmark, record, device):
        source = get_workload(WORKLOAD).source

        def sweep():
            rows = []
            for label, config in self.MODES:
                if config is None:
                    compiler = EricCompiler()
                    blob = compiler.compile_baseline(source)[0].program.text
                else:
                    result = EricCompiler(config).compile_and_package(
                        source, device.enrollment_key())
                    blob = result.package.enc_text
                report = analyze_blob(blob)
                rows.append((label, report.valid_decode_fraction,
                             report.byte_entropy_bits,
                             report.looks_like_code))
            return rows

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        record("ablation_static_resistance", format_table(
            ["text", "decode rate", "byte entropy", "verdict code?"],
            [[l, f"{d:.1%}", f"{e:.2f}", v] for l, d, e, v in rows],
            title="Static-analysis resistance by mode",
        ))
        by_label = dict((r[0], r) for r in rows)
        assert by_label["plain"][3] is True
        assert by_label["full"][3] is False
        # partial(50%) garbles a solid share of decode windows (the
        # resynchronizing walk recovers quickly, so the drop is smaller
        # than the encrypted fraction)
        assert by_label["partial 50%"][1] < by_label["plain"][1] - 0.15
        # field mode intentionally still *looks* like code
        assert by_label["field"][1] > 0.9

    def test_dynamic_resistance(self, record, device):
        package = EricCompiler().compile_and_package(
            get_workload(WORKLOAD).source, device.enrollment_key())
        attackers = [Device(device_seed=s) for s in (1, 2, 3)]
        outcomes = [attempt_execution(a, package.package_bytes)
                    for a in attackers]
        record("ablation_dynamic_resistance", "\n".join(
            ["Dynamic analysis on 3 attacker devices:"]
            + [f"  attacker {i}: outcome={o.outcome!r} "
               f"instructions={o.instructions_observed} "
               f"leaked={o.leaked_behaviour}"
               for i, o in enumerate(outcomes)]))
        assert all(not o.leaked_behaviour for o in outcomes)
        assert all(o.outcome == "rejected" for o in outcomes)
