"""Table I — test environment configuration (paper vs reproduction)."""

from repro.eval import table1


def test_table1_configuration(benchmark, record):
    result = benchmark.pedantic(table1.run, rounds=3, iterations=1)
    record("table1_config", result.render())

    parameters = {row[0] for row in result.rows}
    # every Table I parameter is present
    assert {"FPGA", "PUF Type", "PUF Parameters", "Signature Function",
            "Encryption Function", "SoC", "Test Frequency", "Target ISA",
            "L1 Data Cache", "L1 Instruction Cache",
            "Register File"} <= parameters
    # reproduction column filled for every row
    assert all(row[2] for row in result.rows)


def test_table1_values_match_defaults(record):
    """The defaults of the code base actually are the Table I config."""
    from repro.puf.arbiter import PufArray
    from repro.soc.cache import CacheConfig

    array = PufArray()
    assert array.width == 32
    assert array.n_stages == 8

    cache = CacheConfig()
    assert cache.size_bytes == 16 * 1024
    assert cache.ways == 4

    from repro.core.config import EricConfig
    assert EricConfig().cipher == "xor-repeating"
