"""Ablation — ERIC vs the related work's AES-encrypted-memory approach.

§V: full-memory AES encryption ([29], [30], AEGIS) pays "an extra delay
each time when trying to access the main memory"; AEGIS reports ~30 %
IPC loss.  ERIC decrypts once at load time instead.

The bench runs each workload once, then prices both schemes on the same
counters: ERIC = one-time HDE cycles; AES-memory = per-miss line
decryption (recurring, and growing under cache pressure).  A second
sweep shrinks the caches to show the divergence under memory pressure.
"""

import pytest

from repro.core.compiler_driver import EricCompiler
from repro.core.device import Device
from repro.eval.report import format_table
from repro.hw.aes_memory import AES_CORE_LUTS, AesMemoryModel
from repro.hw.area import area_table
from repro.soc.cache import CacheConfig
from repro.workloads import all_workloads


def test_eric_vs_aes_memory(benchmark, record):
    device = Device(device_seed=0xAE5)
    compiler = EricCompiler()
    key = device.enrollment_key()
    model = AesMemoryModel()

    def sweep():
        rows = []
        for name, workload in all_workloads().items():
            package = compiler.compile_and_package(workload.source, key,
                                                   name=name)
            outcome = device.load_and_run(package.package_bytes)
            counters = outcome.run.counters
            eric_pct = 100.0 * outcome.hde.total_cycles / counters.cycles
            aes_pct = model.slowdown_pct(counters)
            rows.append((name, eric_pct, aes_pct))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record("ablation_aes_memory", format_table(
        ["workload", "ERIC overhead", "AES-memory overhead"],
        [[n, f"+{e:.2f}%", f"+{a:.2f}%"] for n, e, a in rows],
        title="ERIC (load-time) vs AES-per-line memory encryption",
    ))
    # both overheads exist; ERIC's is one-time, AES-memory recurs every
    # run — and on re-runs of a resident program ERIC pays ~zero while
    # AES-memory pays again (asserted structurally: ERIC cost comes from
    # the HDE, AES cost from the run counters).
    assert all(e > 0 and a >= 0 for _, e, a in rows)


def test_cache_pressure_divergence(record):
    """Shrink L1s: AES-memory overhead explodes with the miss rate;
    ERIC's HDE cost is exactly unchanged."""
    compiler = EricCompiler()
    model = AesMemoryModel()
    workload = all_workloads()["dijkstra"]
    rows = []
    for size_kib in (16, 4, 1):
        config = CacheConfig(size_bytes=size_kib * 1024)
        device = Device(device_seed=0xAE5, icache=config, dcache=config)
        package = compiler.compile_and_package(
            workload.source, device.enrollment_key(), name="dijkstra")
        outcome = device.load_and_run(package.package_bytes)
        counters = outcome.run.counters
        rows.append((size_kib,
                     outcome.hde.total_cycles,
                     model.extra_cycles(counters),
                     counters.icache_misses + counters.dcache_misses))
    record("ablation_aes_cache_pressure", format_table(
        ["L1 size KiB", "ERIC HDE cycles", "AES-memory extra cycles",
         "L1 misses"],
        [[f"{s}", h, a, m] for s, h, a, m in rows],
        title="Cache-pressure sweep (dijkstra)",
    ))
    # ERIC cost identical across cache sizes; AES cost strictly grows
    assert rows[0][1] == rows[1][1] == rows[2][1]
    assert rows[0][2] < rows[1][2] < rows[2][2]


def test_area_comparison(record):
    """An AES memory engine alone out-costs the entire HDE."""
    hde = area_table()
    assert AES_CORE_LUTS > hde["hde_luts"]
    record("ablation_aes_area", "\n".join([
        "Area: HDE vs a single AES-128 memory engine",
        f"  HDE total      : {hde['hde_luts']} LUTs / "
        f"{hde['hde_ffs']} FFs",
        f"  AES-128 engine : {AES_CORE_LUTS} LUTs / 1700 FFs "
        "(literature, iterative core)",
    ]))
