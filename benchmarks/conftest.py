"""Shared infrastructure for the figure/table benchmarks.

Every bench prints the regenerated table (visible with ``pytest -s``)
and writes it to ``benchmarks/results/<name>.txt`` so the rows survive
output capture.  Writers with machine-dependent cells pass a separate
``stable=`` render (see :class:`repro.eval.report.Volatile`): the live
text is printed, the stable text is persisted, and regenerating results
produces no spurious diffs.

The session-scoped ``farm`` fixture runs against the committed result
store under ``benchmarks/results/farm/``: figure rows are served from
stored records when present and only simulated (then persisted) when
missing — the same resumability `eric sweep` exposes.

pytest-benchmark timings measure the *harness* cost of each experiment;
the scientific content is the printed rows plus the shape assertions in
each test.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.farm import ResultStore, SimulationFarm

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
FARM_STORE_DIR = RESULTS_DIR / "farm"


@pytest.fixture(scope="session")
def record():
    """record(name, text, stable=None): print + persist a result table.

    ``text`` is printed as measured; ``stable`` (default: ``text``) is
    what lands in ``results/<name>.txt``.
    """
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str, stable: str | None = None) -> None:
        print()
        print(text)
        persisted = text if stable is None else stable
        (RESULTS_DIR / f"{name}.txt").write_text(persisted + "\n")

    return _record


@pytest.fixture(scope="session")
def farm_store() -> ResultStore:
    """The committed, resumable measurement store."""
    return ResultStore(FARM_STORE_DIR)


@pytest.fixture(scope="session")
def farm(farm_store) -> SimulationFarm:
    """One farm for the whole benchmark session (jobs=1: benchmark
    wall times must not depend on box parallelism)."""
    return SimulationFarm(store=farm_store, jobs=1)
