"""Shared infrastructure for the figure/table benchmarks.

Every bench prints the regenerated table (visible with ``pytest -s``) and
writes it to ``benchmarks/results/<name>.txt`` so the rows survive output
capture.  pytest-benchmark timings measure the *harness* cost of each
experiment; the scientific content is the printed rows plus the shape
assertions in each test.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def record():
    """record(name, text): print + persist a rendered result table."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        print()
        print(text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _record
