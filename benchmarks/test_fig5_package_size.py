"""Fig. 5 — program-package size vs unencrypted compiled program.

Paper: max +3.73 %, average +1.59 %.  Full encryption pays only the
256-bit signature (+ container header); partial encryption additionally
pays 1 map bit per instruction; RVC builds pay proportionally more map
per byte (1 bit per 16 bits, §IV.A).
"""

from repro.eval import fig5


def test_fig5_package_sizes(benchmark, record, farm):
    result = benchmark.pedantic(lambda: fig5.run(farm=farm),
                                rounds=1, iterations=1)
    record("fig5_package_size", result.render())

    s = result.summary
    # paper band: small single-digit percentages
    assert s["avg_increase_pct"] < 4.0
    assert s["max_increase_pct"] < 8.0

    for row in result.rows:
        # full encryption: signature+header only => below ~2% on our sizes
        assert 0.0 < row.full_pct < 2.5
        # partial adds the map: strictly more than full for every program
        assert row.partial_pct > row.full_pct
        # RVC halves average instruction size => map overhead ratio grows
        assert row.rvc_partial_pct > row.partial_pct


def test_fig5_small_programs_pay_more(record, farm):
    """The paper's size-normalization effect: fixed signature cost means
    smaller binaries see larger percentage increases."""
    result = fig5.run(farm=farm)
    by_size = sorted(result.rows, key=lambda r: r.plain_size)
    smallest, largest = by_size[0], by_size[-1]
    assert smallest.full_pct > largest.full_pct


def test_fig5_absolute_accounting(record):
    """Package-minus-plain must equal signature + header + map bytes."""
    from repro.core.compiler_driver import EricCompiler
    from repro.core.config import EncryptionMode, EricConfig
    from repro.core.keys import puf_based_key
    from repro.workloads import get_workload

    key = puf_based_key(b"accounting")
    source = get_workload("crc32").source

    full = EricCompiler(EricConfig()).compile_and_package(source, key)
    partial = EricCompiler(
        EricConfig(mode=EncryptionMode.PARTIAL)).compile_and_package(
            source, key)
    map_bytes = (full.program.instruction_count + 7) // 8
    assert partial.package_size - full.package_size == map_bytes
    # fixed cost: 32B signature + (header delta vs plain container)
    fixed = full.package_size - full.plain_size
    assert 32 <= fixed <= 96
