"""Ablation — overlapped HDE (paper §VI: "improving the parallelism").

The serial HDE runs Decryption Unit then Signature Generator; both
stream the same decrypted words, so a pipelined implementation hides the
faster stage behind the slower.  This bench quantifies the saving per
workload and its effect on the Fig. 7 headline.
"""

from repro.core.compiler_driver import EricCompiler
from repro.core.device import Device
from repro.eval.report import format_table
from repro.workloads import all_workloads


def test_overlapped_hde_sweep(benchmark, record):
    serial = Device(device_seed=0x0EE, overlapped_hde=False)
    parallel = Device(device_seed=0x0EE, overlapped_hde=True)
    compiler = EricCompiler()
    key = serial.enrollment_key()

    def sweep():
        rows = []
        for name, workload in all_workloads().items():
            package = compiler.compile_and_package(workload.source, key,
                                                   name=name)
            s = serial.load_and_run(package.package_bytes)
            p = parallel.load_and_run(package.package_bytes)
            assert p.run.stdout == s.run.stdout == workload.expected_stdout
            saving = 100.0 * (1 - p.hde.total_cycles / s.hde.total_cycles)
            s_ovh = 100.0 * s.hde.total_cycles / s.run.counters.cycles
            p_ovh = 100.0 * p.hde.total_cycles / p.run.counters.cycles
            rows.append((name, s.hde.total_cycles, p.hde.total_cycles,
                         saving, s_ovh, p_ovh))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record("ablation_overlapped_hde", format_table(
        ["workload", "serial HDE", "overlapped HDE", "saving",
         "serial ovh", "overlapped ovh"],
        [[n, s, p, f"{sv:.1f}%", f"+{so:.2f}%", f"+{po:.2f}%"]
         for n, s, p, sv, so, po in rows],
        title="Overlapped HDE (decrypt || hash pipeline) vs serial",
    ))

    for name, s_cycles, p_cycles, saving, *_ in rows:
        assert p_cycles < s_cycles, name
        assert 0.0 < saving < 60.0, name  # hides the smaller stage only
