"""Ablation — overlapped HDE (paper §VI: "improving the parallelism").

The serial HDE runs Decryption Unit then Signature Generator; both
stream the same decrypted words, so a pipelined implementation hides the
faster stage behind the slower.  This bench quantifies the saving per
workload and its effect on the Fig. 7 headline.

``overlapped_hde`` is a farm sweep axis: every workload runs as a
serial and an overlapped job against the committed store.  The serial
rows use Fig. 7's device seed on purpose — they are the exact fig7
store records, so the two benches share measurements.
"""

from repro.eval.report import format_table
from repro.farm import JobMatrix, SimParams
from repro.workloads import all_workloads

#: fig7's device (repro.eval.fig7): serial rows dedupe with its records
_DEVICE_SEED = 0xE7A1


def test_overlapped_hde_sweep(benchmark, record, farm):
    workloads = all_workloads()
    matrix = JobMatrix(
        workloads=tuple(workloads),
        params=(SimParams(device_seed=_DEVICE_SEED, overlapped_hde=False),
                SimParams(device_seed=_DEVICE_SEED, overlapped_hde=True)),
        simulate=True)

    report = benchmark.pedantic(lambda: farm.run(matrix),
                                rounds=1, iterations=1)
    report.require_ok()

    by_name = {}
    for result in report.results:
        expected = workloads[result.spec.workload].expected_stdout
        assert result.record.output_ok(expected), result.spec.display_name
        by_name.setdefault(result.spec.display_name, {})[
            result.spec.params.overlapped_hde] = result.record

    rows = []
    for name in workloads:
        s, p = by_name[name][False], by_name[name][True]
        # the per-record serial-accounting field ties out against the
        # serial-axis job of the same workload
        assert p.hde_serial_cycles == s.hde_cycles, name
        saving = 100.0 * (1 - p.hde_cycles / s.hde_cycles)
        s_ovh = 100.0 * s.hde_cycles / s.eric_run["counters"]["cycles"]
        p_ovh = 100.0 * p.hde_cycles / p.eric_run["counters"]["cycles"]
        rows.append((name, s.hde_cycles, p.hde_cycles,
                     saving, s_ovh, p_ovh))

    record("ablation_overlapped_hde", format_table(
        ["workload", "serial HDE", "overlapped HDE", "saving",
         "serial ovh", "overlapped ovh"],
        [[n, s, p, f"{sv:.1f}%", f"+{so:.2f}%", f"+{po:.2f}%"]
         for n, s, p, sv, so, po in rows],
        title="Overlapped HDE (decrypt || hash pipeline) vs serial",
    ))

    for name, s_cycles, p_cycles, saving, *_ in rows:
        assert p_cycles < s_cycles, name
        assert 0.0 < saving < 60.0, name  # hides the smaller stage only
