"""Fig. 7 — end-to-end execution time, ERIC vs unencrypted baseline.

Paper: "slows down the system by 7.05 % at most and 4.13 % on average",
with overhead proportional to static size over dynamic length.
"""

from repro.eval import fig7


def test_fig7_execution_time(benchmark, record, farm):
    result = benchmark.pedantic(lambda: fig7.run(farm=farm),
                                rounds=1, iterations=1)
    record("fig7_execution_time", result.render())

    s = result.summary
    # the paper's band (with margin for the cycle-approximate model)
    assert 2.0 < s["avg_overhead_pct"] < 6.5
    assert 4.0 < s["max_overhead_pct"] < 10.0
    for row in result.rows:
        assert row.overhead_pct > 0.0
        assert row.eric_cycles == row.plain_cycles + row.hde_cycles


def test_fig7_overhead_proportional_to_size_over_length(record, farm):
    """The paper's closing observation: 'there is a direct
    proportionality between the dynamic size of the program and the
    performance' — overhead correlates with static/dynamic ratio."""
    result = fig7.run(farm=farm)
    pairs = [(r.hde_cycles / r.plain_cycles, r.overhead_pct)
             for r in result.rows]
    pairs.sort()
    ratios = [p[0] for p in pairs]
    overheads = [p[1] for p in pairs]
    # rank correlation must be perfect: overhead == 100 * ratio by
    # construction of the model, so this guards the plumbing end-to-end
    assert overheads == sorted(overheads)
    assert ratios[0] < ratios[-1]


def test_fig7_hde_breakdown_dominated_by_signature(record):
    """Within the HDE, the serialized SHA-256 dominates; the XOR lane is
    nearly free — the architectural claim behind 'lightweight'."""
    from repro.core.compiler_driver import EricCompiler
    from repro.core.device import Device
    from repro.workloads import get_workload

    device = Device(device_seed=0xF16)
    package = EricCompiler().compile_and_package(
        get_workload("sha").source, device.enrollment_key())
    _, report = device.hde.process(package.package_bytes)
    assert report.signature_cycles > report.decrypt_cycles
    assert report.signature_cycles > report.puf_keygen_cycles
    assert report.validation_cycles < 20
