"""CI smoke: the policy frontier end to end — a 2-policy x 2-workload
sweep completes cold, resumes with 100% store hits, and both runs
render the byte-identical frontier table (every cell is a
deterministic function of job keys).

Runs locally too::

    PYTHONPATH=src python benchmarks/smoke/frontier_sweep.py
"""

import argparse
import tempfile

from _bootstrap import ROOT  # noqa: F401,E402 — wires sys.path

from repro.eval.frontier import frontier_matrix, frontier_report  # noqa: E402
from repro.farm import ResultStore, SimulationFarm  # noqa: E402
from repro.policy import policy_from_dict  # noqa: E402

POLICIES = [
    policy_from_dict({
        "name": "light",
        "encrypt": [{"region": {"kind": "program"}, "fraction": 0.25}],
    }),
    policy_from_dict({
        "name": "heavy",
        "encrypt": [{"region": {"kind": "program"}, "fraction": 1.0}],
        "obfuscate": [{"region": {"kind": "program"},
                       "density": 0.1, "junk": 3}],
    }),
]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--store",
                        help="store directory (default: fresh temp dir)")
    parser.add_argument("--jobs", type=int, default=2)
    args = parser.parse_args(argv)
    store_dir = args.store or tempfile.mkdtemp(prefix="frontier-smoke-")

    matrix = frontier_matrix(POLICIES, workloads=("crc32", "bitcount"))
    assert matrix.job_count == 4, "smoke matrix must stay 2x2"

    cold = SimulationFarm(store=ResultStore(store_dir),
                          jobs=args.jobs).run(matrix)
    cold.require_ok()
    assert cold.executed == 4 and cold.hits == 0, cold.summary()
    cold_table = frontier_report(cold).render()
    print("cold:", cold.summary())
    print(cold_table)

    warm = SimulationFarm(store=ResultStore(store_dir),
                          jobs=args.jobs).run(matrix)
    warm.require_ok()
    assert warm.executed == 0, warm.summary()
    assert warm.hit_rate == 1.0, warm.summary()
    warm_table = frontier_report(warm).render()
    print("warm:", warm.summary())
    assert warm_table == cold_table, (
        "frontier table is not byte-stable across cold/warm runs:\n"
        f"--- cold ---\n{cold_table}\n--- warm ---\n{warm_table}")

    # sanity: the gradient the docs promise — the heavy policy costs
    # more and its ciphertext looks more random
    scores = {s.policy: s for s in frontier_report(warm).scores}
    assert scores["heavy"].overhead_pct > scores["light"].overhead_pct
    assert scores["heavy"].byte_entropy > scores["light"].byte_entropy

    print("PASS: frontier cold/warm smoke (byte-stable table)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
