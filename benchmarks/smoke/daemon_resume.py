"""CI smoke: kill a serving daemon with SIGTERM, restart it, and the
journaled fleets complete with zero re-simulation.

The out-of-process version of ``benchmarks/test_daemon_resume.py``:
``eric submit`` journals two fleets, ``eric daemon`` serves them as a
real subprocess, SIGTERM lands mid-serve (after the first result hits
the store), and a second daemon finishes the job.  Every simulation
appends exactly one store line, so the final line count doubling as
the unique-key count is the zero-re-simulation proof.

Runs locally too::

    PYTHONPATH=src python benchmarks/smoke/daemon_resume.py
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time

from _bootstrap import ROOT  # noqa: E402 — wires sys.path

from repro.farm import ResultStore  # noqa: E402
from repro.service.daemon import JournalStore  # noqa: E402

#: Two fleets sharing one seed: 8 job requests over 7 unique keys.
FLEETS = {"fleets": [
    {"name": "alpha",
     "programs": [{"name": "probe",
                   "source": "int main() { return 0; }\n"}],
     "device_seeds": [1, 2, 3, 4]},
    {"name": "beta",
     "programs": [{"name": "probe",
                   "source": "int main() { return 0; }\n"}],
     "device_seeds": [4, 5, 6, 7]},
]}
UNIQUE_JOBS = 7


def _store_lines(store_dir) -> int:
    path = ResultStore(store_dir).path
    if not path.exists():
        return 0
    return sum(1 for line in path.read_text().splitlines()
               if line.strip())


def _env():
    env = dict(os.environ)
    src = str(ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _cli(args, log):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *args],
        env=_env(), stdout=log, stderr=subprocess.STDOUT)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workdir",
                        help="journal/store parent (default: temp dir)")
    args = parser.parse_args(argv)
    work = args.workdir or tempfile.mkdtemp(prefix="daemon-smoke-")
    journal_dir = os.path.join(work, "journal")
    store_dir = os.path.join(work, "store")
    spec_path = os.path.join(work, "fleets.json")
    log_path = os.path.join(work, "daemon.log")
    with open(spec_path, "w", encoding="utf-8") as handle:
        json.dump(FLEETS, handle)

    with open(log_path, "w", encoding="utf-8") as log:
        submit = _cli(["submit", spec_path, "--journal", journal_dir],
                      log)
        assert submit.wait(timeout=60) == 0, "eric submit failed"
        assert len(JournalStore(journal_dir).live()) == 2

        # phase 1: a real daemon subprocess, SIGTERM after the first
        # simulated job lands in the store
        daemon = _cli(["daemon", "--journal", journal_dir,
                       "--store", store_dir, "--once", "--quiet",
                       "--checkpoint-every", "1"], log)
        deadline = time.monotonic() + 120
        while _store_lines(store_dir) < 1:
            assert daemon.poll() is None, (
                f"daemon exited before measuring anything; "
                f"see {log_path}")
            assert time.monotonic() < deadline, (
                f"no store line within 120s; see {log_path}")
            time.sleep(0.01)
        daemon.send_signal(signal.SIGTERM)
        assert daemon.wait(timeout=120) == 0, (
            f"SIGTERM exit was not graceful; see {log_path}")

    interrupted = _store_lines(store_dir)
    leftovers = JournalStore(journal_dir).live()
    print(f"after SIGTERM: {interrupted}/{UNIQUE_JOBS} store line(s), "
          f"{len(leftovers)} live request(s) journaled")
    assert 1 <= interrupted < UNIQUE_JOBS, interrupted
    assert leftovers, "SIGTERM landed but nothing was left to resume"

    # phase 2: a fresh daemon drains the journal and exits cleanly
    with open(log_path, "a", encoding="utf-8") as log:
        daemon = _cli(["daemon", "--journal", journal_dir,
                       "--store", store_dir, "--once", "--quiet"], log)
        assert daemon.wait(timeout=300) == 0, (
            f"resume daemon failed; see {log_path}")

    records = JournalStore(journal_dir).records()
    states = sorted(r.state for r in records)
    assert states == ["done", "done"], states
    resumed = [r for r in records if r.attempts > 1]
    assert resumed, "no request recorded a second attempt"
    final = _store_lines(store_dir)
    print(f"after resume: every request done, {final} store line(s)")
    # zero re-simulation: one store line per unique key, ever
    assert final == UNIQUE_JOBS, final
    print("PASS: daemon SIGTERM/resume smoke")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
