"""CI smoke: the PR-3 axes — a 2x2 (environment x overlapped-HDE)
matrix measured with ``analyze=True`` must carry attacker outcomes in
every record and stay at 100% hits on a warm-store resume.

Runs locally::

    PYTHONPATH=src python benchmarks/smoke/analyze_environments.py
"""

import argparse
import tempfile

import _bootstrap  # noqa: F401 — wires sys.path for local runs

from repro.farm import JobMatrix, ResultStore, SimulationFarm  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--store",
                        help="store directory (default: fresh temp dir)")
    parser.add_argument("--jobs", type=int, default=2)
    args = parser.parse_args(argv)
    store_dir = args.store or tempfile.mkdtemp(prefix="farm-analyze-")

    matrix = JobMatrix.from_spec({
        "programs": [{"name": "probe",
                      "source": "int main() { return 0; }\n"}],
        "environments": [{}, {"temperature_c": 85.0,
                              "voltage": 0.9}],
        "overlapped_hde": [False, True],
        "simulate": False,
        "analyze": True,
    })
    assert matrix.job_count == 4, "environment x HDE-mode 2x2"

    cold = SimulationFarm(store=ResultStore(store_dir),
                          jobs=args.jobs).run(matrix)
    cold.require_ok()
    assert cold.executed == 4 and cold.hits == 0, cold.summary()
    for record in cold.records:
        assert record.key_failure == 0.0, "screened key unstable"
        assert record.analysis["dynamic"], "no attacker outcomes"
        assert all(not d["leaked"]
                   for d in record.analysis["dynamic"])
    print("cold:", cold.summary())

    warm = SimulationFarm(store=ResultStore(store_dir),
                          jobs=args.jobs).run(matrix)
    warm.require_ok()
    assert warm.executed == 0, warm.summary()
    assert warm.hit_rate == 1.0, warm.summary()
    print("resumed:", warm.summary())
    print("PASS: analyze/environments smoke")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
