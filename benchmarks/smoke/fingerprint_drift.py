"""CI smoke: a timing-model edit must move the fingerprint and fail
the doctor.

Copies the fingerprinted modules to a temp tree, patches one pipeline
latency constant, and asserts the chain end to end: the patched tree's
fingerprint differs (and only ``soc/pipeline.py`` contributes the
drift), a store recorded under the patched model is flagged by ``eric
doctor --fingerprint`` (exit 1), and the committed store passes the
same audit (exit 0).  Comment-only edits must move nothing.

Runs locally too::

    PYTHONPATH=src python benchmarks/smoke/fingerprint_drift.py
"""

import argparse
import dataclasses
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

from _bootstrap import ROOT  # noqa: E402 — wires sys.path

from repro.statics.fingerprint import (FINGERPRINT_MODULES,  # noqa: E402
                                       compute_report, model_fingerprint)

PACKAGE_ROOT = ROOT / "src" / "repro"
PATCH_OLD = "miss_penalty: int = 24"
PATCH_NEW = "miss_penalty: int = 37"


def copy_tree(into: Path) -> Path:
    tree = into / "repro"
    for rel in FINGERPRINT_MODULES:
        target = tree / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(PACKAGE_ROOT / rel, target)
    return tree


def doctor(store: Path) -> int:
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", "doctor", "--store",
         str(store), "--fingerprint"],
        env={"PYTHONPATH": str(ROOT / "src"), "PATH": "/usr/bin:/bin"},
        cwd=ROOT).returncode


def main(argv=None) -> int:
    argparse.ArgumentParser(description=__doc__).parse_args(argv)

    with tempfile.TemporaryDirectory() as tmp:
        tree = copy_tree(Path(tmp))
        baseline = compute_report(tree)
        assert baseline.fingerprint == model_fingerprint(), \
            "tree copy must fingerprint identically to the package"

        pipeline = tree / "soc" / "pipeline.py"
        source = pipeline.read_text(encoding="utf-8")

        # comment-only edit: nothing moves
        pipeline.write_text("# smoke banner\n" + source,
                            encoding="utf-8")
        assert compute_report(tree).fingerprint == \
            baseline.fingerprint, "comment edit moved the fingerprint"

        # latency edit: fingerprint drifts, blamed on pipeline.py
        assert PATCH_OLD in source, \
            f"pipeline constant {PATCH_OLD!r} not found to patch"
        pipeline.write_text(source.replace(PATCH_OLD, PATCH_NEW),
                            encoding="utf-8")
        patched = compute_report(tree)
        assert patched.fingerprint != baseline.fingerprint, \
            "latency edit did not move the fingerprint"
        drifted = [name for name in patched.modules
                   if patched.modules[name] != baseline.modules[name]]
        assert drifted == ["soc/pipeline.py"], \
            f"unexpected drift set {drifted}"
        print(f"drift: {PATCH_OLD!r} -> {PATCH_NEW!r} moved "
              f"{baseline.fingerprint[:16]} -> "
              f"{patched.fingerprint[:16]} via soc/pipeline.py")

        # a store measured under the patched model fails the doctor
        from repro.farm.executor import execute_job
        from repro.farm.spec import JobSpec
        record = execute_job(JobSpec(
            source="int main() { return 0; }", name="drift-probe",
            simulate=False).validate())
        drifted_record = dataclasses.replace(
            record, model_fingerprint=patched.fingerprint)
        store = Path(tmp) / "store"
        store.mkdir()
        (store / "results.jsonl").write_text(
            drifted_record.to_json() + "\n", encoding="utf-8")
        code = doctor(store)
        assert code == 1, \
            f"doctor accepted a drifted store (exit {code})"
        print("doctor: drifted store correctly fails (exit 1)")

    committed = ROOT / "benchmarks" / "results" / "farm"
    code = doctor(committed)
    assert code == 0, \
        f"doctor rejected the committed store (exit {code})"
    print("doctor: committed store passes the fingerprint audit")
    print("fingerprint drift smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
