"""CI smoke: the superblock fast interpreter against the reference
decode-per-step loop on one workload — observables must be identical,
and warm throughput must clear a conservative floor.

Runs locally too::

    PYTHONPATH=src python benchmarks/smoke/interp_diff.py

The throughput floor is deliberately far below the committed baseline
(see ``benchmarks/results/BENCH_interp.json``): it exists to catch an
accidental fall back to the reference loop (~1 Mcyc/s), not to bench
the CI machine.
"""

import argparse
import time

from _bootstrap import ROOT  # noqa: E402 — wires sys.path

from repro.cc.driver import compile_source  # noqa: E402
from repro.soc.soc import RocketLikeSoC  # noqa: E402
from repro.workloads import all_workloads  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="crc32")
    parser.add_argument("--floor-mcyc", type=float, default=3.0,
                        help="minimum warm Mcycles/s (default: 3.0)")
    args = parser.parse_args(argv)

    workload = all_workloads()[args.workload]
    program = compile_source(workload.source, name=args.workload).program

    fast = RocketLikeSoC().run(program)
    ref = RocketLikeSoC(run_mode="reference").run(program)
    assert fast.counters.snapshot() == ref.counters.snapshot(), \
        "fast/reference counter divergence"
    assert fast.counters.mix == ref.counters.mix, "mix divergence"
    assert fast.console == ref.console, "console divergence"
    assert fast.exit_code == ref.exit_code, "exit code divergence"
    assert fast.stdout == workload.expected_stdout, "oracle divergence"
    print(f"diff: fast == reference on {args.workload} "
          f"({fast.counters.instret} instret, "
          f"{fast.counters.cycles} cycles)")

    # timed pass: predecode cache is warm after the runs above
    soc = RocketLikeSoC()
    cycles = 0
    start = time.perf_counter()
    for _ in range(3):
        cycles += soc.run(program).counters.cycles
    wall = time.perf_counter() - start
    rate = cycles / wall
    print(f"profile: {cycles} simulated cycle(s) in {wall:.3f} s "
          f"of interpreter time ({rate / 1e6:.2f} Mcycles/s)")
    assert rate >= args.floor_mcyc * 1e6, (
        f"warm throughput {rate / 1e6:.2f} Mcyc/s below the "
        f"{args.floor_mcyc:.1f} Mcyc/s floor — did the fast "
        f"interpreter fall back to the reference loop?")
    print("PASS: interp differential smoke")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
