"""Shared preamble for the smoke scripts.

Each script runs as ``python benchmarks/smoke/<name>.py`` (this
directory is then ``sys.path[0]``, so ``from _bootstrap import ROOT``
always resolves); when ``repro`` is not already importable — a local
run without ``PYTHONPATH=src`` — the checkout's ``src/`` is added.
"""

import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parents[2]

try:
    import repro  # noqa: F401 — probe only
except ImportError:
    sys.path.insert(0, str(ROOT / "src"))
