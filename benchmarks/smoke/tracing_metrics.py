"""CI smoke: the observability guarantee — a traced 2x2 sweep leaves a
complete, connected trace whose critical path ``eric trace`` can walk,
and a warm rerun's ``eric metrics`` dump reports every job as a store
hit (``store.hits == total jobs``, zero re-simulation).

Everything goes through the real CLI so flag routing, the trace and
metrics file locations, and the rendered reports all stay covered.
Runs locally::

    PYTHONPATH=src python benchmarks/smoke/tracing_metrics.py
"""

import argparse
import contextlib
import io
import re
import tempfile

from _bootstrap import ROOT  # noqa: E402 — wires sys.path

from repro.cli import main as cli_main  # noqa: E402
from repro.obs.trace import (build_trees,  # noqa: E402
                             read_trace)

SPEC_PATH = ROOT / "examples" / "sweep_spec.json"
TOTAL_JOBS = 4  # the 2x2 smoke matrix


def run_cli(argv) -> str:
    stdout = io.StringIO()
    with contextlib.redirect_stdout(stdout):
        code = cli_main(argv)
    output = stdout.getvalue()
    print(output, end="")
    assert code == 0, f"eric {argv[0]} exited {code}:\n{output}"
    return output


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--store",
                        help="store directory (default: fresh temp dir)")
    args = parser.parse_args(argv)
    store = args.store or tempfile.mkdtemp(prefix="farm-trace-")

    # -- cold traced sweep ------------------------------------------------
    output = run_cli(["sweep", str(SPEC_PATH), "--store", store,
                      "--trace", "--metrics", "--quiet"])
    assert f"{TOTAL_JOBS} jobs -> 0 store hits" in output, output

    # -- the trace is one connected tree with a complete critical path ----
    spans, skipped = read_trace(store)
    assert skipped == 0, f"{skipped} corrupt trace line(s)"
    (tree,) = build_trees(spans.values())
    assert tree.connected, "trace has orphans or multiple roots"
    assert len(tree.spans) == TOTAL_JOBS + 1, sorted(
        s.name for s in tree.spans)
    output = run_cli(["trace", store])
    assert "critical path: farm.sweep -> farm.job" in output, output
    assert "UNFINISHED" not in output, output

    # -- warm rerun: every job is a store hit, and metrics prove it -------
    output = run_cli(["sweep", str(SPEC_PATH), "--store", store,
                      "--trace", "--metrics", "--quiet"])
    assert f"{TOTAL_JOBS} jobs -> {TOTAL_JOBS} store hits" in output, output
    output = run_cli(["metrics", store])
    match = re.search(r"^eric_store_hits (\d+)$", output, re.MULTILINE)
    assert match, f"no eric_store_hits counter in:\n{output}"
    assert int(match.group(1)) == TOTAL_JOBS, output

    # -- and the doctor agrees -------------------------------------------
    output = run_cli(["doctor", "--store", store, "--trace", store])
    assert "verdict: healthy" in output, output
    print("PASS: tracing + metrics smoke")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
