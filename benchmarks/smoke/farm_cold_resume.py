"""CI smoke: a tiny 2x2 matrix sweep completes cold, then resumes with
100% result-store hits (zero simulations) — the farm's core guarantee.

Runs locally too::

    PYTHONPATH=src python benchmarks/smoke/farm_cold_resume.py

With no ``--store`` a throwaway directory is used, so the cold phase
is genuinely cold on every run.
"""

import argparse
import json
import tempfile

from _bootstrap import ROOT  # noqa: E402 — wires sys.path

from repro.farm import JobMatrix, ResultStore, SimulationFarm  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--store",
                        help="store directory (default: fresh temp dir)")
    parser.add_argument("--jobs", type=int, default=2)
    args = parser.parse_args(argv)
    store_dir = args.store or tempfile.mkdtemp(prefix="farm-smoke-")

    spec = json.loads(
        (ROOT / "examples" / "sweep_spec.json").read_text())
    matrix = JobMatrix.from_spec(spec)
    assert matrix.job_count == 4, "smoke spec must stay 2x2"

    cold = SimulationFarm(store=ResultStore(store_dir),
                          jobs=args.jobs).run(matrix)
    cold.require_ok()
    assert cold.executed == 4 and cold.hits == 0, cold.summary()
    print("cold:", cold.summary())

    resumed = SimulationFarm(store=ResultStore(store_dir),
                             jobs=args.jobs).run(matrix)
    resumed.require_ok()
    assert resumed.executed == 0, resumed.summary()
    assert resumed.hit_rate == 1.0, resumed.summary()
    print("resumed:", resumed.summary())
    print("PASS: farm cold/resume smoke")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
