"""CI smoke: the docs/ tree is current and its examples are alive.

* ``docs/cli.md`` must be byte-identical to what ``eric docs-cli``
  renders from the live argparse tree — a new flag or subcommand
  cannot ship undocumented;
* every fenced ``python`` block in ``docs/*.md`` and ``README.md``
  must compile, and every fenced ``json`` block must parse.

Runs locally too::

    PYTHONPATH=src python benchmarks/smoke/check_docs.py
"""

import json
import re
import sys

from _bootstrap import ROOT  # noqa: E402 — wires sys.path

from repro.cli import build_parser  # noqa: E402
from repro.cli_docs import render_cli_docs  # noqa: E402

_FENCE = re.compile(r"^```(\w*)\s*$")


def fenced_blocks(path):
    blocks = []
    language, start, body = None, 0, []
    for number, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        match = _FENCE.match(line)
        if match and language is None:
            language, start, body = match.group(1), number, []
        elif line.strip() == "```" and language is not None:
            blocks.append((language, start, "\n".join(body)))
            language = None
        elif language is not None:
            body.append(line)
    if language is not None:
        raise AssertionError(f"{path}: unclosed fence at line {start}")
    return blocks


def main() -> int:
    docs = ROOT / "docs"
    failures = []

    committed = (docs / "cli.md").read_text(encoding="utf-8")
    rendered = render_cli_docs(build_parser())
    if committed != rendered:
        failures.append(
            "docs/cli.md is stale; regenerate with: "
            "PYTHONPATH=src python -m repro.cli docs-cli > docs/cli.md")
    else:
        print("docs/cli.md: current")

    pages = sorted(docs.glob("*.md")) + [ROOT / "README.md"]
    for page in pages:
        checked = {"python": 0, "json": 0}
        for language, line, text in fenced_blocks(page):
            where = f"{page.relative_to(ROOT)}:{line}"
            if language == "python":
                try:
                    compile(text, where, "exec")
                    checked["python"] += 1
                except SyntaxError as exc:
                    failures.append(f"{where}: python block does not "
                                    f"compile: {exc}")
            elif language == "json":
                try:
                    json.loads(text)
                    checked["json"] += 1
                except json.JSONDecodeError as exc:
                    failures.append(f"{where}: json block is not valid "
                                    f"JSON: {exc}")
        print(f"{page.relative_to(ROOT)}: {checked['python']} python / "
              f"{checked['json']} json block(s) OK")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("PASS: docs freshness and code-block smoke")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
