"""CI smoke: the distributed farm's guarantee — a cold ``--shards 2``
sweep of the 2x2 smoke matrix merges every shard store into the main
store, after which an unsharded resume serves 100% store hits and
simulates nothing.

The sharded phase goes through the real CLI (``eric sweep --shards``)
so argument routing and the printed report stay covered.  Runs
locally::

    PYTHONPATH=src python benchmarks/smoke/sharded_merge.py
"""

import argparse
import contextlib
import io
import json
import tempfile

from _bootstrap import ROOT  # noqa: E402 — wires sys.path

from repro.cli import main as cli_main  # noqa: E402
from repro.farm import JobMatrix, ResultStore, SimulationFarm  # noqa: E402

SPEC_PATH = ROOT / "examples" / "sweep_spec.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--store",
                        help="store directory (default: fresh temp dir)")
    args = parser.parse_args(argv)
    store_dir = args.store or tempfile.mkdtemp(prefix="farm-dist-")

    # -- cold sharded sweep through the CLI ------------------------------
    stdout = io.StringIO()
    with contextlib.redirect_stdout(stdout):
        code = cli_main(["sweep", str(SPEC_PATH), "--shards", "2",
                         "--store", store_dir])
    output = stdout.getvalue()
    print(output, end="")
    assert code == 0, f"eric sweep --shards 2 exited {code}"
    assert "4 jobs -> 0 store hits, 4 executed" in output, output
    assert "shards=2" in output, output

    # -- unsharded warm resume over the merged store ----------------------
    matrix = JobMatrix.from_spec(json.loads(SPEC_PATH.read_text()))
    resumed = SimulationFarm(store=ResultStore(store_dir)).run(matrix)
    resumed.require_ok()
    assert resumed.executed == 0, resumed.summary()
    assert resumed.hit_rate == 1.0, resumed.summary()
    print("resumed over merged store:", resumed.summary())
    print("PASS: sharded merge smoke")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
