"""CI smoke: the async fleet scheduler's multiplexing guarantee — two
overlapping 2x2 fleets served concurrently trigger exactly one
simulation per unique farm job key and one compile per unique artifact;
a warm resume over the same store executes zero simulations and serves
100% store hits.

Farm summaries are appended to ``<store>/smoke-summary.txt`` so a CI
failure can upload the store JSONL plus the per-phase summaries as one
artifact.  Runs locally::

    PYTHONPATH=src python benchmarks/smoke/async_scheduler.py
"""

import argparse
import pathlib
import tempfile

import _bootstrap  # noqa: F401 — wires sys.path for local runs

from repro.farm import ResultStore  # noqa: E402
from repro.service.scheduler import (FleetScheduler,  # noqa: E402
                                     load_fleet_specs)

PROBE_A = "int main() { return 10; }\n"
PROBE_B = "int main() { return 20; }\n"
PROBE_C = "int main() { return 30; }\n"

#: Two 2x2 fleets (2 programs x 2 device seeds each) overlapping in
#: probe-b @ seed 2: 8 job requests, 7 unique keys, 3 unique programs.
FLEETS_SPEC = {"fleets": [
    {"name": "alpha",
     "programs": [{"name": "probe-a", "source": PROBE_A},
                  {"name": "probe-b", "source": PROBE_B}],
     "device_seeds": [1, 2]},
    {"name": "beta",
     "programs": [{"name": "probe-b", "source": PROBE_B},
                  {"name": "probe-c", "source": PROBE_C}],
     "device_seeds": [2, 3]},
]}
REQUESTED = 8
UNIQUE_JOBS = 7
UNIQUE_PROGRAMS = 3


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--store",
                        help="store directory (default: fresh temp dir)")
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args(argv)
    store_dir = pathlib.Path(args.store
                             or tempfile.mkdtemp(prefix="farm-async-"))
    summary_path = store_dir / "smoke-summary.txt"

    def narrate(phase: str, report) -> None:
        lines = [f"[{phase}] {report.summary()}"]
        lines += [f"[{phase}]   {fleet.summary()}"
                  for fleet in report.fleets]
        text = "\n".join(lines)
        print(text)
        with summary_path.open("a", encoding="utf-8") as handle:
            handle.write(text + "\n")

    requests = load_fleet_specs(FLEETS_SPEC)

    cold = FleetScheduler(store=ResultStore(store_dir),
                          jobs=args.jobs).run(requests)
    narrate("cold", cold)
    cold.require_ok()
    assert cold.requested == REQUESTED, cold.summary()
    assert cold.unique_jobs == UNIQUE_JOBS, cold.summary()
    # the batching guarantee: one simulation per unique key, no matter
    # how the two fleets' requests interleaved
    assert cold.executed == UNIQUE_JOBS, cold.summary()
    assert cold.store_hits == 0, cold.summary()
    # and one compile per unique artifact across both fleets
    assert cold.cache_stats.compiles == UNIQUE_PROGRAMS, cold.cache_stats

    warm = FleetScheduler(store=ResultStore(store_dir),
                          jobs=args.jobs).run(requests)
    narrate("warm", warm)
    warm.require_ok()
    assert warm.executed == 0, warm.summary()
    assert warm.store_hits == UNIQUE_JOBS, warm.summary()
    assert all(result.from_store
               for fleet in warm.fleets for result in fleet.results), \
        "warm resume must serve every job from the store"
    # a fully-warm serve also compiles nothing
    assert warm.cache_stats.compiles == 0, warm.cache_stats
    print("PASS: async fleet scheduler smoke")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
