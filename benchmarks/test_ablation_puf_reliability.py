"""Ablation — PUF key reliability vs noise, voting, environment.

The paper's PKG must hand the Decryption Unit the *same* key every boot;
this sweep quantifies how enrollment screening + majority voting buy that
stability, and where the design would break (extreme noise corners).

Every point is a content-addressed farm job: the worker measures
``FarmRecord.key_failure`` (repeated PKG readouts at the job's operating
point) and ``key_digest`` for every job, so the whole sweep resumes from
the committed store with zero simulations.
"""

from repro.eval.report import format_table
from repro.farm import KEY_STABILITY_READS, JobMatrix, SimParams
from repro.puf.environment import Environment

_SEED = 0x5EED

#: Reliability jobs only need the device's PKG, not a real workload, so
#: a trivial probe program keeps the packaging stage negligible.
_PROBE = ("pkg-probe", "int main() { return 0; }\n")


def _params(noise=0.04, votes=11, margin_sigmas=4.0,
            environment=Environment(), seed=_SEED) -> SimParams:
    return SimParams(device_seed=seed, puf_noise_sigma=noise,
                     puf_votes=votes, puf_margin_sigmas=margin_sigmas,
                     environment=environment)


def test_voting_and_screening_sweep(benchmark, record, farm):
    grid = [(noise, votes)
            for noise in (0.04, 0.15, 0.40) for votes in (1, 5, 11)]
    matrix = JobMatrix(
        programs=(_PROBE,),
        params=tuple(_params(noise, votes, margin_sigmas=margin)
                     for noise, votes in grid for margin in (4.0, 0.0)),
        simulate=False)

    report = benchmark.pedantic(lambda: farm.run(matrix),
                                rounds=1, iterations=1)
    report.require_ok()
    failure = [r.record.key_failure for r in report.results]
    rows = [(noise, votes, failure[2 * i], failure[2 * i + 1])
            for i, (noise, votes) in enumerate(grid)]

    record("ablation_puf_reliability", format_table(
        ["noise sigma", "votes", "fail rate (screened)",
         "fail rate (unscreened)"],
        [[f"{n:.2f}", v, f"{s:.3f}", f"{u:.3f}"] for n, v, s, u in rows],
        title=f"PUF key failure probability over "
              f"{KEY_STABILITY_READS} readouts",
    ))

    by_key = {(n, v): (s, u) for n, v, s, u in rows}
    # nominal noise + paper voting: keys must be rock stable
    assert by_key[(0.04, 11)][0] == 0.0
    # screening can only help (or tie) at every point of the sweep
    assert all(s <= u for _, _, s, u in rows)
    # more votes never hurt at fixed noise (screened column)
    for noise in (0.04, 0.15, 0.40):
        assert by_key[(noise, 11)][0] <= by_key[(noise, 1)][0]


def test_environment_sweep(record, farm):
    corners = [
        ("nominal 25C/1.00V", Environment()),
        ("hot 85C/1.00V", Environment(temperature_c=85.0)),
        ("hot+brownout 85C/0.90V", Environment(temperature_c=85.0,
                                               voltage=0.90)),
        ("extreme 125C/0.80V", Environment(temperature_c=125.0,
                                           voltage=0.80)),
    ]
    matrix = JobMatrix(
        programs=(_PROBE,),
        params=tuple(_params(environment=env) for _, env in corners),
        simulate=False)
    report = farm.run(matrix)
    report.require_ok()

    rows = [(label, env.noise_scale(), result.record.key_failure)
            for (label, env), result in zip(corners, report.results)]
    record("ablation_puf_environment", format_table(
        ["environment", "noise scale", "key failure rate"],
        [[l, f"{s:.2f}x", f"{f:.3f}"] for l, s, f in rows],
        title="PKG stability across operating points (paper's KMU "
              "environment hooks)",
    ))
    # nominal and mildly hot corners stay stable with Table I voting
    assert rows[0][2] == 0.0
    assert rows[1][2] == 0.0
    # noise scale is monotone across the sweep
    scales = [s for _, s, _ in rows]
    assert scales == sorted(scales)


def test_wrong_device_never_reconstructs(farm):
    """Uniqueness at the key level: 20 different dies, 20 distinct keys
    (compared via the records' enrollment-key digests)."""
    matrix = JobMatrix(
        programs=(_PROBE,),
        params=tuple(_params(seed=seed) for seed in range(20)),
        simulate=False)
    report = farm.run(matrix)
    report.require_ok()
    digests = {r.record.key_digest for r in report.results}
    assert len(digests) >= 19  # one 32-bit collision in 20 is already rare
