"""Ablation — PUF key reliability vs noise, voting, environment.

The paper's PKG must hand the Decryption Unit the *same* key every boot;
this sweep quantifies how enrollment screening + majority voting buy that
stability, and where the design would break (extreme noise corners).
"""

import pytest

from repro.eval.report import format_table
from repro.puf.arbiter import PufArray
from repro.puf.environment import Environment
from repro.puf.key_generator import PufKeyGenerator
from repro.puf.metrics import key_failure_probability

_READS = 40


def _failure_rate(noise, votes, environment=Environment(),
                  margin_sigmas=4.0, seed=0x5EED):
    array = PufArray(width=32, n_stages=8, device_seed=seed,
                     noise_sigma=noise)
    pkg = PufKeyGenerator(array, key_bits=32, votes=votes,
                          margin_sigmas=margin_sigmas)
    readouts = [pkg.generate(environment).key for _ in range(_READS)]
    return key_failure_probability(readouts)


def test_voting_and_screening_sweep(benchmark, record):
    def sweep():
        rows = []
        for noise in (0.04, 0.15, 0.40):
            for votes in (1, 5, 11):
                rows.append((noise, votes,
                             _failure_rate(noise, votes),
                             _failure_rate(noise, votes,
                                           margin_sigmas=0.0)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record("ablation_puf_reliability", format_table(
        ["noise sigma", "votes", "fail rate (screened)",
         "fail rate (unscreened)"],
        [[f"{n:.2f}", v, f"{s:.3f}", f"{u:.3f}"] for n, v, s, u in rows],
        title=f"PUF key failure probability over {_READS} readouts",
    ))

    by_key = {(n, v): (s, u) for n, v, s, u in rows}
    # nominal noise + paper voting: keys must be rock stable
    assert by_key[(0.04, 11)][0] == 0.0
    # screening can only help (or tie) at every point of the sweep
    assert all(s <= u for _, _, s, u in rows)
    # more votes never hurt at fixed noise (screened column)
    for noise in (0.04, 0.15, 0.40):
        assert by_key[(noise, 11)][0] <= by_key[(noise, 1)][0]


def test_environment_sweep(record):
    rows = []
    for label, env in (
        ("nominal 25C/1.00V", Environment()),
        ("hot 85C/1.00V", Environment(temperature_c=85.0)),
        ("hot+brownout 85C/0.90V", Environment(temperature_c=85.0,
                                               voltage=0.90)),
        ("extreme 125C/0.80V", Environment(temperature_c=125.0,
                                           voltage=0.80)),
    ):
        rows.append((label, env.noise_scale(),
                     _failure_rate(0.04, 11, env)))
    record("ablation_puf_environment", format_table(
        ["environment", "noise scale", "key failure rate"],
        [[l, f"{s:.2f}x", f"{f:.3f}"] for l, s, f in rows],
        title="PKG stability across operating points (paper's KMU "
              "environment hooks)",
    ))
    # nominal and mildly hot corners stay stable with Table I voting
    assert rows[0][2] == 0.0
    assert rows[1][2] == 0.0
    # noise scale is monotone across the sweep
    scales = [s for _, s, _ in rows]
    assert scales == sorted(scales)


def test_wrong_device_never_reconstructs(record):
    """Uniqueness at the key level: 20 different dies, 20 distinct keys."""
    keys = set()
    for seed in range(20):
        array = PufArray(width=32, n_stages=8, device_seed=seed)
        keys.add(PufKeyGenerator(array, key_bits=32).generate().key)
    assert len(keys) >= 19  # one 32-bit collision in 20 is already rare
