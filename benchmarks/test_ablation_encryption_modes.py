"""Ablation — the paper's three encryption methods compared (§III.1).

Sweeps FULL, PARTIAL at several fractions, and FIELD over one workload,
reporting package size, HDE cycles, and attacker decode rate: the
security/size/time trade surface the ERIC interface exposes.

The six configurations run as ``analyze=True`` farm jobs, so the
static-attacker metrics land in the result store next to the cycle
counts and the sweep resumes incrementally like every other figure.
"""

from repro.core.config import EncryptionMode, EricConfig
from repro.eval.report import format_table
from repro.farm import JobMatrix, SimParams

WORKLOAD = "fft"
_DEVICE_SEED = 0xAB1A

CONFIGS = [
    ("full", EricConfig(mode=EncryptionMode.FULL)),
    ("partial 25%", EricConfig(mode=EncryptionMode.PARTIAL,
                               partial_fraction=0.25)),
    ("partial 50%", EricConfig(mode=EncryptionMode.PARTIAL,
                               partial_fraction=0.50)),
    ("partial 75%", EricConfig(mode=EncryptionMode.PARTIAL,
                               partial_fraction=0.75)),
    ("field imm+regs", EricConfig(mode=EncryptionMode.FIELD)),
    ("field imm only", EricConfig(mode=EncryptionMode.FIELD,
                                  field_classes=("imm",))),
]


def _matrix() -> JobMatrix:
    return JobMatrix(
        workloads=(WORKLOAD,),
        configs=tuple(config for _, config in CONFIGS),
        params=(SimParams(device_seed=_DEVICE_SEED),),
        simulate=True,
        analyze=True,
    )


def test_mode_sweep(benchmark, record, farm):
    report = benchmark.pedantic(lambda: farm.run(_matrix()),
                                rounds=1, iterations=1)
    report.require_ok()
    from repro.workloads import get_workload

    expected = get_workload(WORKLOAD).expected_stdout
    rows = []
    # matrix order preserves CONFIGS order for the single workload
    for (label, _), rec in zip(CONFIGS, report.records):
        rows.append({
            "label": label,
            "size": rec.package_size,
            "slots": rec.analysis["enc_slots"],
            "hde": rec.hde_cycles,
            "decode": rec.analysis["decode_fraction"],
            "stdout_ok": rec.output_ok(expected),
        })
    record("ablation_encryption_modes", format_table(
        ["mode", "package B", "enc slots", "HDE cycles", "decode rate",
         "output ok"],
        [[r["label"], r["size"], r["slots"], r["hde"],
          f"{r['decode']:.1%}", r["stdout_ok"]] for r in rows],
        title=f"Encryption-mode ablation ({WORKLOAD})",
    ))

    by_label = {r["label"]: r for r in rows}
    assert all(r["stdout_ok"] for r in rows)
    # more encrypted slots -> more HDE decrypt work
    assert by_label["partial 25%"]["hde"] < by_label["partial 75%"]["hde"]
    assert by_label["partial 75%"]["hde"] <= by_label["full"]["hde"]
    # full encryption defeats the disassembler; field mode looks benign
    assert by_label["full"]["decode"] < 0.7
    assert by_label["field imm+regs"]["decode"] > 0.9
    # partial modes carry the map; full does not
    assert by_label["partial 25%"]["size"] > by_label["full"]["size"]


def test_partial_protects_selected_region(record):
    """Partial encryption with a chosen range keeps the critical slots
    unreadable while the rest stays plain (the 'protect the critical
    parts' use of §III.1)."""
    from repro.core.compiler_driver import EricCompiler
    from repro.core.device import Device
    from repro.core.encryptor import EncryptionMap, encrypt_text
    from repro.core.keys import KeyManagementUnit
    from repro.workloads import get_workload

    device = Device(device_seed=_DEVICE_SEED)
    compiler = EricCompiler()
    result, _ = compiler.compile_baseline(get_workload(WORKLOAD).source)
    program = result.program
    critical = range(10, 50)  # slots of the "secret" kernel
    enc_map = EncryptionMap.from_indices(program.instruction_count,
                                         list(critical))
    kmu = KeyManagementUnit(device.enrollment_key())
    ciphertext = encrypt_text(program.text, program.layout, enc_map,
                              kmu.text_cipher("xor-repeating"))
    for index in critical:
        slot = program.layout[index]
        assert ciphertext[slot.offset:slot.offset + slot.size] \
            != program.text[slot.offset:slot.offset + slot.size]
    untouched = program.layout[60]
    assert ciphertext[untouched.offset:untouched.offset + untouched.size] \
        == program.text[untouched.offset:untouched.offset + untouched.size]
