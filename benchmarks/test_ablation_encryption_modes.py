"""Ablation — the paper's three encryption methods compared (§III.1).

Sweeps FULL, PARTIAL at several fractions, and FIELD over one workload,
reporting package size, HDE cycles, and attacker decode rate: the
security/size/time trade surface the ERIC interface exposes.
"""

import pytest

from repro.core.compiler_driver import EricCompiler
from repro.core.config import EncryptionMode, EricConfig
from repro.core.device import Device
from repro.eval.report import format_table
from repro.net.static_attacker import analyze_blob
from repro.workloads import get_workload

WORKLOAD = "fft"


@pytest.fixture(scope="module")
def device():
    return Device(device_seed=0xAB1A)


def _package(config, device):
    compiler = EricCompiler(config)
    return compiler.compile_and_package(get_workload(WORKLOAD).source,
                                        device.enrollment_key(),
                                        name=WORKLOAD)


def test_mode_sweep(benchmark, record, device):
    configs = [
        ("full", EricConfig(mode=EncryptionMode.FULL)),
        ("partial 25%", EricConfig(mode=EncryptionMode.PARTIAL,
                                   partial_fraction=0.25)),
        ("partial 50%", EricConfig(mode=EncryptionMode.PARTIAL,
                                   partial_fraction=0.50)),
        ("partial 75%", EricConfig(mode=EncryptionMode.PARTIAL,
                                   partial_fraction=0.75)),
        ("field imm+regs", EricConfig(mode=EncryptionMode.FIELD)),
        ("field imm only", EricConfig(mode=EncryptionMode.FIELD,
                                      field_classes=("imm",))),
    ]

    def sweep():
        rows = []
        for label, config in configs:
            result = _package(config, device)
            outcome = device.load_and_run(result.package_bytes)
            report = analyze_blob(result.package.enc_text)
            rows.append({
                "label": label,
                "size": result.package_size,
                "slots": result.encrypted.enc_map.encrypted_count,
                "hde": outcome.hde.total_cycles,
                "decode": report.valid_decode_fraction,
                "stdout_ok": outcome.run.stdout
                == get_workload(WORKLOAD).expected_stdout,
            })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record("ablation_encryption_modes", format_table(
        ["mode", "package B", "enc slots", "HDE cycles", "decode rate",
         "output ok"],
        [[r["label"], r["size"], r["slots"], r["hde"],
          f"{r['decode']:.1%}", r["stdout_ok"]] for r in rows],
        title=f"Encryption-mode ablation ({WORKLOAD})",
    ))

    by_label = {r["label"]: r for r in rows}
    assert all(r["stdout_ok"] for r in rows)
    # more encrypted slots -> more HDE decrypt work
    assert by_label["partial 25%"]["hde"] < by_label["partial 75%"]["hde"]
    assert by_label["partial 75%"]["hde"] <= by_label["full"]["hde"]
    # full encryption defeats the disassembler; field mode looks benign
    assert by_label["full"]["decode"] < 0.7
    assert by_label["field imm+regs"]["decode"] > 0.9
    # partial modes carry the map; full does not
    assert by_label["partial 25%"]["size"] > by_label["full"]["size"]


def test_partial_protects_selected_region(record, device):
    """Partial encryption with a chosen range keeps the critical slots
    unreadable while the rest stays plain (the 'protect the critical
    parts' use of §III.1)."""
    from repro.core.encryptor import EncryptionMap, encrypt_text
    from repro.core.keys import KeyManagementUnit

    compiler = EricCompiler()
    result, _ = compiler.compile_baseline(get_workload(WORKLOAD).source)
    program = result.program
    critical = range(10, 50)  # slots of the "secret" kernel
    enc_map = EncryptionMap.from_indices(program.instruction_count,
                                         list(critical))
    kmu = KeyManagementUnit(device.enrollment_key())
    ciphertext = encrypt_text(program.text, program.layout, enc_map,
                              kmu.text_cipher("xor-repeating"))
    for index in critical:
        slot = program.layout[index]
        assert ciphertext[slot.offset:slot.offset + slot.size] \
            != program.text[slot.offset:slot.offset + slot.size]
    untouched = program.layout[60]
    assert ciphertext[untouched.offset:untouched.offset + untouched.size] \
        == program.text[untouched.offset:untouched.offset + untouched.size]
