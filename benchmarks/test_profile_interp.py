"""Interpreter profiling baseline for the superblock fast path.

A fresh (never store-served) mini-sweep simulates three MiBench
workloads and records, per workload: instructions retired, simulated
cycles, interpreter wall seconds, simulated-cycles-per-second
throughput, and ERIC-run L1 hit rates.  A warm-up sweep runs first so
the timed pass measures steady-state superblock dispatch rather than
one-time trace compilation (the predecode cache is process-global and
keyed by program content, so farm sweeps after the first job see the
warm numbers).  The committed baseline lives in
``benchmarks/results/BENCH_interp.json``; it is written only when
missing (delete the file to re-baseline on a new machine or after an
interpreter change), and carries the pre-superblock interpreter's
numbers under ``baseline_prev`` for comparison.  The ``.txt`` table is
regenerated every run with wall-clock cells Volatile-masked, like
every other recorded table.
"""

import json
import pathlib

from repro.eval.report import Volatile, format_table
from repro.farm import JobMatrix, ResultStore, SimulationFarm

PROFILE_WORKLOADS = ("basicmath", "crc32", "fft")
BASELINE_PATH = (pathlib.Path(__file__).parent / "results"
                 / "BENCH_interp.json")

# the decode-per-step interpreter this refactor replaced, measured on
# the same machine as the committed baseline (schema 1 numbers)
BASELINE_PREV = {
    "interpreter": "decode-per-step",
    "aggregate": {
        "sim_cycles": 1183036,
        "sim_cycles_per_sec": 989872,
        "sim_wall_s": 1.1951,
    },
    "workloads": {
        "basicmath": {"sim_cycles_per_sec": 1079689, "sim_wall_s": 0.1835},
        "crc32": {"sim_cycles_per_sec": 997860, "sim_wall_s": 0.492},
        "fft": {"sim_cycles_per_sec": 950599, "sim_wall_s": 0.5197},
    },
}


def _profile(store_dir):
    farm = SimulationFarm(store=ResultStore(store_dir), jobs=1)
    report = farm.run(JobMatrix(workloads=PROFILE_WORKLOADS))
    report.require_ok()
    return report


def test_profile_interp_baseline(benchmark, record, tmp_path):
    # warm the process-global predecode cache (separate store dir so the
    # timed pass below still simulates instead of being store-served)
    _profile(tmp_path / "warmup")
    report = benchmark.pedantic(lambda: _profile(tmp_path / "farm"),
                                rounds=1, iterations=1)

    headers = ["workload", "instret", "sim cycles", "wall s",
               "Mcyc/s", "icache", "dcache"]
    rows, baseline = [], {}
    for result in report.results:
        rec = result.record
        rates = rec.cache_hit_rates()
        rows.append([
            rec.workload, rec.instructions_retired, rec.sim_cycles,
            Volatile(f"{rec.sim_wall_s:.3f}"),
            Volatile(f"{rec.sim_cycles_per_sec / 1e6:.2f}"),
            f"{rates['icache']:.3f}", f"{rates['dcache']:.3f}"])
        baseline[rec.workload] = {
            "instructions_retired": rec.instructions_retired,
            "sim_cycles": rec.sim_cycles,
            "sim_wall_s": round(rec.sim_wall_s, 4),
            "sim_cycles_per_sec": round(rec.sim_cycles_per_sec),
            "cache_hit_rates": {k: round(v, 4)
                                for k, v in rates.items()},
        }

    title = (f"Interpreter profile: {len(PROFILE_WORKLOADS)} workloads, "
             "fresh simulation at jobs=1")
    table = format_table(headers, rows, title=title)
    record("profile_interp",
           table + "\n" + report.profile_summary(),
           stable=format_table(headers, rows, title=title, stable=True)
           + "\nprofile: (volatile, see BENCH_interp.json)")

    if not BASELINE_PATH.exists():
        BASELINE_PATH.write_text(json.dumps(
            {"schema": 2, "jobs": 1,
             "interpreter": "superblock",
             "workloads": baseline,
             "aggregate": {
                 "sim_cycles": report.sim_cycles,
                 "sim_wall_s": round(report.sim_wall_s, 4),
                 "sim_cycles_per_sec":
                     round(report.sim_cycles_per_sec),
             },
             "baseline_prev": BASELINE_PREV},
            indent=2, sort_keys=True) + "\n")

    # every record carries full profiling data
    assert len(report.records) == len(PROFILE_WORKLOADS)
    for rec in report.records:
        assert rec.instructions_retired > 0
        assert rec.sim_cycles > rec.instructions_retired * 0.5
        assert rec.sim_wall_s > 0
        assert rec.sim_cycles_per_sec > 0
        rates = rec.cache_hit_rates()
        assert 0.0 < rates["icache"] <= 1.0
        assert 0.0 < rates["dcache"] <= 1.0
    assert report.sim_cycles_per_sec > 0
    assert "Mcycles/s" in report.profile_summary()

    # the committed baseline stays structurally comparable
    committed = json.loads(BASELINE_PATH.read_text())
    assert committed["schema"] == 2
    assert committed["interpreter"] == "superblock"
    # the superblock interpreter is bit-identical, so the refactor shows
    # up only in throughput: the committed steady-state number must beat
    # the recorded decode-per-step interpreter it replaced
    prev = committed["baseline_prev"]["aggregate"]["sim_cycles_per_sec"]
    assert committed["aggregate"]["sim_cycles_per_sec"] > prev
    for workload in PROFILE_WORKLOADS:
        entry = committed["workloads"][workload]
        assert entry["sim_cycles"] > 0
        assert entry["sim_cycles_per_sec"] > 0
        # cycle and instruction counts are deterministic: a fresh run
        # must reproduce the committed counts exactly
        fresh = baseline[workload]
        assert fresh["sim_cycles"] == entry["sim_cycles"]
        assert fresh["instructions_retired"] \
            == entry["instructions_retired"]


def test_profile_survives_store_round_trip(record, tmp_path):
    """sim_wall_s persists with the record: a store-served rerun still
    reports interpreter throughput (from the measuring machine)."""
    store = ResultStore(tmp_path / "farm")
    SimulationFarm(store=store, jobs=1).run(
        JobMatrix(workloads=("crc32",))).require_ok()
    resumed = SimulationFarm(store=ResultStore(store.root), jobs=1).run(
        JobMatrix(workloads=("crc32",)))
    resumed.require_ok()
    assert resumed.hits == 1
    assert resumed.sim_cycles_per_sec > 0
    (rec,) = resumed.records
    assert rec.sim_wall_s > 0
