"""Fig. 6 — compile-time overhead of encrypted compilation.

Paper: +15.22 % average, +33.20 % worst case.

Fidelity caveat (see EXPERIMENTS.md): the paper divides a C++ crypto
stage by an LLVM compile; we divide a pure-Python crypto stage by a
MiniC compile.  The bench asserts the *shape*: a strictly positive,
bounded, size-correlated one-time cost, with the paper's band bracketed
between our measured and native-SHA-adjusted numbers.
"""

from repro.eval import fig6


def test_fig6_compile_time(benchmark, record, farm):
    result = benchmark.pedantic(lambda: fig6.run(farm=farm),
                                rounds=1, iterations=1)
    record("fig6_compile_time", result.render())

    s = result.summary
    # ERIC always costs something, never an order of magnitude
    assert 0.0 < s["avg_overhead_pct"] < 150.0
    assert s["max_overhead_pct"] < 250.0
    # re-costing the signature at native SHA speed must reduce overhead
    assert s["adjusted_avg_overhead_pct"] < s["avg_overhead_pct"]
    # the paper's band lies between the adjusted and measured estimates
    assert s["adjusted_avg_overhead_pct"] < s["paper_avg_overhead_pct"] * 4
    for row in result.rows:
        assert row.eric_s > row.baseline_s


def test_fig6_overhead_tracks_signature_cost(record, farm):
    """The packaging stage is dominated by hashing: its absolute cost
    must grow with the signed byte count.  Farm-backed: once measured,
    the stored records keep this deterministic under machine load."""
    result = fig6.run(repeats=3, farm=farm)
    rows = sorted(result.rows, key=lambda r: r.signed_bytes)
    small = sum(r.eric_s - r.baseline_s for r in rows[:3]) / 3
    large = sum(r.eric_s - r.baseline_s for r in rows[-3:]) / 3
    assert large > small


def test_fig6_stage_breakdown(record):
    """Per-stage wall times are recorded and consistent."""
    from repro.core.compiler_driver import EricCompiler
    from repro.core.keys import puf_based_key
    from repro.workloads import get_workload

    compiler = EricCompiler()
    result = compiler.compile_and_package(
        get_workload("fft").source, puf_based_key(b"bench"), name="fft")
    t = result.timings
    assert t.compile_s > 0
    assert t.signature_s > 0
    assert t.encryption_s > 0
    assert t.packaging_s >= 0
    assert t.total_s > t.compile_s
    assert t.eric_overhead_s == (t.signature_s + t.encryption_s
                                 + t.packaging_s)
