"""Fleet deployment — the compile-once/encrypt-per-device speedup.

ERIC's practicality claim at deployment scale: compilation and signing
are device-independent, so an N-device rollout through
``DeploymentSession.deploy_fleet`` pays them once, while N one-shot
``deploy()`` calls pay them N times.  The bench deploys a compile-heavy
firmware to a 12-device fleet both ways and asserts the session is
materially faster than N times the single-device path.
"""

import time

from repro.core.device import Device
from repro.core.workflow import deploy
from repro.service.session import DeploymentSession

FLEET_SIZE = 12

# Compile cost scales with code size; a realistic firmware carries far
# more code than its boot path executes.  The helpers make compilation
# the dominant stage without inflating the simulated run.
_HELPERS = "\n".join(
    f"int helper_{i}(int x) {{\n"
    f"    int acc = x + {i};\n"
    f"    for (int j = 0; j < 4; j++) {{ acc = acc * 3 + j - {i}; }}\n"
    f"    return acc;\n"
    f"}}\n"
    for i in range(40)
)

SOURCE = _HELPERS + """
int main() {
    print_int(helper_7(35));
    print_char('\\n');
    return 0;
}
"""


def _render(rows: list[tuple[str, float]], fleet_ok: int,
            stable: bool = False) -> str:
    """Wall times are machine-dependent; the stable render (what lands
    in results/) masks them so regeneration produces no diffs."""
    lines = [
        "Fleet compile-once benchmark "
        f"({FLEET_SIZE} devices, {fleet_ok} ok)",
        f"{'path':<38} {'wall ms':>10}",
    ]
    for label, seconds in rows:
        cell = "~" if stable else f"{seconds * 1e3:.1f}"
        lines.append(f"{label:<38} {cell:>10}")
    sequential = rows[0][1]
    fleet = rows[1][1]
    speedup = "~" if stable else f"{sequential / fleet:.2f}x"
    lines.append(f"{'speedup':<38} {speedup:>10}")
    return "\n".join(lines)


def test_fleet_amortizes_compilation(record):
    devices = [Device(device_seed=0x7000 + i) for i in range(FLEET_SIZE)]

    # N one-shot deployments: each recompiles, re-signs, re-encrypts
    start = time.perf_counter()
    for device in devices:
        result = deploy(SOURCE, device, name="firmware")
        assert result.exit_code == 0
    sequential_s = time.perf_counter() - start

    # One session: a single compile+sign, N encrypt+package+run stages
    session = DeploymentSession()
    fresh = [Device(device_seed=0x7000 + i) for i in range(FLEET_SIZE)]
    start = time.perf_counter()
    report = session.deploy_fleet(SOURCE, fresh, max_workers=1,
                                  name="firmware")
    fleet_s = time.perf_counter() - start

    rows = [(f"{FLEET_SIZE}x one-shot deploy()", sequential_s),
            ("DeploymentSession.deploy_fleet", fleet_s)]
    record("fleet_compile_once",
           _render(rows, len(report.succeeded)),
           stable=_render(rows, len(report.succeeded), stable=True))

    assert report.all_ok
    # the compiler ran exactly once for the whole fleet — the
    # deterministic compile-once guarantee
    stats = session.cache_stats
    assert stats.compiles == 1
    # and the rollout is materially cheaper than N one-shot deploys.
    # Typical speedup is ~2x (see results/fleet_compile_once.txt); the
    # bound is deliberately loose so scheduler jitter on a contended CI
    # runner cannot fail a correct build.
    assert fleet_s < sequential_s * 0.9
    # the report's own accounting agrees: compile+sign paid once, not N
    # times (compare against what the sequential path paid per deploy)
    assert report.compile_s > 0
    assert report.encryption_s > 0


def test_fleet_report_stage_accounting(record):
    """Per-stage aggregates: one compile amortized over every device."""
    session = DeploymentSession()
    devices = [Device(device_seed=0x7100 + i) for i in range(FLEET_SIZE)]
    report = session.deploy_fleet(SOURCE, devices, name="firmware")
    assert report.all_ok
    per_device = [o.result.compile_result.timings for o in report.outcomes]
    # every device's result carries the same once-paid compile time
    assert len({t.compile_s for t in per_device}) == 1
    assert per_device[0].compile_s == report.compile_s
    # encryption was genuinely per-device work
    assert report.encryption_s >= max(t.encryption_s for t in per_device)
