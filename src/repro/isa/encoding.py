"""Instruction encoding: :class:`Instruction` -> 32-bit word."""

from __future__ import annotations

from repro.errors import EncodingError
from repro.isa.instruction import Instruction
from repro.isa.spec import (
    INSTRUCTION_SPECS,
    NUM_REGISTERS,
    fits_signed,
    fits_unsigned,
)


def _check_reg(value: int | None, role: str, name: str) -> int:
    if value is None:
        raise EncodingError(f"{name}: missing {role}")
    if not 0 <= value < NUM_REGISTERS:
        raise EncodingError(f"{name}: {role}={value} out of range")
    return value


def _check_imm_signed(value: int | None, bits: int, name: str) -> int:
    if value is None:
        raise EncodingError(f"{name}: missing immediate")
    if not fits_signed(value, bits):
        raise EncodingError(
            f"{name}: immediate {value} does not fit in {bits} signed bits"
        )
    return value & ((1 << bits) - 1)


def encode(instr: Instruction) -> int:
    """Encode ``instr`` as a 32-bit little-endian instruction word."""
    name = instr.name
    fmt, opcode, funct3, funct7 = INSTRUCTION_SPECS[name]

    if fmt == "R":
        rd = _check_reg(instr.rd, "rd", name)
        rs1 = _check_reg(instr.rs1, "rs1", name)
        rs2 = _check_reg(instr.rs2, "rs2", name)
        return (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) \
            | (rd << 7) | opcode

    if fmt == "I":
        rd = _check_reg(instr.rd, "rd", name)
        rs1 = _check_reg(instr.rs1, "rs1", name)
        imm = _check_imm_signed(instr.imm, 12, name)
        return (imm << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode

    if fmt == "SHIFT64":
        rd = _check_reg(instr.rd, "rd", name)
        rs1 = _check_reg(instr.rs1, "rs1", name)
        if instr.imm is None or not fits_unsigned(instr.imm, 6):
            raise EncodingError(f"{name}: shamt {instr.imm} not in [0, 63]")
        return (funct7 << 26) | (instr.imm << 20) | (rs1 << 15) \
            | (funct3 << 12) | (rd << 7) | opcode

    if fmt == "SHIFT32":
        rd = _check_reg(instr.rd, "rd", name)
        rs1 = _check_reg(instr.rs1, "rs1", name)
        if instr.imm is None or not fits_unsigned(instr.imm, 5):
            raise EncodingError(f"{name}: shamt {instr.imm} not in [0, 31]")
        return (funct7 << 25) | (instr.imm << 20) | (rs1 << 15) \
            | (funct3 << 12) | (rd << 7) | opcode

    if fmt == "S":
        rs1 = _check_reg(instr.rs1, "rs1", name)
        rs2 = _check_reg(instr.rs2, "rs2", name)
        imm = _check_imm_signed(instr.imm, 12, name)
        return ((imm >> 5) << 25) | (rs2 << 20) | (rs1 << 15) \
            | (funct3 << 12) | ((imm & 0x1F) << 7) | opcode

    if fmt == "B":
        rs1 = _check_reg(instr.rs1, "rs1", name)
        rs2 = _check_reg(instr.rs2, "rs2", name)
        if instr.imm is None or instr.imm % 2:
            raise EncodingError(f"{name}: branch offset must be even")
        if not fits_signed(instr.imm, 13):
            raise EncodingError(
                f"{name}: branch offset {instr.imm} out of +-4KiB range"
            )
        imm = instr.imm & 0x1FFF
        return (((imm >> 12) & 1) << 31) | (((imm >> 5) & 0x3F) << 25) \
            | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) \
            | (((imm >> 1) & 0xF) << 8) | (((imm >> 11) & 1) << 7) | opcode

    if fmt == "U":
        rd = _check_reg(instr.rd, "rd", name)
        if instr.imm is None or not fits_unsigned(instr.imm, 20):
            raise EncodingError(
                f"{name}: U-immediate {instr.imm} not a 20-bit value"
            )
        return (instr.imm << 12) | (rd << 7) | opcode

    if fmt == "J":
        rd = _check_reg(instr.rd, "rd", name)
        if instr.imm is None or instr.imm % 2:
            raise EncodingError(f"{name}: jump offset must be even")
        if not fits_signed(instr.imm, 21):
            raise EncodingError(
                f"{name}: jump offset {instr.imm} out of +-1MiB range"
            )
        imm = instr.imm & 0x1FFFFF
        return (((imm >> 20) & 1) << 31) | (((imm >> 1) & 0x3FF) << 21) \
            | (((imm >> 11) & 1) << 20) | (((imm >> 12) & 0xFF) << 12) \
            | (rd << 7) | opcode

    if fmt == "SYS":
        # funct7 slot reused as the 12-bit SYSTEM immediate (0/1).
        return (funct7 << 20) | opcode

    if fmt == "FENCE":
        # fence iorw, iorw — fixed encoding, executed as a no-op.
        return (0b0011 << 24) | (0b0011 << 20) | opcode

    raise EncodingError(f"unhandled format {fmt} for {name}")


def encode_bytes(instr: Instruction) -> bytes:
    """Encode ``instr`` as 4 little-endian bytes."""
    return encode(instr).to_bytes(4, "little")
