"""Disassembler — both a debugging aid and the static attacker's tool.

:func:`disassemble_text` walks a text section the way a reverse engineer
would, printing addresses, raw words and mnemonics; undecodable words are
rendered as ``.word 0x...`` (which is what an attacker sees all over an
ERIC-encrypted binary).
"""

from __future__ import annotations

from repro.errors import DecodingError
from repro.isa.compressed import decode_compressed, is_compressed_halfword
from repro.isa.decoding import decode
from repro.isa.instruction import Instruction


def disassemble(word: int) -> str:
    """Disassemble one 32-bit word to text."""
    return str(decode(word))


def disassemble_text(blob: bytes, base_address: int = 0) -> list[str]:
    """Disassemble a text section, one line per instruction slot.

    Walks the blob with RISC-V length rules.  Undecodable 32-bit parcels
    are printed as data words; undecodable 16-bit parcels as data
    halfwords — the walk resynchronizes after them, as objdump does.
    """
    lines = []
    offset = 0
    while offset < len(blob):
        address = base_address + offset
        if offset + 2 > len(blob):
            break
        halfword = int.from_bytes(blob[offset:offset + 2], "little")
        if is_compressed_halfword(halfword):
            try:
                name, expanded = decode_compressed(halfword)
                lines.append(
                    f"{address:#010x}: {halfword:04x}      "
                    f"{name} ({_operands(expanded)})"
                )
            except DecodingError:
                lines.append(f"{address:#010x}: {halfword:04x}      "
                             f".half {halfword:#06x}")
            offset += 2
            continue
        if offset + 4 > len(blob):
            lines.append(f"{address:#010x}: {halfword:04x}      "
                         f".half {halfword:#06x}")
            break
        word = int.from_bytes(blob[offset:offset + 4], "little")
        try:
            lines.append(f"{address:#010x}: {word:08x}  {decode(word)}")
        except DecodingError:
            lines.append(f"{address:#010x}: {word:08x}  .word {word:#010x}")
        offset += 4
    return lines


def _operands(instr: Instruction) -> str:
    text = str(instr)
    return text.split(" ", 1)[1] if " " in text else ""
