"""The ``Instruction`` value type shared by every ISA layer."""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.spec import INSTRUCTION_SPECS, register_name


@dataclass(frozen=True)
class Instruction:
    """A decoded (or to-be-encoded) RISC-V instruction.

    Operand fields that a format does not use stay ``None``; ``imm`` holds
    the *sign-extended byte* immediate for branches/jumps (i.e. the actual
    pc-relative offset, not the encoded half).
    """

    name: str
    rd: int | None = None
    rs1: int | None = None
    rs2: int | None = None
    imm: int | None = None

    def __post_init__(self) -> None:
        if self.name not in INSTRUCTION_SPECS:
            raise ValueError(f"unknown instruction mnemonic {self.name!r}")

    @property
    def format(self) -> str:
        return INSTRUCTION_SPECS[self.name][0]

    def __str__(self) -> str:
        from repro.isa.spec import LOADS, STORES  # local to avoid cycles

        name = self.name
        if name in ("ecall", "ebreak", "fence"):
            return name
        if name in LOADS:
            return (f"{name} {register_name(self.rd)}, "
                    f"{self.imm}({register_name(self.rs1)})")
        if name in STORES:
            return (f"{name} {register_name(self.rs2)}, "
                    f"{self.imm}({register_name(self.rs1)})")
        fmt = self.format
        if fmt == "R":
            return (f"{name} {register_name(self.rd)}, "
                    f"{register_name(self.rs1)}, {register_name(self.rs2)}")
        if fmt in ("I", "SHIFT64", "SHIFT32"):
            return (f"{name} {register_name(self.rd)}, "
                    f"{register_name(self.rs1)}, {self.imm}")
        if fmt == "B":
            return (f"{name} {register_name(self.rs1)}, "
                    f"{register_name(self.rs2)}, {self.imm}")
        if fmt == "U":
            return f"{name} {register_name(self.rd)}, {self.imm:#x}"
        if fmt == "J":
            return f"{name} {register_name(self.rd)}, {self.imm}"
        return name
