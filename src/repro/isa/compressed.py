"""RVC (compressed) subset: encode, decode, expand.

The paper observes that with RVC "1 bit of extra information is received
for 16 bits" of program text (§IV.A) — i.e. the per-instruction encryption
map costs proportionally more on compressed code.  To reproduce that in
Fig. 5 we implement the RVC forms a simple compiler actually hits:

======================  =======================================
quadrant C0             c.addi4spn, c.lw, c.ld, c.sw, c.sd
quadrant C1             c.nop, c.addi, c.addiw, c.li, c.lui,
                        c.addi16sp, c.srli, c.srai, c.andi,
                        c.sub, c.xor, c.or, c.and, c.subw, c.addw
quadrant C2             c.slli, c.lwsp, c.ldsp, c.swsp, c.sdsp,
                        c.mv, c.add, c.jr, c.jalr, c.ebreak
======================  =======================================

Branches and direct jumps stay 32-bit (their offsets would couple layout
and compression; register jumps ``c.jr``/``c.jalr`` are offset-free and are
compressed).  :func:`compress` maps an expanded 32-bit instruction to its
compressed encoding when eligible; :func:`decode_compressed` inverts it.
"""

from __future__ import annotations

from repro.errors import DecodingError, EncodingError
from repro.isa.instruction import Instruction
from repro.isa.spec import fits_signed, sign_extend

# Registers addressable by the 3-bit rd'/rs' fields (x8..x15).
_C_REGS = range(8, 16)


def is_compressed_halfword(halfword: int) -> bool:
    """True if a 16-bit parcel starts a compressed instruction."""
    return (halfword & 0b11) != 0b11


def _creg(reg: int) -> int:
    return reg - 8


# --- encoding helpers -------------------------------------------------------


def _enc_ci(funct3: int, op: int, rd: int, imm6: int) -> int:
    imm = imm6 & 0x3F
    return (funct3 << 13) | (((imm >> 5) & 1) << 12) | (rd << 7) \
        | ((imm & 0x1F) << 2) | op


def _enc_ca(funct6: int, funct2: int, rd_p: int, rs2_p: int) -> int:
    return (funct6 << 10) | (_creg(rd_p) << 7) | (funct2 << 5) \
        | (_creg(rs2_p) << 2) | 0b01


def compress(instr: Instruction) -> int | None:
    """Return the 16-bit RVC encoding for ``instr``, or ``None``.

    Only returns an encoding when it is *exactly* equivalent to the 32-bit
    form (same architectural effect).
    """
    name = instr.name
    rd, rs1, rs2, imm = instr.rd, instr.rs1, instr.rs2, instr.imm

    if name == "addi":
        if rd == 0 and rs1 == 0 and imm == 0:
            return 0x0001  # c.nop
        if rd == rs1 != 0 and imm != 0 and fits_signed(imm, 6):
            return _enc_ci(0b000, 0b01, rd, imm)  # c.addi
        if rd != 0 and rs1 == 0 and fits_signed(imm, 6):
            return _enc_ci(0b010, 0b01, rd, imm)  # c.li
        if rd == 2 and rs1 == 2 and imm != 0 and imm % 16 == 0 \
                and fits_signed(imm, 10):
            u = imm & 0x3FF  # c.addi16sp
            return (0b011 << 13) | (((u >> 9) & 1) << 12) | (2 << 7) \
                | (((u >> 4) & 1) << 6) | (((u >> 6) & 1) << 5) \
                | (((u >> 7) & 0x3) << 3) | (((u >> 5) & 1) << 2) | 0b01
        if rd in _C_REGS and rs1 == 2 and imm is not None and imm > 0 \
                and imm % 4 == 0 and imm <= 1020:
            u = imm  # c.addi4spn
            return (0b000 << 13) | (((u >> 4) & 0x3) << 11) \
                | (((u >> 6) & 0xF) << 7) | (((u >> 2) & 1) << 6) \
                | (((u >> 3) & 1) << 5) | (_creg(rd) << 2) | 0b00
        return None

    if name == "addiw" and rd == rs1 != 0 and fits_signed(imm, 6):
        return _enc_ci(0b001, 0b01, rd, imm)

    if name == "lui" and rd not in (0, 2):
        value = sign_extend(imm, 20)
        if value != 0 and fits_signed(value, 6):
            return _enc_ci(0b011, 0b01, rd, value)

    if name == "slli" and rd == rs1 != 0 and imm and 0 < imm < 64:
        return _enc_ci(0b000, 0b10, rd, imm)

    if name in ("srli", "srai") and rd == rs1 and rd in _C_REGS \
            and imm and 0 < imm < 64:
        funct2 = 0b00 if name == "srli" else 0b01
        u = imm & 0x3F
        return (0b100 << 13) | (((u >> 5) & 1) << 12) | (funct2 << 10) \
            | (_creg(rd) << 7) | ((u & 0x1F) << 2) | 0b01

    if name == "andi" and rd == rs1 and rd in _C_REGS \
            and fits_signed(imm, 6):
        u = imm & 0x3F
        return (0b100 << 13) | (((u >> 5) & 1) << 12) | (0b10 << 10) \
            | (_creg(rd) << 7) | ((u & 0x1F) << 2) | 0b01

    if name in ("sub", "xor", "or", "and") and rd == rs1 \
            and rd in _C_REGS and rs2 in _C_REGS:
        funct2 = {"sub": 0b00, "xor": 0b01, "or": 0b10, "and": 0b11}[name]
        return _enc_ca(0b100011, funct2, rd, rs2)

    if name in ("subw", "addw") and rd == rs1 and rd in _C_REGS \
            and rs2 in _C_REGS:
        funct2 = 0b00 if name == "subw" else 0b01
        return _enc_ca(0b100111, funct2, rd, rs2)

    if name == "add":
        if rd == rs1 != 0 and rs2 != 0:
            return (0b100 << 13) | (1 << 12) | (rd << 7) | (rs2 << 2) | 0b10
        if rd != 0 and rs1 == 0 and rs2 != 0:  # c.mv
            return (0b100 << 13) | (rd << 7) | (rs2 << 2) | 0b10
        return None

    if name == "jalr" and imm == 0 and rs1 != 0:
        if rd == 0:   # c.jr
            return (0b100 << 13) | (rs1 << 7) | 0b10
        if rd == 1:   # c.jalr
            return (0b100 << 13) | (1 << 12) | (rs1 << 7) | 0b10
        return None

    if name == "ebreak":
        return (0b100 << 13) | (1 << 12) | 0b10

    if name in ("lw", "ld") and rs1 == 2 and rd != 0 and imm is not None \
            and imm >= 0:
        if name == "lw" and imm % 4 == 0 and imm <= 252:  # c.lwsp
            u = imm
            return (0b010 << 13) | (((u >> 5) & 1) << 12) | (rd << 7) \
                | (((u >> 2) & 0x7) << 4) | (((u >> 6) & 0x3) << 2) | 0b10
        if name == "ld" and imm % 8 == 0 and imm <= 504:  # c.ldsp
            u = imm
            return (0b011 << 13) | (((u >> 5) & 1) << 12) | (rd << 7) \
                | (((u >> 3) & 0x3) << 5) | (((u >> 6) & 0x7) << 2) | 0b10
        return None

    if name in ("sw", "sd") and rs1 == 2 and imm is not None and imm >= 0:
        if name == "sw" and imm % 4 == 0 and imm <= 252:  # c.swsp
            u = imm
            return (0b110 << 13) | (((u >> 2) & 0xF) << 9) \
                | (((u >> 6) & 0x3) << 7) | (rs2 << 2) | 0b10
        if name == "sd" and imm % 8 == 0 and imm <= 504:  # c.sdsp
            u = imm
            return (0b111 << 13) | (((u >> 3) & 0x7) << 10) \
                | (((u >> 6) & 0x7) << 7) | (rs2 << 2) | 0b10
        return None

    if name in ("lw", "ld") and rs1 in _C_REGS and rd in _C_REGS \
            and imm is not None and imm >= 0:
        if name == "lw" and imm % 4 == 0 and imm <= 124:  # c.lw
            u = imm
            return (0b010 << 13) | (((u >> 3) & 0x7) << 10) \
                | (_creg(rs1) << 7) | (((u >> 2) & 1) << 6) \
                | (((u >> 6) & 1) << 5) | (_creg(rd) << 2) | 0b00
        if name == "ld" and imm % 8 == 0 and imm <= 248:  # c.ld
            u = imm
            return (0b011 << 13) | (((u >> 3) & 0x7) << 10) \
                | (_creg(rs1) << 7) | (((u >> 6) & 0x3) << 5) \
                | (_creg(rd) << 2) | 0b00
        return None

    if name in ("sw", "sd") and rs1 in _C_REGS and rs2 in _C_REGS \
            and imm is not None and imm >= 0:
        if name == "sw" and imm % 4 == 0 and imm <= 124:  # c.sw
            u = imm
            return (0b110 << 13) | (((u >> 3) & 0x7) << 10) \
                | (_creg(rs1) << 7) | (((u >> 2) & 1) << 6) \
                | (((u >> 6) & 1) << 5) | (_creg(rs2) << 2) | 0b00
        if name == "sd" and imm % 8 == 0 and imm <= 248:  # c.sd
            u = imm
            return (0b111 << 13) | (((u >> 3) & 0x7) << 10) \
                | (_creg(rs1) << 7) | (((u >> 6) & 0x3) << 5) \
                | (_creg(rs2) << 2) | 0b00
        return None

    return None


def decode_compressed(halfword: int) -> tuple[str, Instruction]:
    """Decode a 16-bit parcel.

    Returns ``(rvc_name, expanded)`` where ``expanded`` is the equivalent
    32-bit :class:`Instruction` (what the CPU executes, and what
    :func:`compress` would re-compress).
    """
    if not 0 <= halfword < (1 << 16):
        raise DecodingError(f"{halfword:#x} is not a 16-bit parcel")
    if not is_compressed_halfword(halfword):
        raise DecodingError(f"{halfword:#06x} is a 32-bit instruction head")
    if halfword == 0:
        raise DecodingError("all-zero parcel is defined illegal")

    op = halfword & 0b11
    funct3 = (halfword >> 13) & 0b111

    if op == 0b00:
        rd_p = 8 + ((halfword >> 2) & 0x7)
        rs1_p = 8 + ((halfword >> 7) & 0x7)
        if funct3 == 0b000:  # c.addi4spn
            u = (((halfword >> 11) & 0x3) << 4) \
                | (((halfword >> 7) & 0xF) << 6) \
                | (((halfword >> 6) & 1) << 2) | (((halfword >> 5) & 1) << 3)
            if u == 0:
                raise DecodingError("c.addi4spn with zero immediate")
            return "c.addi4spn", Instruction("addi", rd=rd_p, rs1=2, imm=u)
        if funct3 == 0b010:  # c.lw
            u = (((halfword >> 10) & 0x7) << 3) \
                | (((halfword >> 6) & 1) << 2) | (((halfword >> 5) & 1) << 6)
            return "c.lw", Instruction("lw", rd=rd_p, rs1=rs1_p, imm=u)
        if funct3 == 0b011:  # c.ld
            u = (((halfword >> 10) & 0x7) << 3) \
                | (((halfword >> 5) & 0x3) << 6)
            return "c.ld", Instruction("ld", rd=rd_p, rs1=rs1_p, imm=u)
        if funct3 == 0b110:  # c.sw
            u = (((halfword >> 10) & 0x7) << 3) \
                | (((halfword >> 6) & 1) << 2) | (((halfword >> 5) & 1) << 6)
            return "c.sw", Instruction("sw", rs1=rs1_p, rs2=rd_p, imm=u)
        if funct3 == 0b111:  # c.sd
            u = (((halfword >> 10) & 0x7) << 3) \
                | (((halfword >> 5) & 0x3) << 6)
            return "c.sd", Instruction("sd", rs1=rs1_p, rs2=rd_p, imm=u)
        raise DecodingError(f"unsupported C0 encoding {halfword:#06x}")

    if op == 0b01:
        rd = (halfword >> 7) & 0x1F
        imm6 = sign_extend((((halfword >> 12) & 1) << 5)
                           | ((halfword >> 2) & 0x1F), 6)
        if funct3 == 0b000:
            if rd == 0:
                return "c.nop", Instruction("addi", rd=0, rs1=0, imm=0)
            return "c.addi", Instruction("addi", rd=rd, rs1=rd, imm=imm6)
        if funct3 == 0b001:
            if rd == 0:
                raise DecodingError("c.addiw with rd=0 is reserved")
            return "c.addiw", Instruction("addiw", rd=rd, rs1=rd, imm=imm6)
        if funct3 == 0b010:
            return "c.li", Instruction("addi", rd=rd, rs1=0, imm=imm6)
        if funct3 == 0b011:
            if rd == 2:  # c.addi16sp
                imm = sign_extend(
                    (((halfword >> 12) & 1) << 9)
                    | (((halfword >> 6) & 1) << 4)
                    | (((halfword >> 5) & 1) << 6)
                    | (((halfword >> 3) & 0x3) << 7)
                    | (((halfword >> 2) & 1) << 5), 10)
                return "c.addi16sp", Instruction("addi", rd=2, rs1=2, imm=imm)
            if imm6 == 0:
                raise DecodingError("c.lui with zero immediate")
            return "c.lui", Instruction("lui", rd=rd, imm=imm6 & 0xFFFFF)
        if funct3 == 0b100:
            sub = (halfword >> 10) & 0x3
            rd_p = 8 + ((halfword >> 7) & 0x7)
            if sub == 0b00:
                shamt = (((halfword >> 12) & 1) << 5) | ((halfword >> 2) & 0x1F)
                return "c.srli", Instruction("srli", rd=rd_p, rs1=rd_p,
                                             imm=shamt)
            if sub == 0b01:
                shamt = (((halfword >> 12) & 1) << 5) | ((halfword >> 2) & 0x1F)
                return "c.srai", Instruction("srai", rd=rd_p, rs1=rd_p,
                                             imm=shamt)
            if sub == 0b10:
                return "c.andi", Instruction("andi", rd=rd_p, rs1=rd_p,
                                             imm=imm6)
            rs2_p = 8 + ((halfword >> 2) & 0x7)
            funct2 = (halfword >> 5) & 0x3
            if (halfword >> 12) & 1:
                name = {0b00: "subw", 0b01: "addw"}.get(funct2)
            else:
                name = {0b00: "sub", 0b01: "xor",
                        0b10: "or", 0b11: "and"}[funct2]
            if name is None:
                raise DecodingError(f"reserved CA encoding {halfword:#06x}")
            return f"c.{name}", Instruction(name, rd=rd_p, rs1=rd_p,
                                            rs2=rs2_p)
        raise DecodingError(f"unsupported C1 encoding {halfword:#06x} "
                            "(c.j/c.beqz not emitted by this toolchain)")

    # op == 0b10
    rd = (halfword >> 7) & 0x1F
    rs2 = (halfword >> 2) & 0x1F
    if funct3 == 0b000:
        shamt = (((halfword >> 12) & 1) << 5) | ((halfword >> 2) & 0x1F)
        if rd == 0 or shamt == 0:
            raise DecodingError("c.slli with rd=0 or shamt=0")
        return "c.slli", Instruction("slli", rd=rd, rs1=rd, imm=shamt)
    if funct3 == 0b010:  # c.lwsp
        if rd == 0:
            raise DecodingError("c.lwsp with rd=0 is reserved")
        u = (((halfword >> 12) & 1) << 5) | (((halfword >> 4) & 0x7) << 2) \
            | (((halfword >> 2) & 0x3) << 6)
        return "c.lwsp", Instruction("lw", rd=rd, rs1=2, imm=u)
    if funct3 == 0b011:  # c.ldsp
        if rd == 0:
            raise DecodingError("c.ldsp with rd=0 is reserved")
        u = (((halfword >> 12) & 1) << 5) | (((halfword >> 5) & 0x3) << 3) \
            | (((halfword >> 2) & 0x7) << 6)
        return "c.ldsp", Instruction("ld", rd=rd, rs1=2, imm=u)
    if funct3 == 0b100:
        bit12 = (halfword >> 12) & 1
        if bit12 == 0:
            if rs2 == 0:
                if rd == 0:
                    raise DecodingError("c.jr with rs1=0 is reserved")
                return "c.jr", Instruction("jalr", rd=0, rs1=rd, imm=0)
            return "c.mv", Instruction("add", rd=rd, rs1=0, rs2=rs2)
        if rs2 == 0:
            if rd == 0:
                return "c.ebreak", Instruction("ebreak")
            return "c.jalr", Instruction("jalr", rd=1, rs1=rd, imm=0)
        return "c.add", Instruction("add", rd=rd, rs1=rd, rs2=rs2)
    if funct3 == 0b110:  # c.swsp
        u = (((halfword >> 9) & 0xF) << 2) | (((halfword >> 7) & 0x3) << 6)
        return "c.swsp", Instruction("sw", rs1=2, rs2=rs2, imm=u)
    if funct3 == 0b111:  # c.sdsp
        u = (((halfword >> 10) & 0x7) << 3) | (((halfword >> 7) & 0x7) << 6)
        return "c.sdsp", Instruction("sd", rs1=2, rs2=rs2, imm=u)
    raise DecodingError(f"unsupported C2 encoding {halfword:#06x}")


def expand_compressed(halfword: int) -> Instruction:
    """The expanded 32-bit equivalent of a compressed parcel."""
    return decode_compressed(halfword)[1]


def encode_compressed(instr: Instruction) -> int:
    """Like :func:`compress` but raises instead of returning ``None``."""
    encoding = compress(instr)
    if encoding is None:
        raise EncodingError(f"{instr} has no RVC encoding in this subset")
    return encoding
