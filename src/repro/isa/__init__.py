"""RISC-V ISA substrate (RV64IM plus an RVC subset).

The paper targets RV64GC on a Rocket Chip (Table I).  The reproduction
implements the integer subsets that matter for the evaluation:

* **RV64I + M** — everything the MiniC compiler emits and the SoC executes;
* **RVC subset** — compressed forms of the common data-processing, load and
  store instructions.  The paper notes that compressed instructions change
  the encryption-map overhead ("1 bit of extra information is received for
  16 bits", §IV.A) — reproducing Fig. 5 needs real RVC layouts.

Modules
-------
:mod:`repro.isa.spec`          registers, ABI names, opcode constants
:mod:`repro.isa.instruction`   the ``Instruction`` value type
:mod:`repro.isa.encoding`      instruction -> 32-bit word
:mod:`repro.isa.decoding`      word -> instruction
:mod:`repro.isa.compressed`    RVC subset encode/decode/expand
:mod:`repro.isa.fields`        per-format bit-field masks (field-level
                               partial encryption, paper §III.1)
:mod:`repro.isa.disassembler`  text disassembly (the static attacker's tool)
:mod:`repro.isa.pseudo`        pseudo-instruction expansion (li, la, mv, ...)
"""

from repro.isa.instruction import Instruction
from repro.isa.encoding import encode
from repro.isa.decoding import decode, decode_at
from repro.isa.compressed import (
    compress,
    decode_compressed,
    expand_compressed,
    is_compressed_halfword,
)
from repro.isa.fields import field_mask, FIELD_CLASSES
from repro.isa.disassembler import disassemble, disassemble_text
from repro.isa.spec import REGISTER_NAMES, parse_register

__all__ = [
    "Instruction",
    "encode",
    "decode",
    "decode_at",
    "compress",
    "decode_compressed",
    "expand_compressed",
    "is_compressed_halfword",
    "field_mask",
    "FIELD_CLASSES",
    "disassemble",
    "disassemble_text",
    "REGISTER_NAMES",
    "parse_register",
]
