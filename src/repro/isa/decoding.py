"""Instruction decoding: 32-bit word -> :class:`Instruction`.

Also provides :func:`decode_at`, the variable-length fetch helper used by
the SoC (and by the HDE when it walks an instruction stream): RISC-V
encodes length in the low bits — ``bits[1:0] == 0b11`` means a 32-bit
instruction, anything else is a 16-bit compressed one.
"""

from __future__ import annotations

from repro.errors import DecodingError
from repro.isa.instruction import Instruction
from repro.isa.spec import (
    INSTRUCTION_SPECS,
    OPCODE_MISC_MEM,
    OPCODE_SYSTEM,
    sign_extend,
)

# Build reverse lookup tables once at import.
#   (opcode) -> U/J entry
#   (opcode, funct3) -> I/S/B entries
#   (opcode, funct3, funct7) -> R entries
_BY_OPCODE: dict[int, str] = {}
_BY_F3: dict[tuple[int, int], str] = {}
_BY_F3_F7: dict[tuple[int, int, int], str] = {}
_SHIFT64: dict[tuple[int, int, int], str] = {}  # funct6 keyed
_SHIFT32: dict[tuple[int, int, int], str] = {}

for _name, (_fmt, _op, _f3, _f7) in INSTRUCTION_SPECS.items():
    if _fmt in ("U", "J"):
        _BY_OPCODE[_op] = _name
    elif _fmt in ("I", "S", "B"):
        _BY_F3[(_op, _f3)] = _name
    elif _fmt == "R":
        _BY_F3_F7[(_op, _f3, _f7)] = _name
    elif _fmt == "SHIFT64":
        _SHIFT64[(_op, _f3, _f7)] = _name
    elif _fmt == "SHIFT32":
        _SHIFT32[(_op, _f3, _f7)] = _name


def decode(word: int) -> Instruction:
    """Decode a 32-bit instruction word.

    Raises:
        DecodingError: if the word is not a recognized RV64IM encoding —
            the common case when the static attacker tries to disassemble
            ciphertext.
    """
    if not 0 <= word < (1 << 32):
        raise DecodingError(f"word {word:#x} is not a 32-bit value")
    if word & 0b11 != 0b11:
        raise DecodingError(
            f"word {word:#010x} has compressed length bits; "
            "use decode_compressed"
        )
    opcode = word & 0x7F
    rd = (word >> 7) & 0x1F
    funct3 = (word >> 12) & 0x7
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F
    funct7 = (word >> 25) & 0x7F

    if opcode == OPCODE_SYSTEM:
        imm12 = (word >> 20) & 0xFFF
        if word == 0x00000073:
            return Instruction("ecall")
        if word == 0x00100073:
            return Instruction("ebreak")
        raise DecodingError(f"unsupported SYSTEM encoding {word:#010x} "
                            f"(imm={imm12:#x})")
    if opcode == OPCODE_MISC_MEM:
        if funct3 == 0:
            return Instruction("fence")
        raise DecodingError(f"unsupported MISC-MEM encoding {word:#010x}")

    name = _BY_OPCODE.get(opcode)
    if name is not None:
        fmt = INSTRUCTION_SPECS[name][0]
        if fmt == "U":
            return Instruction(name, rd=rd, imm=(word >> 12) & 0xFFFFF)
        # J-type (jal)
        imm = (((word >> 31) & 1) << 20) | (((word >> 12) & 0xFF) << 12) \
            | (((word >> 20) & 1) << 11) | (((word >> 21) & 0x3FF) << 1)
        return Instruction(name, rd=rd, imm=sign_extend(imm, 21))

    name = _BY_F3.get((opcode, funct3))
    if name is not None:
        fmt = INSTRUCTION_SPECS[name][0]
        if fmt == "I":
            return Instruction(name, rd=rd, rs1=rs1,
                               imm=sign_extend(word >> 20, 12))
        if fmt == "S":
            imm = (funct7 << 5) | rd
            return Instruction(name, rs1=rs1, rs2=rs2,
                               imm=sign_extend(imm, 12))
        # B-type
        imm = (((word >> 31) & 1) << 12) | (((word >> 7) & 1) << 11) \
            | (((word >> 25) & 0x3F) << 5) | (((word >> 8) & 0xF) << 1)
        return Instruction(name, rs1=rs1, rs2=rs2, imm=sign_extend(imm, 13))

    # Shifts come before plain R lookup because OP-IMM f3=1/5 land here.
    funct6 = (word >> 26) & 0x3F
    name = _SHIFT64.get((opcode, funct3, funct6))
    if name is not None:
        return Instruction(name, rd=rd, rs1=rs1, imm=(word >> 20) & 0x3F)
    name = _SHIFT32.get((opcode, funct3, funct7))
    if name is not None:
        return Instruction(name, rd=rd, rs1=rs1, imm=rs2)

    name = _BY_F3_F7.get((opcode, funct3, funct7))
    if name is not None:
        return Instruction(name, rd=rd, rs1=rs1, rs2=rs2)

    raise DecodingError(f"cannot decode word {word:#010x}")


def decode_at(blob: bytes, offset: int) -> tuple[Instruction, int]:
    """Decode the instruction starting at ``offset`` of ``blob``.

    Returns ``(instruction, size)`` where size is 2 or 4 bytes.  The
    compressed decoder expands RVC forms to their 32-bit semantic
    equivalents, so callers can execute the result uniformly.
    """
    from repro.isa.compressed import decode_compressed  # avoid import cycle

    if offset + 2 > len(blob):
        raise DecodingError(f"truncated instruction at offset {offset}")
    halfword = int.from_bytes(blob[offset:offset + 2], "little")
    if halfword & 0b11 == 0b11:
        if offset + 4 > len(blob):
            raise DecodingError(f"truncated instruction at offset {offset}")
        word = int.from_bytes(blob[offset:offset + 4], "little")
        return decode(word), 4
    _, expanded = decode_compressed(halfword)
    return expanded, 2
