"""Architectural constants: registers, ABI names, opcodes, funct codes.

Single source of truth for the encoder, decoder, assembler and
disassembler.  Everything follows the RISC-V unprivileged spec (v2.2
numbering).
"""

from __future__ import annotations

from repro.errors import EncodingError

XLEN = 64
NUM_REGISTERS = 32

#: ABI register names indexed by register number.
REGISTER_NAMES = (
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
    "s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
    "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
    "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
)

_NAME_TO_NUMBER = {name: i for i, name in enumerate(REGISTER_NAMES)}
_NAME_TO_NUMBER["fp"] = 8  # alias of s0
_NAME_TO_NUMBER.update({f"x{i}": i for i in range(NUM_REGISTERS)})


def parse_register(name: str) -> int:
    """Map an ABI or ``x<n>`` register name to its number."""
    try:
        return _NAME_TO_NUMBER[name]
    except KeyError:
        raise EncodingError(f"unknown register {name!r}") from None


def register_name(number: int) -> str:
    """ABI name for a register number."""
    if not 0 <= number < NUM_REGISTERS:
        raise EncodingError(f"register number {number} out of range")
    return REGISTER_NAMES[number]


# --- major opcodes (bits [6:0]) --------------------------------------------

OPCODE_LOAD = 0x03
OPCODE_MISC_MEM = 0x0F
OPCODE_OP_IMM = 0x13
OPCODE_AUIPC = 0x17
OPCODE_OP_IMM_32 = 0x1B
OPCODE_STORE = 0x23
OPCODE_OP = 0x33
OPCODE_LUI = 0x37
OPCODE_OP_32 = 0x3B
OPCODE_BRANCH = 0x63
OPCODE_JALR = 0x67
OPCODE_JAL = 0x6F
OPCODE_SYSTEM = 0x73

# --- instruction table ------------------------------------------------------
# name -> (format, opcode, funct3, funct7)
# formats: R, I, S, B, U, J, SHIFT64 (I with funct6), SHIFT32 (I with funct7),
#          SYS (I with fixed imm), FENCE

INSTRUCTION_SPECS: dict[str, tuple[str, int, int | None, int | None]] = {
    # U / J
    "lui":   ("U", OPCODE_LUI, None, None),
    "auipc": ("U", OPCODE_AUIPC, None, None),
    "jal":   ("J", OPCODE_JAL, None, None),
    # jumps / branches
    "jalr":  ("I", OPCODE_JALR, 0b000, None),
    "beq":   ("B", OPCODE_BRANCH, 0b000, None),
    "bne":   ("B", OPCODE_BRANCH, 0b001, None),
    "blt":   ("B", OPCODE_BRANCH, 0b100, None),
    "bge":   ("B", OPCODE_BRANCH, 0b101, None),
    "bltu":  ("B", OPCODE_BRANCH, 0b110, None),
    "bgeu":  ("B", OPCODE_BRANCH, 0b111, None),
    # loads
    "lb":  ("I", OPCODE_LOAD, 0b000, None),
    "lh":  ("I", OPCODE_LOAD, 0b001, None),
    "lw":  ("I", OPCODE_LOAD, 0b010, None),
    "ld":  ("I", OPCODE_LOAD, 0b011, None),
    "lbu": ("I", OPCODE_LOAD, 0b100, None),
    "lhu": ("I", OPCODE_LOAD, 0b101, None),
    "lwu": ("I", OPCODE_LOAD, 0b110, None),
    # stores
    "sb": ("S", OPCODE_STORE, 0b000, None),
    "sh": ("S", OPCODE_STORE, 0b001, None),
    "sw": ("S", OPCODE_STORE, 0b010, None),
    "sd": ("S", OPCODE_STORE, 0b011, None),
    # OP-IMM
    "addi":  ("I", OPCODE_OP_IMM, 0b000, None),
    "slti":  ("I", OPCODE_OP_IMM, 0b010, None),
    "sltiu": ("I", OPCODE_OP_IMM, 0b011, None),
    "xori":  ("I", OPCODE_OP_IMM, 0b100, None),
    "ori":   ("I", OPCODE_OP_IMM, 0b110, None),
    "andi":  ("I", OPCODE_OP_IMM, 0b111, None),
    "slli":  ("SHIFT64", OPCODE_OP_IMM, 0b001, 0b000000),
    "srli":  ("SHIFT64", OPCODE_OP_IMM, 0b101, 0b000000),
    "srai":  ("SHIFT64", OPCODE_OP_IMM, 0b101, 0b010000),
    # OP-IMM-32
    "addiw": ("I", OPCODE_OP_IMM_32, 0b000, None),
    "slliw": ("SHIFT32", OPCODE_OP_IMM_32, 0b001, 0b0000000),
    "srliw": ("SHIFT32", OPCODE_OP_IMM_32, 0b101, 0b0000000),
    "sraiw": ("SHIFT32", OPCODE_OP_IMM_32, 0b101, 0b0100000),
    # OP
    "add":  ("R", OPCODE_OP, 0b000, 0b0000000),
    "sub":  ("R", OPCODE_OP, 0b000, 0b0100000),
    "sll":  ("R", OPCODE_OP, 0b001, 0b0000000),
    "slt":  ("R", OPCODE_OP, 0b010, 0b0000000),
    "sltu": ("R", OPCODE_OP, 0b011, 0b0000000),
    "xor":  ("R", OPCODE_OP, 0b100, 0b0000000),
    "srl":  ("R", OPCODE_OP, 0b101, 0b0000000),
    "sra":  ("R", OPCODE_OP, 0b101, 0b0100000),
    "or":   ("R", OPCODE_OP, 0b110, 0b0000000),
    "and":  ("R", OPCODE_OP, 0b111, 0b0000000),
    # OP-32
    "addw": ("R", OPCODE_OP_32, 0b000, 0b0000000),
    "subw": ("R", OPCODE_OP_32, 0b000, 0b0100000),
    "sllw": ("R", OPCODE_OP_32, 0b001, 0b0000000),
    "srlw": ("R", OPCODE_OP_32, 0b101, 0b0000000),
    "sraw": ("R", OPCODE_OP_32, 0b101, 0b0100000),
    # M extension
    "mul":    ("R", OPCODE_OP, 0b000, 0b0000001),
    "mulh":   ("R", OPCODE_OP, 0b001, 0b0000001),
    "mulhsu": ("R", OPCODE_OP, 0b010, 0b0000001),
    "mulhu":  ("R", OPCODE_OP, 0b011, 0b0000001),
    "div":    ("R", OPCODE_OP, 0b100, 0b0000001),
    "divu":   ("R", OPCODE_OP, 0b101, 0b0000001),
    "rem":    ("R", OPCODE_OP, 0b110, 0b0000001),
    "remu":   ("R", OPCODE_OP, 0b111, 0b0000001),
    "mulw":   ("R", OPCODE_OP_32, 0b000, 0b0000001),
    "divw":   ("R", OPCODE_OP_32, 0b100, 0b0000001),
    "divuw":  ("R", OPCODE_OP_32, 0b101, 0b0000001),
    "remw":   ("R", OPCODE_OP_32, 0b110, 0b0000001),
    "remuw":  ("R", OPCODE_OP_32, 0b111, 0b0000001),
    # SYSTEM / MISC-MEM
    "ecall":  ("SYS", OPCODE_SYSTEM, 0b000, 0),
    "ebreak": ("SYS", OPCODE_SYSTEM, 0b000, 1),
    "fence":  ("FENCE", OPCODE_MISC_MEM, 0b000, None),
}

#: Instruction classes used by the SoC timing model and the field-mask
#: machinery.
LOADS = frozenset({"lb", "lh", "lw", "ld", "lbu", "lhu", "lwu"})
STORES = frozenset({"sb", "sh", "sw", "sd"})
BRANCHES = frozenset({"beq", "bne", "blt", "bge", "bltu", "bgeu"})
JUMPS = frozenset({"jal", "jalr"})
MULS = frozenset({"mul", "mulh", "mulhsu", "mulhu", "mulw"})
DIVS = frozenset({"div", "divu", "rem", "remu",
                  "divw", "divuw", "remw", "remuw"})


def sign_extend(value: int, bits: int) -> int:
    """Interpret the low ``bits`` of ``value`` as a signed integer."""
    value &= (1 << bits) - 1
    if value & (1 << (bits - 1)):
        value -= 1 << bits
    return value


def fits_signed(value: int, bits: int) -> bool:
    """True if ``value`` is representable as a ``bits``-bit signed int."""
    return -(1 << (bits - 1)) <= value < (1 << (bits - 1))


def fits_unsigned(value: int, bits: int) -> bool:
    """True if ``value`` is representable as a ``bits``-bit unsigned int."""
    return 0 <= value < (1 << bits)
