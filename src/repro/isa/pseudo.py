"""Pseudo-instruction expansion.

The assembler accepts the standard RISC-V pseudo-instructions and expands
them here into base RV64IM instructions.  Label-valued immediates are
resolved by the assembler *before* expansion, so this module only deals in
integers.
"""

from __future__ import annotations

from repro.errors import EncodingError
from repro.isa.instruction import Instruction
from repro.isa.spec import fits_signed


def li_sequence(rd: int, value: int) -> list[Instruction]:
    """Materialize an arbitrary 64-bit constant into ``rd``.

    Uses the standard recursive lui/addiw/slli/addi construction (as GNU
    as does for RV64).  ``value`` may be given signed or unsigned; it is
    interpreted modulo 2^64.
    """
    value &= (1 << 64) - 1
    if value >= (1 << 63):
        value -= 1 << 64  # canonical signed form

    if fits_signed(value, 12):
        return [Instruction("addi", rd=rd, rs1=0, imm=value)]

    if fits_signed(value, 32):
        hi = (value + 0x800) >> 12
        lo = value - (hi << 12)
        sequence = []
        if hi == 0:
            sequence.append(Instruction("addi", rd=rd, rs1=0, imm=lo))
        else:
            sequence.append(Instruction("lui", rd=rd, imm=hi & 0xFFFFF))
            if lo:
                sequence.append(Instruction("addiw", rd=rd, rs1=rd, imm=lo))
        return sequence

    # 64-bit path: peel 12 low bits, recurse on the rest, shift, add.
    lo = value & 0xFFF
    if lo >= 0x800:
        lo -= 0x1000
    rest = (value - lo) >> 12
    sequence = li_sequence(rd, rest)
    sequence.append(Instruction("slli", rd=rd, rs1=rd, imm=12))
    if lo:
        sequence.append(Instruction("addi", rd=rd, rs1=rd, imm=lo))
    return sequence


def la_sequence(rd: int, address: int) -> list[Instruction]:
    """Materialize an absolute address (labels live below 2^31 here)."""
    if not 0 <= address < (1 << 31):
        raise EncodingError(f"address {address:#x} outside la range")
    return li_sequence(rd, address)


#: pseudo name -> expander(operands) -> list[Instruction].  Operands arrive
#: pre-parsed: registers as ints, immediates/labels as resolved ints.
def expand_pseudo(name: str, operands: list[int]) -> list[Instruction]:
    """Expand pseudo ``name`` with resolved operands.

    Returns the replacement instruction list, or raises
    :class:`EncodingError` for an unknown pseudo / operand mismatch.
    PC-relative pseudos (j, jal with one operand, beqz...) are handled by
    the assembler itself because they need the current pc; this function
    covers the pc-independent ones.
    """
    def regs(n: int) -> list[int]:
        if len(operands) != n:
            raise EncodingError(
                f"pseudo {name!r} expects {n} operands, got {len(operands)}"
            )
        return operands

    if name == "nop":
        regs(0)
        return [Instruction("addi", rd=0, rs1=0, imm=0)]
    if name == "li":
        rd, value = regs(2)
        return li_sequence(rd, value)
    if name == "la":
        rd, address = regs(2)
        return la_sequence(rd, address)
    if name == "mv":
        rd, rs = regs(2)
        return [Instruction("addi", rd=rd, rs1=rs, imm=0)]
    if name == "not":
        rd, rs = regs(2)
        return [Instruction("xori", rd=rd, rs1=rs, imm=-1)]
    if name == "neg":
        rd, rs = regs(2)
        return [Instruction("sub", rd=rd, rs1=0, rs2=rs)]
    if name == "negw":
        rd, rs = regs(2)
        return [Instruction("subw", rd=rd, rs1=0, rs2=rs)]
    if name == "sext.w":
        rd, rs = regs(2)
        return [Instruction("addiw", rd=rd, rs1=rs, imm=0)]
    if name == "seqz":
        rd, rs = regs(2)
        return [Instruction("sltiu", rd=rd, rs1=rs, imm=1)]
    if name == "snez":
        rd, rs = regs(2)
        return [Instruction("sltu", rd=rd, rs1=0, rs2=rs)]
    if name == "sltz":
        rd, rs = regs(2)
        return [Instruction("slt", rd=rd, rs1=rs, rs2=0)]
    if name == "sgtz":
        rd, rs = regs(2)
        return [Instruction("slt", rd=rd, rs1=0, rs2=rs)]
    if name == "jr":
        (rs,) = regs(1)
        return [Instruction("jalr", rd=0, rs1=rs, imm=0)]
    if name == "jalr.ra":  # internal canonical form of 1-operand jalr
        (rs,) = regs(1)
        return [Instruction("jalr", rd=1, rs1=rs, imm=0)]
    if name == "ret":
        regs(0)
        return [Instruction("jalr", rd=0, rs1=1, imm=0)]
    raise EncodingError(f"unknown pseudo-instruction {name!r}")


#: Pseudos the assembler resolves itself (pc-relative or label-shaped).
PC_RELATIVE_PSEUDOS = frozenset({
    "j", "jal", "call", "tail",
    "beqz", "bnez", "blez", "bgez", "bltz", "bgtz",
    "bgt", "ble", "bgtu", "bleu",
})

#: Pseudos expanded by :func:`expand_pseudo` (operand counts for parsing).
SIMPLE_PSEUDOS = frozenset({
    "nop", "li", "la", "mv", "not", "neg", "negw", "sext.w",
    "seqz", "snez", "sltz", "sgtz", "jr", "ret",
})
