"""Bit-field geometry for field-level partial encryption.

The paper's interface lets the programmer encrypt "special parts within the
target instructions ... for example, only the pointer values of the
instructions that make memory accesses", and notes that leaving opcode bits
plaintext "make[s] it difficult to understand that the program is
encrypted" (§III.1).  This module computes, for any 32-bit instruction
word, the bit mask covering a named *field class*:

============  ============================================================
``opcode``    bits [6:0] (never encrypted in field mode, by construction)
``rd``        bits [11:7] where the format has an rd
``rs1``       bits [19:15]
``rs2``       bits [24:20]
``funct``     funct3 (+ funct7/funct6 where present)
``imm``       every immediate bit of the format (the "pointer values")
============  ============================================================

Masks are derived from the *decoded* format, so the HDE can recompute the
same mask from the plaintext opcode/funct bits before decrypting the
masked bits — which is exactly why field mode keeps those bits clear.
"""

from __future__ import annotations

from repro.isa.decoding import decode
from repro.isa.spec import INSTRUCTION_SPECS

#: Field classes selectable from the encryption interface.
FIELD_CLASSES = ("opcode", "rd", "rs1", "rs2", "funct", "imm")

_OPCODE_MASK = 0x0000007F
_RD_MASK = 0x00000F80
_FUNCT3_MASK = 0x00007000
_RS1_MASK = 0x000F8000
_RS2_MASK = 0x01F00000
_FUNCT7_MASK = 0xFE000000
_FUNCT6_MASK = 0xFC000000

# Per-format presence of the classic fields and layout of the immediate.
_FORMAT_MASKS: dict[str, dict[str, int]] = {
    "R": {"rd": _RD_MASK, "rs1": _RS1_MASK, "rs2": _RS2_MASK,
          "funct": _FUNCT3_MASK | _FUNCT7_MASK, "imm": 0},
    "I": {"rd": _RD_MASK, "rs1": _RS1_MASK, "rs2": 0,
          "funct": _FUNCT3_MASK, "imm": 0xFFF00000},
    "SHIFT64": {"rd": _RD_MASK, "rs1": _RS1_MASK, "rs2": 0,
                "funct": _FUNCT3_MASK | _FUNCT6_MASK, "imm": 0x03F00000},
    "SHIFT32": {"rd": _RD_MASK, "rs1": _RS1_MASK, "rs2": 0,
                "funct": _FUNCT3_MASK | _FUNCT7_MASK, "imm": 0x01F00000},
    "S": {"rd": 0, "rs1": _RS1_MASK, "rs2": _RS2_MASK,
          "funct": _FUNCT3_MASK, "imm": 0xFE000F80},
    "B": {"rd": 0, "rs1": _RS1_MASK, "rs2": _RS2_MASK,
          "funct": _FUNCT3_MASK, "imm": 0xFE000F80},
    "U": {"rd": _RD_MASK, "rs1": 0, "rs2": 0,
          "funct": 0, "imm": 0xFFFFF000},
    "J": {"rd": _RD_MASK, "rs1": 0, "rs2": 0,
          "funct": 0, "imm": 0xFFFFF000},
    "SYS": {"rd": 0, "rs1": 0, "rs2": 0, "funct": _FUNCT3_MASK,
            "imm": 0xFFF00000},
    "FENCE": {"rd": 0, "rs1": 0, "rs2": 0, "funct": _FUNCT3_MASK,
              "imm": 0xFFF00000},
}


def field_mask(word: int, classes: tuple[str, ...]) -> int:
    """Bit mask of ``word`` covering the requested field classes.

    Raises:
        DecodingError: if ``word`` does not decode (masks are
            format-dependent).
        ValueError: for an unknown field class name.
    """
    for cls in classes:
        if cls not in FIELD_CLASSES:
            raise ValueError(
                f"unknown field class {cls!r}; known: {FIELD_CLASSES}"
            )
    instr = decode(word)  # raises DecodingError on non-instructions
    fmt = INSTRUCTION_SPECS[instr.name][0]
    masks = _FORMAT_MASKS[fmt]
    mask = 0
    for cls in classes:
        if cls == "opcode":
            mask |= _OPCODE_MASK
        else:
            mask |= masks[cls]
    return mask


def encryptable_mask(word: int, classes: tuple[str, ...]) -> int:
    """Like :func:`field_mask` but never covers the bits the HDE needs to
    recompute the mask: opcode, funct3 and funct7/funct6.

    SYSTEM and MISC-MEM instructions are excluded entirely (mask 0):
    their "immediate" bits select the concrete instruction (ecall vs
    ebreak), so garbling them would leave the HDE unable to re-derive
    the mask — and they carry no program data worth hiding anyway.

    This is the mask field-level encryption actually applies.
    """
    instr = decode(word)
    fmt = INSTRUCTION_SPECS[instr.name][0]
    if fmt in ("SYS", "FENCE"):
        return 0
    keep_clear = _OPCODE_MASK | _FORMAT_MASKS[fmt]["funct"]
    return field_mask(word, classes) & ~keep_clear
