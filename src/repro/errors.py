"""Exception hierarchy for the ERIC reproduction.

Every failure mode in the framework maps to a distinct exception type so
that callers (and tests) can distinguish, e.g., a tampered package from a
wrong-device decryption: both fail signature validation, but the package
parser can also fail earlier on structural corruption.
"""

from __future__ import annotations


class EricError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(EricError):
    """An encryption/compilation configuration is invalid or inconsistent."""


class PackageFormatError(EricError):
    """A serialized program package is structurally malformed."""


class ValidationError(EricError):
    """Signature validation failed: the package was not produced for this
    device, or it was modified in transit (paper §III.2, Validation Unit)."""


class KeyMismatchError(ValidationError):
    """Decryption produced an image whose signature cannot validate —
    the device's PUF-based key does not match the packaging key."""


class TamperDetectedError(ValidationError):
    """The decrypted image validates against neither the carried signature
    nor a clean decode — the package bytes were modified in transit."""


class AssemblerError(EricError):
    """The assembler rejected an assembly source."""


class CompileError(EricError):
    """The MiniC compiler rejected a source program."""


class LexError(CompileError):
    """Tokenization failure with source location."""


class ParseError(CompileError):
    """Syntax error with source location."""


class SemanticError(CompileError):
    """Type/semantic error with source location."""


class EncodingError(EricError):
    """An instruction cannot be encoded (bad operands, out-of-range imm)."""


class DecodingError(EricError):
    """A word does not decode to a known instruction."""


class SimulatorError(EricError):
    """The SoC simulator hit an unrecoverable condition."""


class MemoryFault(SimulatorError):
    """An access outside mapped memory or misaligned beyond tolerance."""


class IllegalInstruction(SimulatorError):
    """The CPU fetched a word that does not decode; carries the pc and,
    when the SoC attaches them, the partial performance counters at the
    point of the fault (``counters`` — forensics for farm tracebacks)."""

    def __init__(self, pc: int, word: int, counters=None) -> None:
        super().__init__(f"illegal instruction at pc={pc:#x}: word={word:#010x}")
        self.pc = pc
        self.word = word
        self.counters = counters


class ExecutionLimitExceeded(SimulatorError):
    """The instruction budget was exhausted before the program exited.

    Symmetric with :class:`IllegalInstruction`: the SoC attaches the
    partial counters and the pc reached when the budget ran out, so a
    farm one-line traceback can say *where* a runaway program was."""

    def __init__(self, message: str, pc=None, counters=None) -> None:
        super().__init__(message)
        self.pc = pc
        self.counters = counters


class ProvisioningError(EricError):
    """Device enrollment/handshake failure (unknown device, bad helper data)."""


class ChannelError(EricError):
    """The transfer channel dropped or refused the payload."""
