"""repro.farm — the parallel simulation farm with a persistent store.

Every number the evaluation harness reports is the outcome of running a
(workload × :class:`~repro.core.config.EricConfig` × SoC-parameter)
combination on the simulated device.  The farm turns those combinations
into **content-addressed jobs** (:mod:`repro.farm.spec`), persists each
measurement as a JSONL record (:mod:`repro.farm.store`), and fans
un-measured jobs out over worker processes
(:mod:`repro.farm.executor`).  Re-running any matrix is incremental:
already-stored keys are served from disk, ``force=True`` re-measures.

    from repro.farm import JobMatrix, ResultStore, SimulationFarm

    matrix = JobMatrix(workloads=("crc32", "fft"))
    farm = SimulationFarm(store=ResultStore("benchmarks/results/farm"),
                          jobs=4)
    report = farm.run(matrix)
    print(report.summary())   # N jobs -> H store hits, E executed ...

The figure modules (:mod:`repro.eval.fig5`/``fig6``/``fig7``) and the
ablation benchmarks source their measurements through this subsystem;
``eric sweep`` exposes it on the command line.
"""

from repro.farm.executor import (DYNAMIC_ATTACKER_SEEDS,
                                 KEY_STABILITY_READS, FarmJobResult,
                                 FarmReport, SimulationFarm, execute_job)
from repro.farm.spec import (KEY_SCHEMA, PIPELINE_VARIANTS, JobMatrix,
                             JobSpec, SimParams)
from repro.farm.store import (DEFAULT_STORE_DIR, STORE_SCHEMA, FarmRecord,
                              ResultStore)

__all__ = [
    "DEFAULT_STORE_DIR",
    "DYNAMIC_ATTACKER_SEEDS",
    "KEY_STABILITY_READS",
    "FarmJobResult",
    "FarmRecord",
    "FarmReport",
    "JobMatrix",
    "JobSpec",
    "KEY_SCHEMA",
    "PIPELINE_VARIANTS",
    "ResultStore",
    "STORE_SCHEMA",
    "SimParams",
    "SimulationFarm",
    "execute_job",
]
