"""repro.farm — the parallel simulation farm with a persistent store.

Every number the evaluation harness reports is the outcome of running a
(workload × :class:`~repro.core.config.EricConfig` × SoC-parameter)
combination on the simulated device.  The farm turns those combinations
into **content-addressed jobs** (:mod:`repro.farm.spec`), persists each
measurement as a JSONL record (:mod:`repro.farm.store`), and fans
un-measured jobs out over worker processes
(:mod:`repro.farm.executor`).  Re-running any matrix is incremental:
already-stored keys are served from disk, ``force=True`` re-measures.

    from repro.farm import JobMatrix, ResultStore, SimulationFarm

    matrix = JobMatrix(workloads=("crc32", "fft"))
    farm = SimulationFarm(store=ResultStore("benchmarks/results/farm"),
                          jobs=4)
    report = farm.run(matrix)
    print(report.summary())   # N jobs -> H store hits, E executed ...

The figure modules (:mod:`repro.eval.fig5`/``fig6``/``fig7``) and the
ablation benchmarks source their measurements through this subsystem;
``eric sweep`` exposes it on the command line.

Scaling past one machine, :class:`~repro.farm.coordinator.FarmCoordinator`
shards a matrix's key space into contiguous ranges
(:class:`~repro.farm.spec.ShardPlan`), runs each shard as its own farm
against a per-shard store (:mod:`repro.farm.worker`, also the ``eric
worker`` entry point for remote machines), and merges the shard stores
back last-record-wins (:meth:`ResultStore.merge_from`)::

    from repro.farm import FarmCoordinator, JobMatrix, ResultStore

    coordinator = FarmCoordinator(
        store=ResultStore("benchmarks/results/farm"), shards=4)
    report = coordinator.run(JobMatrix(workloads=("crc32", "fft")))
"""

from repro.farm.coordinator import FarmCoordinator, ShardOutcome
from repro.farm.doctor import (ShardLeftover, StoreDiagnosis,
                               diagnose_store)
from repro.farm.executor import (DYNAMIC_ATTACKER_SEEDS,
                                 KEY_STABILITY_READS, FarmJobResult,
                                 FarmReport, SimulationFarm, execute_job)
from repro.farm.spec import (KEY_SCHEMA, PIPELINE_VARIANTS, JobMatrix,
                             JobSpec, ShardPlan, ShardSpec, SimParams)
from repro.farm.store import (DEFAULT_STORE_DIR, STORE_SCHEMA,
                              WALL_CLOCK_FIELDS, FarmRecord, MergeStats,
                              ResultStore)
from repro.farm.worker import load_shard, run_shard

__all__ = [
    "DEFAULT_STORE_DIR",
    "DYNAMIC_ATTACKER_SEEDS",
    "KEY_STABILITY_READS",
    "FarmCoordinator",
    "FarmJobResult",
    "FarmRecord",
    "FarmReport",
    "JobMatrix",
    "JobSpec",
    "KEY_SCHEMA",
    "MergeStats",
    "PIPELINE_VARIANTS",
    "ResultStore",
    "STORE_SCHEMA",
    "ShardLeftover",
    "ShardOutcome",
    "ShardPlan",
    "ShardSpec",
    "SimParams",
    "SimulationFarm",
    "StoreDiagnosis",
    "WALL_CLOCK_FIELDS",
    "diagnose_store",
    "execute_job",
    "load_shard",
    "run_shard",
]
