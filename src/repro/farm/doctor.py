"""Store diagnostics without running a sweep.

``eric sweep --compact`` can *drop* dead weight from a result store,
but an operator first wants to know what is in there: how many live
records, how many superseded duplicates, whether any lines are corrupt
or were written under a different :data:`~repro.farm.store.STORE_SCHEMA`,
and whether a distributed run left per-shard stores (and under which
:data:`~repro.farm.spec.KEY_SCHEMA` their specs were planned).  This
module answers all of that by *reading* — it never simulates, rewrites,
or deletes anything; ``eric doctor --store DIR`` is the CLI wrapper and
CI runs it after every sharded smoke sweep.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.farm.coordinator import SHARD_SPEC_FILENAME
from repro.farm.spec import KEY_SCHEMA
from repro.farm.store import STORE_SCHEMA, FarmRecord


@dataclass(frozen=True)
class ShardLeftover:
    """One per-shard directory found under the store's shard root."""

    path: str
    #: parseable current-schema records in the shard's JSONL (0 when the
    #: store file is missing — e.g. a spec written but never executed)
    records: int
    #: KEY_SCHEMA the shard spec was planned under; None when the
    #: directory carries no readable shard.json
    spec_key_schema: int | None
    #: jobs the spec carries; None without a readable spec
    spec_jobs: int | None

    @property
    def drifted(self) -> bool:
        """The spec was planned by a different code version — running
        it would address jobs under the wrong key schema."""
        return (self.spec_key_schema is not None
                and self.spec_key_schema != KEY_SCHEMA)


@dataclass(frozen=True)
class StoreDiagnosis:
    """Everything ``eric doctor`` reports about one store directory."""

    path: str
    exists: bool
    #: non-blank lines in the JSONL
    total_lines: int
    #: distinct keys that would be served (last record per key)
    live_records: int
    #: valid current-schema lines shadowed by a later line for the
    #: same key (what ``--compact`` would drop)
    superseded: int
    #: lines that are not valid JSON objects / not valid records
    corrupt: int
    #: valid records written under a different STORE_SCHEMA
    foreign_schema: int
    #: line count per declared schema version (valid records only)
    schema_counts: dict[int, int]
    shard_leftovers: tuple[ShardLeftover, ...]

    @property
    def drifted_shards(self) -> tuple[ShardLeftover, ...]:
        return tuple(s for s in self.shard_leftovers if s.drifted)

    @property
    def healthy(self) -> bool:
        """Nothing needs operator attention: no corrupt lines, no
        foreign-schema records, no drifted shard specs.  Superseded
        duplicates and clean shard leftovers are informational —
        normal residue of ``--force`` re-measures and sharded runs."""
        return (not self.corrupt and not self.foreign_schema
                and not self.drifted_shards)

    def describe(self) -> str:
        lines = [f"store: {self.path}"]
        if not self.exists:
            lines.append("  no results.jsonl — nothing measured yet")
        else:
            lines.append(
                f"  {self.total_lines} line(s): {self.live_records} "
                f"live record(s), {self.superseded} superseded, "
                f"{self.corrupt} corrupt, {self.foreign_schema} "
                f"foreign-schema")
            for schema in sorted(self.schema_counts):
                marker = ("" if schema == STORE_SCHEMA
                          else f" (current is {STORE_SCHEMA})")
                lines.append(f"  schema {schema}: "
                             f"{self.schema_counts[schema]} "
                             f"record(s){marker}")
        lines.append(f"  code: KEY_SCHEMA={KEY_SCHEMA} "
                     f"STORE_SCHEMA={STORE_SCHEMA}")
        if self.shard_leftovers:
            lines.append(f"  {len(self.shard_leftovers)} shard "
                         f"dir(s) left over:")
            for shard in self.shard_leftovers:
                spec = ("no shard.json" if shard.spec_key_schema is None
                        else f"{shard.spec_jobs} job(s), "
                             f"KEY_SCHEMA={shard.spec_key_schema}"
                             + (" [DRIFTED]" if shard.drifted else ""))
                lines.append(f"    {shard.path}: {shard.records} "
                             f"record(s), {spec}")
        if self.superseded:
            lines.append("  hint: `eric sweep --compact` drops "
                         "superseded lines")
        if self.corrupt or self.foreign_schema:
            lines.append("  hint: corrupt/foreign lines are skipped at "
                         "load; `eric sweep --compact` rewrites "
                         "without them")
        lines.append("  verdict: " + ("healthy" if self.healthy
                                      else "NEEDS ATTENTION"))
        return "\n".join(lines)


@dataclass(frozen=True)
class FingerprintAudit:
    """``eric doctor --fingerprint``: live records vs. the current
    tree's timing-model fingerprint."""

    path: str
    exists: bool
    #: the tree's current :func:`~repro.statics.fingerprint.model_fingerprint`
    current: str
    live_records: int
    matching: int
    #: live records whose recorded fingerprint differs from ``current``
    #: — their measurements came from a different timing model
    drifted: int
    #: live records without the column (pre-schema-3 migrations);
    #: reported, not fatal
    missing: int
    #: fingerprint -> live-record count for every drifted fingerprint
    drifted_fingerprints: dict[str, int]

    @property
    def healthy(self) -> bool:
        return not self.drifted

    def describe(self) -> str:
        lines = [f"fingerprint: current model is {self.current[:16]}..."]
        if not self.exists:
            lines.append("  no results.jsonl — nothing to audit")
        else:
            lines.append(
                f"  {self.live_records} live record(s): "
                f"{self.matching} matching, {self.drifted} drifted, "
                f"{self.missing} without a fingerprint")
            for fp in sorted(self.drifted_fingerprints):
                lines.append(f"  drifted {fp[:16]}...: "
                             f"{self.drifted_fingerprints[fp]} "
                             f"record(s)")
        if self.drifted:
            lines.append("  hint: drifted records were measured by a "
                         "different timing model; their keys no "
                         "longer match (KEY_SCHEMA embeds the "
                         "fingerprint) — re-run the sweep and "
                         "`eric sweep --compact`")
        lines.append("  verdict: " + ("healthy" if self.healthy
                                      else "NEEDS ATTENTION"))
        return "\n".join(lines)


def audit_fingerprints(root: str | Path) -> FingerprintAudit:
    """Compare every live record's recorded ``model_fingerprint``
    against the current tree's.  Read-only, like everything here."""
    from repro.statics.fingerprint import model_fingerprint
    current = model_fingerprint()
    root = Path(root)
    path = root / "results.jsonl"
    live: dict[str, str | None] = {}
    exists = path.is_file()
    if exists:
        for line in path.read_text(encoding="utf-8").splitlines():
            if not line.strip():
                continue
            record = FarmRecord.from_json(line)
            if record is not None:
                live[record.key] = record.model_fingerprint
    matching = missing = 0
    drifted: dict[str, int] = {}
    for fingerprint in live.values():
        if fingerprint is None:
            missing += 1
        elif fingerprint == current:
            matching += 1
        else:
            drifted[fingerprint] = drifted.get(fingerprint, 0) + 1
    return FingerprintAudit(
        path=str(path), exists=exists, current=current,
        live_records=len(live), matching=matching,
        drifted=sum(drifted.values()), missing=missing,
        drifted_fingerprints=drifted)


def _diagnose_lines(path: Path) -> tuple[int, int, int, int, int,
                                         dict[int, int]]:
    """Single pass over the JSONL: (total, live, superseded, corrupt,
    foreign, per-schema counts)."""
    total = corrupt = foreign = current = 0
    schema_counts: dict[int, int] = {}
    live: dict[str, None] = {}
    for line in path.read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        total += 1
        try:
            data = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError):
            corrupt += 1
            continue
        schema = data.get("schema") if isinstance(data, dict) else None
        if not isinstance(schema, int) or isinstance(schema, bool):
            corrupt += 1
            continue
        if schema != STORE_SCHEMA:
            # record from another code version: counted per schema but
            # never validated against today's field list
            schema_counts[schema] = schema_counts.get(schema, 0) + 1
            foreign += 1
            continue
        if FarmRecord.from_dict(data) is None:
            corrupt += 1
            continue
        schema_counts[schema] = schema_counts.get(schema, 0) + 1
        current += 1
        live[data["key"]] = None
    superseded = current - len(live)
    return total, len(live), superseded, corrupt, foreign, schema_counts


def _scan_shard_dir(shard_dir: Path) -> ShardLeftover:
    spec_schema = spec_jobs = None
    spec_path = shard_dir / SHARD_SPEC_FILENAME
    if spec_path.is_file():
        try:
            spec = json.loads(spec_path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            spec = None  # unreadable spec == no spec, still reported
        if isinstance(spec, dict):  # valid JSON that is not an object
            schema = spec.get("key_schema")  # counts as unreadable too
            if isinstance(schema, int) and not isinstance(schema, bool):
                spec_schema = schema
            jobs = spec.get("jobs")
            spec_jobs = len(jobs) if isinstance(jobs, list) else None
    records = 0
    store_file = shard_dir / "results.jsonl"
    if store_file.is_file():
        for line in store_file.read_text(encoding="utf-8").splitlines():
            if line.strip() and FarmRecord.from_json(line) is not None:
                records += 1
    return ShardLeftover(path=str(shard_dir), records=records,
                         spec_key_schema=spec_schema,
                         spec_jobs=spec_jobs)


def diagnose_store(root: str | Path,
                   shard_root: str | Path | None = None) -> StoreDiagnosis:
    """Inspect a result store directory without touching it.

    ``shard_root`` defaults to ``<root>/shards`` — the same convention
    :class:`~repro.farm.coordinator.FarmCoordinator` writes to.
    """
    root = Path(root)
    path = root / "results.jsonl"
    if path.is_file():
        (total, live, superseded, corrupt, foreign,
         schema_counts) = _diagnose_lines(path)
        exists = True
    else:
        total = live = superseded = corrupt = foreign = 0
        schema_counts = {}
        exists = False
    shards_dir = Path(shard_root) if shard_root is not None \
        else root / "shards"
    leftovers = []
    if shards_dir.is_dir():
        for shard_dir in sorted(shards_dir.iterdir()):
            if shard_dir.is_dir():
                leftovers.append(_scan_shard_dir(shard_dir))
    return StoreDiagnosis(
        path=str(path), exists=exists, total_lines=total,
        live_records=live, superseded=superseded, corrupt=corrupt,
        foreign_schema=foreign, schema_counts=schema_counts,
        shard_leftovers=tuple(leftovers))
