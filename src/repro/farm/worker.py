"""Worker-side shard execution for the distributed farm.

A worker machine receives one shard spec (JSON written by
:meth:`repro.farm.spec.ShardSpec.to_spec`), runs its jobs through the
ordinary :class:`~repro.farm.executor.SimulationFarm` against a local
:class:`~repro.farm.store.ResultStore`, and ships the store's
``results.jsonl`` back for the coordinator to
:meth:`~repro.farm.store.ResultStore.merge_from`.  ``eric worker
shard.json --store DIR`` is the command-line wrapper; the in-process
coordinator dispatches the same :func:`run_shard` via a process pool,
so local and remote shards execute byte-identically.

A worker's store is itself resumable: re-running a shard after a crash
serves the already-measured keys from the shard store and only
simulates the remainder.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import EricError
from repro.farm.executor import FarmReport, SimulationFarm
from repro.farm.spec import ShardSpec
from repro.farm.store import ResultStore
from repro.obs.trace import TraceContext, Tracer


def read_shard_trace(path: str | Path) -> dict | None:
    """The optional ``"trace"`` wire context a coordinator wrote into a
    shard spec file.  Returns None when absent or unreadable — a shard
    written before tracing (or hand-edited) still runs."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    trace = data.get("trace") if isinstance(data, dict) else None
    return trace if isinstance(trace, dict) else None


def load_shard(path: str | Path) -> ShardSpec:
    """Parse and validate a shard spec file.

    Validation recomputes every job key and checks it against the
    spec's declared range, so a worker running drifted code (different
    ``KEY_SCHEMA``, different config semantics) refuses the shard
    instead of silently measuring the wrong thing.
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise EricError(f"shard spec {path} is not valid JSON: "
                        f"{exc}") from None
    return ShardSpec.from_spec(data)


def run_shard(shard: ShardSpec, store_dir: str | Path, jobs: int = 1,
              force: bool = False, telemetry=None,
              progress=None, trace: dict | None = None) -> FarmReport:
    """Execute one shard against its own result store.

    The shard's jobs run exactly like any other matrix — store hits are
    served, the rest simulate (``jobs`` worker processes) — and every
    completed record lands in ``store_dir``'s JSONL, ready to be merged
    into the coordinator's main store.

    With a ``trace`` wire context (the coordinator's ``"trace"`` key in
    shard.json), the shard runs under a ``worker.shard`` span written
    to ``store_dir``'s own trace.jsonl — shipped/merged back alongside
    the results exactly like the records themselves.  The farm runs
    with ``metrics=False``: job counts belong to the coordinator's
    process-wide registry, not to each shard's.
    """
    parent = TraceContext.from_wire(trace) if trace else None
    tracer = Tracer(store_dir) if parent is not None else None
    span = (tracer.start("worker.shard", parent=parent,
                         attrs={"shard": shard.index,
                                "shards": shard.count,
                                "jobs": len(shard.jobs)})
            if tracer is not None else None)
    farm = SimulationFarm(store=ResultStore(store_dir), jobs=jobs,
                          telemetry=telemetry, progress=progress,
                          tracer=tracer, metrics=False)
    try:
        report = farm.run(shard.jobs, force=force,
                          trace_parent=span.context if span else None)
    except BaseException as exc:
        if span is not None:
            span.finish(ok=False, detail=f"{type(exc).__name__}: {exc}")
        raise
    if span is not None:
        span.finish(ok=not report.failures,
                    detail=f"{report.executed} executed, "
                           f"{len(report.failures)} failed")
    return report


def main(argv: list[str] | None = None) -> int:
    """``eric worker`` / ``python -m repro.farm.worker`` entry point."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="eric worker",
        description="run one distributed-farm shard against a local "
                    "result store")
    parser.add_argument("shard", help="shard spec JSON (written by "
                                      "eric sweep --shards / ShardPlan)")
    parser.add_argument("--store", required=True,
                        help="per-shard result-store directory; ship its "
                             "results.jsonl back for merging")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes on this machine "
                             "(default 1)")
    parser.add_argument("--force", action="store_true",
                        help="re-measure (and re-persist) stored keys")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-job progress lines")
    args = parser.parse_args(argv)

    from repro.service.telemetry import StagePrinter

    shard = load_shard(args.shard)
    telemetry = None if args.quiet else StagePrinter(stages="farm.job")
    report = run_shard(shard, args.store, jobs=args.jobs,
                       force=args.force, telemetry=telemetry,
                       trace=read_shard_trace(args.shard))
    print(f"shard {shard.index + 1}/{shard.count}: {report.summary()}")
    print(f"store: {ResultStore(args.store).path}")
    return 0 if not report.failures else 1


if __name__ == "__main__":
    import sys

    try:
        raise SystemExit(main())
    except EricError as exc:
        print(f"eric: error: {exc}", file=sys.stderr)
        raise SystemExit(1) from None
