"""FarmCoordinator: shard one matrix across workers, merge the stores.

The coordinator turns the farm from a process pool into the
coordinator/worker architecture the evaluation grid needs at scale:

1. serve whatever the **main store** already holds (exactly like a
   plain :class:`~repro.farm.executor.SimulationFarm` resume);
2. :meth:`~repro.farm.spec.ShardPlan.partition` the remaining
   deduplicated key space into contiguous ranges and write one
   self-contained ``shard.json`` per range under
   ``<store>/shards/shard-NN/``;
3. dispatch each shard to a worker process — each worker is the
   existing farm pointed at its own per-shard
   :class:`~repro.farm.store.ResultStore` (the very same
   :func:`repro.farm.worker.run_shard` that ``eric worker`` runs on a
   remote machine);
4. :meth:`~repro.farm.store.ResultStore.merge_from` every shard store
   into the main store, last-record-wins;
5. report one aggregate :class:`~repro.farm.executor.FarmReport`.

Because step 3 goes through the on-disk shard spec, a shard can equally
be executed elsewhere (``eric worker shard.json --store DIR``) and its
JSONL shipped back — the coordinator's merge step neither knows nor
cares where a shard store's bytes came from.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigError
from repro.farm.executor import (FarmJobResult, FarmReport, expand_specs,
                                 serve_store_hits,
                                 share_follower_outcomes)
from repro.farm.spec import JobMatrix, JobSpec, ShardPlan, ShardSpec
from repro.farm.store import MergeStats, ResultStore
from repro.obs.metrics import METRICS
from repro.obs.trace import (TRACE_FILENAME, TraceContext, Tracer,
                             merge_trace_files)
from repro.service.telemetry import TelemetryEvent, TelemetryHub

SHARD_SPEC_FILENAME = "shard.json"


@dataclass(frozen=True)
class ShardOutcome:
    """What one worker reports back (picklable, record-free: the
    records themselves travel through the shard store's JSONL)."""

    index: int
    store_dir: str
    executed: int
    #: keys the worker served from its own (warm) shard store
    hit_keys: tuple[str, ...]
    #: (job key, error string) per failed job
    failures: tuple[tuple[str, str], ...]
    wall_s: float


def _run_shard(spec_path: str, store_dir: str, jobs: int,
               force: bool) -> ShardOutcome:
    """Process-pool entry point: execute one shard from its spec file.

    Top-level so it pickles; loads the shard from disk rather than
    taking specs in-memory so the in-process path exercises exactly
    what a remote ``eric worker`` would.
    """
    from repro.farm.worker import load_shard, read_shard_trace, run_shard

    shard = load_shard(spec_path)
    report = run_shard(shard, store_dir, jobs=jobs, force=force,
                       trace=read_shard_trace(spec_path))
    return ShardOutcome(
        index=shard.index,
        store_dir=store_dir,
        executed=report.executed,
        hit_keys=tuple(r.spec.key() for r in report.results
                       if r.from_store),
        failures=tuple((r.spec.key(), r.error)
                       for r in report.results if not r.ok),
        wall_s=report.wall_s,
    )


class FarmCoordinator:
    """Distributes a :class:`JobMatrix` over sharded workers.

    Drop-in for :class:`SimulationFarm` wherever only ``run(matrix,
    force=...)`` and the returned report are used (the figure modules,
    ``eric eval``).

    Args:
        store: the **main** result store shards merge into (required —
            merging is the coordinator's whole job).
        shards: maximum shard count; a matrix with fewer unique keys
            gets fewer (never empty) shards.
        jobs_per_shard: worker processes *inside* each shard's farm.
            The default 1 treats shards as the unit of parallelism.
        shard_root: where per-shard stores and specs live (default:
            ``<store>/shards``).
        telemetry: optional initial telemetry sink (``farm.shard`` and
            ``farm.sweep`` events; per-job events happen in worker
            processes and do not cross the process boundary).
        progress: optional ``callback(done, total, result)``, fired per
            job for main-store hits and per merged job once a shard
            completes.
        tracer: optional :class:`~repro.obs.trace.Tracer`; a run
            becomes a ``farm.sweep`` span whose context rides into
            every shard.json, and each worker's shard-store trace file
            is merged back next to the records (so the assembled
            waterfall spans the process boundary).
    """

    def __init__(self, store: ResultStore, shards: int = 2,
                 jobs_per_shard: int = 1,
                 shard_root: str | Path | None = None,
                 telemetry=None, progress=None,
                 tracer: Tracer | None = None) -> None:
        if store is None:
            raise ConfigError(
                "FarmCoordinator needs a main store to merge shard "
                "results into; use SimulationFarm for store-less runs")
        if shards < 1:
            raise ConfigError("shards must be at least 1")
        if jobs_per_shard < 1:
            raise ConfigError("jobs_per_shard must be at least 1")
        self.store = store
        self.shards = shards
        self.jobs_per_shard = jobs_per_shard
        self.shard_root = (Path(shard_root) if shard_root is not None
                           else store.root / "shards")
        self.progress = progress
        self.tracer = tracer
        self._telemetry = TelemetryHub()
        if telemetry is not None:
            self._telemetry.add(telemetry)
        #: per-shard merge outcomes of the last run (CLI reporting)
        self.last_merge: tuple[MergeStats, ...] = ()

    def on_event(self, sink) -> None:
        """Register a telemetry sink (see repro.service.telemetry)."""
        self._telemetry.add(sink)

    # ------------------------------------------------------------------
    def plan(self, matrix: JobMatrix | tuple[JobSpec, ...] | list[JobSpec],
             force: bool = False) -> ShardPlan:
        """The shard plan ``run`` would execute: the matrix minus what
        the main store already holds, cut into contiguous key ranges.
        With ``force`` the whole matrix is re-planned."""
        specs = expand_specs(matrix)
        pending = [spec for spec in specs
                   if force or spec.key() not in self.store]
        if not pending:
            return ShardPlan(shards=())
        return ShardPlan.partition(pending, self.shards)

    def write_shard_specs(self, plan: ShardPlan,
                          trace: dict | None = None) -> list[Path]:
        """Materialize one ``shard.json`` (plus store dir) per shard
        under ``shard_root`` — the files ``eric worker`` consumes.

        ``trace`` (a :meth:`TraceContext.to_wire` dict) is written
        under the spec's ``"trace"`` key so a worker — local pool or
        remote machine — parents its spans under this run.
        ``ShardSpec.from_spec`` ignores unknown keys, so traced specs
        stay readable by pre-tracing workers and vice versa."""
        paths = []
        for shard in plan.shards:
            shard_dir = self._shard_dir(shard)
            shard_dir.mkdir(parents=True, exist_ok=True)
            path = shard_dir / SHARD_SPEC_FILENAME
            spec = shard.to_spec()
            if trace is not None:
                spec["trace"] = trace
            path.write_text(
                json.dumps(spec, indent=2, sort_keys=True)
                + "\n", encoding="utf-8")
            paths.append(path)
        return paths

    def _shard_dir(self, shard: ShardSpec) -> Path:
        return self.shard_root / f"shard-{shard.index:02d}"

    # ------------------------------------------------------------------
    def run(self, matrix: JobMatrix | tuple[JobSpec, ...] | list[JobSpec],
            force: bool = False,
            trace_parent: TraceContext | None = None) -> FarmReport:
        """Measure ``matrix``: serve main-store hits, shard the rest
        over worker processes, merge, and aggregate one report."""
        specs = expand_specs(matrix)
        start = time.perf_counter()
        keys = [spec.key() for spec in specs]
        results: list[FarmJobResult | None] = [None] * len(specs)
        total = len(specs)
        span = (self.tracer.start("farm.sweep", parent=trace_parent,
                                  attrs={"jobs": total,
                                         "shards": self.shards})
                if self.tracer is not None else None)

        # -- phase 1: serve main-store hits; dedupe within the matrix --
        pending, followers, done = serve_store_hits(
            specs, keys, self.store, force, results, self._announce)

        # -- phase 2: shard the pending key space and dispatch ----------
        plan = ShardPlan.partition([specs[i] for i in pending],
                                   self.shards) if pending \
            else ShardPlan(shards=())
        # untraced runs keep the two-arg _dispatch call so stand-in
        # dispatchers (tests) need not grow the trace parameter
        trace = span.context.to_wire() if span is not None else None
        if not plan.shards:
            outcomes = []
        elif trace is not None:
            outcomes = self._dispatch(plan, force, trace)
        else:
            outcomes = self._dispatch(plan, force)

        # -- phase 3: merge shard stores into the main store, each
        # restricted to its *planned* keys: a reused shard directory
        # may hold leftover records from earlier runs, and those must
        # not resurrect over fresher main-store data ---------------------
        planned = {shard.index: frozenset(job.key() for job in shard.jobs)
                   for shard in plan.shards}
        self.last_merge = tuple(
            self.store.merge_from(outcome.store_dir,
                                  keys=planned[outcome.index])
            for outcome in sorted(outcomes, key=lambda o: o.index))
        if span is not None and self.tracer.path is not None and outcomes:
            # shard workers traced into their own store dirs; pull
            # those spans back so the main waterfall crosses the
            # process boundary (concatenation is the merge)
            merge_trace_files(
                self.tracer.path,
                [Path(outcome.store_dir) / TRACE_FILENAME
                 for outcome in outcomes])

        # -- phase 4: aggregate — every pending key is now either in the
        # merged store or carries a worker-reported error ---------------
        errors = {key: error for outcome in outcomes
                  for key, error in outcome.failures}
        hit_keys = {key for outcome in outcomes
                    for key in outcome.hit_keys}
        for i in pending:
            key = keys[i]
            record = self.store.get(key)
            error = errors.get(key)
            if record is not None and error is not None and not force:
                # a dying worker blames its whole shard, but this job
                # had already completed and its record merged; under
                # resume semantics a stored record is the answer (with
                # force the record may predate the re-measure, so the
                # failure stands)
                error = None
            if record is None and error is None:
                error = (f"shard worker returned no record and no "
                         f"error for key {key[:12]}")
            results[i] = FarmJobResult(
                spec=specs[i], record=record if error is None else None,
                error=error, from_store=key in hit_keys,
                wall_s=record.wall_s if record is not None
                and error is None else 0.0)
            done += 1
            self._announce(done, total, results[i])

        # -- phase 5: duplicates share their leader's outcome -----------
        share_follower_outcomes(specs, results, followers, done,
                                self._announce)

        wall_s = time.perf_counter() - start
        report = FarmReport(
            results=tuple(results), wall_s=wall_s,
            jobs=self.jobs_per_shard, store_path=str(self.store.path),
            shards=self.shards)
        detail = (f"{report.hits} hits / {report.executed} executed / "
                  f"{len(report.failures)} failed across "
                  f"{plan.count} shard(s)")
        if span is not None:
            span.finish(ok=not report.failures, detail=detail)
        self._telemetry.emit(TelemetryEvent(
            stage="farm.sweep", seconds=wall_s, ok=not report.failures,
            detail=detail,
            trace_id=span.trace_id if span else None,
            span_id=span.span_id if span else None))
        return report

    def run_batch(self, specs, force: bool = False,
                  trace_parent: TraceContext | None = None):
        """Batch-submission entry point, drop-in for
        :meth:`SimulationFarm.run_batch`: measure a bag of specs and
        return ``(report, outcomes_by_key)`` — the async scheduler
        neither knows nor cares whether its backend shards."""
        report = self.run(tuple(specs), force=force,
                          trace_parent=trace_parent)
        return report, report.by_key()

    def _dispatch(self, plan: ShardPlan, force: bool,
                  trace: dict | None = None) -> list[ShardOutcome]:
        """Run every shard of ``plan`` in its own worker process."""
        spec_paths = self.write_shard_specs(plan, trace=trace)
        tasks = [(shard, str(path), str(self._shard_dir(shard)))
                 for shard, path in zip(plan.shards, spec_paths)]
        outcomes: list[ShardOutcome] = []
        if len(tasks) == 1:
            # one shard degenerates to an inline worker — no pool tax
            shard, spec_path, store_dir = tasks[0]
            outcomes.append(self._collect(
                shard, _run_shard(spec_path, store_dir,
                                  self.jobs_per_shard, force)))
            return outcomes
        with ProcessPoolExecutor(max_workers=len(tasks)) as pool:
            submitted = {
                pool.submit(_run_shard, spec_path, store_dir,
                            self.jobs_per_shard, force): shard
                for shard, spec_path, store_dir in tasks}
            outstanding = set(submitted)
            while outstanding:
                finished, outstanding = wait(outstanding,
                                             return_when=FIRST_COMPLETED)
                for future in finished:
                    shard = submitted[future]
                    try:
                        outcome = future.result()
                    except Exception as exc:  # worker process died
                        outcome = ShardOutcome(
                            index=shard.index,
                            store_dir=str(self._shard_dir(shard)),
                            executed=0, hit_keys=(),
                            failures=tuple(
                                (job.key(),
                                 f"shard {shard.index} worker died: "
                                 f"{type(exc).__name__}: {exc}")
                                for job in shard.jobs),
                            wall_s=0.0)
                    outcomes.append(self._collect(shard, outcome))
        return outcomes

    def _collect(self, shard: ShardSpec,
                 outcome: ShardOutcome) -> ShardOutcome:
        self._telemetry.emit(TelemetryEvent(
            stage="farm.shard", seconds=outcome.wall_s,
            ok=not outcome.failures,
            detail=(f"shard {shard.index + 1}/{shard.count}: "
                    f"{len(shard.jobs)} job(s), {outcome.executed} "
                    f"executed, {len(outcome.hit_keys)} shard-store "
                    f"hit(s), {len(outcome.failures)} failed")))
        return outcome

    def _announce(self, done: int, total: int,
                  result: FarmJobResult) -> None:
        # the coordinator is the authoritative metrics emitter: shard
        # farms run with metrics=False, so these counts never double
        if result.from_store:
            METRICS.inc("store.hits")
        elif result.shared:
            METRICS.inc("farm.shared")
        elif not result.ok:
            METRICS.inc("farm.failed")
        else:
            METRICS.inc("farm.executed")
            METRICS.observe("farm.job.wall_s", result.wall_s)
        self._telemetry.emit(TelemetryEvent(
            stage="farm.job", seconds=result.wall_s,
            program=result.spec.display_name, ok=result.ok,
            detail=("store hit" if result.from_store
                    else result.error or "merged from shard")))
        if self.progress is not None:
            try:
                self.progress(done, total, result)
            except Exception:
                pass  # progress hooks must never break a sweep
