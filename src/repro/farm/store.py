"""The persistent, resumable result store.

Farm measurements are append-only JSONL records under a store directory
(``benchmarks/results/farm/`` by convention), one line per completed
job, keyed by the job's content address.  Re-running a matrix loads the
file, serves every already-measured key from disk, and only simulates
the rest — resumability is just "the key is already in the file".

Robustness rules:

* a truncated/corrupt line (killed process mid-append) is skipped, not
  fatal;
* records written by a different :data:`STORE_SCHEMA` are ignored (they
  no longer describe what the farm measures);
* duplicate keys resolve to the *last* record (a ``--force`` re-measure
  simply appends and wins).
"""

from __future__ import annotations

import json
import threading
from dataclasses import asdict, dataclass, fields
from pathlib import Path

#: Record layout version; see module docstring for the mismatch rule.
STORE_SCHEMA = 1

DEFAULT_STORE_DIR = Path("benchmarks") / "results" / "farm"
_FILENAME = "results.jsonl"


@dataclass(frozen=True)
class FarmRecord:
    """One persisted measurement — everything a figure needs, re-derivable
    from nothing but this record.

    Wall-clock fields (``baseline_s`` … ``wall_s``) are measurements of
    the machine that executed the job; cycle counts, sizes, and analysis
    metrics are deterministic functions of the job key.
    """

    key: str
    name: str
    workload: str | None
    source_digest: str
    config: dict
    params: dict
    simulate: bool
    analyze: bool
    repeats: int

    # -- packaging (always present) --------------------------------------
    plain_size: int
    package_size: int
    signed_bytes: int
    baseline_s: float
    package_total_s: float
    compile_s: float
    signature_s: float
    encryption_s: float
    packaging_s: float

    # -- simulation (None when simulate=False) ---------------------------
    plain_cycles: int | None = None
    hde_cycles: int | None = None
    eric_cycles: int | None = None
    stdout_ok: bool | None = None
    #: ``RunResult.to_record()`` payloads (exit code, console, counters)
    plain_run: dict | None = None
    eric_run: dict | None = None
    hde: dict | None = None

    # -- static analysis (None when analyze=False) -----------------------
    analysis: dict | None = None

    wall_s: float = 0.0
    schema: int = STORE_SCHEMA

    @property
    def overhead_pct(self) -> float:
        """Fig. 7's per-row headline; requires a simulated record."""
        if not self.plain_cycles:
            raise ValueError(f"record {self.key[:12]} was not simulated")
        return 100.0 * (self.eric_cycles / self.plain_cycles - 1.0)

    @property
    def size_increase_pct(self) -> float:
        if not self.plain_size:
            return 0.0
        return 100.0 * (self.package_size - self.plain_size) / self.plain_size

    @property
    def stdout(self) -> str | None:
        """Simulated console text, when the record was simulated."""
        if self.eric_run is None:
            return None
        return self.eric_run.get("console")

    def output_ok(self, expected: str | None = None) -> bool:
        """Did the simulated run produce the right output?

        Uses the worker-recorded oracle verdict when the measuring job
        had one.  Job keys deliberately ignore how a source was
        provided, so a registry-workload lookup may be served a record
        measured from the same source passed inline — such records
        carry no verdict (``stdout_ok is None``) and the caller's
        ``expected`` text is compared against the stored console
        instead.
        """
        if self.stdout_ok is not None:
            return self.stdout_ok
        if expected is None:
            return True
        return self.stdout == expected

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "FarmRecord | None":
        """Parse one store line; None for corrupt or schema-mismatched
        records (the caller skips them)."""
        try:
            data = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(data, dict) or data.get("schema") != STORE_SCHEMA:
            return None
        names = {f.name for f in fields(cls)}
        try:
            return cls(**{k: v for k, v in data.items() if k in names})
        except TypeError:
            return None


class ResultStore:
    """Keyed JSONL persistence with last-record-wins load semantics.

    Thread-safe: the farm's completion path may put records from the
    result-collection loop while CLI progress hooks read counts.
    """

    def __init__(self, root: str | Path = DEFAULT_STORE_DIR) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.path = self.root / _FILENAME
        self._lock = threading.Lock()
        self._records: dict[str, FarmRecord] = {}
        self.skipped_lines = 0
        if self.path.exists():
            for line in self.path.read_text(encoding="utf-8").splitlines():
                if not line.strip():
                    continue
                record = FarmRecord.from_json(line)
                if record is None:
                    self.skipped_lines += 1
                else:
                    self._records[record.key] = record

    def get(self, key: str) -> FarmRecord | None:
        with self._lock:
            return self._records.get(key)

    def put(self, record: FarmRecord) -> None:
        """Remember and append; the new record wins future lookups."""
        with self._lock:
            self._records[record.key] = record
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(record.to_json() + "\n")

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._records

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def keys(self) -> set[str]:
        with self._lock:
            return set(self._records)

    def compact(self) -> int:
        """Rewrite the file with one line per live key (sorted), dropping
        superseded duplicates and corrupt lines; returns the line count."""
        with self._lock:
            records = [self._records[k] for k in sorted(self._records)]
            text = "".join(r.to_json() + "\n" for r in records)
            self.path.write_text(text, encoding="utf-8")
            self.skipped_lines = 0
            return len(records)
