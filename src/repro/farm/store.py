"""The persistent, resumable result store.

Farm measurements are append-only JSONL records under a store directory
(``benchmarks/results/farm/`` by convention), one line per completed
job, keyed by the job's content address.  Re-running a matrix loads the
file, serves every already-measured key from disk, and only simulates
the rest — resumability is just "the key is already in the file".

Robustness rules:

* a truncated/corrupt line (killed process mid-append) is skipped, not
  fatal;
* records written by a different :data:`STORE_SCHEMA` are ignored (they
  no longer describe what the farm measures);
* duplicate keys resolve to the *last* record (a ``--force`` re-measure
  simply appends and wins).

The JSONL layout is also the distributed farm's merge format:
concatenating two stores *is* a last-record-wins merge, and
:meth:`ResultStore.merge_from` performs exactly that (treating the
source as the newer writer) when a shard store comes back from a
worker.  Store rewrites (``compact``/``merge_from``) go through a
temp-file-plus-:func:`os.replace` so a crash mid-rewrite leaves the old
file intact instead of a half-written one.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from dataclasses import asdict, dataclass, fields
from pathlib import Path

#: Record layout version; see module docstring for the mismatch rule.
#: 2: records grew hde_serial_cycles, key_failure, key_digest, and the
#:    analysis dict grew "plain" and "dynamic" sub-payloads.
#: 3: records grew model_fingerprint (the timing-model digest of the
#:    tree that measured them; see repro.statics.fingerprint).
STORE_SCHEMA = 3

DEFAULT_STORE_DIR = Path("benchmarks") / "results" / "farm"
_FILENAME = "results.jsonl"

#: Fields that measure the executing machine's wall clock — the only
#: fields on which two measurements of the same job key may legitimately
#: differ (everything else is a deterministic function of the key).
WALL_CLOCK_FIELDS = frozenset({
    "baseline_s", "package_total_s", "compile_s", "signature_s",
    "encryption_s", "packaging_s", "wall_s", "sim_wall_s",
})


@dataclass(frozen=True)
class FarmRecord:
    """One persisted measurement — everything a figure needs, re-derivable
    from nothing but this record.

    Wall-clock fields (``baseline_s`` … ``wall_s``) are measurements of
    the machine that executed the job; cycle counts, sizes, and analysis
    metrics are deterministic functions of the job key.
    """

    key: str
    name: str
    workload: str | None
    source_digest: str
    config: dict
    params: dict
    simulate: bool
    analyze: bool
    repeats: int

    # -- packaging (always present) --------------------------------------
    plain_size: int
    package_size: int
    signed_bytes: int
    baseline_s: float
    package_total_s: float
    compile_s: float
    signature_s: float
    encryption_s: float
    packaging_s: float

    # -- simulation (None when simulate=False) ---------------------------
    plain_cycles: int | None = None
    hde_cycles: int | None = None
    #: serial-accounting HDE total of the same decryption — equals
    #: ``hde_cycles`` for serial jobs, exceeds it for overlapped ones
    hde_serial_cycles: int | None = None
    eric_cycles: int | None = None
    stdout_ok: bool | None = None
    #: ``RunResult.to_record()`` payloads (exit code, console, counters)
    plain_run: dict | None = None
    eric_run: dict | None = None
    hde: dict | None = None

    # -- analysis (None when analyze=False); carries the static-attacker
    # metrics plus "plain" (same metrics on the unencrypted text) and
    # "dynamic" (attempt_execution outcomes on non-target devices) ------
    analysis: dict | None = None

    # -- PUF key stability (measured on every job) ------------------------
    #: fraction of repeated PKG readouts at the job's environment that
    #: disagree with the majority readout (0.0 = a rock-stable key)
    key_failure: float | None = None
    #: SHA-256 of the enrollment (PUF-based) key — uniqueness studies
    #: compare digests across device seeds without storing keys raw
    key_digest: str | None = None

    #: timing-model fingerprint of the tree that measured this record
    #: (:func:`repro.statics.fingerprint.model_fingerprint`).  ``eric
    #: doctor --fingerprint`` compares it against the current tree's
    #: digest; None marks a hand-migrated record that predates the
    #: column (reported, not fatal).
    model_fingerprint: str | None = None

    #: host wall seconds the interpreter spent inside the SoC run loop
    #: (plain + ERIC runs); a wall-clock field like ``wall_s``, and the
    #: denominator of :attr:`sim_cycles_per_sec`.  None for records
    #: that predate profiling or carry ``simulate=False``.
    sim_wall_s: float | None = None

    wall_s: float = 0.0
    schema: int = STORE_SCHEMA

    @property
    def overhead_pct(self) -> float:
        """Fig. 7's per-row headline; requires a simulated record."""
        # plain_cycles is None for simulate=False jobs; a stored 0 would
        # be a measured (if degenerate) value and gets its own message
        if self.plain_cycles is None or self.eric_cycles is None:
            raise ValueError(f"record {self.key[:12]} was not simulated")
        if self.plain_cycles == 0:
            raise ValueError(
                f"record {self.key[:12]} measured zero baseline cycles; "
                f"overhead is undefined")
        return 100.0 * (self.eric_cycles / self.plain_cycles - 1.0)

    @property
    def size_increase_pct(self) -> float:
        # plain_size is always measured (never None); zero means an
        # empty program image, for which a ratio is meaningless
        if self.plain_size == 0:
            return 0.0
        return 100.0 * (self.package_size - self.plain_size) / self.plain_size

    # -- interpreter profiling (derived; all None-safe) -------------------

    @property
    def sim_cycles(self) -> int | None:
        """Simulated cycles this job cost the interpreter (baseline
        plus ERIC run); None for simulate=False records."""
        if self.plain_cycles is None or self.eric_cycles is None:
            return None
        return self.plain_cycles + self.eric_cycles

    @property
    def instructions_retired(self) -> int | None:
        """Instructions the interpreter retired across both runs."""
        total = 0
        for run in (self.plain_run, self.eric_run):
            if not isinstance(run, dict):
                return None
            counters = run.get("counters")
            if not isinstance(counters, dict):
                return None
            total += counters.get("instret", 0)
        return total

    @property
    def sim_cycles_per_sec(self) -> float | None:
        """Interpreter throughput for this job — the baseline number
        the ROADMAP's fast-interpreter item must beat.  Wall-clock
        derived, hence volatile across machines."""
        cycles = self.sim_cycles
        if cycles is None or not self.sim_wall_s:
            return None
        return cycles / self.sim_wall_s

    def cache_hit_rates(self) -> dict | None:
        """ERIC-run L1 hit rates, ``{"icache": ..., "dcache": ...}``;
        None when the record was not simulated (or predates them)."""
        if not isinstance(self.eric_run, dict):
            return None
        counters = self.eric_run.get("counters")
        if not isinstance(counters, dict):
            return None
        rates = {}
        for label in ("icache", "dcache"):
            hits = counters.get(f"{label}_hits", 0)
            misses = counters.get(f"{label}_misses", 0)
            total = hits + misses
            rates[label] = hits / total if total else 0.0
        return rates

    @property
    def stdout(self) -> str | None:
        """Simulated console text, when the record was simulated."""
        if self.eric_run is None:
            return None
        return self.eric_run.get("console")

    def output_ok(self, expected: str | None = None) -> bool:
        """Did the simulated run produce the right output?

        Uses the worker-recorded oracle verdict when the measuring job
        had one.  Job keys deliberately ignore how a source was
        provided, so a registry-workload lookup may be served a record
        measured from the same source passed inline — such records
        carry no verdict (``stdout_ok is None``) and the caller's
        ``expected`` text is compared against the stored console
        instead.
        """
        if self.stdout_ok is not None:
            return self.stdout_ok
        if expected is None:
            return True
        return self.stdout == expected

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True,
                          separators=(",", ":"))

    def stable_dict(self) -> dict:
        """The record minus :data:`WALL_CLOCK_FIELDS`: two measurements
        of the same key — whichever machine or shard ran them — compare
        equal here field for field."""
        data = asdict(self)
        for name in WALL_CLOCK_FIELDS:
            data.pop(name, None)
        return data

    @classmethod
    def from_json(cls, line: str) -> "FarmRecord | None":
        """Parse one store line; None for corrupt or schema-mismatched
        records (the caller skips them)."""
        try:
            data = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None
        return cls.from_dict(data)

    @classmethod
    def from_dict(cls, data) -> "FarmRecord | None":
        """Revive an already-parsed store line; None when it is not a
        current-schema record (callers that parse the JSON themselves —
        the doctor's one-pass scan — skip the second ``json.loads``)."""
        if not isinstance(data, dict) or data.get("schema") != STORE_SCHEMA:
            return None
        names = {f.name for f in fields(cls)}
        try:
            return cls(**{k: v for k, v in data.items() if k in names})
        except TypeError:
            return None


@dataclass(frozen=True)
class MergeStats:
    """Outcome of one :meth:`ResultStore.merge_from` call."""

    #: records adopted under keys this store did not hold
    added: int
    #: records that overwrote an existing key (last wins: the source is
    #: the newer writer, even when the payloads happen to be identical)
    replaced: int
    #: corrupt or schema-mismatched source lines (counted, never fatal —
    #: a torn final line from a killed worker merges as "one line less")
    skipped: int
    #: valid source records left out by the caller's ``keys`` filter
    ignored: int = 0

    @property
    def merged(self) -> int:
        return self.added + self.replaced

    def describe(self) -> str:
        text = (f"{self.merged} record(s) merged "
                f"({self.added} new, {self.replaced} replaced)")
        if self.skipped:
            text += f", {self.skipped} line(s) skipped"
        if self.ignored:
            text += f", {self.ignored} out-of-plan record(s) ignored"
        return text


class ResultStore:
    """Keyed JSONL persistence with last-record-wins load semantics.

    Thread-safe: the farm's completion path may put records from the
    result-collection loop while CLI progress hooks read counts.
    """

    def __init__(self, root: str | Path = DEFAULT_STORE_DIR) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.path = self.root / _FILENAME
        self._lock = threading.Lock()
        self._records: dict[str, FarmRecord]
        self._records, self.skipped_lines = self._read_file()

    def _read_file(self) -> tuple[dict[str, FarmRecord], int]:
        """Parse the on-disk file: last record per key wins, corrupt or
        schema-mismatched lines are counted, not fatal."""
        records: dict[str, FarmRecord] = {}
        skipped = 0
        if self.path.exists():
            for line in self.path.read_text(encoding="utf-8").splitlines():
                if not line.strip():
                    continue
                record = FarmRecord.from_json(line)
                if record is None:
                    skipped += 1
                else:
                    records[record.key] = record
        return records, skipped

    def skipped_warning(self) -> str | None:
        """One-line operator warning when the loaded file carried
        corrupt or schema-mismatched lines; None when it loaded clean.
        Shared by every CLI entry point so the wording stays uniform."""
        if not self.skipped_lines:
            return None
        return (f"{self.path} has {self.skipped_lines} corrupt or "
                f"schema-mismatched line(s); run `eric sweep --compact` "
                f"to drop them")

    def get(self, key: str) -> FarmRecord | None:
        with self._lock:
            return self._records.get(key)

    def put(self, record: FarmRecord) -> None:
        """Remember and append; the new record wins future lookups."""
        with self._lock:
            self._records[record.key] = record
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(record.to_json() + "\n")

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._records

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def keys(self) -> set[str]:
        with self._lock:
            return set(self._records)

    def compact(self) -> int:
        """Rewrite the file with one line per live key (sorted), dropping
        superseded duplicates and corrupt lines; returns the line count.

        The file is re-read (last record per key wins) before rewriting:
        records appended by another process up to that re-read are
        merged in, not discarded.  Every ``put`` writes through to disk,
        so the on-disk record for a key this store also holds is at
        least as new as the in-memory one.  (The lock is in-process
        only: an append that lands in the short window between the
        re-read and the rewrite can still be lost — compact stores
        while other writers are quiescent.)
        """
        with self._lock:
            merged, _ = self._read_file()
            for key, record in self._records.items():
                merged.setdefault(key, record)
            self._records = merged
            self._rewrite(merged)
            return len(merged)

    def merge_from(self, path: str | Path,
                   keys: "set[str] | frozenset[str] | None" = None
                   ) -> MergeStats:
        """Last-record-wins merge of another store's file into this one.

        ``path`` is a store directory (its ``results.jsonl`` is read) or
        a JSONL file directly — e.g. a per-shard store a worker machine
        shipped back.  The source is treated as the *newer* writer:
        where both stores hold a key, the source's record wins, exactly
        as if its lines had been appended after this store's.  Corrupt
        or schema-mismatched source lines (including the torn final
        line of a killed worker) are counted in the returned
        :class:`MergeStats`, never fatal.  The merged file is rewritten
        atomically (and therefore also compacted).

        ``keys``, when given, restricts the merge to those job keys.
        The coordinator passes each shard's *planned* key set so a
        reused shard directory cannot resurrect leftover records from
        an earlier run — stale lines outside the plan would otherwise
        win over fresher (e.g. ``--force``-re-measured) main-store
        records.  Records filtered out are counted as ``ignored``.
        """
        source = Path(path)
        if source.is_dir():
            source = source / _FILENAME
        incoming: dict[str, FarmRecord] = {}
        skipped = 0
        ignored = 0
        if source.exists():
            for line in source.read_text(encoding="utf-8").splitlines():
                if not line.strip():
                    continue
                record = FarmRecord.from_json(line)
                if record is None:
                    skipped += 1
                elif keys is not None and record.key not in keys:
                    ignored += 1
                else:
                    incoming[record.key] = record
        with self._lock:
            merged, _ = self._read_file()
            for key, record in self._records.items():
                merged.setdefault(key, record)
            added = sum(1 for key in incoming if key not in merged)
            replaced = len(incoming) - added
            merged.update(incoming)
            self._records = merged
            self._rewrite(merged)
        return MergeStats(added=added, replaced=replaced, skipped=skipped,
                          ignored=ignored)

    def _rewrite(self, records: dict[str, FarmRecord]) -> None:
        """Atomically replace the file with one sorted line per key.

        Written to a sibling temp file first and :func:`os.replace`\\ d
        over the store, so a crash mid-write leaves the previous file
        intact — never a half-written one.  Caller holds the lock.
        """
        text = "".join(records[key].to_json() + "\n"
                       for key in sorted(records))
        handle, tmp_name = tempfile.mkstemp(
            dir=self.root, prefix=_FILENAME + ".", suffix=".tmp")
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as tmp:
                tmp.write(text)
                tmp.flush()
                os.fsync(tmp.fileno())
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.skipped_lines = 0
