"""SimulationFarm: fan a job matrix out over worker processes.

The MiniC interpreter and the SoC timing loop are pure-Python and
CPU-bound, so the farm uses a :class:`~concurrent.futures.ProcessPoolExecutor`
(threads would serialize on the GIL).  ``jobs=1`` runs inline in the
calling process — the baseline the parallel benchmark compares against,
and the mode unit tests use.

Per-job failure isolation: a job that raises records an error outcome
and the rest of the matrix proceeds; failed jobs are never persisted,
so the next run retries them.  Every completion is emitted to the
:mod:`repro.service.telemetry` hub (stage ``farm.job``) and to an
optional ``progress(done, total, result)`` callback.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import asdict, dataclass
from pathlib import Path

import hashlib

from repro.core.compiler_driver import EricCompiler, source_digest
from repro.core.device import Device
from repro.errors import ConfigError, EricError
from repro.farm.spec import JobMatrix, JobSpec, SimParams
from repro.farm.store import FarmRecord, ResultStore
from repro.obs.metrics import METRICS
from repro.obs.trace import TraceContext, Tracer
from repro.statics.fingerprint import model_fingerprint
from repro.puf.arbiter import PufArray
from repro.puf.key_generator import PufKeyGenerator
from repro.puf.metrics import key_failure_probability
from repro.service.telemetry import TelemetryEvent, TelemetryHub

#: Repeated PKG readouts per job for the record's ``key_failure`` field
#: (the PUF-reliability ablations' protocol).
KEY_STABILITY_READS = 40

#: Non-target device seeds the dynamic-analysis attack runs on when a
#: job is measured with ``analyze=True``.  A seed that collides with
#: the job's own device would be the target itself (it decrypts and
#: runs the package), so the worker skips it rather than record a
#: bogus "leak".
DYNAMIC_ATTACKER_SEEDS = (1, 2, 3)


def _measure_key_failure(params: SimParams) -> float:
    """Key-reconstruction failure rate at the job's operating point.

    Measured on a freshly fabricated array so the noise-draw sequence
    is a deterministic function of the params alone (enrollment
    screening is noiseless and consumes no draws).
    """
    array = PufArray(device_seed=params.device_seed,
                     noise_sigma=params.puf_noise_sigma)
    pkg = PufKeyGenerator(array, votes=params.puf_votes,
                          margin_sigmas=params.puf_margin_sigmas)
    readouts = [pkg.generate(params.environment).key
                for _ in range(KEY_STABILITY_READS)]
    return key_failure_probability(readouts)


def execute_job(spec: JobSpec) -> FarmRecord:
    """Measure one job, start to finish, in this process.

    This is the farm's worker entry point (top-level so it pickles);
    it is also a convenient one-job API for tests and notebooks.
    """
    spec.validate()
    start = time.perf_counter()
    source, expected_stdout = spec.resolve_source()
    params = spec.params
    policy = params.policy
    overlapped = params.overlapped_hde
    if policy is not None and policy.overlap_hde is not None:
        overlapped = policy.overlap_hde
    device = Device(device_seed=params.device_seed,
                    pipeline=params.pipeline_model(),
                    overlapped_hde=overlapped,
                    environment=params.environment,
                    noise_sigma=params.puf_noise_sigma,
                    votes=params.puf_votes,
                    margin_sigmas=params.puf_margin_sigmas)
    compiler = EricCompiler(spec.config, policy=policy)
    target_key = device.enrollment_key()
    key_failure = _measure_key_failure(params)

    baseline = None
    for _ in range(spec.repeats):
        outcome = compiler.compile_baseline(source, spec.display_name)
        if baseline is None or outcome[1] < baseline[1]:
            baseline = outcome
    baseline_result, baseline_s = baseline
    best = None
    for _ in range(spec.repeats):
        stage_start = time.perf_counter()
        result = compiler.compile_and_package(source, target_key,
                                              name=spec.display_name)
        elapsed = time.perf_counter() - stage_start
        if best is None or elapsed < best[0]:
            best = (elapsed, result)
    package_total_s, result = best
    signed_bytes = len(result.program.text)
    if spec.config.sign_data:
        signed_bytes += len(result.program.data)

    record = {
        "key": spec.key(),
        "name": spec.display_name,
        "workload": spec.workload,
        "source_digest": source_digest(source),
        "model_fingerprint": model_fingerprint(),
        "config": _config_dict(spec.config),
        "params": asdict(params),
        "simulate": spec.simulate,
        "analyze": spec.analyze,
        "repeats": spec.repeats,
        "plain_size": result.plain_size,
        "package_size": result.package_size,
        "signed_bytes": signed_bytes,
        "baseline_s": baseline_s,
        "package_total_s": package_total_s,
        "compile_s": result.timings.compile_s,
        "signature_s": result.timings.signature_s,
        "encryption_s": result.timings.encryption_s,
        "packaging_s": result.timings.packaging_s,
        "key_failure": key_failure,
        "key_digest": hashlib.sha256(target_key).hexdigest(),
    }

    if spec.simulate:
        # The plain baseline is the *unpolicied* compile: for policy
        # jobs overhead_pct then prices the whole protection stack
        # (obfuscation + HDE), not just decryption.  Without a policy
        # the two programs are bit-identical, so this is the same
        # measurement it always was.
        plain = device.run_plain(baseline_result.program,
                                 max_instructions=params.max_instructions)
        eric = device.load_and_run(result.package_bytes,
                                   max_instructions=params.max_instructions)
        record["sim_wall_s"] = plain.wall_s + eric.run.wall_s
        record.update(
            plain_cycles=plain.counters.cycles,
            hde_cycles=eric.hde.total_cycles,
            hde_serial_cycles=eric.hde.serial_cycles,
            eric_cycles=eric.total_cycles,
            stdout_ok=(None if expected_stdout is None
                       else eric.run.stdout == expected_stdout),
            plain_run=plain.to_record(),
            eric_run=eric.run.to_record(),
            hde=asdict(eric.hde),
        )

    if spec.analyze:
        from repro.net.dynamic_attacker import attempt_execution
        from repro.net.static_attacker import analyze_blob
        report = analyze_blob(result.package.enc_text)
        plain_report = analyze_blob(baseline_result.program.text)
        dynamic = []
        for seed in DYNAMIC_ATTACKER_SEEDS:
            if seed == params.device_seed:
                continue  # that is the target, not an attacker
            attacker = Device(device_seed=seed)
            outcome = attempt_execution(attacker, result.package_bytes)
            dynamic.append(outcome.to_record(device_seed=seed))
        record["analysis"] = {
            "enc_slots": result.encrypted.enc_map.encrypted_count,
            "decode_fraction": report.valid_decode_fraction,
            "byte_entropy": report.byte_entropy_bits,
            "looks_like_code": report.looks_like_code,
            "plain": {
                "decode_fraction": plain_report.valid_decode_fraction,
                "byte_entropy": plain_report.byte_entropy_bits,
                "looks_like_code": plain_report.looks_like_code,
            },
            "dynamic": dynamic,
        }

    record["wall_s"] = time.perf_counter() - start
    return FarmRecord(**record)


def _config_dict(config) -> dict:
    from repro.core.interface import config_to_dict
    return config_to_dict(config)


#: Stack frames kept in a failed job's error string (innermost last).
ERROR_TRACE_FRAMES = 3


def _format_error(exc: BaseException) -> str:
    """One line: the exception plus its last few stack frames.

    Farm failures travel as strings — across process pools and, for the
    distributed farm, across machines — so the message itself must
    carry enough of the traceback to debug a remote shard.  Kept to one
    line so ``require_ok``'s joined summary stays readable.
    """
    head = traceback.format_exception_only(type(exc), exc)[-1].strip()
    # Simulator faults carry the partial counters at the point of death
    # (IllegalInstruction and ExecutionLimitExceeded both attach them):
    # a remote shard's one-liner can then say *where* and *how far in*.
    counters = getattr(exc, "counters", None)
    if counters is not None:
        pc = getattr(exc, "pc", None)
        where = f" pc={pc:#x}" if isinstance(pc, int) else ""
        head += (f" [partial: cycles={counters.cycles}"
                 f" instret={counters.instret}{where}]")
    frames = traceback.extract_tb(exc.__traceback__)[-ERROR_TRACE_FRAMES:]
    if not frames:
        return head
    trail = " <- ".join(f"{Path(f.filename).name}:{f.lineno} in {f.name}"
                        for f in reversed(frames))
    return f"{head} [at {trail}]"


def _job_span(spec: JobSpec, trace: dict | None):
    """Open a ``farm.job`` span from a cross-process trace payload
    (``{"trace_id", "span_id", "dir"}``): the worker subprocess appends
    to the *same* trace.jsonl as the dispatching farm — whole-line
    appends interleave safely across processes.  None when the payload
    is absent or unusable (tracing must never fail a job)."""
    if not isinstance(trace, dict) or not trace.get("dir"):
        return None
    parent = TraceContext.from_wire(trace)
    if parent is None:
        return None
    try:
        tracer = Tracer(trace["dir"])
        return tracer.start("farm.job", parent=parent,
                            attrs={"program": spec.display_name,
                                   "key": spec.key()[:12]})
    except OSError:
        return None


def _execute_safe(spec: JobSpec, trace: dict | None = None,
                  ) -> tuple[FarmRecord | None, str | None]:
    """Worker wrapper: never raises on job errors, returns
    (record, error).  KeyboardInterrupt/SystemExit still propagate — an
    interactive abort must stop the sweep, not count as a job failure."""
    span = _job_span(spec, trace)
    try:
        record = execute_job(spec)
    except Exception as exc:  # noqa: BLE001 — isolation boundary
        error = _format_error(exc)
        if span is not None:
            span.finish(ok=False, detail=error)
        return None, error
    if span is not None:
        if record.sim_cycles is not None:
            span.attrs.update(
                sim_cycles=record.sim_cycles,
                instructions_retired=record.instructions_retired)
        span.finish()
    return record, None


@dataclass(frozen=True)
class FarmJobResult:
    """One matrix slot's outcome, in submission order."""

    spec: JobSpec
    record: FarmRecord | None
    error: str | None
    from_store: bool
    wall_s: float
    #: True when this slot shares the outcome of an identical job
    #: earlier in the same matrix (deduplicated, not executed)
    shared: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass(frozen=True)
class FarmReport:
    """Aggregate of one farm run over a matrix."""

    results: tuple[FarmJobResult, ...]
    wall_s: float
    jobs: int
    store_path: str | None
    #: the coordinator's *configured* shard count when a FarmCoordinator
    #: produced the report (like ``jobs``, this reports configuration,
    #: not how many shards a possibly-warm run actually dispatched);
    #: 0 for a plain single-store SimulationFarm run
    shards: int = 0

    @property
    def records(self) -> tuple[FarmRecord, ...]:
        """Successful records, aligned with matrix submission order."""
        return tuple(r.record for r in self.results if r.record is not None)

    @property
    def failures(self) -> tuple[FarmJobResult, ...]:
        return tuple(r for r in self.results if not r.ok)

    @property
    def hits(self) -> int:
        """Jobs served straight from the result store."""
        return sum(1 for r in self.results if r.from_store)

    @property
    def executed(self) -> int:
        """Jobs this run actually measured (compiled and, for
        simulate=True specs, simulated)."""
        return sum(1 for r in self.results
                   if r.ok and not r.from_store and not r.shared)

    @property
    def hit_rate(self) -> float:
        return self.hits / len(self.results) if self.results else 0.0

    @property
    def total_eric_cycles(self) -> int:
        """Cycles across *simulated* records only.

        ``simulate=False`` records carry ``eric_cycles is None`` — never
        measured, which is not the same thing as a measured 0 — and are
        excluded from the sum rather than conflated with zero (the same
        distinction :meth:`FarmRecord.overhead_pct` draws).
        """
        return sum(r.eric_cycles for r in self.records
                   if r.eric_cycles is not None)

    @property
    def measured_wall_s(self) -> float:
        """Simulation time this run paid (store hits cost ~nothing)."""
        return sum(r.wall_s for r in self.results if not r.from_store)

    # -- interpreter profiling (aggregated over simulated records) --------

    @property
    def sim_cycles(self) -> int:
        """Simulated cycles across records carrying profiling data."""
        return sum(r.sim_cycles for r in self.records
                   if r.sim_cycles is not None and r.sim_wall_s)

    @property
    def sim_wall_s(self) -> float:
        """Interpreter wall seconds behind those cycles (whichever
        machine originally measured each record)."""
        return sum(r.sim_wall_s for r in self.records
                   if r.sim_cycles is not None and r.sim_wall_s)

    @property
    def sim_cycles_per_sec(self) -> float | None:
        """Aggregate interpreter throughput; None when no record
        carries profiling data (simulate=False, or pre-profiling
        store records)."""
        wall = self.sim_wall_s
        if not wall:
            return None
        return self.sim_cycles / wall

    def profile_summary(self) -> str:
        """One line of interpreter-throughput accounting."""
        rate = self.sim_cycles_per_sec
        if rate is None:
            return "profile: no simulated records with profiling data"
        return (f"profile: {self.sim_cycles} simulated cycle(s) in "
                f"{self.sim_wall_s:.3f} s of interpreter time "
                f"({rate / 1e6:.2f} Mcycles/s)")

    def by_key(self) -> dict[str, FarmJobResult]:
        """One outcome per unique job key — the fan-back currency of
        batch consumers (the async fleet scheduler resolves every
        waiting fleet's future from this map).  Where a matrix named a
        key more than once the leader slot (the one that executed or
        hit the store) is kept over its ``shared`` followers."""
        outcomes: dict[str, FarmJobResult] = {}
        for result in self.results:
            key = result.spec.key()
            if key not in outcomes or (outcomes[key].shared
                                       and not result.shared):
                outcomes[key] = result
        return outcomes

    def require_ok(self) -> None:
        if self.failures:
            lines = [f"{f.spec.display_name}: {f.error}"
                     for f in self.failures]
            raise EricError(
                f"{len(self.failures)} farm job(s) failed: "
                + "; ".join(lines))

    def summary(self) -> str:
        sharding = f", shards={self.shards}" if self.shards else ""
        return (f"farm: {len(self.results)} jobs -> {self.hits} store "
                f"hits, {self.executed} executed, {len(self.failures)} "
                f"failed in {self.wall_s * 1e3:.1f} ms "
                f"(hit rate {self.hit_rate:.0%}, jobs={self.jobs}"
                f"{sharding})")

    def render(self, stable: bool = False) -> str:
        """Sorted per-job table (stable across runs for stable stores).

        The ``Mcyc/s`` column is interpreter throughput — wall-clock
        derived, so it is a :class:`~repro.eval.report.Volatile` cell
        masked under ``stable=True`` (the same mechanism that keeps
        benchmark ``.txt`` outputs byte-stable)."""
        # local import: repro.eval pulls in the fig modules, which in
        # turn import repro.farm — a cycle at module-import time
        from repro.eval.report import Volatile, format_table

        rows = []
        for result in sorted(
                self.results,
                key=lambda r: (r.spec.display_name,
                               r.spec.config.mode.value,
                               (r.spec.params.policy.name
                                if r.spec.params.policy else ""),
                               r.spec.params.pipeline,
                               r.spec.params.device_seed,
                               r.spec.params.environment.describe(),
                               r.spec.params.overlapped_hde,
                               r.spec.key())):
            spec, record = result.spec, result.record
            status = ("hit" if result.from_store
                      else "ok" if result.ok else "FAILED")
            rate = record.sim_cycles_per_sec if record else None
            rows.append([
                spec.display_name,
                spec.config.mode.value,
                (spec.params.policy.name if spec.params.policy
                 else "-"),
                spec.params.pipeline,
                f"{spec.params.device_seed:#x}",
                spec.params.environment.describe(),
                "overlap" if spec.params.overlapped_hde else "serial",
                record.package_size if record else "-",
                (record.eric_cycles
                 if record and record.eric_cycles is not None else "-"),
                (Volatile(f"{rate / 1e6:.2f}") if rate is not None
                 else "-"),
                status,
            ])
        return format_table(
            ["job", "mode", "policy", "pipeline", "seed", "env", "hde",
             "package B", "ERIC cycles", "Mcyc/s", "status"],
            rows, title="Simulation-farm sweep", stable=stable)


def expand_specs(matrix) -> tuple[JobSpec, ...]:
    """Normalize a matrix-or-spec-sequence into validated JobSpecs
    (shared by the farm, the coordinator, and shard planning)."""
    specs = (matrix.jobs() if isinstance(matrix, JobMatrix)
             else tuple(s.validate() for s in matrix))
    if not specs:
        raise ConfigError("nothing to run: empty job list")
    return specs


def serve_store_hits(specs, keys, store, force, results, announce):
    """Phase 1 of any farm run: fill ``results`` with store hits and
    map duplicate keys onto their executing slot.

    Returns ``(pending, followers, done)`` — indices left to execute,
    duplicate-slot -> leader-slot mapping, and jobs announced so far.
    Shared verbatim by :class:`SimulationFarm` and the coordinator so
    hit/dedup semantics cannot drift between the two.
    """
    pending: list[int] = []
    first_index: dict[str, int] = {}
    followers: dict[int, int] = {}
    done = 0
    for i, (spec, key) in enumerate(zip(specs, keys)):
        record = None if (force or store is None) else store.get(key)
        if record is not None:
            results[i] = FarmJobResult(spec=spec, record=record,
                                       error=None, from_store=True,
                                       wall_s=0.0)
            done += 1
            announce(done, len(specs), results[i])
        elif key in first_index:
            followers[i] = first_index[key]
        else:
            first_index[key] = i
            pending.append(i)
    return pending, followers, done


def share_follower_outcomes(specs, results, followers, done, announce):
    """Final phase of any farm run: duplicate slots adopt their
    leader's outcome (marked ``shared``).  Returns the updated count."""
    for i, leader in followers.items():
        outcome = results[leader]
        results[i] = FarmJobResult(spec=specs[i], record=outcome.record,
                                   error=outcome.error,
                                   from_store=outcome.from_store,
                                   wall_s=0.0, shared=True)
        done += 1
        announce(done, len(specs), results[i])
    return done


class SimulationFarm:
    """Executes job matrices against a result store.

    Args:
        store: persistent record store; None measures everything
            in-memory (nothing skipped, nothing persisted).
        jobs: worker processes; 1 = inline in this process.
        telemetry: optional initial telemetry sink.
        progress: optional ``callback(done, total, result)`` fired once
            per job as outcomes land (store hits first).
        tracer: optional :class:`~repro.obs.trace.Tracer`; every run
            becomes a ``farm.sweep`` span with per-job ``farm.job``
            children — written by the worker *subprocesses* themselves
            when the tracer is file-backed.
        metrics: feed the process-wide registry (``store.hits``,
            ``farm.executed``, …).  Shard workers run with False so a
            coordinator dispatching a shard in-process never counts a
            job twice.
    """

    def __init__(self, store: ResultStore | None = None, jobs: int = 1,
                 telemetry=None, progress=None, tracer: Tracer | None = None,
                 metrics: bool = True) -> None:
        if jobs < 1:
            raise ConfigError("jobs must be at least 1")
        self.store = store
        self.jobs = jobs
        self.progress = progress
        self.tracer = tracer
        self._metrics = metrics
        self._telemetry = TelemetryHub()
        if telemetry is not None:
            self._telemetry.add(telemetry)

    def on_event(self, sink) -> None:
        """Register a telemetry sink (see repro.service.telemetry)."""
        self._telemetry.add(sink)

    def run(self, matrix: JobMatrix | tuple[JobSpec, ...] | list[JobSpec],
            force: bool = False,
            trace_parent: TraceContext | None = None) -> FarmReport:
        """Measure every job of ``matrix``, resuming from the store.

        ``force`` re-measures (and re-persists) even stored keys.
        Duplicate keys inside one matrix execute once and share the
        record.  Results keep matrix submission order.  With a tracer,
        the whole run is a ``farm.sweep`` span parented under
        ``trace_parent`` (e.g. a scheduler batch span).
        """
        specs = expand_specs(matrix)
        start = time.perf_counter()
        keys = [spec.key() for spec in specs]
        results: list[FarmJobResult | None] = [None] * len(specs)
        total = len(specs)
        span = (self.tracer.start("farm.sweep", parent=trace_parent,
                                  attrs={"jobs": total})
                if self.tracer is not None else None)

        # -- phase 1: serve store hits; dedupe within the matrix ----------
        pending, followers, done = serve_store_hits(
            specs, keys, self.store, force, results, self._announce)

        # -- phase 2: execute the rest ------------------------------------
        trace = None
        if span is not None and self.tracer.path is not None:
            trace = {**span.context.to_wire(),
                     "dir": str(self.tracer.path.parent)}
        for i, record, error, wall_s in self._execute(specs, pending,
                                                      trace):
            if record is not None and self.store is not None:
                self.store.put(record)
            results[i] = FarmJobResult(spec=specs[i], record=record,
                                       error=error, from_store=False,
                                       wall_s=wall_s)
            done += 1
            self._announce(done, total, results[i])

        # -- phase 3: duplicates share the executing slot's outcome -------
        share_follower_outcomes(specs, results, followers, done,
                                self._announce)

        wall_s = time.perf_counter() - start
        report = FarmReport(
            results=tuple(results), wall_s=wall_s, jobs=self.jobs,
            store_path=str(self.store.path) if self.store else None)
        detail = (f"{report.hits} hits / {report.executed} executed / "
                  f"{len(report.failures)} failed")
        if span is not None:
            span.finish(ok=not report.failures, detail=detail)
        self._telemetry.emit(TelemetryEvent(
            stage="farm.sweep", seconds=wall_s, ok=not report.failures,
            detail=detail,
            trace_id=span.trace_id if span else None,
            span_id=span.span_id if span else None))
        return report

    def run_batch(self, specs, force: bool = False,
                  trace_parent: TraceContext | None = None,
                  ) -> tuple[FarmReport, dict[str, FarmJobResult]]:
        """Batch-submission entry point: measure an arbitrary bag of
        specs collected from many requesters (the async scheduler's
        shared queue) and return ``(report, outcomes_by_key)``.

        Exactly :meth:`run` semantics — store hits served, duplicate
        keys executed once — plus the key-indexed fan-back map, so a
        caller multiplexing requests never has to re-correlate slots
        with submission order.
        """
        report = self.run(tuple(specs), force=force,
                          trace_parent=trace_parent)
        return report, report.by_key()

    def _execute(self, specs, pending, trace: dict | None = None):
        """Yield (index, record, error, wall_s) as pending jobs finish."""
        if not pending:
            return
        if self.jobs == 1 or len(pending) == 1:
            for i in pending:
                job_start = time.perf_counter()
                record, error = _execute_safe(specs[i], trace)
                yield i, record, error, time.perf_counter() - job_start
            return
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            submitted = {}
            started = {}
            for i in pending:
                started[i] = time.perf_counter()
                submitted[pool.submit(_execute_safe, specs[i],
                                      trace)] = i
            outstanding = set(submitted)
            while outstanding:
                finished, outstanding = wait(outstanding,
                                             return_when=FIRST_COMPLETED)
                for future in finished:
                    i = submitted[future]
                    wall_s = time.perf_counter() - started[i]
                    try:
                        record, error = future.result()
                    except Exception as exc:  # pool/pickle failure
                        record, error = None, (
                            f"{type(exc).__name__}: {exc}")
                    yield i, record, error, wall_s

    def _announce(self, done: int, total: int,
                  result: FarmJobResult) -> None:
        if self._metrics:
            if result.from_store:
                METRICS.inc("store.hits")
            elif result.shared:
                METRICS.inc("farm.shared")
            elif not result.ok:
                METRICS.inc("farm.failed")
            else:
                METRICS.inc("farm.executed")
                METRICS.observe("farm.job.wall_s", result.wall_s)
        self._telemetry.emit(TelemetryEvent(
            stage="farm.job", seconds=result.wall_s,
            program=result.spec.display_name, ok=result.ok,
            detail=("store hit" if result.from_store
                    else result.error or "executed")))
        if self.progress is not None:
            try:
                self.progress(done, total, result)
            except Exception:
                pass  # progress hooks must never break a sweep
