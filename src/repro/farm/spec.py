"""Job specifications for the simulation farm.

A :class:`JobSpec` names one workload × :class:`EricConfig` ×
SoC-parameter combination and derives a **content-addressed key** from
exactly the inputs that determine its measurement: the source text, the
packaging configuration, the simulation parameters, and the measurement
shape (simulate/analyze/repeats).  Two specs with the same key measure
the same thing, so the :class:`~repro.farm.store.ResultStore` can serve
one's record for the other — across processes, sessions, and matrix
definitions.

:class:`JobMatrix` expands workload/config/parameter grids into a
deterministic, sorted job list; ``JobMatrix.from_spec`` parses the small
JSON dialect the ``eric sweep`` command reads.

:class:`ShardPlan` partitions a matrix's deduplicated, sorted key space
into contiguous ranges for the distributed farm: each
:class:`ShardSpec` is self-contained (it carries its jobs in full, not
a reference to the original spec file), serializes to JSON, and can be
executed on another machine by ``eric worker``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, fields
from itertools import product

from repro.core.config import EricConfig
from repro.core.interface import config_from_dict, config_to_dict
from repro.errors import ConfigError
from repro.puf.arbiter import NOISE_SIGMA
from repro.puf.environment import NOMINAL, Environment
from repro.policy.policy import ProtectionPolicy, policy_from_dict
from repro.puf.key_generator import MARGIN_SIGMAS
from repro.soc.pipeline import PipelineModel

#: Bumped whenever key-relevant semantics change (timing model, record
#: schema): old store entries then simply stop matching instead of
#: serving stale measurements.
#: 2: SimParams grew environment + PUF knobs; records grew
#:    hde_serial_cycles / key_failure / key_digest and analysis.dynamic.
#: 3: keys embed the timing-model fingerprint
#:    (:func:`repro.statics.fingerprint.model_fingerprint`), so timing
#:    edits orphan stale records without a manual schema bump; records
#:    grew the model_fingerprint column.
#: 4: SimParams grew the ``policy`` axis (declarative per-region
#:    protection, :mod:`repro.policy`): every key payload now carries a
#:    policy entry (null for unpolicied jobs) with the display-only
#:    policy ``name`` stripped, and the plain baseline of policied jobs
#:    is the *unobfuscated* program.
KEY_SCHEMA = 4

#: Named SoC pipeline variants a job may select.  Names (not
#: :class:`PipelineModel` instances) travel in :class:`SimParams` so
#: specs stay JSON-serializable and hash stably.
PIPELINE_VARIANTS: dict[str, PipelineModel] = {
    "default": PipelineModel(),
    "slow-divider": PipelineModel(div_latency=64, div32_latency=32),
    "fast-memory": PipelineModel(miss_penalty=8),
    "slow-memory": PipelineModel(miss_penalty=60),
    "costly-flush": PipelineModel(flush_penalty=4),
}


def _registry():
    # Imported lazily: repro.workloads pulls in every workload source.
    from repro.workloads import all_workloads
    return all_workloads()


@dataclass(frozen=True)
class SimParams:
    """Device/SoC-side knobs of one simulation (the matrix's third axis).

    Attributes:
        device_seed: selects the die (PUF identity and therefore key).
        pipeline: a :data:`PIPELINE_VARIANTS` name.
        environment: the operating point (temperature/voltage) the
            device boots at — scales PUF evaluation noise, so it is a
            measurement input like any other.
        overlapped_hde: run the HDE decrypt/signature units overlapped.
        puf_noise_sigma: nominal PUF evaluation-noise sigma.
        puf_votes: PKG majority votes per response bit.
        puf_margin_sigmas: enrollment reliability-screening threshold
            (0 disables screening — the reliability ablations' knob).
        max_instructions: simulator instruction budget.
        policy: optional :class:`~repro.policy.ProtectionPolicy` the
            job compiles under (per-region encryption, opaque-predicate
            obfuscation, overlap/signing overrides).  A measurement
            input like the config — part of the job key — except for
            its display-only ``name``.
    """

    device_seed: int = 0xFA53
    pipeline: str = "default"
    environment: Environment = NOMINAL
    overlapped_hde: bool = False
    puf_noise_sigma: float = NOISE_SIGMA
    puf_votes: int = 11
    puf_margin_sigmas: float = MARGIN_SIGMAS
    max_instructions: int = 20_000_000
    policy: ProtectionPolicy | None = None

    def validate(self) -> "SimParams":
        if not isinstance(self.device_seed, int) \
                or isinstance(self.device_seed, bool):
            raise ConfigError(
                f"device_seed must be an integer, got "
                f"{self.device_seed!r}")
        if self.pipeline not in PIPELINE_VARIANTS:
            raise ConfigError(
                f"unknown pipeline variant {self.pipeline!r}; "
                f"available: {sorted(PIPELINE_VARIANTS)}")
        if not isinstance(self.environment, Environment):
            raise ConfigError(
                f"environment must be an Environment, got "
                f"{self.environment!r}")
        self.environment.validate()
        if self.puf_noise_sigma < 0:
            raise ConfigError("puf_noise_sigma must be non-negative")
        if self.puf_votes < 1 or self.puf_votes % 2 == 0:
            raise ConfigError("puf_votes must be a positive odd number")
        if self.puf_margin_sigmas < 0:
            raise ConfigError("puf_margin_sigmas must be non-negative")
        if self.max_instructions < 1:
            raise ConfigError("max_instructions must be positive")
        if self.policy is not None:
            if not isinstance(self.policy, ProtectionPolicy):
                raise ConfigError(
                    f"policy must be a ProtectionPolicy or None, got "
                    f"{self.policy!r}")
            self.policy.validate()
        return self

    def pipeline_model(self) -> PipelineModel:
        return PIPELINE_VARIANTS[self.pipeline]

    @classmethod
    def from_dict(cls, data: dict) -> "SimParams":
        """Revive ``asdict(params)`` output (shard specs, store records)."""
        if not isinstance(data, dict):
            raise ConfigError(f"params must be an object, got {data!r}")
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(f"unknown params keys {sorted(unknown)}; "
                              f"known: {sorted(known)}")
        options = dict(data)
        environment = options.pop("environment", None)
        if environment is not None:
            options["environment"] = Environment.from_dict(environment)
        policy = options.pop("policy", None)
        if policy is not None:
            options["policy"] = policy_from_dict(policy)
        return cls(**options).validate()


@dataclass(frozen=True)
class JobSpec:
    """One farm job: measure a (program, config, device) combination.

    Exactly one of ``workload`` (a registry name) or ``source`` (inline
    MiniC text) must be set.  ``name`` is display-only and deliberately
    excluded from the job key: renaming a job must not re-measure it.

    ``simulate=False`` jobs stop after packaging (enough for the size
    and compile-time figures); ``analyze=True`` additionally runs the
    static attacker over the ciphertext and records its metrics.
    ``repeats`` re-runs the timed compile+package stages and keeps the
    minimum (the Fig. 6 protocol).
    """

    workload: str | None = None
    source: str | None = None
    name: str | None = None
    config: EricConfig = EricConfig()
    params: SimParams = SimParams()
    simulate: bool = True
    analyze: bool = False
    repeats: int = 1

    def validate(self) -> "JobSpec":
        if (self.workload is None) == (self.source is None):
            raise ConfigError(
                "a JobSpec needs exactly one of workload= or source=")
        if self.workload is not None and self.workload not in _registry():
            raise ConfigError(
                f"unknown workload {self.workload!r}; "
                f"available: {sorted(_registry())}")
        if self.repeats < 1:
            raise ConfigError("repeats must be at least 1")
        self.config.validate()
        self.params.validate()
        return self

    @property
    def display_name(self) -> str:
        return self.name or self.workload or "program"

    def resolve_source(self) -> tuple[str, str | None]:
        """The MiniC text and, for registry workloads, the exact
        expected stdout (the oracle the record's ``stdout_ok`` checks)."""
        if self.workload is not None:
            workload = _registry()[self.workload]
            return workload.source, workload.expected_stdout
        return self.source, None

    def key(self) -> str:
        """Content address of this measurement (SHA-256 hex).

        Covers everything the outcome depends on — and nothing else:
        ``name`` is cosmetic, and a registry workload hashes identically
        to the same source passed inline.  The same discipline applies
        one level down: a policy's ``name`` is display-only, so the
        params payload strips it — renaming a policy must not
        re-measure its jobs any more than renaming the job itself.

        Memoized per instance (the spec is frozen, so the address can
        never change): sharding re-derives keys at plan, dispatch, and
        merge time, and hashing the full source each time would scale
        poorly with fleet-size matrices.  The memo is keyed on
        :data:`KEY_SCHEMA` so a schema bump re-addresses even
        already-hashed specs.
        """
        cached = self.__dict__.get("_key_memo")
        if cached is not None and cached[0] == KEY_SCHEMA:
            return cached[1]
        # Imported lazily so that building a spec stays cheap; the
        # fingerprint itself is memoized per process.
        from repro.statics.fingerprint import model_fingerprint
        source, _ = self.resolve_source()
        params_payload = asdict(self.params)
        if params_payload.get("policy") is not None:
            params_payload["policy"].pop("name", None)
        payload = {
            "schema": KEY_SCHEMA,
            "model": model_fingerprint(),
            "source": hashlib.sha256(source.encode("utf-8")).hexdigest(),
            "config": config_to_dict(self.config),
            "params": params_payload,
            "simulate": self.simulate,
            "analyze": self.analyze,
            "repeats": self.repeats,
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
        object.__setattr__(self, "_key_memo", (KEY_SCHEMA, digest))
        return digest

    def to_dict(self) -> dict:
        """JSON-portable form; ``from_dict`` revives it key-identically.

        Unlike the ``eric sweep`` dialect (a grid description), this is
        one fully-expanded job — the currency shard specs ship in.
        """
        return {
            "workload": self.workload,
            "source": self.source,
            "name": self.name,
            "config": config_to_dict(self.config),
            "params": asdict(self.params),
            "simulate": self.simulate,
            "analyze": self.analyze,
            "repeats": self.repeats,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        if not isinstance(data, dict):
            raise ConfigError(f"job entry must be an object, got {data!r}")
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(f"unknown job keys {sorted(unknown)}; "
                              f"known: {sorted(known)}")
        options = dict(data)
        options["config"] = config_from_dict(options.get("config", {}))
        options["params"] = SimParams.from_dict(options.get("params", {}))
        return cls(**options).validate()


@dataclass(frozen=True)
class JobMatrix:
    """A workload × config × parameter grid, expanded deterministically.

    ``jobs()`` is workload-major (all configs and parameter sets of one
    program are adjacent) and stable across runs — the expansion order
    is part of the farm's reporting contract.
    """

    workloads: tuple[str, ...] = ()
    #: inline programs as (name, source) pairs
    programs: tuple[tuple[str, str], ...] = ()
    configs: tuple[EricConfig, ...] = (EricConfig(),)
    params: tuple[SimParams, ...] = (SimParams(),)
    simulate: bool = True
    analyze: bool = False
    repeats: int = 1

    def jobs(self) -> tuple[JobSpec, ...]:
        if not self.workloads and not self.programs:
            raise ConfigError("empty matrix: no workloads or programs")
        if not self.configs or not self.params:
            raise ConfigError("empty matrix: no configs or params")
        specs = []
        named: list[tuple[str, str | None, str | None]] = (
            [(name, name, None) for name in self.workloads]
            + [(name, None, source) for name, source in self.programs])
        for (name, workload, source), config, params in product(
                named, self.configs, self.params):
            specs.append(JobSpec(
                workload=workload, source=source, name=name,
                config=config, params=params, simulate=self.simulate,
                analyze=self.analyze, repeats=self.repeats).validate())
        return tuple(specs)

    @property
    def job_count(self) -> int:
        return ((len(self.workloads) + len(self.programs))
                * len(self.configs) * len(self.params))

    @classmethod
    def from_spec(cls, spec: dict) -> "JobMatrix":
        """Parse the ``eric sweep`` JSON dialect.

        ::

            {
              "workloads": ["crc32", "fft"],
              "programs": [{"name": "hello", "source": "int main() ..."}],
              "configs": [{}, {"mode": "partial", "partial_fraction": 0.25}],
              "device_seeds": [64083],
              "pipelines": ["default"],
              "environments": [{}, {"temperature_c": 85.0, "voltage": 0.9}],
              "overlapped_hde": [false, true],
              "policies": [null, {"name": "locked", "encrypt": [...]}],
              "max_instructions": 20000000,
              "simulate": true,
              "analyze": false,
              "repeats": 1
            }

        Every key is optional except at least one of
        ``workloads``/``programs``.  ``configs`` entries use the same
        schema as ``eric describe --config`` files.

        ``environments`` entries hold any of ``temperature_c`` /
        ``voltage`` / ``frequency_mhz`` (missing keys default to the
        nominal 25 C / 1.00 V point, so ``{}`` is nominal).
        ``overlapped_hde`` is a sweep axis: a list of booleans expands
        the parameter grid; a bare boolean (the pre-``environments``
        scalar form) still means a single-value axis.

        ``policies`` entries are protection-policy objects in the
        ``docs/policy.md`` dialect; ``null`` means "no policy" (the
        plain ERIC flow), so ``[null, {...}]`` sweeps unprotected vs
        protected in one matrix.
        """
        known = {"workloads", "programs", "configs", "device_seeds",
                 "pipelines", "environments", "overlapped_hde",
                 "policies", "max_instructions", "simulate", "analyze",
                 "repeats"}
        if not isinstance(spec, dict):
            raise ConfigError("sweep spec must be a JSON object")
        unknown = set(spec) - known
        if unknown:
            raise ConfigError(f"unknown sweep keys {sorted(unknown)}; "
                              f"known: {sorted(known)}")
        programs = []
        for entry in spec.get("programs", []):
            if (not isinstance(entry, dict)
                    or set(entry) != {"name", "source"}):
                raise ConfigError(
                    'each program needs exactly {"name": ..., "source": ...}')
            programs.append((entry["name"], entry["source"]))
        configs = tuple(config_from_dict(options)
                        for options in spec.get("configs", [{}]))
        environments = spec.get("environments", [{}])
        if not isinstance(environments, list) or not environments:
            raise ConfigError(
                f"environments must be a non-empty list of objects, "
                f"got {environments!r}")
        policies = spec.get("policies", [None])
        if not isinstance(policies, list) or not policies:
            raise ConfigError(
                f"policies must be a non-empty list of policy objects "
                f"or nulls, got {policies!r}")
        policy_axis = tuple(
            None if entry is None else policy_from_dict(entry)
            for entry in policies)
        params = tuple(
            SimParams(
                device_seed=seed, pipeline=pipeline,
                environment=Environment.from_dict(environment),
                overlapped_hde=overlapped, policy=policy,
                max_instructions=_int_option(spec, "max_instructions",
                                             20_000_000),
            ).validate()
            for seed, pipeline, environment, overlapped, policy in product(
                [_parse_seed(seed)
                 for seed in spec.get("device_seeds",
                                      [SimParams.device_seed])],
                spec.get("pipelines", ["default"]),
                environments,
                _bool_axis(spec, "overlapped_hde", False),
                policy_axis)
        )
        matrix = cls(
            workloads=tuple(spec.get("workloads", ())),
            programs=tuple(programs),
            configs=configs,
            params=params,
            simulate=bool(spec.get("simulate", True)),
            analyze=bool(spec.get("analyze", False)),
            repeats=_int_option(spec, "repeats", 1),
        )
        matrix.jobs()  # validates workload names, fractions, emptiness
        return matrix


@dataclass(frozen=True)
class ShardSpec:
    """One contiguous slice of a matrix's sorted, deduplicated key space.

    Self-contained by design: ``jobs`` carries every job of the slice in
    full (via :meth:`JobSpec.to_dict`), so the JSON form can be shipped
    to another machine and executed there by ``eric worker`` without the
    original sweep spec.  ``start``/``stop`` are the slice's first and
    last job keys (inclusive); the worker re-derives each job's key and
    refuses a shard whose keys fall outside the range — the signature
    of a spec planned by a different code version.
    """

    index: int
    count: int
    start: str
    stop: str
    jobs: tuple[JobSpec, ...]

    def validate(self) -> "ShardSpec":
        # type-check first: hand-edited/truncated shard.json must fail
        # with the curated ConfigError path, not a raw TypeError
        for label, value in (("index", self.index), ("count", self.count)):
            if not isinstance(value, int) or isinstance(value, bool):
                raise ConfigError(
                    f"shard {label} must be an integer, got {value!r}")
        for label, value in (("start", self.start), ("stop", self.stop)):
            if not isinstance(value, str):
                raise ConfigError(
                    f"shard {label} must be a job-key string, "
                    f"got {value!r}")
        if not 0 <= self.index < self.count:
            raise ConfigError(
                f"shard index {self.index} out of range for "
                f"{self.count} shard(s)")
        if not self.jobs:
            raise ConfigError(f"shard {self.index} carries no jobs")
        if self.start > self.stop:
            raise ConfigError(
                f"shard {self.index} has an inverted key range "
                f"{self.start[:12]}..{self.stop[:12]}")
        for job in self.jobs:
            key = job.key()
            if not self.start <= key <= self.stop:
                raise ConfigError(
                    f"job {job.display_name!r} (key {key[:12]}) falls "
                    f"outside shard {self.index}'s range "
                    f"{self.start[:12]}..{self.stop[:12]}; the shard "
                    f"spec was planned by a different code version")
        return self

    def to_spec(self) -> dict:
        """The JSON document ``eric worker`` consumes."""
        from repro.statics.fingerprint import model_fingerprint
        return {
            "kind": "eric-shard",
            "key_schema": KEY_SCHEMA,
            "model_fingerprint": model_fingerprint(),
            "index": self.index,
            "count": self.count,
            "start": self.start,
            "stop": self.stop,
            "jobs": [job.to_dict() for job in self.jobs],
        }

    @classmethod
    def from_spec(cls, data: dict) -> "ShardSpec":
        if not isinstance(data, dict) or data.get("kind") != "eric-shard":
            raise ConfigError(
                'not a shard spec: expected {"kind": "eric-shard", ...}')
        schema = data.get("key_schema")
        if schema != KEY_SCHEMA:
            raise ConfigError(
                f"shard spec was planned under KEY_SCHEMA={schema!r}, "
                f"this farm addresses jobs under KEY_SCHEMA={KEY_SCHEMA}; "
                f"re-plan the sweep")
        from repro.statics.fingerprint import model_fingerprint
        pinned = data.get("model_fingerprint")
        if pinned != model_fingerprint():
            raise ConfigError(
                f"shard spec was planned against timing-model "
                f"fingerprint {str(pinned)[:16]!r}, this tree computes "
                f"{model_fingerprint()[:16]!r}; the timing model "
                f"changed since planning — re-plan the sweep")
        required = {"index", "count", "start", "stop", "jobs"}
        missing = required - set(data)
        if missing:
            raise ConfigError(f"shard spec misses {sorted(missing)}")
        jobs = data["jobs"]
        if not isinstance(jobs, list):
            raise ConfigError(f"shard jobs must be a list, got {jobs!r}")
        return cls(
            index=data["index"], count=data["count"],
            start=data["start"], stop=data["stop"],
            jobs=tuple(JobSpec.from_dict(job) for job in jobs),
        ).validate()


@dataclass(frozen=True)
class ShardPlan:
    """A matrix partitioned into contiguous key ranges for distribution.

    The partition is a pure function of the matrix content: jobs are
    deduplicated by key, the keys sorted, and the sorted sequence cut
    into ``count`` near-even contiguous slices.  Keys are content
    addresses, so the same matrix yields the same plan on every machine
    and every run — the coordinator and remote workers never have to
    negotiate an assignment.
    """

    shards: tuple[ShardSpec, ...]

    @property
    def count(self) -> int:
        return len(self.shards)

    @property
    def job_count(self) -> int:
        """Deduplicated jobs across all shards."""
        return sum(len(shard.jobs) for shard in self.shards)

    @classmethod
    def partition(cls, matrix: "JobMatrix | tuple[JobSpec, ...] | list[JobSpec]",
                  shards: int) -> "ShardPlan":
        """Cut ``matrix`` into at most ``shards`` contiguous key ranges.

        Fewer unique keys than requested shards yields one single-job
        shard per key (never an empty shard).
        """
        if shards < 1:
            raise ConfigError("shards must be at least 1")
        specs = (matrix.jobs() if isinstance(matrix, JobMatrix)
                 else tuple(s.validate() for s in matrix))
        if not specs:
            raise ConfigError("nothing to shard: empty job list")
        by_key: dict[str, JobSpec] = {}
        for spec in specs:
            by_key.setdefault(spec.key(), spec)
        keys = sorted(by_key)
        count = min(shards, len(keys))
        base, extra = divmod(len(keys), count)
        out = []
        position = 0
        for index in range(count):
            size = base + (1 if index < extra else 0)
            chunk = keys[position:position + size]
            position += size
            out.append(ShardSpec(
                index=index, count=count, start=chunk[0], stop=chunk[-1],
                jobs=tuple(by_key[key] for key in chunk)).validate())
        return cls(shards=tuple(out))


def _parse_seed(seed) -> int:
    """Accept JSON integers and "0x…" strings (JSON has no hex)."""
    if isinstance(seed, bool):
        raise ConfigError(f"device_seeds entries must be integers, "
                          f"got {seed!r}")
    if isinstance(seed, int):
        return seed
    if isinstance(seed, str):
        try:
            return int(seed, 0)
        except ValueError:
            pass
    raise ConfigError(f"device_seeds entries must be integers or "
                      f"0x-strings, got {seed!r}")


def _int_option(spec: dict, key: str, default: int) -> int:
    value = spec.get(key, default)
    if not isinstance(value, int) or isinstance(value, bool):
        raise ConfigError(f"{key} must be an integer, got {value!r}")
    return value


def _bool_axis(spec: dict, key: str, default: bool) -> tuple[bool, ...]:
    """A sweep axis that historically was a scalar: a bare boolean still
    parses (as a single-value axis), a list of booleans sweeps."""
    value = spec.get(key, default)
    if isinstance(value, bool):
        return (value,)
    if (isinstance(value, list) and value
            and all(isinstance(v, bool) for v in value)):
        return tuple(value)
    raise ConfigError(
        f"{key} must be a boolean or a non-empty list of booleans, "
        f"got {value!r}")
