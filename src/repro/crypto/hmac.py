"""HMAC-SHA256 (RFC 2104) built on the from-scratch SHA-256.

The Key Management Unit derives PUF-based keys and per-purpose subkeys via
a counter-mode KDF whose PRF is this HMAC (see :mod:`repro.crypto.kdf`).
"""

from __future__ import annotations

from repro.crypto.sha256 import BLOCK_SIZE, SHA256, sha256

_IPAD = bytes(0x36 for _ in range(BLOCK_SIZE))
_OPAD = bytes(0x5C for _ in range(BLOCK_SIZE))


def _xor_bytes(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


def hmac_sha256(key: bytes, message: bytes) -> bytes:
    """Return ``HMAC-SHA256(key, message)`` as 32 bytes."""
    if len(key) > BLOCK_SIZE:
        key = sha256(key)
    key = key.ljust(BLOCK_SIZE, b"\x00")

    inner = SHA256(_xor_bytes(key, _IPAD))
    inner.update(message)
    outer = SHA256(_xor_bytes(key, _OPAD))
    outer.update(inner.digest())
    return outer.digest()
