"""From-scratch cryptographic substrate for the ERIC reproduction.

The paper implements SHA-256 in C++ inside the compiler and uses a simple
XOR cipher as the pluggable symmetric encryption function (§IV.A).  This
package provides those, plus the pieces the wider evaluation needs:

* :mod:`repro.crypto.sha256` — FIPS 180-2 SHA-256 with a streaming API
  (signature generation on both compiler and hardware sides).
* :mod:`repro.crypto.hmac` — HMAC-SHA256 (key-derivation building block).
* :mod:`repro.crypto.kdf` — counter-mode KDF over HMAC-SHA256 (the Key
  Management Unit's "conversion function").
* :mod:`repro.crypto.xor_cipher` — repeating-key XOR (the paper's cipher)
  and a SHA-256-CTR keystream variant, both instruction-slot addressable.
* :mod:`repro.crypto.aes` — AES-128 from scratch; used as the related-work
  baseline (AES-per-cache-line memory encryption, §V).
* :mod:`repro.crypto.prng` — deterministic PRNGs (SplitMix64, Xoshiro256**)
  used wherever the framework needs reproducible randomness.

Nothing here imports :mod:`hashlib`/:mod:`secrets`: the point of the
substrate is to be the implementation, not to wrap one.  Tests cross-check
against :mod:`hashlib` and published vectors.
"""

from repro.crypto.sha256 import SHA256, sha256
from repro.crypto.hmac import hmac_sha256
from repro.crypto.kdf import derive_key, expand_keystream
from repro.crypto.xor_cipher import (
    Cipher,
    RepeatingKeyXor,
    Sha256CtrCipher,
    make_cipher,
)
from repro.crypto.aes import AES128, aes128_ctr_keystream
from repro.crypto.prng import SplitMix64, Xoshiro256StarStar

__all__ = [
    "SHA256",
    "sha256",
    "hmac_sha256",
    "derive_key",
    "expand_keystream",
    "Cipher",
    "RepeatingKeyXor",
    "Sha256CtrCipher",
    "make_cipher",
    "AES128",
    "aes128_ctr_keystream",
    "SplitMix64",
    "Xoshiro256StarStar",
]
