"""XOR ciphers: the paper's symmetric encryption function.

The prototype in the paper uses an "XOR Cipher" — instructions pass through
successive XOR gates keyed by material from the Key Management Unit, and
decryption is the symmetric inverse (§IV.A).  Two implementations:

* :class:`RepeatingKeyXor` — the faithful hardware-cheap variant: the
  expanded key repeats over the message.  One XOR gate array wide enough
  for a word; one cycle per word in the HDE cycle model.
* :class:`Sha256CtrCipher` — a stronger drop-in: SHA-256-CTR keystream via
  :func:`repro.crypto.kdf.expand_keystream`.  Demonstrates the paper's
  claim that the encryption function is pluggable (§III.1).

Both are *offset addressable*: ``transform(data, offset)`` en/decrypts a
fragment as if it sat at byte ``offset`` of the full message.  Partial
encryption needs this — the HDE decrypts only flagged instruction slots,
and the keystream position must follow the slot's byte offset, not the
count of encrypted slots.
"""

from __future__ import annotations

from repro.errors import ConfigError


class Cipher:
    """Interface for symmetric, offset-addressable stream transforms."""

    #: registry name used by package headers / config files
    name = "abstract"

    def transform(self, data: bytes, offset: int = 0) -> bytes:
        """En/decrypt ``data`` positioned at byte ``offset`` of the message.

        XOR ciphers are involutions, so the same call decrypts.
        """
        raise NotImplementedError

    def keystream(self, offset: int, length: int) -> bytes:
        """Return ``length`` keystream bytes starting at ``offset``."""
        raise NotImplementedError


class RepeatingKeyXor(Cipher):
    """XOR with a repeating key — the paper prototype's cipher."""

    name = "xor-repeating"

    def __init__(self, key: bytes) -> None:
        if not key:
            raise ConfigError("RepeatingKeyXor requires a non-empty key")
        self._key = bytes(key)

    def keystream(self, offset: int, length: int) -> bytes:
        key = self._key
        klen = len(key)
        start = offset % klen
        reps = (start + length) // klen + 1
        return ((key[start:] + key * reps)[:length])

    def transform(self, data: bytes, offset: int = 0) -> bytes:
        stream = self.keystream(offset, len(data))
        return _xor(data, stream)


class Sha256CtrCipher(Cipher):
    """SHA-256-CTR keystream cipher (stronger pluggable alternative).

    The keystream is generated lazily and cached per instance: slot-by-
    slot partial decryption in the HDE touches ascending offsets, and
    regenerating from block zero each time would be quadratic.
    """

    name = "xor-sha256ctr"

    _BLOCK = 32

    def __init__(self, key: bytes, nonce: bytes = b"ERIC-text") -> None:
        if not key:
            raise ConfigError("Sha256CtrCipher requires a non-empty key")
        self._key = bytes(key)
        self._nonce = bytes(nonce)
        self._stream = bytearray()

    def _ensure(self, length: int) -> None:
        import struct as _struct

        from repro.crypto.hmac import hmac_sha256
        counter = len(self._stream) // self._BLOCK
        while len(self._stream) < length:
            self._stream.extend(hmac_sha256(
                self._key, self._nonce + _struct.pack(">Q", counter)))
            counter += 1

    def keystream(self, offset: int, length: int) -> bytes:
        self._ensure(offset + length)
        return bytes(self._stream[offset:offset + length])

    def transform(self, data: bytes, offset: int = 0) -> bytes:
        return _xor(data, self.keystream(offset, len(data)))


_CIPHERS = {
    RepeatingKeyXor.name: RepeatingKeyXor,
    Sha256CtrCipher.name: Sha256CtrCipher,
}


def make_cipher(name: str, key: bytes) -> Cipher:
    """Instantiate a registered cipher by name (package header dispatch)."""
    try:
        cls = _CIPHERS[name]
    except KeyError:
        raise ConfigError(
            f"unknown cipher {name!r}; known: {sorted(_CIPHERS)}"
        ) from None
    return cls(key)


def register_cipher(cls: type) -> type:
    """Register a user-supplied cipher class (the paper's "upload your own
    encryption method" hook, §III.1).  Usable as a decorator."""
    name = getattr(cls, "name", None)
    if not name or not isinstance(name, str):
        raise ConfigError("cipher class must define a string 'name'")
    _CIPHERS[name] = cls
    return cls


def registered_ciphers() -> tuple[str, ...]:
    """Names of all currently registered ciphers."""
    return tuple(sorted(_CIPHERS))


def _xor(data: bytes, stream: bytes) -> bytes:
    # int-wide XOR: much faster than a byte loop for multi-KiB programs.
    return (
        int.from_bytes(data, "little")
        ^ int.from_bytes(stream[:len(data)], "little")
    ).to_bytes(len(data), "little")
