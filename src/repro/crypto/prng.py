"""Deterministic PRNGs used across the framework.

Every stochastic component of the reproduction — PUF fabrication variation,
evaluation noise, random selection of instructions for partial encryption,
soft-error injection on the channel — draws from these generators with an
explicit seed, so every test, example and benchmark is reproducible.

SplitMix64 seeds Xoshiro256**, the main generator (Blackman & Vigna).
"""

from __future__ import annotations

import math

_MASK64 = 0xFFFFFFFFFFFFFFFF


class SplitMix64:
    """Tiny 64-bit generator; primarily a seeder for Xoshiro256**."""

    def __init__(self, seed: int) -> None:
        self._state = seed & _MASK64

    def next_u64(self) -> int:
        self._state = (self._state + 0x9E3779B97F4A7C15) & _MASK64
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
        return z ^ (z >> 31)


def _rotl(x: int, k: int) -> int:
    return ((x << k) | (x >> (64 - k))) & _MASK64


class Xoshiro256StarStar:
    """xoshiro256** 1.0 — fast, high-quality, deterministic."""

    def __init__(self, seed: int) -> None:
        seeder = SplitMix64(seed)
        self._s = [seeder.next_u64() for _ in range(4)]
        if not any(self._s):  # all-zero state is degenerate
            self._s[0] = 1

    def next_u64(self) -> int:
        s = self._s
        result = (_rotl((s[1] * 5) & _MASK64, 7) * 9) & _MASK64
        t = (s[1] << 17) & _MASK64
        s[2] ^= s[0]
        s[3] ^= s[1]
        s[1] ^= s[2]
        s[0] ^= s[3]
        s[2] ^= t
        s[3] = _rotl(s[3], 45)
        return result

    def random(self) -> float:
        """Uniform float in [0, 1) with 53 bits of precision."""
        return (self.next_u64() >> 11) / (1 << 53)

    def uniform(self, low: float, high: float) -> float:
        return low + (high - low) * self.random()

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range [low, high]."""
        if high < low:
            raise ValueError("empty range")
        span = high - low + 1
        # Rejection sampling to avoid modulo bias.
        limit = (1 << 64) - ((1 << 64) % span)
        while True:
            value = self.next_u64()
            if value < limit:
                return low + value % span

    def gauss(self, mean: float = 0.0, sigma: float = 1.0) -> float:
        """Normal deviate via Box–Muller (one value per call)."""
        u1 = self.random()
        while u1 <= 1e-12:
            u1 = self.random()
        u2 = self.random()
        z = math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)
        return mean + sigma * z

    def bytes(self, length: int) -> bytes:
        out = bytearray()
        while len(out) < length:
            out.extend(self.next_u64().to_bytes(8, "little"))
        return bytes(out[:length])

    def shuffle(self, items: list) -> None:
        """In-place Fisher–Yates shuffle."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randint(0, i)
            items[i], items[j] = items[j], items[i]

    def sample_indices(self, population: int, count: int) -> list[int]:
        """``count`` distinct indices from ``range(population)``, sorted."""
        if count > population:
            raise ValueError("sample larger than population")
        if count > population // 2:
            indices = list(range(population))
            self.shuffle(indices)
            return sorted(indices[:count])
        chosen: set[int] = set()
        while len(chosen) < count:
            chosen.add(self.randint(0, population - 1))
        return sorted(chosen)
