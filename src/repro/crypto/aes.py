"""AES-128 from scratch (FIPS 197).

ERIC's related work ([29], [30] in the paper) encrypts every memory line
with AES and pays "high memory latency ... an extra delay each time when
trying to access the main memory" (§V).  To reproduce that comparison, the
ablation benchmark `test_ablation_aes_memory_baseline` models an
AES-per-cache-line memory-encryption SoC and contrasts it with ERIC's
load-time-only decryption.  This module supplies the cipher itself.

Only AES-128 ECB-of-one-block and a CTR keystream helper are provided —
enough for the baseline model and for known-answer tests.
"""

from __future__ import annotations

import struct

from repro.errors import ConfigError

# --- S-box generation (from GF(2^8) inversion + affine map) ----------------


def _gf_mul(a: int, b: int) -> int:
    """Multiply in GF(2^8) modulo the AES polynomial x^8+x^4+x^3+x+1."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        high = a & 0x80
        a = (a << 1) & 0xFF
        if high:
            a ^= 0x1B
        b >>= 1
    return result


def _build_sbox() -> tuple[bytes, bytes]:
    # Multiplicative inverses via brute force (once, at import).
    inverse = [0] * 256
    for x in range(1, 256):
        for y in range(1, 256):
            if _gf_mul(x, y) == 1:
                inverse[x] = y
                break
    sbox = bytearray(256)
    for x in range(256):
        b = inverse[x]
        result = 0x63
        for shift in (0, 1, 2, 3, 4):
            result ^= ((b << shift) | (b >> (8 - shift))) & 0xFF
        # The affine transform folds the rotations into result; 0x63 is the
        # constant term (FIPS 197 §5.1.1).
        sbox[x] = result & 0xFF
    inv = bytearray(256)
    for x in range(256):
        inv[sbox[x]] = x
    return bytes(sbox), bytes(inv)


_SBOX, _INV_SBOX = _build_sbox()

_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)

#: Cycle cost charged per 16-byte block by hardware models that embed an
#: AES engine (10 rounds + key add, a typical iterative FPGA core).
CYCLES_PER_BLOCK = 11


class AES128:
    """AES-128 block cipher.

    >>> key = bytes(range(16))
    >>> AES128(key).encrypt_block(bytes(16)).hex()
    'c6a13b37878f5b826f4f8162a1c8d879'
    """

    block_size = 16

    def __init__(self, key: bytes) -> None:
        if len(key) != 16:
            raise ConfigError("AES-128 requires a 16-byte key")
        self._round_keys = self._expand_key(key)

    @staticmethod
    def _expand_key(key: bytes) -> list[list[int]]:
        words = [list(key[i:i + 4]) for i in range(0, 16, 4)]
        for i in range(4, 44):
            temp = list(words[i - 1])
            if i % 4 == 0:
                temp = temp[1:] + temp[:1]
                temp = [_SBOX[b] for b in temp]
                temp[0] ^= _RCON[i // 4 - 1]
            words.append([w ^ t for w, t in zip(words[i - 4], temp)])
        # Group into 11 round keys of 16 bytes (column-major state order).
        return [
            [b for word in words[r * 4:(r + 1) * 4] for b in word]
            for r in range(11)
        ]

    # State is a flat 16-byte list in column-major order, matching FIPS 197.

    @staticmethod
    def _add_round_key(state: list[int], rk: list[int]) -> None:
        for i in range(16):
            state[i] ^= rk[i]

    @staticmethod
    def _sub_bytes(state: list[int], box: bytes) -> None:
        for i in range(16):
            state[i] = box[state[i]]

    @staticmethod
    def _shift_rows(state: list[int]) -> None:
        # Row r (elements r, r+4, r+8, r+12) rotates left by r.
        for r in range(1, 4):
            row = [state[r + 4 * c] for c in range(4)]
            row = row[r:] + row[:r]
            for c in range(4):
                state[r + 4 * c] = row[c]

    @staticmethod
    def _inv_shift_rows(state: list[int]) -> None:
        for r in range(1, 4):
            row = [state[r + 4 * c] for c in range(4)]
            row = row[-r:] + row[:-r]
            for c in range(4):
                state[r + 4 * c] = row[c]

    @staticmethod
    def _mix_columns(state: list[int]) -> None:
        for c in range(4):
            col = state[4 * c:4 * c + 4]
            state[4 * c + 0] = (_gf_mul(col[0], 2) ^ _gf_mul(col[1], 3)
                                ^ col[2] ^ col[3])
            state[4 * c + 1] = (col[0] ^ _gf_mul(col[1], 2)
                                ^ _gf_mul(col[2], 3) ^ col[3])
            state[4 * c + 2] = (col[0] ^ col[1] ^ _gf_mul(col[2], 2)
                                ^ _gf_mul(col[3], 3))
            state[4 * c + 3] = (_gf_mul(col[0], 3) ^ col[1] ^ col[2]
                                ^ _gf_mul(col[3], 2))

    @staticmethod
    def _inv_mix_columns(state: list[int]) -> None:
        for c in range(4):
            col = state[4 * c:4 * c + 4]
            state[4 * c + 0] = (_gf_mul(col[0], 14) ^ _gf_mul(col[1], 11)
                                ^ _gf_mul(col[2], 13) ^ _gf_mul(col[3], 9))
            state[4 * c + 1] = (_gf_mul(col[0], 9) ^ _gf_mul(col[1], 14)
                                ^ _gf_mul(col[2], 11) ^ _gf_mul(col[3], 13))
            state[4 * c + 2] = (_gf_mul(col[0], 13) ^ _gf_mul(col[1], 9)
                                ^ _gf_mul(col[2], 14) ^ _gf_mul(col[3], 11))
            state[4 * c + 3] = (_gf_mul(col[0], 11) ^ _gf_mul(col[1], 13)
                                ^ _gf_mul(col[2], 9) ^ _gf_mul(col[3], 14))

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise ConfigError("AES block must be 16 bytes")
        state = list(block)
        self._add_round_key(state, self._round_keys[0])
        for rnd in range(1, 10):
            self._sub_bytes(state, _SBOX)
            self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, self._round_keys[rnd])
        self._sub_bytes(state, _SBOX)
        self._shift_rows(state)
        self._add_round_key(state, self._round_keys[10])
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise ConfigError("AES block must be 16 bytes")
        state = list(block)
        self._add_round_key(state, self._round_keys[10])
        for rnd in range(9, 0, -1):
            self._inv_shift_rows(state)
            self._sub_bytes(state, _INV_SBOX)
            self._add_round_key(state, self._round_keys[rnd])
            self._inv_mix_columns(state)
        self._inv_shift_rows(state)
        self._sub_bytes(state, _INV_SBOX)
        self._add_round_key(state, self._round_keys[0])
        return bytes(state)


def aes128_ctr_keystream(key: bytes, nonce: int, length: int) -> bytes:
    """CTR keystream: AES-128 over a 128-bit counter seeded by ``nonce``."""
    cipher = AES128(key)
    output = bytearray()
    counter = 0
    while len(output) < length:
        block = struct.pack(">QQ", nonce & 0xFFFFFFFFFFFFFFFF, counter)
        output.extend(cipher.encrypt_block(block))
        counter += 1
    return bytes(output[:length])
