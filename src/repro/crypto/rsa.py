"""RSA from scratch — the paper's stated future work.

"We also aim to bring RSA-based key generation and usage to ERIC"
(§VI).  This module supplies that extension: deterministic RSA key
generation (Miller–Rabin over the library PRNG) and an OAEP-style
padded encrypt/decrypt used by :mod:`repro.core.provisioning` to wrap
PUF-based keys for transport to software sources — so the enrollment
handshake no longer assumes a pre-shared secure channel.

Scope note: this is a faithful *algorithmic* implementation for the
reproduction (deterministic seeding, modest default modulus for test
speed).  It is not hardened against side channels and must not be reused
as production cryptography.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.kdf import expand_keystream
from repro.crypto.prng import Xoshiro256StarStar
from repro.crypto.sha256 import sha256
from repro.errors import ConfigError

_E = 65537

# Small primes for trial division before Miller-Rabin.
_SMALL_PRIMES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47,
                 53, 59, 61, 67, 71, 73, 79, 83, 89, 97]


def _rand_below(limit: int, rng: Xoshiro256StarStar) -> int:
    """Uniform-ish integer in [0, limit) for arbitrarily wide limits.

    ``Xoshiro256StarStar.randint`` rejects per 64-bit word and cannot
    span multi-word ranges; this stitches words then reduces modulo the
    limit (the tiny bias is irrelevant for Miller-Rabin bases).
    """
    words = (limit.bit_length() + 63) // 64 + 1
    value = 0
    for _ in range(words):
        value = (value << 64) | rng.next_u64()
    return value % limit


def _is_probable_prime(n: int, rng: Xoshiro256StarStar,
                       rounds: int = 32) -> bool:
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = 2 + _rand_below(n - 3, rng)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def _random_prime(bits: int, rng: Xoshiro256StarStar) -> int:
    while True:
        candidate = rng.next_u64()
        value = 0
        for _ in range((bits + 63) // 64):
            value = (value << 64) | rng.next_u64()
        value &= (1 << bits) - 1
        value |= (1 << (bits - 1)) | 1  # full width, odd
        if value % _E == 1:
            continue  # gcd(e, p-1) must be 1; cheap pre-filter
        if _is_probable_prime(value, rng):
            return value


@dataclass(frozen=True)
class RsaPublicKey:
    n: int
    e: int = _E

    @property
    def modulus_bytes(self) -> int:
        return (self.n.bit_length() + 7) // 8


@dataclass(frozen=True)
class RsaPrivateKey:
    n: int
    d: int
    e: int = _E

    def public(self) -> RsaPublicKey:
        return RsaPublicKey(n=self.n, e=self.e)


def generate_keypair(bits: int = 1024, seed: int = 0) -> RsaPrivateKey:
    """Deterministic RSA keypair (same seed -> same keys)."""
    if bits < 512 or bits % 2:
        raise ConfigError("modulus must be an even bit count >= 512")
    rng = Xoshiro256StarStar(seed ^ 0x52534131)
    half = bits // 2
    p = _random_prime(half, rng)
    q = _random_prime(half, rng)
    while q == p:
        q = _random_prime(half, rng)
    n = p * q
    phi = (p - 1) * (q - 1)
    d = pow(_E, -1, phi)
    return RsaPrivateKey(n=n, d=d)


# --- OAEP-style padding ------------------------------------------------------
#
# Simplified OAEP: message block = 0x00 || masked_seed(32) || masked_db,
# with MGF built from the library's SHA-256 counter expansion.  Same
# structure (two Feistel-masked halves + integrity hash) as RFC 8017,
# adapted to the in-repo primitives.

_SEED_LEN = 32
_LABEL_HASH = sha256(b"ERIC-RSA-OAEP")


def _mgf(seed: bytes, length: int) -> bytes:
    return expand_keystream(seed, b"oaep-mgf", length)


def _pad(message: bytes, k: int, entropy: bytes) -> int:
    # block: 0x00 | masked_seed(32) | masked_db(k-33)
    # db:    lhash(32) | zero padding | 0x01 | message
    max_message = k - _SEED_LEN - 2 - len(_LABEL_HASH)
    if len(message) > max_message:
        raise ConfigError(
            f"message of {len(message)} bytes exceeds OAEP capacity "
            f"{max_message} for this modulus")
    db = _LABEL_HASH + b"\x00" * (
        k - len(message) - _SEED_LEN - 2 - len(_LABEL_HASH)) \
        + b"\x01" + message
    seed = sha256(entropy)[:_SEED_LEN]
    masked_db = bytes(a ^ b for a, b in zip(db, _mgf(seed, len(db))))
    masked_seed = bytes(a ^ b for a, b in
                        zip(seed, _mgf(masked_db, _SEED_LEN)))
    return int.from_bytes(b"\x00" + masked_seed + masked_db, "big")


def _unpad(value: int, k: int) -> bytes:
    blob = value.to_bytes(k, "big")
    if blob[0] != 0:
        raise ConfigError("OAEP: bad leading byte")
    masked_seed = blob[1:1 + _SEED_LEN]
    masked_db = blob[1 + _SEED_LEN:]
    seed = bytes(a ^ b for a, b in
                 zip(masked_seed, _mgf(masked_db, _SEED_LEN)))
    db = bytes(a ^ b for a, b in zip(masked_db, _mgf(seed, len(masked_db))))
    if db[:len(_LABEL_HASH)] != _LABEL_HASH:
        raise ConfigError("OAEP: label hash mismatch (wrong key?)")
    rest = db[len(_LABEL_HASH):]
    try:
        split = rest.index(b"\x01")
    except ValueError:
        raise ConfigError("OAEP: missing separator") from None
    if any(rest[:split]):
        raise ConfigError("OAEP: nonzero padding")
    return rest[split + 1:]


def encrypt(public: RsaPublicKey, message: bytes,
            entropy: bytes = b"entropy") -> bytes:
    """OAEP-padded RSA encryption of a short message (e.g. a 32-byte
    PUF-based key).  ``entropy`` seeds the padding (pass something fresh
    per encryption)."""
    k = public.modulus_bytes
    padded = _pad(message, k, entropy + message)
    if padded >= public.n:
        raise ConfigError("padded message does not fit modulus")
    return pow(padded, public.e, public.n).to_bytes(k, "big")


def decrypt(private: RsaPrivateKey, ciphertext: bytes) -> bytes:
    k = private.public().modulus_bytes
    if len(ciphertext) != k:
        raise ConfigError(
            f"ciphertext must be exactly {k} bytes for this modulus")
    value = pow(int.from_bytes(ciphertext, "big"), private.d, private.n)
    return _unpad(value, k)
