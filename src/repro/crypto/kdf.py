"""Counter-mode key derivation over HMAC-SHA256 (NIST SP 800-108 style).

This is the "conversion function" of the paper's Key Management Unit
(§III.2): the raw PUF key never leaves the device or the vendor's
enrollment record; everything downstream uses keys derived from it with a
purpose label.  Re-labelling (``context``) is how the KMU re-keys a device
over time without touching the physical PUF.
"""

from __future__ import annotations

import struct

from repro.crypto.hmac import hmac_sha256


def derive_key(secret: bytes, label: str, context: bytes = b"",
               length: int = 32) -> bytes:
    """Derive a ``length``-byte key from ``secret`` for purpose ``label``.

    ``label`` is a human-readable purpose string ("encryption",
    "signature-wrap", ...); ``context`` binds extra data (device id, epoch).
    """
    if length <= 0:
        raise ValueError("length must be positive")
    encoded_label = label.encode("utf-8")
    output = bytearray()
    counter = 1
    while len(output) < length:
        block = hmac_sha256(
            secret,
            struct.pack(">I", counter) + encoded_label + b"\x00" + context
            + struct.pack(">I", length * 8),
        )
        output.extend(block)
        counter += 1
    return bytes(output[:length])


def expand_keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """Expand ``key`` into a ``length``-byte keystream bound to ``nonce``.

    Counter-mode PRF expansion: block ``i`` is
    ``HMAC-SHA256(key, nonce || i)``.  Deterministic and seekable at
    32-byte granularity (used by :class:`repro.crypto.xor_cipher.Sha256CtrCipher`).
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    output = bytearray()
    counter = 0
    while len(output) < length:
        output.extend(hmac_sha256(key, nonce + struct.pack(">Q", counter)))
        counter += 1
    return bytes(output[:length])
