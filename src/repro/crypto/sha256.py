"""SHA-256 implemented from scratch (FIPS 180-2 / FIPS 180-4).

The paper's Signature Generator runs SHA-256 over the compiled program
before encryption (§III.1) and again, streaming, inside the Hardware
Decryption Engine as instructions are decrypted (§III.2).  Both uses need
an incremental API, so :class:`SHA256` mirrors the familiar
``update()``/``digest()`` shape.

The implementation is deliberately straightforward word-at-a-time Python —
its (slow) cost is itself part of the reproduction: the compile-time
overhead measured for Fig. 6 includes running this signature function over
the program image, exactly as the authors' C++ SHA-256 contributes to their
compile times.
"""

from __future__ import annotations

import struct

_MASK32 = 0xFFFFFFFF

# First 32 bits of the fractional parts of the cube roots of the first 64
# primes (FIPS 180-2 §4.2.2).
_K = (
    0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5,
    0x3956C25B, 0x59F111F1, 0x923F82A4, 0xAB1C5ED5,
    0xD807AA98, 0x12835B01, 0x243185BE, 0x550C7DC3,
    0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7, 0xC19BF174,
    0xE49B69C1, 0xEFBE4786, 0x0FC19DC6, 0x240CA1CC,
    0x2DE92C6F, 0x4A7484AA, 0x5CB0A9DC, 0x76F988DA,
    0x983E5152, 0xA831C66D, 0xB00327C8, 0xBF597FC7,
    0xC6E00BF3, 0xD5A79147, 0x06CA6351, 0x14292967,
    0x27B70A85, 0x2E1B2138, 0x4D2C6DFC, 0x53380D13,
    0x650A7354, 0x766A0ABB, 0x81C2C92E, 0x92722C85,
    0xA2BFE8A1, 0xA81A664B, 0xC24B8B70, 0xC76C51A3,
    0xD192E819, 0xD6990624, 0xF40E3585, 0x106AA070,
    0x19A4C116, 0x1E376C08, 0x2748774C, 0x34B0BCB5,
    0x391C0CB3, 0x4ED8AA4A, 0x5B9CCA4F, 0x682E6FF3,
    0x748F82EE, 0x78A5636F, 0x84C87814, 0x8CC70208,
    0x90BEFFFA, 0xA4506CEB, 0xBEF9A3F7, 0xC67178F2,
)

# First 32 bits of the fractional parts of the square roots of the first 8
# primes (FIPS 180-2 §5.3.2).
_H0 = (
    0x6A09E667, 0xBB67AE85, 0x3C6EF372, 0xA54FF53A,
    0x510E527F, 0x9B05688C, 0x1F83D9AB, 0x5BE0CD19,
)

BLOCK_SIZE = 64
DIGEST_SIZE = 32

# Number of compression rounds per 512-bit block; exported because the HDE
# cycle model charges one cycle per round (see repro.core.hde).
ROUNDS_PER_BLOCK = 64


def _rotr(value: int, amount: int) -> int:
    return ((value >> amount) | (value << (32 - amount))) & _MASK32


class SHA256:
    """Incremental SHA-256.

    >>> h = SHA256()
    >>> h.update(b"abc")
    >>> h.hexdigest()
    'ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad'
    """

    digest_size = DIGEST_SIZE
    block_size = BLOCK_SIZE

    def __init__(self, data: bytes = b"") -> None:
        self._h = list(_H0)
        self._buffer = bytearray()
        self._length = 0  # total message length in bytes
        self.blocks_processed = 0
        if data:
            self.update(data)

    def update(self, data: bytes) -> None:
        """Absorb ``data`` into the hash state."""
        self._length += len(data)
        self._buffer.extend(data)
        view = self._buffer
        offset = 0
        while len(view) - offset >= BLOCK_SIZE:
            self._compress(bytes(view[offset:offset + BLOCK_SIZE]))
            offset += BLOCK_SIZE
        if offset:
            del self._buffer[:offset]

    def copy(self) -> "SHA256":
        """Return an independent copy of the current hash state."""
        clone = SHA256.__new__(SHA256)
        clone._h = list(self._h)
        clone._buffer = bytearray(self._buffer)
        clone._length = self._length
        clone.blocks_processed = self.blocks_processed
        return clone

    def digest(self) -> bytes:
        """Return the 32-byte digest of everything absorbed so far.

        The internal state is not consumed; more ``update()`` calls may
        follow (they continue from the pre-padding state).
        """
        final = self.copy()
        final._pad()
        return struct.pack(">8I", *final._h)

    def hexdigest(self) -> str:
        return self.digest().hex()

    def _pad(self) -> None:
        bit_length = self._length * 8
        # 0x80 terminator, zero fill to 56 mod 64, 64-bit big-endian length.
        pad_len = (55 - self._length) % 64
        self.update(b"\x80" + b"\x00" * pad_len + struct.pack(">Q", bit_length))
        # The length counter was advanced by padding; harmless on a copy.

    def _compress(self, block: bytes) -> None:
        # Hot loop: everything bound to locals, rotations inlined.  The
        # algorithm is byte-for-byte FIPS 180-2; only the Python is tuned
        # (this function dominates ERIC's signature cost, which Fig. 6
        # measures).
        mask = _MASK32
        k = _K
        w = list(struct.unpack(">16I", block))
        append = w.append
        for i in range(16, 64):
            x = w[i - 15]
            s0 = ((x >> 7 | x << 25) ^ (x >> 18 | x << 14) ^ (x >> 3)) & mask
            x = w[i - 2]
            s1 = ((x >> 17 | x << 15) ^ (x >> 19 | x << 13) ^ (x >> 10)) \
                & mask
            append((w[i - 16] + s0 + w[i - 7] + s1) & mask)

        a, b, c, d, e, f, g, h = self._h
        for ki, wi in zip(k, w):
            s1 = ((e >> 6 | e << 26) ^ (e >> 11 | e << 21)
                  ^ (e >> 25 | e << 7)) & mask
            temp1 = h + s1 + ((e & f) ^ ((e ^ mask) & g)) + ki + wi
            s0 = ((a >> 2 | a << 30) ^ (a >> 13 | a << 19)
                  ^ (a >> 22 | a << 10)) & mask
            temp2 = s0 + ((a & b) ^ ((a ^ b) & c))
            h = g
            g = f
            f = e
            e = (d + temp1) & mask
            d = c
            c = b
            b = a
            a = (temp1 + temp2) & mask

        hh = self._h
        self._h = [
            (hh[0] + a) & mask, (hh[1] + b) & mask, (hh[2] + c) & mask,
            (hh[3] + d) & mask, (hh[4] + e) & mask, (hh[5] + f) & mask,
            (hh[6] + g) & mask, (hh[7] + h) & mask,
        ]
        self.blocks_processed += 1


def sha256(data: bytes) -> bytes:
    """One-shot convenience: the SHA-256 digest of ``data``."""
    return SHA256(data).digest()


def blocks_for_length(length: int) -> int:
    """Number of 512-bit compression blocks SHA-256 needs for a message of
    ``length`` bytes, including padding.

    Used by the HDE cycle model: hashing charges
    ``blocks_for_length(n) * ROUNDS_PER_BLOCK`` cycles.
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    return (length + 8) // 64 + 1
