"""HDE area model: unit-by-unit composition -> Table II.

Each of the paper's five HDE units (§III.2) is composed from
:class:`repro.hw.primitives.Primitives`:

* **PUF Key Generator** — 32 arbiter chains (switch stages are mostly
  routing: 2 muxes per stage), arbiter latches, vote counters, challenge
  and key registers.
* **Key Management Unit** — key register, derivation datapath reusing the
  SHA core (control + byte-select muxes), epoch/config registers.
* **Decryption Unit** — 64-bit XOR array, keystream register, map-bit
  shift register and walk FSM.
* **Signature Generator** — a serialized SHA-256 core: state (8x32) and
  schedule (16x32) registers, one 32-bit compression datapath reused over
  64 rounds (adders, rotate-XOR sigma logic), round constant ROM (LUTROM).
* **Validation Unit** — 256-bit signature registers (carried + computed)
  and an equality comparator.

The Rocket baseline LUT/FF counts are taken from the paper's own Table II
("Rocket Chip" column) — the baseline SoC is not the claim under test, the
HDE delta is.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.primitives import AreaEstimate, Primitives

#: Paper Table II, "Rocket Chip" column.
ROCKET_BASELINE_LUTS = 33894
ROCKET_BASELINE_FFS = 19093

#: Paper Table II, "Rocket Chip + HDE" column (for reference in reports).
PAPER_HDE_LUTS = 34811 - ROCKET_BASELINE_LUTS
PAPER_HDE_FFS = 19854 - ROCKET_BASELINE_FFS


@dataclass
class HdeAreaModel:
    """Structural area estimate of the Hardware Decryption Engine."""

    primitives: Primitives = field(default_factory=Primitives)
    puf_width: int = 32
    puf_stages: int = 8
    key_bits: int = 256
    datapath_bits: int = 64
    signature_bits: int = 256

    def puf_key_generator(self) -> AreaEstimate:
        p = self.primitives
        # Each stage is two 1-bit 2:1 muxes (top/bottom path crossing).
        chains = p.mux2(2 * self.puf_stages).scaled(self.puf_width)
        latches = p.register(self.puf_width)
        vote_counters = p.counter(4).scaled(self.puf_width)
        # Challenge vectors are static per readout: held in LUTRAM.
        challenge_store = p.lutram(self.puf_stages * self.puf_width)
        key_reg = p.register(self.puf_width)
        control = p.fsm(states=6)
        return (chains + latches + vote_counters + challenge_store
                + key_reg + control)

    def key_management_unit(self) -> AreaEstimate:
        p = self.primitives
        # Derived keys stream through the shared SHA core; only the epoch
        # /config state and byte-select path are the KMU's own fabric.
        key_store = p.lutram(self.key_bits)
        epoch_reg = p.register(32)
        derive_mux = p.mux2(64)
        control = p.fsm(states=8)
        return key_store + epoch_reg + derive_mux + control

    def decryption_unit(self) -> AreaEstimate:
        p = self.primitives
        xor_datapath = p.xor_array(self.datapath_bits)
        keystream_reg = p.register(self.datapath_bits)
        data_reg = p.register(self.datapath_bits)
        map_shift = p.shift_register_srl(64)   # one burst of map bits
        offset_counter = p.counter(32)
        walk_fsm = p.fsm(states=8)
        length_decode = p.and_or_array(16)     # RVC length bits check
        return (xor_datapath + keystream_reg + data_reg + map_shift
                + offset_counter + walk_fsm + length_decode)

    def signature_generator(self) -> AreaEstimate:
        p = self.primitives
        # Serialized SHA-256: working state in FFs, the 16-word message
        # schedule in SRL shift registers (standard small-core layout).
        state = p.register(8 * 32)
        schedule = p.shift_register_srl(16 * 32)
        ch_maj = p.and_or_array(2 * 32)
        sigmas = p.xor_array(4 * 32)
        adders = p.adder(32).scaled(5)
        schedule_update = p.adder(32).scaled(2) + p.xor_array(2 * 32)
        k_rom = AreaEstimate(64, 0)  # 64x32 LUTROM
        round_counter = p.counter(7)
        control = p.fsm(states=6)
        return (state + schedule + ch_maj + sigmas + adders
                + schedule_update + k_rom + round_counter + control)

    def validation_unit(self) -> AreaEstimate:
        p = self.primitives
        # Signatures are compared as a 32-bit stream against the SHA
        # state, so only a word of each plus a sticky mismatch flag is
        # registered; the carried signature sits in LUTRAM.
        carried_store = p.lutram(self.signature_bits)
        stream_regs = p.register(2 * 32 + 1)
        compare = p.comparator(32)
        control = p.fsm(states=4)
        return carried_store + stream_regs + compare + control

    def interconnect(self) -> AreaEstimate:
        """Bus interface + inter-unit handshake (the 'common interface'
        of §IV.B)."""
        p = self.primitives
        return p.register(96) + p.mux2(128) + p.fsm(states=8)

    def units(self) -> dict[str, AreaEstimate]:
        return {
            "PUF Key Generator": self.puf_key_generator(),
            "Key Management Unit": self.key_management_unit(),
            "Decryption Unit": self.decryption_unit(),
            "Signature Generator": self.signature_generator(),
            "Validation Unit": self.validation_unit(),
            "Interconnect": self.interconnect(),
        }

    def total(self) -> AreaEstimate:
        total = AreaEstimate(0, 0)
        for estimate in self.units().values():
            total = total + estimate
        return total


def area_table(model: HdeAreaModel | None = None) -> dict:
    """Regenerate Table II: baseline vs baseline+HDE with % change."""
    model = model or HdeAreaModel()
    hde = model.total()
    luts_with = ROCKET_BASELINE_LUTS + hde.luts
    ffs_with = ROCKET_BASELINE_FFS + hde.ffs
    return {
        "rocket_luts": ROCKET_BASELINE_LUTS,
        "rocket_ffs": ROCKET_BASELINE_FFS,
        "with_hde_luts": luts_with,
        "with_hde_ffs": ffs_with,
        "hde_luts": hde.luts,
        "hde_ffs": hde.ffs,
        "lut_increase_pct": 100.0 * hde.luts / ROCKET_BASELINE_LUTS,
        "ff_increase_pct": 100.0 * hde.ffs / ROCKET_BASELINE_FFS,
        "paper_lut_increase_pct": 100.0 * PAPER_HDE_LUTS
        / ROCKET_BASELINE_LUTS,
        "paper_ff_increase_pct": 100.0 * PAPER_HDE_FFS / ROCKET_BASELINE_FFS,
        "units": {name: (est.luts, est.ffs)
                  for name, est in model.units().items()},
    }
