"""AES-per-cache-line memory-encryption baseline (related work, §V).

The paper contrasts ERIC with architectures that encrypt *all* of memory
with AES ([29], [30], AEGIS [47-49]): every cache-line fill decrypts, and
every write-back re-encrypts, so "programs with poor cache performance
experience an extra delay each time when trying to access the main
memory" — reported as an ~30 % class IPC loss.

This model applies that cost to a finished run's counters: each L1 miss
pays the iterative AES core latency for a full line (fills), and a
write-allocate share of misses pays it again (write-backs).  ERIC's
load-time-only HDE cost is independent of cache behaviour, which is the
comparison the ablation bench prints.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.aes import CYCLES_PER_BLOCK
from repro.soc.counters import PerfCounters


@dataclass(frozen=True)
class AesMemoryModel:
    """Cost model for an AES engine on the memory port."""

    line_bytes: int = 64
    #: fraction of misses that also force an (encrypted) write-back
    writeback_fraction: float = 0.3

    @property
    def cycles_per_line(self) -> int:
        blocks = (self.line_bytes + 15) // 16
        return blocks * CYCLES_PER_BLOCK

    def extra_cycles(self, counters: PerfCounters) -> int:
        misses = counters.icache_misses + counters.dcache_misses
        fills = misses * self.cycles_per_line
        writebacks = int(misses * self.writeback_fraction) \
            * self.cycles_per_line
        return fills + writebacks

    def slowdown_pct(self, counters: PerfCounters) -> float:
        if counters.cycles == 0:
            return 0.0
        return 100.0 * self.extra_cycles(counters) / counters.cycles


#: Rough LUT cost of an iterative AES-128 core on 7-series fabric, for
#: the area comparison against the HDE (literature values ~2.4-3.5k).
AES_CORE_LUTS = 2800
AES_CORE_FFS = 1700
