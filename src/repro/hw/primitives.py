"""Primitive FPGA cost building blocks.

Costs follow Xilinx 7-series (the Zedboard's Zynq-7000) rules of thumb:

* a register costs one flip-flop per bit;
* a 2-input logic function of up to 6 inputs packs into one LUT6 — an
  n-bit XOR/AND/MUX2 array costs ~n LUTs (often less after packing, so a
  packing efficiency factor is applied);
* an n-bit ripple-carry adder costs ~n LUTs (carry chains are free);
* an n-bit equality comparator tree costs ~n/3 LUTs (3 pairs per LUT6
  feed the carry chain).

These are estimates, not synthesis results; the model's output is
validated against the *shape* of Table II (single-digit percent deltas),
and the ablation bench sweeps the efficiency factor to show the
conclusion is robust.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class AreaEstimate:
    """LUT/FF cost of a hardware unit."""

    luts: int
    ffs: int

    def __add__(self, other: "AreaEstimate") -> "AreaEstimate":
        return AreaEstimate(self.luts + other.luts, self.ffs + other.ffs)

    def scaled(self, factor: float) -> "AreaEstimate":
        return AreaEstimate(round(self.luts * factor),
                            round(self.ffs * factor))


@dataclass(frozen=True)
class Primitives:
    """Primitive cost table with a LUT packing-efficiency knob."""

    #: fraction of naive LUT count that survives packing/optimization
    packing_efficiency: float = 0.85

    def __post_init__(self) -> None:
        if not 0.1 <= self.packing_efficiency <= 1.0:
            raise ConfigError("packing_efficiency must be in [0.1, 1.0]")

    def _luts(self, naive: float) -> int:
        return max(1, round(naive * self.packing_efficiency))

    def register(self, bits: int) -> AreaEstimate:
        """Plain storage register."""
        return AreaEstimate(0, bits)

    def xor_array(self, bits: int) -> AreaEstimate:
        """Bitwise XOR of two buses (the decryption datapath)."""
        return AreaEstimate(self._luts(bits / 2), 0)

    def and_or_array(self, bits: int) -> AreaEstimate:
        return AreaEstimate(self._luts(bits / 2), 0)

    def adder(self, bits: int) -> AreaEstimate:
        return AreaEstimate(self._luts(bits), 0)

    def mux2(self, bits: int) -> AreaEstimate:
        return AreaEstimate(self._luts(bits / 2), 0)

    def comparator(self, bits: int) -> AreaEstimate:
        return AreaEstimate(self._luts(bits / 3), 0)

    def rotator_fixed(self, bits: int) -> AreaEstimate:
        """Fixed rotation is wiring — free."""
        return AreaEstimate(0, 0)

    def counter(self, bits: int) -> AreaEstimate:
        return AreaEstimate(self._luts(bits), bits)

    def fsm(self, states: int, outputs: int = 8) -> AreaEstimate:
        """Small control FSM: one-hot state register + next-state logic."""
        return AreaEstimate(self._luts(states + outputs), states)

    def shift_register_srl(self, bits: int) -> AreaEstimate:
        """Deep shift register mapped to SRL32 LUTs (7-series): 32 bits of
        shift state per LUT, no flip-flops.  This is how small SHA cores
        hold the 16-word message schedule."""
        return AreaEstimate(max(1, (bits + 31) // 32), 0)

    def lutram(self, bits: int) -> AreaEstimate:
        """Distributed RAM (RAM64X1S): 64 bits per LUT, no flip-flops."""
        return AreaEstimate(max(1, (bits + 63) // 64), 0)
