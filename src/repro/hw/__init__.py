"""Structural FPGA area model (Table II).

The paper reports Vivado post-implementation LUT/FF counts for Rocket Chip
with and without the Hardware Decryption Engine.  Synthesizing RTL is out
of scope for a Python reproduction, so this package estimates area
*structurally*: every HDE unit is composed from primitive costs (flip-flop
bits, LUTs per adder/xor/mux bit), and the Rocket baseline uses the
paper's own published counts.  The claim under test — the HDE adds only a
few percent — is then reproduced from the architecture itself.
"""

from repro.hw.primitives import AreaEstimate, Primitives
from repro.hw.area import (
    HdeAreaModel,
    ROCKET_BASELINE_LUTS,
    ROCKET_BASELINE_FFS,
    area_table,
)

__all__ = [
    "AreaEstimate",
    "Primitives",
    "HdeAreaModel",
    "ROCKET_BASELINE_LUTS",
    "ROCKET_BASELINE_FFS",
    "area_table",
]
