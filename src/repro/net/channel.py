"""Untrusted transfer channel with pluggable interceptors.

``UntrustedChannel.transfer(payload)`` runs the payload through every
interceptor in order and returns what arrives at the far end.  Interceptors
model the §II.C threats: eavesdropping (IP theft), malicious modification,
full replacement (running programs of unknown origin), and soft errors.
"""

from __future__ import annotations

from repro.crypto.prng import Xoshiro256StarStar
from repro.errors import ChannelError


class Interceptor:
    """Transforms a payload in flight."""

    def intercept(self, payload: bytes) -> bytes:
        raise NotImplementedError


class Eavesdropper(Interceptor):
    """Passive capture: records every payload it sees, forwards unchanged.

    What it captured feeds the static-analysis attack.
    """

    def __init__(self) -> None:
        self.captured: list[bytes] = []

    def intercept(self, payload: bytes) -> bytes:
        self.captured.append(payload)
        return payload


class BitFlipper(Interceptor):
    """Random bit flips: soft errors in transfer/storage (§II.C threat iv).

    Either a fixed number of flips (``flips``) or a bit-error rate
    (``ber``) applied per transfer.
    """

    def __init__(self, flips: int = 0, ber: float = 0.0,
                 seed: int = 0xBADBEEF) -> None:
        if flips < 0 or ber < 0:
            raise ChannelError("flips and ber must be non-negative")
        if flips and ber:
            raise ChannelError("give either flips or ber, not both")
        self.flips = flips
        self.ber = ber
        self._rng = Xoshiro256StarStar(seed)

    def intercept(self, payload: bytes) -> bytes:
        if not payload:
            return payload
        mutated = bytearray(payload)
        total_bits = len(payload) * 8
        if self.flips:
            positions = {self._rng.randint(0, total_bits - 1)
                         for _ in range(self.flips)}
        else:
            positions = {i for i in range(total_bits)
                         if self._rng.random() < self.ber}
        for bit in positions:
            mutated[bit // 8] ^= 1 << (bit % 8)
        return bytes(mutated)


class Patcher(Interceptor):
    """Targeted modification: overwrite bytes at a fixed offset (a
    malicious party inserting its own code, §II.C threat ii)."""

    def __init__(self, offset: int, patch: bytes) -> None:
        if offset < 0:
            raise ChannelError("patch offset must be non-negative")
        self.offset = offset
        self.patch = patch

    def intercept(self, payload: bytes) -> bytes:
        if self.offset + len(self.patch) > len(payload):
            raise ChannelError("patch outside payload bounds")
        mutated = bytearray(payload)
        mutated[self.offset:self.offset + len(self.patch)] = self.patch
        return bytes(mutated)


class Replacer(Interceptor):
    """Full payload replacement (running programs of unknown origin)."""

    def __init__(self, replacement: bytes) -> None:
        self.replacement = replacement

    def intercept(self, payload: bytes) -> bytes:
        return self.replacement


class UntrustedChannel:
    """A network path from software source to target hardware."""

    def __init__(self, interceptors: list[Interceptor] | None = None) -> None:
        self.interceptors = list(interceptors or [])
        self.transfers = 0

    def add(self, interceptor: Interceptor) -> None:
        self.interceptors.append(interceptor)

    def transfer(self, payload: bytes) -> bytes:
        """Send ``payload`` through the channel; returns what arrives."""
        self.transfers += 1
        for interceptor in self.interceptors:
            payload = interceptor.intercept(payload)
        return payload
