"""Dynamic-analysis attack model.

The paper's second threat: run the captured binary "on a computer that is
controlled by malicious parties and the computer's state (e.g.,
performance counters, register values) can be monitored" (§I).

ERIC's defence is that a non-target device cannot decrypt the package, so
there is nothing meaningful to execute.  :func:`attempt_execution` models
the attacker faithfully: they load whatever bytes they have into their own
machine and observe what happens; the outcome object records whether any
execution (and how much of it) was observed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import (
    EricError,
    ExecutionLimitExceeded,
    IllegalInstruction,
    SimulatorError,
)


@dataclass
class DynamicAnalysisOutcome:
    """What the attacker's instrumented machine observed."""

    executed: bool
    outcome: str                 # 'completed' | 'rejected' | 'crashed' | ...
    instructions_observed: int = 0
    counters: dict = field(default_factory=dict)
    console: str = ""
    detail: str = ""

    @property
    def leaked_behaviour(self) -> bool:
        """Did the attacker watch meaningful execution (counter traces)?

        A rejection before execution or a crash within a handful of
        instructions leaks essentially nothing.
        """
        return self.executed and self.instructions_observed > 100

    def to_record(self, device_seed: int | None = None) -> dict:
        """JSON-serializable summary for :class:`repro.farm` records
        (``FarmRecord.analysis["dynamic"]`` entries)."""
        record = {
            "executed": self.executed,
            "outcome": self.outcome,
            "instructions_observed": self.instructions_observed,
            "leaked": self.leaked_behaviour,
        }
        if device_seed is not None:
            record["device_seed"] = device_seed
        return record


def attempt_execution(device, package_bytes: bytes,
                      max_instructions: int = 2_000_000,
                      ) -> DynamicAnalysisOutcome:
    """Try to run ``package_bytes`` on ``device`` and profile it.

    ``device`` is a :class:`repro.core.device.Device` — normally one the
    attacker controls (not the package's target).  Every failure mode is
    captured rather than raised: the attacker observes outcomes.
    """
    try:
        result = device.load_and_run(package_bytes,
                                     max_instructions=max_instructions)
    except EricError as exc:
        return _failure_outcome(exc)
    return DynamicAnalysisOutcome(
        executed=True,
        outcome="completed",
        instructions_observed=result.run.counters.instret,
        counters=result.run.counters.snapshot(),
        console=result.run.stdout,
    )


def _failure_outcome(exc: EricError) -> DynamicAnalysisOutcome:
    if isinstance(exc, IllegalInstruction):
        return DynamicAnalysisOutcome(
            executed=True, outcome="crashed",
            instructions_observed=0,
            detail=str(exc),
        )
    if isinstance(exc, ExecutionLimitExceeded):
        return DynamicAnalysisOutcome(
            executed=True, outcome="hung", detail=str(exc))
    if isinstance(exc, SimulatorError):
        return DynamicAnalysisOutcome(
            executed=True, outcome="crashed", detail=str(exc))
    # ValidationError, PackageFormatError, KeyMismatchError...
    return DynamicAnalysisOutcome(
        executed=False, outcome="rejected", detail=str(exc))
