"""Static-analysis attack model.

A reverse engineer with a captured binary runs a disassembler over it,
histograms opcodes, hunts for strings and pointers (paper §I, "static-
analysis attacks").  :func:`analyze_blob` performs those steps and reports
quantitative obfuscation metrics, so tests and benchmarks can show the
attack working on plaintext binaries and failing on ERIC packages:

* ``valid_decode_fraction`` — fraction of instruction-aligned windows
  that decode as valid RV64IMC; plaintext text sections sit near 1.0,
  ciphertext near the density of the encoding space.
* ``byte_entropy_bits`` — Shannon entropy per byte; compiled code has
  heavy structure (~4-6 bits), keystream output approaches 8.
* ``opcode_histogram`` — what an attacker would use to fingerprint
  compiler/algorithm; meaningless on ciphertext.
* ``strings`` — printable runs >= 4 chars (leaked constants/messages).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import DecodingError
from repro.isa.compressed import decode_compressed, is_compressed_halfword
from repro.isa.decoding import decode


@dataclass
class StaticAnalysisReport:
    size: int
    valid_decode_fraction: float
    byte_entropy_bits: float
    opcode_histogram: dict[str, int] = field(default_factory=dict)
    strings: list[str] = field(default_factory=list)

    @property
    def looks_like_code(self) -> bool:
        """Attacker's verdict: is this plausibly a plaintext text section?

        Compiled RISC-V text decodes almost everywhere and keeps byte
        entropy well below random; ciphertext fails both tests.
        """
        return self.valid_decode_fraction > 0.9 \
            and self.byte_entropy_bits < 7.0


def analyze_blob(blob: bytes) -> StaticAnalysisReport:
    """Run the full static-analysis toolbox over ``blob``."""
    return StaticAnalysisReport(
        size=len(blob),
        valid_decode_fraction=_decode_fraction(blob),
        byte_entropy_bits=byte_entropy(blob),
        opcode_histogram=_opcode_histogram(blob),
        strings=extract_strings(blob),
    )


def _decode_fraction(blob: bytes) -> float:
    """Fraction of decode attempts that succeed on a resynchronizing
    linear walk (what objdump effectively does): on success advance by
    the instruction's size, on failure advance one parcel (2 bytes)."""
    if len(blob) < 4:
        return 0.0
    attempts = 0
    valid = 0
    offset = 0
    while offset + 4 <= len(blob):
        attempts += 1
        halfword = int.from_bytes(blob[offset:offset + 2], "little")
        try:
            if is_compressed_halfword(halfword):
                decode_compressed(halfword)
                offset += 2
            else:
                decode(int.from_bytes(blob[offset:offset + 4], "little"))
                offset += 4
            valid += 1
        except DecodingError:
            offset += 2
    return valid / attempts if attempts else 0.0


def mnemonic_entropy(histogram: dict[str, int]) -> float:
    """Shannon entropy (bits) of the mnemonic distribution.

    Real compiler output is dominated by a handful of mnemonics (low
    entropy); decodes of ciphertext scatter across the whole ISA (high
    entropy).  Used by the attack-resistance benchmarks.
    """
    total = sum(histogram.values())
    if total == 0:
        return 0.0
    entropy = 0.0
    for count in histogram.values():
        p = count / total
        entropy -= p * math.log2(p)
    return entropy


def byte_entropy(blob: bytes) -> float:
    """Shannon entropy in bits/byte."""
    if not blob:
        return 0.0
    counts = [0] * 256
    for byte in blob:
        counts[byte] += 1
    total = len(blob)
    entropy = 0.0
    for count in counts:
        if count:
            p = count / total
            entropy -= p * math.log2(p)
    return entropy


def _opcode_histogram(blob: bytes) -> dict[str, int]:
    """Mnemonic histogram over a linear disassembly walk."""
    histogram: dict[str, int] = {}
    offset = 0
    while offset + 2 <= len(blob):
        halfword = int.from_bytes(blob[offset:offset + 2], "little")
        try:
            if is_compressed_halfword(halfword):
                name, _ = decode_compressed(halfword)
                histogram[name] = histogram.get(name, 0) + 1
                offset += 2
            else:
                if offset + 4 > len(blob):
                    break
                instr = decode(int.from_bytes(blob[offset:offset + 4],
                                              "little"))
                histogram[instr.name] = histogram.get(instr.name, 0) + 1
                offset += 4
        except DecodingError:
            offset += 2
    return histogram


def extract_strings(blob: bytes, min_length: int = 4) -> list[str]:
    """Printable-ASCII runs, the classic `strings` tool."""
    found: list[str] = []
    current: list[str] = []
    for byte in blob:
        if 0x20 <= byte < 0x7F:
            current.append(chr(byte))
        else:
            if len(current) >= min_length:
                found.append("".join(current))
            current = []
    if len(current) >= min_length:
        found.append("".join(current))
    return found
