"""Untrusted-network substrate and attacker models.

The threat model (paper §II.C) assumes program packages travel over an
untrusted network where malicious parties can read, modify or replace
them, and where soft errors can flip bits.  This package provides:

* :mod:`repro.net.channel` — a transfer channel with pluggable
  interceptors (eavesdropper, bit-flipper, patcher, replacer);
* :mod:`repro.net.static_attacker` — the static-analysis attack:
  windowed disassembly, opcode histograms, byte entropy, string
  extraction, run on whatever bytes the channel leaks;
* :mod:`repro.net.dynamic_attacker` — the dynamic-analysis attack: run
  the captured package on attacker-controlled hardware and observe
  performance counters / execution behaviour.
"""

from repro.net.channel import (
    BitFlipper,
    Eavesdropper,
    Patcher,
    Replacer,
    UntrustedChannel,
)
from repro.net.static_attacker import StaticAnalysisReport, analyze_blob
from repro.net.dynamic_attacker import DynamicAnalysisOutcome, attempt_execution

__all__ = [
    "UntrustedChannel",
    "Eavesdropper",
    "BitFlipper",
    "Patcher",
    "Replacer",
    "StaticAnalysisReport",
    "analyze_blob",
    "DynamicAnalysisOutcome",
    "attempt_execution",
]
