"""Plain-text table rendering for the evaluation harness.

Cells may be wrapped in :class:`Volatile` to mark machine-dependent
wall-clock measurements: a live render (``stable=False``) shows the
measured number, a stable render replaces it with a fixed placeholder.
The benchmark suite persists the stable render under
``benchmarks/results/`` so regenerating results on another machine (or
the same one, a minute later) produces no spurious diffs.
"""

from __future__ import annotations


class Volatile:
    """A measured value that must not leak into persisted results."""

    PLACEHOLDER = "~"

    def __init__(self, value) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Volatile({self.value!r})"


def format_table(headers: list[str], rows: list[list], title: str = "",
                 stable: bool = False) -> str:
    """Render an ASCII table; cells are str()-ed, numbers right-aligned.

    ``stable=True`` masks :class:`Volatile` cells with a placeholder,
    yielding byte-identical output across runs when everything else is
    deterministic.
    """
    cells = [[_fmt(value, stable) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(parts: list[str], pad: str = " ") -> str:
        return "| " + " | ".join(
            part.ljust(width, pad) if not _is_number(part)
            else part.rjust(width)
            for part, width in zip(parts, widths)
        ) + " |"

    separator = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    out = []
    if title:
        out.append(title)
    out.append(separator)
    out.append(line(headers))
    out.append(separator)
    for row in cells:
        out.append(line(row))
    out.append(separator)
    return "\n".join(out)


def _fmt(value, stable: bool = False) -> str:
    if isinstance(value, Volatile):
        return Volatile.PLACEHOLDER if stable else _fmt(value.value)
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def _is_number(text: str) -> bool:
    try:
        float(text.replace("%", "").replace("x", ""))
        return True
    except ValueError:
        return False
