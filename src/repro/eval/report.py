"""Plain-text table rendering for the evaluation harness."""

from __future__ import annotations


def format_table(headers: list[str], rows: list[list], title: str = "",
                 ) -> str:
    """Render an ASCII table; cells are str()-ed, numbers right-aligned."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(parts: list[str], pad: str = " ") -> str:
        return "| " + " | ".join(
            part.ljust(width, pad) if not _is_number(part)
            else part.rjust(width)
            for part, width in zip(parts, widths)
        ) + " |"

    separator = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    out = []
    if title:
        out.append(title)
    out.append(separator)
    out.append(line(headers))
    out.append(separator)
    for row in cells:
        out.append(line(row))
    out.append(separator)
    return "\n".join(out)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def _is_number(text: str) -> bool:
    try:
        float(text.replace("%", "").replace("x", ""))
        return True
    except ValueError:
        return False
