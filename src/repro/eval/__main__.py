"""``python -m repro.eval [experiment ...]`` — regenerate paper results.

With no arguments, runs every experiment (table1, table2, fig5, fig6,
fig7) and prints each table with paper-vs-measured headlines.
"""

from __future__ import annotations

import sys

from repro.eval import EXPERIMENTS


def main(argv: list[str]) -> int:
    names = argv or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; "
              f"available: {list(EXPERIMENTS)}", file=sys.stderr)
        return 2
    for name in names:
        result = EXPERIMENTS[name].run()
        print(result.render())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
