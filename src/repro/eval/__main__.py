"""``python -m repro.eval [experiment ...]`` — regenerate paper results.

With no experiment arguments, runs everything (table1, table2, fig5,
fig6, fig7).  The figure experiments measure through the simulation
farm: ``--jobs N`` fans their workload matrices out over N worker
processes, ``--store DIR`` resumes from (and adds to) a persistent
result store, ``--shards N`` distributes the matrices over N
coordinated workers with per-shard stores merged back into ``--store``,
and ``--force`` re-measures stored keys.
"""

from __future__ import annotations

import argparse
import sys

from repro.eval import EXPERIMENTS

#: Experiments whose run() sources measurements through repro.farm.
FARM_EXPERIMENTS = ("fig5", "fig6", "fig7")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval",
        description="regenerate the paper's tables and figures")
    parser.add_argument("experiments", nargs="*", metavar="experiment",
                        help=f"subset to run (default: all of "
                             f"{', '.join(EXPERIMENTS)})")
    parser.add_argument("--jobs", type=int, default=1,
                        help="simulation-farm worker processes (default 1)")
    parser.add_argument("--store", metavar="DIR",
                        help="persistent farm result store to resume from "
                             "(default: measure in-memory)")
    parser.add_argument("--shards", type=int, default=0,
                        help="shard farm matrices over N coordinated "
                             "worker processes (requires --store)")
    parser.add_argument("--force", action="store_true",
                        help="re-measure even stored results")
    return parser


def main(argv: list[str]) -> int:
    args = build_parser().parse_args(argv)
    names = args.experiments or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; "
              f"available: {list(EXPERIMENTS)}", file=sys.stderr)
        return 2
    farm = None
    if any(name in FARM_EXPERIMENTS for name in names):
        # one farm for the whole invocation: fig5/6/7 share the worker
        # pool budget and, when --store is given, one result store
        from repro.farm import FarmCoordinator, ResultStore, SimulationFarm
        store = ResultStore(args.store) if args.store else None
        if store is not None and store.skipped_warning():
            print(f"warning: {store.skipped_warning()}", file=sys.stderr)
        if args.shards:
            if store is None:
                print("--shards needs --store: shard stores merge into "
                      "the main result store", file=sys.stderr)
                return 2
            farm = FarmCoordinator(store=store, shards=args.shards,
                                   jobs_per_shard=args.jobs)
        else:
            farm = SimulationFarm(store=store, jobs=args.jobs)
    for name in names:
        if name in FARM_EXPERIMENTS:
            result = EXPERIMENTS[name].run(farm=farm, force=args.force)
        else:
            result = EXPERIMENTS[name].run()
        print(result.render())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
