"""Fig. 7 — end-to-end execution-time overhead on the target hardware.

Paper headline: ERIC "slows down the system by 7.05 % at most and 4.13 %
on average", and the overhead is proportional to the program's static
size over its dynamic length (the HDE decrypts+verifies once at load).

The reproduction runs every workload twice on the same device model:
plain (no HDE in the path) and as an ERIC package (HDE cycles + run
cycles), reporting total-cycle ratios.  Measurements are sourced
through :mod:`repro.farm`: pass ``jobs=N`` to fan the workloads out
over worker processes, or a shared ``farm`` to resume from (and add
to) a persistent result store.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import EricConfig
from repro.errors import EricError
from repro.eval.report import format_table
from repro.farm import JobMatrix, SimParams, SimulationFarm
from repro.workloads import all_workloads

_DEVICE_SEED = 0xE7A1


@dataclass
class Fig7Row:
    name: str
    plain_cycles: int
    hde_cycles: int
    eric_cycles: int

    @property
    def overhead_pct(self) -> float:
        return 100.0 * (self.eric_cycles / self.plain_cycles - 1.0)


@dataclass
class Fig7Result:
    rows: list[Fig7Row] = field(default_factory=list)

    @property
    def summary(self) -> dict:
        overheads = [r.overhead_pct for r in self.rows]
        return {
            "avg_overhead_pct": sum(overheads) / len(overheads),
            "max_overhead_pct": max(overheads),
            "paper_avg_overhead_pct": 4.13,
            "paper_max_overhead_pct": 7.05,
        }

    def render(self) -> str:
        table_rows = [
            [r.name, r.plain_cycles, r.hde_cycles, r.eric_cycles,
             f"+{r.overhead_pct:.2f}%"]
            for r in self.rows
        ]
        s = self.summary
        body = format_table(
            ["workload", "plain cycles", "HDE cycles", "ERIC cycles",
             "overhead"],
            table_rows,
            title="Fig. 7: Execution time, ERIC vs unencrypted baseline",
        )
        tail = (f"measured: avg +{s['avg_overhead_pct']:.2f}% / "
                f"max +{s['max_overhead_pct']:.2f}%   "
                f"paper: avg +{s['paper_avg_overhead_pct']:.2f}% / "
                f"max +{s['paper_max_overhead_pct']:.2f}%")
        return body + "\n" + tail


def matrix(config: EricConfig | None = None) -> JobMatrix:
    """The Fig. 7 job grid: every workload on the Table I device."""
    return JobMatrix(
        workloads=tuple(all_workloads()),
        configs=(config or EricConfig(),),
        params=(SimParams(device_seed=_DEVICE_SEED),),
        simulate=True,
    )


def run(config: EricConfig | None = None, *,
        farm: SimulationFarm | None = None, jobs: int = 1,
        force: bool = False) -> Fig7Result:
    farm = farm or SimulationFarm(jobs=jobs)
    report = farm.run(matrix(config), force=force)
    report.require_ok()
    result = Fig7Result()
    workloads = all_workloads()
    # identity (name, oracle) comes from the requesting spec: a stored
    # record may have been measured under another display name
    for job in report.results:
        record = job.record
        expected = workloads[job.spec.workload].expected_stdout
        if not record.output_ok(expected):
            raise EricError(f"{job.spec.display_name}: simulated output "
                            "does not match the workload oracle")
        result.rows.append(Fig7Row(
            name=job.spec.display_name,
            plain_cycles=record.plain_cycles,
            hde_cycles=record.hde_cycles,
            eric_cycles=record.eric_cycles,
        ))
    return result
