"""Fig. 7 — end-to-end execution-time overhead on the target hardware.

Paper headline: ERIC "slows down the system by 7.05 % at most and 4.13 %
on average", and the overhead is proportional to the program's static
size over its dynamic length (the HDE decrypts+verifies once at load).

The reproduction runs every workload twice on the same device model:
plain (no HDE in the path) and as an ERIC package (HDE cycles + run
cycles), reporting total-cycle ratios.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.compiler_driver import EricCompiler
from repro.core.config import EricConfig
from repro.core.device import Device
from repro.eval.report import format_table
from repro.workloads import all_workloads

_DEVICE_SEED = 0xE7A1


@dataclass
class Fig7Row:
    name: str
    plain_cycles: int
    hde_cycles: int
    eric_cycles: int

    @property
    def overhead_pct(self) -> float:
        return 100.0 * (self.eric_cycles / self.plain_cycles - 1.0)


@dataclass
class Fig7Result:
    rows: list[Fig7Row] = field(default_factory=list)

    @property
    def summary(self) -> dict:
        overheads = [r.overhead_pct for r in self.rows]
        return {
            "avg_overhead_pct": sum(overheads) / len(overheads),
            "max_overhead_pct": max(overheads),
            "paper_avg_overhead_pct": 4.13,
            "paper_max_overhead_pct": 7.05,
        }

    def render(self) -> str:
        table_rows = [
            [r.name, r.plain_cycles, r.hde_cycles, r.eric_cycles,
             f"+{r.overhead_pct:.2f}%"]
            for r in self.rows
        ]
        s = self.summary
        body = format_table(
            ["workload", "plain cycles", "HDE cycles", "ERIC cycles",
             "overhead"],
            table_rows,
            title="Fig. 7: Execution time, ERIC vs unencrypted baseline",
        )
        tail = (f"measured: avg +{s['avg_overhead_pct']:.2f}% / "
                f"max +{s['max_overhead_pct']:.2f}%   "
                f"paper: avg +{s['paper_avg_overhead_pct']:.2f}% / "
                f"max +{s['paper_max_overhead_pct']:.2f}%")
        return body + "\n" + tail


def run(config: EricConfig | None = None,
        device: Device | None = None) -> Fig7Result:
    device = device or Device(device_seed=_DEVICE_SEED)
    compiler = EricCompiler(config)
    target_key = device.enrollment_key()
    result = Fig7Result()
    for name, workload in all_workloads().items():
        package = compiler.compile_and_package(workload.source, target_key,
                                               name=name)
        plain = device.run_plain(package.program)
        eric = device.load_and_run(package.package_bytes)
        assert eric.run.stdout == workload.expected_stdout, name
        result.rows.append(Fig7Row(
            name=name,
            plain_cycles=plain.counters.cycles,
            hde_cycles=eric.hde.total_cycles,
            eric_cycles=eric.total_cycles,
        ))
    return result
