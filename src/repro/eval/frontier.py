"""Security-vs-overhead frontier: score protection policies.

The paper reports ERIC's execution overhead (Fig. 7) and argues for
its security qualitatively; what it never had — and what a declarative
policy space makes possible — is the *frontier*: for each candidate
:class:`~repro.policy.ProtectionPolicy`, how much attacker resistance
is bought per cycle of overhead.  This module builds that table from
ordinary farm records (``simulate=True, analyze=True`` jobs whose
params carry the policy), so a warm store answers instantly and every
number is deterministic — the rendered table is byte-stable by
construction.

Scores per policy (averaged over its jobs):

* **overhead %** — ERIC cycles vs the *unprotected* plain baseline
  (for policy jobs the baseline is the unobfuscated program, so the
  overhead prices obfuscation + HDE together);
* **size %** — package growth over the plain image;
* **decode %** — fraction of the shipped text a linear-sweep
  disassembler still decodes (lower = better hiding);
* **entropy** — ciphertext byte entropy in bits (higher = closer to
  random, 8.0 is ideal);
* **static beaten** — jobs where the static attacker's
  ``looks_like_code`` heuristic no longer recognizes the text;
* **dynamic leaks** — non-target devices (wrong PUF key) that still
  observed program-like behaviour when executing the package.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import EricConfig
from repro.errors import ConfigError
from repro.eval.report import format_table
from repro.farm.executor import FarmReport
from repro.farm.spec import JobMatrix, SimParams
from repro.policy.policy import ProtectionPolicy

#: Display label for the no-policy (plain ERIC config) axis entry.
UNPOLICIED = "(none)"


def frontier_matrix(policies, workloads,
                    config: EricConfig | None = None,
                    device_seed: int | None = None,
                    max_instructions: int | None = None) -> JobMatrix:
    """The policy × workload grid a frontier needs.

    Every job simulates *and* analyzes — the frontier scores both
    sides of the trade.  ``policies`` entries are
    :class:`ProtectionPolicy` instances or None (the unpolicied
    reference row).
    """
    policies = tuple(policies)
    workloads = tuple(workloads)
    if not policies:
        raise ConfigError("frontier needs at least one policy")
    if not workloads:
        raise ConfigError("frontier needs at least one workload")
    for policy in policies:
        if policy is not None and not isinstance(policy, ProtectionPolicy):
            raise ConfigError(
                "frontier policies must be ProtectionPolicy or None, "
                f"got {type(policy).__name__}")
    overrides = {}
    if device_seed is not None:
        overrides["device_seed"] = device_seed
    if max_instructions is not None:
        overrides["max_instructions"] = max_instructions
    params = tuple(SimParams(policy=policy, **overrides).validate()
                   for policy in policies)
    return JobMatrix(workloads=workloads,
                     configs=(config or EricConfig(),),
                     params=params, simulate=True, analyze=True)


@dataclass(frozen=True)
class PolicyScore:
    """One frontier row: a policy's aggregate security and cost."""

    policy: str
    jobs: int
    overhead_pct: float
    size_pct: float
    decode_fraction: float
    byte_entropy: float
    #: jobs whose ciphertext no longer passes the static attacker's
    #: looks_like_code test
    static_beaten: int
    #: dynamic-attack attempts that still observed program behaviour
    dynamic_leaks: int
    dynamic_attempts: int

    def row(self) -> list:
        return [
            self.policy,
            self.jobs,
            f"{self.overhead_pct:+.1f}%",
            f"{self.size_pct:+.1f}%",
            f"{100 * self.decode_fraction:.1f}%",
            f"{self.byte_entropy:.2f}",
            f"{self.static_beaten}/{self.jobs}",
            f"{self.dynamic_leaks}/{self.dynamic_attempts}",
        ]


@dataclass(frozen=True)
class FrontierResult:
    """Scores per policy, in the order the matrix swept them."""

    scores: tuple[PolicyScore, ...]

    def render(self, stable: bool = False) -> str:
        """The frontier table.  Every column is a deterministic
        function of job keys, so ``stable`` changes nothing — the
        parameter exists for symmetry with the other report renderers
        (and to keep the byte-stability contract explicit at call
        sites)."""
        return format_table(
            ["policy", "jobs", "overhead", "size", "decode",
             "entropy b", "static beaten", "dynamic leaks"],
            [score.row() for score in self.scores],
            title="Security-vs-overhead frontier", stable=stable)


def frontier_report(report: FarmReport) -> FrontierResult:
    """Group a farm report's records by policy and score each group.

    Jobs are grouped by their spec's policy *name* (the display
    identity the sweep was written with); unpolicied jobs group under
    ``(none)``.  Jobs without simulation or analysis payloads raise —
    a frontier over half-measured records would silently score zeros.
    """
    groups: dict[str, list] = {}
    order: list[str] = []
    for result in report.results:
        if result.record is None:
            continue
        policy = result.spec.params.policy
        label = policy.name if policy is not None else UNPOLICIED
        if label not in groups:
            groups[label] = []
            order.append(label)
        groups[label].append(result.record)
    if not groups:
        raise ConfigError("frontier needs at least one successful record")

    scores = []
    for label in order:
        records = groups[label]
        overheads, sizes, decodes, entropies = [], [], [], []
        static_beaten = 0
        dynamic_leaks = 0
        dynamic_attempts = 0
        for record in records:
            if record.analysis is None or record.plain_cycles is None:
                raise ConfigError(
                    f"record {record.key[:12]} ({record.name}) lacks "
                    f"simulation/analysis data; frontier matrices must "
                    f"sweep with simulate=true, analyze=true")
            overheads.append(record.overhead_pct)
            sizes.append(record.size_increase_pct)
            decodes.append(record.analysis["decode_fraction"])
            entropies.append(record.analysis["byte_entropy"])
            if not record.analysis["looks_like_code"]:
                static_beaten += 1
            for outcome in record.analysis.get("dynamic", ()):
                dynamic_attempts += 1
                if outcome.get("leaked"):
                    dynamic_leaks += 1
        count = len(records)
        scores.append(PolicyScore(
            policy=label, jobs=count,
            overhead_pct=sum(overheads) / count,
            size_pct=sum(sizes) / count,
            decode_fraction=sum(decodes) / count,
            byte_entropy=sum(entropies) / count,
            static_beaten=static_beaten,
            dynamic_leaks=dynamic_leaks,
            dynamic_attempts=dynamic_attempts,
        ))
    return FrontierResult(scores=tuple(scores))
