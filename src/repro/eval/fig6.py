"""Fig. 6 — compile-time overhead of encrypted compilation.

Paper headline: +33.20 % in the worst case, +15.22 % on average, measured
as (time to compile+sign+encrypt+package) / (time to compile with the
stock compiler).

Fidelity note (recorded in EXPERIMENTS.md): the paper's ratio divides a
C++ SHA-256 + XOR stage by an *LLVM* compile — a heavyweight compiler
over a fast hash.  This reproduction divides a pure-Python SHA-256 by a
lightweight MiniC compile, so the raw ratio lands higher.  The table
therefore reports both the **measured** overhead and an **adjusted**
overhead in which only the signature stage is re-costed at a native
SHA-256 throughput (150 MB/s, conservative for the authors' C++
implementation); the claim under test — a bounded one-time packaging
cost, roughly proportional to program size, worst case about twice the
average — is visible in both columns.

Timing measurements are farm jobs (min over ``repeats``), so a
populated result store replays the figure with the wall times of the
machine that originally measured it — which is exactly what makes the
committed ``benchmarks/results/fig6_compile_time.txt`` regenerate
byte-identically instead of churning on every run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import EricConfig
from repro.eval.report import format_table
from repro.farm import JobMatrix, SimParams, SimulationFarm
from repro.workloads import all_workloads

_DEVICE_SEED = 0xE6A1

#: Conservative native SHA-256 software throughput (bytes/second) used
#: for the adjusted column.
NATIVE_SHA_THROUGHPUT = 150e6


@dataclass
class Fig6Row:
    name: str
    baseline_s: float
    eric_s: float
    signature_s: float
    signed_bytes: int

    @property
    def overhead_pct(self) -> float:
        return 100.0 * (self.eric_s / self.baseline_s - 1.0)

    @property
    def adjusted_overhead_pct(self) -> float:
        native_sig = self.signed_bytes / NATIVE_SHA_THROUGHPUT
        adjusted = self.eric_s - self.signature_s + native_sig
        return 100.0 * (adjusted / self.baseline_s - 1.0)


@dataclass
class Fig6Result:
    rows: list[Fig6Row] = field(default_factory=list)

    @property
    def summary(self) -> dict:
        overheads = [r.overhead_pct for r in self.rows]
        adjusted = [r.adjusted_overhead_pct for r in self.rows]
        return {
            "avg_overhead_pct": sum(overheads) / len(overheads),
            "max_overhead_pct": max(overheads),
            "adjusted_avg_overhead_pct": sum(adjusted) / len(adjusted),
            "adjusted_max_overhead_pct": max(adjusted),
            "paper_avg_overhead_pct": 15.22,
            "paper_max_overhead_pct": 33.20,
        }

    def render(self) -> str:
        table_rows = [
            [r.name, f"{r.baseline_s * 1e3:.1f}", f"{r.eric_s * 1e3:.1f}",
             f"{r.overhead_pct:+.2f}%",
             f"{r.adjusted_overhead_pct:+.2f}%"]
            for r in self.rows
        ]
        s = self.summary
        body = format_table(
            ["workload", "baseline ms", "ERIC ms", "overhead",
             "adj. overhead"],
            table_rows,
            title="Fig. 6: Compile-time, ERIC vs baseline compiler",
        )
        tail = (
            f"measured: avg +{s['avg_overhead_pct']:.2f}% / "
            f"max +{s['max_overhead_pct']:.2f}%   "
            f"adjusted (native-SHA signature): "
            f"avg +{s['adjusted_avg_overhead_pct']:.2f}% / "
            f"max +{s['adjusted_max_overhead_pct']:.2f}%\n"
            f"paper: avg +{s['paper_avg_overhead_pct']:.2f}% / "
            f"max +{s['paper_max_overhead_pct']:.2f}%"
        )
        return body + "\n" + tail


def matrix(config: EricConfig | None = None,
           repeats: int = 5) -> JobMatrix:
    """Every workload, packaging only, min-of-``repeats`` timings."""
    return JobMatrix(
        workloads=tuple(all_workloads()),
        configs=(config or EricConfig(),),
        params=(SimParams(device_seed=_DEVICE_SEED),),
        simulate=False,
        repeats=repeats,
    )


def run(config: EricConfig | None = None, repeats: int = 5, *,
        farm: SimulationFarm | None = None, jobs: int = 1,
        force: bool = False) -> Fig6Result:
    farm = farm or SimulationFarm(jobs=jobs)
    report = farm.run(matrix(config, repeats), force=force)
    report.require_ok()
    result = Fig6Result()
    for job in report.results:
        record = job.record
        result.rows.append(Fig6Row(
            name=job.spec.display_name,
            baseline_s=record.baseline_s,
            eric_s=record.package_total_s,
            signature_s=record.signature_s,
            signed_bytes=record.signed_bytes,
        ))
    return result
