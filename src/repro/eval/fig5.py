"""Fig. 5 — program-package size vs unencrypted compiled program.

Paper headline: the largest increase is +3.73 %, the average +1.59 %.
Drivers: every package carries a fixed 256-bit signature; *partial*
encryption additionally carries 1 map bit per instruction (which is 1 bit
per 16 bits of text when RVC compression is on — the paper's closing
observation in §IV.A).

The reproduction reports, per workload: plain size, FULL-mode package
size, PARTIAL-mode package size, and the same with RVC builds.  The
three packaging configurations per workload run as farm jobs
(``simulate=False`` — sizes need no execution), so a populated result
store regenerates this figure without compiling anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import EncryptionMode, EricConfig
from repro.eval.report import format_table
from repro.farm import JobMatrix, SimParams, SimulationFarm
from repro.workloads import all_workloads

_DEVICE_SEED = 0xE5A1


@dataclass
class Fig5Row:
    name: str
    plain_size: int
    full_size: int
    partial_size: int
    full_pct: float
    partial_pct: float
    rvc_partial_pct: float


@dataclass
class Fig5Result:
    rows: list[Fig5Row] = field(default_factory=list)

    @property
    def summary(self) -> dict:
        full = [r.full_pct for r in self.rows]
        partial = [r.partial_pct for r in self.rows]
        worst = max(max(full), max(partial))
        mean_all = (sum(full) + sum(partial)) / (2 * len(self.rows))
        return {
            "avg_increase_pct": mean_all,
            "max_increase_pct": worst,
            "paper_avg_increase_pct": 1.59,
            "paper_max_increase_pct": 3.73,
        }

    def render(self) -> str:
        table_rows = [
            [r.name, r.plain_size, r.full_size, f"{r.full_pct:.2f}%",
             r.partial_size, f"{r.partial_pct:.2f}%",
             f"{r.rvc_partial_pct:.2f}%"]
            for r in self.rows
        ]
        s = self.summary
        table_rows.append([
            "average", "", "", f"{sum(r.full_pct for r in self.rows) / len(self.rows):.2f}%",
            "", f"{sum(r.partial_pct for r in self.rows) / len(self.rows):.2f}%",
            f"{sum(r.rvc_partial_pct for r in self.rows) / len(self.rows):.2f}%",
        ])
        body = format_table(
            ["workload", "plain B", "full B", "full +%", "partial B",
             "partial +%", "RVC partial +%"],
            table_rows,
            title="Fig. 5: Program package size vs unencrypted program",
        )
        tail = (f"measured: avg +{s['avg_increase_pct']:.2f}% / "
                f"max +{s['max_increase_pct']:.2f}%   "
                f"paper: avg +{s['paper_avg_increase_pct']:.2f}% / "
                f"max +{s['paper_max_increase_pct']:.2f}%")
        return body + "\n" + tail


def matrix(partial_fraction: float = 0.5) -> JobMatrix:
    """Every workload × (full, partial, RVC-partial); packaging only."""
    return JobMatrix(
        workloads=tuple(all_workloads()),
        configs=(
            EricConfig(mode=EncryptionMode.FULL),
            EricConfig(mode=EncryptionMode.PARTIAL,
                       partial_fraction=partial_fraction),
            EricConfig(mode=EncryptionMode.PARTIAL,
                       partial_fraction=partial_fraction, compress=True),
        ),
        params=(SimParams(device_seed=_DEVICE_SEED),),
        simulate=False,
    )


def run(partial_fraction: float = 0.5, *,
        farm: SimulationFarm | None = None, jobs: int = 1,
        force: bool = False) -> Fig5Result:
    farm = farm or SimulationFarm(jobs=jobs)
    report = farm.run(matrix(partial_fraction), force=force)
    report.require_ok()
    result = Fig5Result()
    jobs = report.results
    # matrix order is workload-major: (full, partial, rvc) per workload;
    # names come from the requesting specs, not the stored records
    for i in range(0, len(jobs), 3):
        full, partial, rvc = (job.record for job in jobs[i:i + 3])
        result.rows.append(Fig5Row(
            name=jobs[i].spec.display_name,
            plain_size=full.plain_size,
            full_size=full.package_size,
            partial_size=partial.package_size,
            full_pct=full.size_increase_pct,
            partial_pct=partial.size_increase_pct,
            rvc_partial_pct=rvc.size_increase_pct,
        ))
    return result
