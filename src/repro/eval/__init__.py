"""Evaluation harness: regenerates every table and figure of the paper.

=========  ==================================================  ===========
exp id     content                                             module
=========  ==================================================  ===========
table1     test environment configuration                      table1
table2     FPGA area (LUT/FF, baseline vs +HDE)                table2
fig5       program-package size vs plain binary                fig5
fig6       compile-time overhead of encrypted compilation      fig6
fig7       end-to-end execution-time overhead                  fig7
=========  ==================================================  ===========

Each module exposes ``run()`` returning a result object with ``rows``
(per-workload or per-parameter series) and a ``summary`` with the
paper-vs-measured headline numbers, plus ``render()`` for the printed
table.  ``python -m repro.eval`` runs everything.
"""

from repro.eval import fig5, fig6, fig7, table1, table2
from repro.eval.report import format_table

EXPERIMENTS = {
    "table1": table1,
    "table2": table2,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
}

__all__ = ["EXPERIMENTS", "format_table", "table1", "table2", "fig5",
           "fig6", "fig7"]
