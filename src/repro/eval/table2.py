"""Table II — FPGA area results (structural model vs paper)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.eval.report import format_table
from repro.hw.area import HdeAreaModel, area_table


@dataclass
class Table2Result:
    table: dict
    rows: list[list] = field(default_factory=list)
    unit_rows: list[list] = field(default_factory=list)

    @property
    def summary(self) -> dict:
        return {
            "lut_increase_pct": self.table["lut_increase_pct"],
            "ff_increase_pct": self.table["ff_increase_pct"],
            "paper_lut_increase_pct": self.table["paper_lut_increase_pct"],
            "paper_ff_increase_pct": self.table["paper_ff_increase_pct"],
        }

    def render(self) -> str:
        main = format_table(
            ["", "Rocket Chip", "Rocket Chip + HDE", "Change (%)",
             "Paper change (%)"],
            self.rows,
            title="Table II: Area Results of FPGA Implementation",
        )
        units = format_table(
            ["HDE unit", "LUTs", "FFs"], self.unit_rows,
            title="HDE unit breakdown (structural estimate)",
        )
        return main + "\n\n" + units


def run(model: HdeAreaModel | None = None) -> Table2Result:
    table = area_table(model)
    rows = [
        ["Total Slice LUTs", table["rocket_luts"], table["with_hde_luts"],
         f"+{table['lut_increase_pct']:.2f}",
         f"+{table['paper_lut_increase_pct']:.2f}"],
        ["Total Flip-Flops", table["rocket_ffs"], table["with_hde_ffs"],
         f"+{table['ff_increase_pct']:.2f}",
         f"+{table['paper_ff_increase_pct']:.2f}"],
        ["Frequency (MHz)", 25, 25, "-", "-"],
    ]
    unit_rows = [[name, luts, ffs]
                 for name, (luts, ffs) in table["units"].items()]
    return Table2Result(table=table, rows=rows, unit_rows=unit_rows)
