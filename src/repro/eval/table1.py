"""Table I — test environment (paper configuration vs reproduction)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import TABLE_I_ENVIRONMENT
from repro.eval.report import format_table


@dataclass
class Table1Result:
    rows: list[list[str]]

    def render(self) -> str:
        return format_table(
            ["Parameter", "Paper", "Reproduction"], self.rows,
            title="Table I: Test Environment",
        )


def run() -> Table1Result:
    rows = [
        [parameter, paper, ours]
        for parameter, (paper, ours) in TABLE_I_ENVIRONMENT.items()
    ]
    return Table1Result(rows=rows)
