"""Async fleet scheduler: many deployments, one farm/store pair.

:class:`DeploymentSession.deploy_fleet` is thread-per-fleet, and every
fleet measures its own jobs — run ten overlapping fleets and the same
workload simulates ten times.  This module is the asyncio service layer
that removes both redundancies:

* :class:`AsyncDeploymentSession` ports the session API to coroutines:
  blocking pipeline stages run in worker threads under a bounded
  semaphore, and compilation keeps the compile-once guarantee via
  :class:`AsyncSingleFlight` — concurrent ``prepare()`` calls for the
  same artifact coalesce onto one build task, and a waiter being
  cancelled never cancels (or poisons) the build for everyone else.

* :class:`FleetScheduler` multiplexes many concurrent fleet deployments
  over a **single** :class:`~repro.service.cache.ArtifactCache` and one
  farm/store pair.  Every in-flight fleet submits its measurement jobs
  to a shared batch queue; the batcher dedups them by farm job key,
  executes each unique job exactly once through
  :class:`~repro.farm.executor.SimulationFarm` (or a sharded
  :class:`~repro.farm.coordinator.FarmCoordinator`), and fans the
  results back to every awaiting fleet.

::

    scheduler = FleetScheduler(store=ResultStore("benchmarks/results/farm"))
    report = scheduler.run([
        FleetRequest.from_spec({"name": "alpha", "workloads": ["crc32"]}),
        FleetRequest.from_spec({"name": "beta", "workloads": ["crc32",
                                                              "fft"]}),
    ])
    print(report.summary())   # crc32 simulated once, not twice

``eric serve --fleets spec.json`` is the command-line wrapper;
``eric fleet --async`` routes a single fleet through
:class:`AsyncDeploymentSession`.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from functools import partial
from typing import Awaitable, Callable, Sequence

from repro.core.compiler_driver import CompiledArtifact, source_digest
from repro.core.config import EricConfig
from repro.core.device import Device
from repro.errors import ConfigError, EricError, ProvisioningError
from repro.farm.coordinator import FarmCoordinator
from repro.farm.executor import FarmJobResult, FarmReport, SimulationFarm
from repro.farm.spec import JobMatrix, JobSpec
from repro.farm.store import ResultStore
from repro.obs.metrics import METRICS
from repro.obs.trace import TraceContext, Tracer
from repro.service.cache import CacheStats
from repro.service.session import (DeploymentSession, FleetDeploymentReport,
                                   build_fleet_report)
from repro.service.telemetry import TelemetryEvent, TelemetryHub


class AsyncSingleFlight:
    """Coalesce concurrent builds of the same key onto one task.

    The asyncio port of the :class:`~repro.service.cache.ArtifactCache`
    build-lock semantics: the first ``run()`` for a key launches the
    build as its **own** task, later callers attach to it, and every
    waiter awaits through :func:`asyncio.shield` — so cancelling a
    waiting fleet neither cancels the build nor leaves a poisoned
    (cancelled) future behind for the next caller.  A build that fails
    retires its entry, and the exception propagates to every waiter;
    the next ``run()`` retries from scratch.
    """

    def __init__(self) -> None:
        self._tasks: dict[object, asyncio.Task] = {}

    def __len__(self) -> int:
        return len(self._tasks)

    async def run(self, key, build: Callable[[], Awaitable]):
        task = self._tasks.get(key)
        if task is None or task.done():
            task = asyncio.ensure_future(self._build(key, build()))
            self._tasks[key] = task
            METRICS.inc("singleflight.builds")
        else:
            METRICS.inc("singleflight.coalesced")
        return await asyncio.shield(task)

    async def _build(self, key, awaitable):
        try:
            return await awaitable
        finally:
            self._tasks.pop(key, None)

    async def drain(self) -> None:
        """Await every in-flight build (success or failure) — shutdown
        hygiene so no build task outlives its event loop."""
        tasks = list(self._tasks.values())
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)


class AsyncDeploymentSession:
    """asyncio front end over one :class:`DeploymentSession`.

    Every blocking stage (compile, enroll, encrypt, simulate) runs in a
    worker thread; ``max_concurrency`` bounds how many run at once.  The
    artifact cache stays compile-once under concurrency: ``prepare()``
    goes through :class:`AsyncSingleFlight` *on top of* the session's
    thread-safe cache, so coalescing happens at the coroutine layer and
    concurrent fleets never even queue worker threads on the cache's
    per-key build lock.

    One instance serves one event loop at a time (loop-bound primitives
    are re-created when a new loop first uses the session, so sequential
    ``asyncio.run()`` calls may reuse it).
    """

    def __init__(self, session: DeploymentSession | None = None, *,
                 config: EricConfig | None = None,
                 max_concurrency: int = 8, telemetry=None) -> None:
        if session is not None and config is not None:
            raise ConfigError(
                "pass either an existing session or a config, not both")
        if max_concurrency < 1:
            raise ConfigError("max_concurrency must be at least 1")
        self.session = session or DeploymentSession(config)
        self.max_concurrency = max_concurrency
        self._flight = AsyncSingleFlight()
        self._semaphore: asyncio.Semaphore | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        if telemetry is not None:
            self.session.on_event(telemetry)

    def on_event(self, sink) -> None:
        """Register a telemetry sink on the underlying session."""
        self.session.on_event(sink)

    @property
    def cache_stats(self) -> CacheStats:
        return self.session.cache_stats

    async def _call(self, func, *args, **kwargs):
        """Run one blocking stage in a worker thread, semaphore-bounded."""
        loop = asyncio.get_running_loop()
        if self._loop is not loop:
            # first use on this loop (or a fresh asyncio.run): rebind
            self._loop = loop
            self._semaphore = asyncio.Semaphore(self.max_concurrency)
        async with self._semaphore:
            return await loop.run_in_executor(
                None, partial(func, *args, **kwargs))

    # -- the compile-once stage -------------------------------------------

    async def prepare(self, source: str, name: str = "program",
                      config: EricConfig | None = None) -> CompiledArtifact:
        """Fetch or build the device-independent artifact, single-flight."""
        artifact, _ = await self.prepare_traced(source, name, config)
        return artifact

    async def prepare_traced(self, source: str, name: str = "program",
                             config: EricConfig | None = None,
                             ) -> tuple[CompiledArtifact, bool]:
        """As :meth:`prepare`, also reporting whether this call (or the
        in-flight build it joined) compiled rather than hit the cache."""
        config = config or self.session.config
        key = (source_digest(source), name, config)
        return await self._flight.run(
            key, lambda: self._call(self.session.prepare_for_config,
                                    source, name, config))

    # -- deployment -------------------------------------------------------

    async def deploy(self, source: str, device: Device,
                     name: str = "program",
                     max_instructions: int = 20_000_000):
        """Async :meth:`DeploymentSession.deploy`: the full per-device
        flow, with the compile stage single-flighted."""
        await self.prepare(source, name)  # warm the cache, coalesced
        return await self._call(self.session.deploy, source, device,
                                None, name, max_instructions)

    async def deploy_fleet(self, source: str, devices: Sequence[Device],
                           *, name: str = "program",
                           max_instructions: int = 20_000_000,
                           ) -> FleetDeploymentReport:
        """Async fleet rollout: one coalesced compile, per-device
        encrypt/ship/run fanned out as bounded concurrent coroutines.

        Same contract as the thread-pool
        :meth:`DeploymentSession.deploy_fleet` — per-device failures
        land in outcomes, the report's stage accounting is shared code.
        """
        if not devices:
            raise ProvisioningError("deploy_fleet needs at least one device")
        fleet_start = time.perf_counter()
        artifact, compiled = await self.prepare_traced(source, name)
        # enrollment stays serial: the registry is the trusted vendor DB
        keys = await self._call(
            lambda: [self.session.registry.ensure_enrolled(device)
                     for device in devices])
        outcomes = await asyncio.gather(*(
            self._call(self.session.deploy_one_prepared, artifact,
                       device, key, max_instructions=max_instructions)
            for device, key in zip(devices, keys)))
        wall_s = time.perf_counter() - fleet_start
        report = build_fleet_report(
            name, artifact, outcomes, wall_s,
            cache_hit=not compiled, cache_stats=self.session.cache.stats)
        self.session._emit(
            "fleet", wall_s, program=name, ok=report.all_ok,
            detail=f"{len(report.succeeded)}/{len(outcomes)} ok [async]")
        return report

    async def aclose(self) -> None:
        """Await outstanding single-flight builds (shutdown hygiene)."""
        await self._flight.drain()


@dataclass(frozen=True)
class FleetRequest:
    """One named fleet: the measurement jobs its deployment needs.

    ``jobs`` is a fully-expanded, validated spec tuple — one farm job
    per (program, config, device) the fleet serves.  Requests are the
    scheduler's unit of multiplexing; overlapping jobs across requests
    are exactly what the batch queue dedups.
    """

    name: str
    jobs: tuple[JobSpec, ...]

    def validate(self) -> "FleetRequest":
        if not isinstance(self.name, str) or not self.name:
            raise ConfigError(
                f"fleet name must be a non-empty string, got {self.name!r}")
        if not self.jobs:
            raise ConfigError(f"fleet {self.name!r} carries no jobs")
        for job in self.jobs:
            job.validate()
        return self

    @classmethod
    def from_matrix(cls, name: str,
                    matrix: JobMatrix | Sequence[JobSpec]) -> "FleetRequest":
        specs = (matrix.jobs() if isinstance(matrix, JobMatrix)
                 else tuple(matrix))
        return cls(name=name, jobs=specs).validate()

    @classmethod
    def from_spec(cls, entry: dict) -> "FleetRequest":
        """Parse one ``eric serve`` fleet entry: ``{"name": ...}`` plus
        the ``eric sweep`` matrix dialect (see
        :meth:`repro.farm.spec.JobMatrix.from_spec`)."""
        if not isinstance(entry, dict) or "name" not in entry:
            raise ConfigError(
                'each fleet needs {"name": ..., <sweep matrix keys>}')
        options = dict(entry)
        return cls.from_matrix(options.pop("name"),
                               JobMatrix.from_spec(options))


def load_fleet_specs(spec: dict) -> tuple[FleetRequest, ...]:
    """Parse the ``eric serve --fleets`` JSON document::

        {"fleets": [
          {"name": "alpha", "workloads": ["crc32"],
           "device_seeds": [1, 2]},
          {"name": "beta", "workloads": ["crc32", "fft"]}
        ]}

    Fleet names must be unique — they key the per-fleet report lines.
    """
    if not isinstance(spec, dict):
        raise ConfigError("fleets spec must be a JSON object")
    unknown = set(spec) - {"fleets"}
    if unknown:
        raise ConfigError(f"unknown fleets-spec keys {sorted(unknown)}; "
                          f"expected only 'fleets'")
    entries = spec.get("fleets")
    if not isinstance(entries, list) or not entries:
        raise ConfigError("fleets must be a non-empty list of fleet objects")
    requests = tuple(FleetRequest.from_spec(entry) for entry in entries)
    names = [request.name for request in requests]
    duplicates = {name for name in names if names.count(name) > 1}
    if duplicates:
        raise ConfigError(f"duplicate fleet name(s): {sorted(duplicates)}")
    return requests


@dataclass(frozen=True)
class FleetServiceReport:
    """One fleet's trip through the scheduler."""

    name: str
    #: farm outcomes aligned with the request's job order.  A job another
    #: in-flight fleet executed first arrives here as the same shared
    #: outcome — per-fleet "executed" counts would double-count, so the
    #: authoritative execution tally lives in :class:`SchedulerReport`.
    results: tuple[FarmJobResult, ...]
    wall_s: float
    #: unique compiled artifacts the fleet's jobs ride on (the
    #: compile-once half; the session's cache stats count actual builds)
    artifacts: int

    @property
    def records(self):
        return tuple(r.record for r in self.results
                     if r.record is not None)

    @property
    def failures(self) -> tuple[FarmJobResult, ...]:
        return tuple(r for r in self.results if not r.ok)

    @property
    def store_hits(self) -> int:
        return sum(1 for r in self.results if r.from_store)

    @property
    def ok(self) -> bool:
        return not self.failures

    def require_ok(self) -> None:
        if self.failures:
            lines = [f"{f.spec.display_name}: {f.error}"
                     for f in self.failures]
            raise EricError(f"fleet {self.name!r}: "
                            f"{len(self.failures)} job(s) failed: "
                            + "; ".join(lines))

    def summary(self) -> str:
        return (f"fleet {self.name!r}: {len(self.results)} job(s), "
                f"{self.store_hits} store hit(s), "
                f"{len(self.failures)} failed in "
                f"{self.wall_s * 1e3:.1f} ms")


@dataclass(frozen=True)
class SchedulerReport:
    """Aggregate of one :meth:`FleetScheduler.serve` call."""

    fleets: tuple[FleetServiceReport, ...]
    #: one :class:`FarmReport` per batch the shared queue executed
    batches: tuple[FarmReport, ...]
    wall_s: float
    cache_stats: CacheStats
    store_path: str | None

    @property
    def requested(self) -> int:
        """Job requests across all fleets (with duplicates)."""
        return sum(len(fleet.results) for fleet in self.fleets)

    @property
    def unique_jobs(self) -> int:
        return len(self._own_keys())

    def _own_keys(self) -> set:
        return {r.spec.key() for fleet in self.fleets
                for r in fleet.results}

    def _batch_keys(self, predicate) -> set:
        """Keys of *this serve's* jobs whose batch outcome matches
        ``predicate``.  Batches are shared scheduler state: when two
        concurrent ``serve()`` calls ride the same batch, each report
        counts only its own keys — never the co-tenant's work."""
        own = self._own_keys()
        matched = set()
        for batch in self.batches:
            for result in batch.results:
                key = result.spec.key()
                if key in own and predicate(result):
                    matched.add(key)
        return matched

    @property
    def executed(self) -> int:
        """Unique jobs of this serve the farm actually simulated — the
        number the dedup guarantee bounds by :attr:`unique_jobs` no
        matter how many fleets (or concurrent serves) overlap."""
        return len(self._batch_keys(
            lambda r: r.ok and not r.from_store and not r.shared))

    @property
    def store_hits(self) -> int:
        return len(self._batch_keys(lambda r: r.from_store))

    @property
    def failures(self) -> tuple[tuple[str, FarmJobResult], ...]:
        return tuple((fleet.name, result) for fleet in self.fleets
                     for result in fleet.failures)

    @property
    def all_ok(self) -> bool:
        return not self.failures

    def require_ok(self) -> None:
        if self.failures:
            lines = [f"{name}/{r.spec.display_name}: {r.error}"
                     for name, r in self.failures]
            raise EricError(f"{len(self.failures)} scheduled job(s) "
                            f"failed: " + "; ".join(lines))

    def summary(self) -> str:
        return (f"scheduler: {len(self.fleets)} fleet(s), "
                f"{self.requested} job request(s) -> "
                f"{self.unique_jobs} unique, {self.executed} executed, "
                f"{self.store_hits} store hit(s) over "
                f"{len(self.batches)} batch(es) in "
                f"{self.wall_s * 1e3:.1f} ms; "
                f"compiles={self.cache_stats.compiles}")


class FleetScheduler:
    """Multiplex concurrent fleet deployments over one farm/store pair.

    Args:
        store: the shared result store (None measures in-memory).
        session: deployment session whose artifact cache every fleet
            shares; a fresh one if not given.
        config: packaging config for the fresh session (exclusive with
            ``session``).
        jobs: farm worker processes per batch (with ``shards``,
            processes per shard).
        shards: >0 runs batches through a sharded
            :class:`FarmCoordinator` (requires ``store``).
        shard_root: per-shard store/spec directory (coordinator only).
        max_concurrency: bound on concurrently-running blocking stages.
        batch_window: seconds the batcher lingers after a request so
            overlapping fleets coalesce into one farm batch.  0 batches
            whatever is queued when the loop gets around to draining.
        telemetry: optional initial sink (``scheduler.*`` spans plus
            the session's and farm's own stages).
        tracer: optional :class:`~repro.obs.trace.Tracer` shared with
            the farm backend; each executed batch becomes a
            ``scheduler.batch`` span parented under the first
            requester's context, with the farm sweep (and its jobs,
            across process boundaries) beneath it.

    The dedup guarantee does **not** depend on batching luck: a job key
    is tracked from first request to fan-back, so a fleet asking for a
    key that is queued or mid-execution attaches to the same future,
    and a key measured by an earlier batch is a store hit for every
    later one (with no store, a scheduler-side memo stands in).  N
    overlapping fleets cost one simulation per unique key and one
    compile per unique artifact — period.  Forced re-measures are
    isolated: forced jobs batch separately, never attach to un-forced
    work, and never drag other fleets' un-forced jobs into a
    re-measure (see :meth:`measure`).
    """

    def __init__(self, store: ResultStore | None = None, *,
                 session: DeploymentSession | None = None,
                 config: EricConfig | None = None, jobs: int = 1,
                 shards: int = 0, shard_root=None,
                 max_concurrency: int = 8, batch_window: float = 0.02,
                 telemetry=None, tracer: Tracer | None = None) -> None:
        if batch_window < 0:
            raise ConfigError("batch_window must be non-negative")
        self.tracer = tracer
        if shards:
            if store is None:
                raise ConfigError("sharded scheduling merges shard "
                                  "stores into a main store; pass store=")
            self.farm = FarmCoordinator(store=store, shards=shards,
                                        jobs_per_shard=jobs,
                                        shard_root=shard_root,
                                        tracer=tracer)
        else:
            self.farm = SimulationFarm(store=store, jobs=jobs,
                                       tracer=tracer)
        self.store = store
        self.batch_window = batch_window
        self.async_session = AsyncDeploymentSession(
            session=session, config=config,
            max_concurrency=max_concurrency)
        self._telemetry = TelemetryHub()
        if telemetry is not None:
            self.on_event(telemetry)
        #: every batch the shared queue has executed (all serves)
        self.batch_reports: list[FarmReport] = []
        #: resolved outcomes by job key when there is no store — the
        #: in-memory stand-in that keeps the exactly-once guarantee
        #: for keys whose batch already came and went
        self._done: dict[str, FarmJobResult] = {}
        # per-event-loop state, (re)created by _ensure_started.
        # In-flight work is keyed by (job key, forced): a forced
        # request must never attach to un-forced work (which may
        # resolve to a stale store hit), and vice versa.
        self._loop: asyncio.AbstractEventLoop | None = None
        self._wakeup: asyncio.Event | None = None
        self._batcher: asyncio.Task | None = None
        # pending entries carry the requester's trace context so the
        # batch span can parent under whoever triggered the batch
        self._pending: list[tuple[tuple[str, bool], JobSpec,
                                  TraceContext | None]] = []
        self._inflight: dict[tuple[str, bool], asyncio.Future] = {}

    def on_event(self, sink) -> None:
        """Register a sink for scheduler spans *and* the underlying
        session/farm stages — one hook observes the whole stack."""
        self._telemetry.add(sink)
        self.async_session.on_event(sink)
        self.farm.on_event(sink)

    def _emit(self, stage: str, seconds: float = 0.0, *,
              program: str | None = None, ok: bool = True,
              detail: str = "") -> None:
        self._telemetry.emit(TelemetryEvent(
            stage=stage, seconds=seconds, program=program, ok=ok,
            detail=detail))

    # -- the shared batch queue -------------------------------------------

    def _ensure_started(self) -> None:
        loop = asyncio.get_running_loop()
        if self._loop is loop and self._batcher is not None \
                and not self._batcher.done():
            return
        # first use on this loop (or a fresh asyncio.run): any state
        # from a previous, now-dead loop is unusable by construction
        self._loop = loop
        self._wakeup = asyncio.Event()
        self._pending = []
        self._inflight = {}
        self._batcher = loop.create_task(self._batch_loop())

    async def measure(self, specs: Sequence[JobSpec],
                      force: bool = False,
                      trace_parent: TraceContext | None = None,
                      ) -> tuple[FarmJobResult, ...]:
        """Submit jobs to the shared queue; await fanned-back outcomes.

        Results align with ``specs``.  Keys already queued or executing
        (for *any* fleet) attach to the in-flight future instead of
        resubmitting — the exactly-once half of the scheduler contract.
        With no store, keys resolved by an earlier batch are served
        from the scheduler's own memo, so the guarantee holds across
        batches too.

        ``force`` requests a fresh measurement: forced jobs skip the
        memo, never attach to un-forced work (which may resolve to a
        store hit), and are batched separately so they never drag other
        fleets' un-forced jobs into a re-measure.  Concurrent *forced*
        requests for the same key still coalesce onto one execution.
        """
        # validate everything before touching shared state: a bad spec
        # must raise cleanly, not leave an orphaned in-flight future
        # that deadlocks the next request for the same key
        for spec in specs:
            spec.validate()
        self._ensure_started()
        loop = asyncio.get_running_loop()
        slots: list[FarmJobResult | asyncio.Future] = []
        queued = False
        for spec in specs:
            key = spec.key()
            if not force and self.store is None:
                done = self._done.get(key)
                if done is not None:
                    slots.append(done)
                    continue
            flight = (key, force)
            future = self._inflight.get(flight)
            if future is None:
                future = loop.create_future()
                self._inflight[flight] = future
                self._pending.append((flight, spec, trace_parent))
                queued = True
            else:
                METRICS.inc("scheduler.coalesced")
            slots.append(future)
        if queued:
            self._wakeup.set()

        async def resolve(slot):
            if isinstance(slot, asyncio.Future):
                return await asyncio.shield(slot)
            return slot

        return tuple(await asyncio.gather(*(resolve(s) for s in slots)))

    async def _batch_loop(self) -> None:
        while True:
            await self._wakeup.wait()
            if self.batch_window > 0:
                # linger so fleets submitting "at the same time" land
                # in the same farm batch (pure wall-clock economy; the
                # dedup guarantee holds for any batching)
                await asyncio.sleep(self.batch_window)
            self._wakeup.clear()
            batch, self._pending = self._pending, []
            if not batch:
                continue
            # forced jobs run as their own farm batch: one fleet's
            # --force must not re-measure (and re-persist over) other
            # fleets' un-forced jobs that happened to share the drain
            for forced in (False, True):
                group = [entry for entry in batch
                         if entry[0][1] == forced]
                if group:
                    await self._run_batch(group, forced)

    async def _run_batch(self,
                         batch: list[tuple[tuple[str, bool], JobSpec,
                                           TraceContext | None]],
                         force: bool) -> None:
        loop = asyncio.get_running_loop()
        start = time.perf_counter()
        specs = [spec for _, spec, _ in batch]
        span = None
        if self.tracer is not None:
            # parent under the first requester that carried a context —
            # a batch mixing traced and untraced requesters still gets
            # one span (the co-tenants show up in its job count)
            parent = next((ctx for _, _, ctx in batch
                           if ctx is not None), None)
            span = self.tracer.start("scheduler.batch", parent=parent,
                                     attrs={"jobs": len(batch),
                                            "forced": force})
        # untraced runs keep the two-arg run_batch call so stand-in
        # farms (tests) need not grow the trace parameter
        call = (partial(self.farm.run_batch, specs, force, span.context)
                if span is not None
                else partial(self.farm.run_batch, specs, force))
        try:
            report, outcomes = await loop.run_in_executor(None, call)
        except Exception as exc:  # farm/store failure: fail the batch,
            error = EricError(                # never the batcher itself
                f"farm batch of {len(batch)} job(s) failed: "
                f"{type(exc).__name__}: {exc}")
            if span is not None:
                span.finish(ok=False, detail=str(error))
            for flight, _, _ in batch:
                future = self._inflight.pop(flight, None)
                if future is not None and not future.done():
                    future.set_exception(error)
            return
        self.batch_reports.append(report)
        detail = (f"{len(batch)} unique job(s): {report.hits} "
                  f"hit(s), {report.executed} executed, "
                  f"{len(report.failures)} failed"
                  + (" [forced]" if force else ""))
        if span is not None:
            span.finish(ok=not report.failures, detail=detail)
        self._emit("scheduler.batch", time.perf_counter() - start,
                   ok=not report.failures, detail=detail)
        for flight, spec, _ in batch:
            key = flight[0]
            future = self._inflight.pop(flight, None)
            outcome = outcomes.get(key)
            if outcome is not None and outcome.ok and self.store is None:
                # ok outcomes only: a failed job must retry on the next
                # request, exactly as the store-backed path does (failed
                # jobs are never persisted)
                self._done[key] = outcome
            if future is None or future.done():
                continue
            if outcome is None:
                future.set_exception(EricError(
                    f"farm batch returned no outcome for "
                    f"{spec.display_name!r} (key {key[:12]})"))
            else:
                future.set_result(outcome)

    # -- fleets -----------------------------------------------------------

    async def deploy_fleet(self, request: FleetRequest,
                           force: bool = False,
                           trace_parent: TraceContext | None = None,
                           ) -> FleetServiceReport:
        """Serve one fleet: prepare its artifacts (coalesced across all
        in-flight fleets), then measure its jobs through the shared
        batch queue.  With a tracer the fleet is a ``scheduler.fleet``
        span — parented under ``trace_parent`` (e.g. a daemon request's
        root span) — whose context rides into the shared batch."""
        request.validate()
        start = time.perf_counter()
        span = (self.tracer.start("scheduler.fleet", parent=trace_parent,
                                  attrs={"fleet": request.name,
                                         "jobs": len(request.jobs)})
                if self.tracer is not None else None)
        self._emit("scheduler.fleet.begin", program=request.name,
                   detail=f"{len(request.jobs)} job(s)")
        try:
            artifacts = await self._prepare_artifacts(request, force)
            results = await self.measure(
                request.jobs, force=force,
                trace_parent=span.context if span else trace_parent)
        except BaseException as exc:
            if span is not None:
                span.finish(ok=False,
                            detail=f"{type(exc).__name__}: {exc}")
            raise
        wall_s = time.perf_counter() - start
        report = FleetServiceReport(
            name=request.name, results=results, wall_s=wall_s,
            artifacts=artifacts)
        if span is not None:
            span.finish(ok=report.ok,
                        detail=(f"{report.store_hits} store hit(s), "
                                f"{len(report.failures)} failed"))
        self._emit("scheduler.fleet.end", wall_s, program=request.name,
                   ok=report.ok,
                   detail=(f"{report.store_hits} store hit(s), "
                           f"{len(report.failures)} failed"))
        return report

    def _is_measured(self, spec: JobSpec) -> bool:
        key = spec.key()
        if self.store is not None:
            return key in self.store
        return key in self._done

    async def _prepare_artifacts(self, request: FleetRequest,
                                 force: bool) -> int:
        """The compile-once half: at most one ``prepare()`` per unique
        (source, name, config) across *all* concurrent fleets — the
        async single-flight plus the shared artifact cache make the
        per-digest guarantee, this just enumerates what to warm.

        An artifact whose every job is already measured (store or memo)
        is not compiled at all: a fully-warm serve must cost ~nothing,
        exactly like a warm farm resume.  Returns the number of unique
        artifacts the fleet rides on (warmed or already served).
        """
        wanted: dict[tuple, list] = {}
        for spec in request.jobs:
            source, _ = spec.resolve_source()
            key = (source_digest(source), spec.display_name, spec.config)
            entry = wanted.setdefault(
                key, [source, spec.display_name, spec.config, False])
            if force or not self._is_measured(spec):
                entry[3] = True  # at least one job will really measure
        await asyncio.gather(*(
            self.async_session.prepare(source, name, config)
            for source, name, config, needed in wanted.values()
            if needed))
        return len(wanted)

    async def serve(self, requests: Sequence[FleetRequest],
                    force: bool = False) -> SchedulerReport:
        """Deploy every fleet concurrently; aggregate one report.

        The report's ``batches`` cover exactly this call, so
        ``report.executed`` vs ``report.unique_jobs`` states the dedup
        guarantee for these fleets alone even when the scheduler is
        reused.
        """
        requests = tuple(requests)
        if not requests:
            raise ConfigError("serve needs at least one fleet request")
        self._ensure_started()
        first_batch = len(self.batch_reports)
        start = time.perf_counter()
        fleets = await asyncio.gather(*(
            self.deploy_fleet(request, force=force)
            for request in requests))
        wall_s = time.perf_counter() - start
        report = SchedulerReport(
            fleets=tuple(fleets),
            batches=tuple(self.batch_reports[first_batch:]),
            wall_s=wall_s,
            cache_stats=self.async_session.cache_stats,
            store_path=(str(self.store.path) if self.store is not None
                        else None))
        self._emit("scheduler.serve", wall_s, ok=report.all_ok,
                   detail=(f"{len(fleets)} fleet(s): "
                           f"{report.requested} requested, "
                           f"{report.executed} executed, "
                           f"{report.store_hits} store hit(s)"))
        return report

    async def aclose(self) -> None:
        """Stop the batcher and release in-flight futures."""
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
            self._batcher = None
        for future in self._inflight.values():
            if not future.done():
                future.cancel()
        self._inflight = {}
        self._pending = []
        await self.async_session.aclose()

    def run(self, requests: Sequence[FleetRequest],
            force: bool = False) -> SchedulerReport:
        """Synchronous convenience: serve the fleets on a fresh event
        loop and shut the scheduler down (the ``eric serve`` path)."""

        async def _serve() -> SchedulerReport:
            try:
                return await self.serve(requests, force=force)
            finally:
                await self.aclose()

        return asyncio.run(_serve())
