"""Journal diagnostics without running a daemon.

The request-journal counterpart of :mod:`repro.farm.doctor`: a read-only
pass over ``journal.jsonl`` reporting live/terminal request counts,
corrupt or foreign-schema lines, and — the operationally interesting
part — **stuck-running detection**: a ``running`` record whose
``updated_at`` is older than the staleness window means a daemon died
without checkpointing (graceful shutdowns journal ``running ->
admitted``); the next daemon start will resume it, but until then the
request is owned by nobody.  ``eric doctor --journal DIR`` is the CLI
wrapper.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path

from repro.service.daemon.journal import (JOURNAL_SCHEMA, LIVE_STATES,
                                          TERMINAL_STATES, JournalRecord)

#: A ``running`` record untouched for this long is presumed orphaned
#: (checkpoints and terminal transitions all bump ``updated_at``).
DEFAULT_STALE_AFTER_S = 600.0

_FILENAME = "journal.jsonl"


@dataclass(frozen=True)
class StuckRequest:
    """One running record no live daemon seems to own."""

    request_id: str
    fleet_name: str
    age_s: float


@dataclass(frozen=True)
class JournalDiagnosis:
    """Everything ``eric doctor --journal`` reports."""

    path: str
    exists: bool
    #: non-blank lines in the JSONL
    total_lines: int
    #: latest-state request count per state (live + terminal)
    state_counts: dict[str, int]
    #: valid lines shadowed by a later line for the same request
    superseded: int
    #: lines that are not valid JSON / not valid records
    corrupt: int
    #: valid records written under a different JOURNAL_SCHEMA
    foreign_schema: int
    stuck: tuple[StuckRequest, ...]
    stale_after_s: float

    @property
    def live_requests(self) -> int:
        return sum(self.state_counts.get(s, 0) for s in LIVE_STATES)

    @property
    def terminal_requests(self) -> int:
        return sum(self.state_counts.get(s, 0)
                   for s in TERMINAL_STATES)

    @property
    def healthy(self) -> bool:
        """Nothing needs operator attention: no corrupt lines, no
        foreign-schema records, no stuck-running requests.  Live
        requests and superseded state lines are informational — the
        normal shape of a journal a daemon is working through."""
        return (not self.corrupt and not self.foreign_schema
                and not self.stuck)

    def describe(self) -> str:
        lines = [f"journal: {self.path}"]
        if not self.exists:
            lines.append("  no journal.jsonl — nothing submitted yet")
        else:
            lines.append(
                f"  {self.total_lines} line(s): {self.live_requests} "
                f"live / {self.terminal_requests} terminal "
                f"request(s), {self.superseded} superseded, "
                f"{self.corrupt} corrupt, {self.foreign_schema} "
                f"foreign-schema")
            counted = ", ".join(
                f"{self.state_counts[state]} {state}"
                for state in LIVE_STATES + TERMINAL_STATES
                if self.state_counts.get(state))
            if counted:
                lines.append(f"  states: {counted}")
        for stuck in self.stuck:
            lines.append(
                f"  STUCK: request {stuck.request_id} "
                f"({stuck.fleet_name}) running but untouched for "
                f"{stuck.age_s:.0f}s (> {self.stale_after_s:.0f}s); "
                f"restart the daemon to resume it")
        if self.superseded:
            lines.append("  hint: superseded state lines are normal; "
                         "journal compaction drops them")
        if self.corrupt or self.foreign_schema:
            lines.append("  hint: corrupt/foreign lines are skipped "
                         "at load and dropped by compaction")
        lines.append("  verdict: " + ("healthy" if self.healthy
                                      else "NEEDS ATTENTION"))
        return "\n".join(lines)


def diagnose_journal(root: str | Path, *,
                     stale_after_s: float = DEFAULT_STALE_AFTER_S,
                     now: float | None = None) -> JournalDiagnosis:
    """Inspect a journal directory without touching it.

    ``now`` pins the staleness clock (tests); defaults to wall time.
    """
    path = Path(root) / _FILENAME
    total = corrupt = foreign = valid = 0
    latest: dict[str, JournalRecord] = {}
    if path.is_file():
        exists = True
        for line in path.read_text(encoding="utf-8").splitlines():
            if not line.strip():
                continue
            total += 1
            try:
                data = json.loads(line)
            except (json.JSONDecodeError, UnicodeDecodeError):
                corrupt += 1
                continue
            if isinstance(data, dict):
                schema = data.get("schema")
                if isinstance(schema, int) \
                        and not isinstance(schema, bool) \
                        and schema != JOURNAL_SCHEMA:
                    foreign += 1
                    continue
            record = JournalRecord.from_dict(data)
            if record is None:
                corrupt += 1
                continue
            valid += 1
            latest[record.request_id] = record
    else:
        exists = False
    state_counts: dict[str, int] = {}
    for record in latest.values():
        state_counts[record.state] = \
            state_counts.get(record.state, 0) + 1
    clock = time.time() if now is None else now
    stuck = tuple(
        StuckRequest(request_id=record.request_id,
                     fleet_name=record.fleet_name,
                     age_s=max(clock - record.updated_at, 0.0))
        for record in sorted(latest.values(),
                             key=lambda r: r.request_id)
        if record.state == "running"
        and clock - record.updated_at > stale_after_s)
    return JournalDiagnosis(
        path=str(path), exists=exists, total_lines=total,
        state_counts=state_counts, superseded=valid - len(latest),
        corrupt=corrupt, foreign_schema=foreign, stuck=stuck,
        stale_after_s=stale_after_s)
