"""ServeDaemon: the durable, long-running serve loop.

:class:`~repro.service.scheduler.FleetScheduler` multiplexes concurrent
fleets, but everything it knows is in-memory — a crash mid-serve loses
every half-served fleet.  The daemon closes that gap by pairing the
scheduler with a :class:`~repro.service.daemon.journal.JournalStore`:

* **durability** — every request and every state change is journaled
  before it is acted on; a restart replays the journal and resumes
  every unfinished request.  Resume is incremental *by construction*:
  jobs measured before the crash are in the result store, so
  re-measuring a half-served fleet costs only the missing keys.
* **admission control** — per-tenant quotas and a pending-jobs
  watermark (see :mod:`~repro.service.daemon.admission`) bound how
  much work is in flight; excess submissions are deferred in the
  journal or rejected with a retry-after hint, never accumulated in
  daemon memory.
* **priorities** — admitted requests dispatch into the scheduler's
  batch queue highest-priority first (ties: oldest submission first).
* **graceful shutdown** — on :meth:`request_shutdown` (SIGTERM in the
  CLI) in-flight requests finish their current job chunk, journal a
  ``running -> admitted`` checkpoint, and the daemon exits; the next
  daemon picks them up exactly where the store left off.

Out-of-process submission rides the journal file itself: ``eric
submit`` appends a ``submitted`` record and the daemon's poll loop
picks it up — the journal is the seam that decouples request intake
from the delivery pipeline.

Telemetry spans: ``daemon.admit``, ``daemon.resume``, ``daemon.reject``
(covers both deferrals and rejections), ``daemon.checkpoint``,
``daemon.request`` (terminal outcomes), and ``daemon.serve`` (one per
:meth:`ServeDaemon.run`).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass

from repro.errors import ConfigError, EricError
from repro.farm.store import ResultStore
from repro.obs.metrics import METRICS
from repro.obs.trace import Tracer
from repro.service.daemon.admission import (REJECT, AdmissionController,
                                            AdmissionPolicy)
from repro.service.daemon.journal import (LIVE_STATES, TERMINAL_STATES,
                                          JournalRecord, JournalStore)
from repro.service.scheduler import FleetRequest, FleetScheduler
from repro.service.telemetry import TelemetryEvent, TelemetryHub


def _priority_order(records) -> list[JournalRecord]:
    """Dispatch order: highest priority first, then oldest, then id."""
    return sorted(records, key=lambda r: (-r.priority, r.submitted_at,
                                          r.request_id))


def _failure_summary(failures, limit: int = 3) -> str:
    lines = [f"{f.spec.display_name}: {f.error}"
             for f in failures[:limit]]
    if len(failures) > limit:
        lines.append(f"... and {len(failures) - limit} more")
    return (f"{len(failures)} job(s) failed: " + "; ".join(lines))


@dataclass(frozen=True)
class DaemonReport:
    """Aggregate of one :meth:`ServeDaemon.run` call."""

    #: leftover admitted/running requests replayed from the journal
    resumed: int
    #: submitted requests admitted this run (resumed ones excluded)
    admitted: int
    #: distinct requests deferred at least once this run
    deferred: int
    #: requests rejected (journaled ``cancelled``) this run
    rejected: int
    #: requests that reached ``done`` this run
    completed: int
    #: requests that reached ``failed`` this run
    failed: int
    #: in-flight requests checkpointed back to ``admitted`` at shutdown
    checkpointed: int
    #: farm jobs actually simulated this run (store hits excluded)
    executed: int
    #: jobs served straight from the result store this run
    store_hits: int
    #: high-water mark of not-yet-measured jobs across admitted/running
    #: requests — the quantity the admission watermark bounds
    peak_pending_jobs: int
    wall_s: float
    #: True when the run ended on request_shutdown (vs idle exit)
    stopped: bool

    @property
    def all_ok(self) -> bool:
        return self.failed == 0

    def summary(self) -> str:
        return (f"daemon: {self.resumed} resumed, {self.admitted} "
                f"admitted, {self.deferred} deferred, {self.rejected} "
                f"rejected; {self.completed} done, {self.failed} "
                f"failed, {self.checkpointed} checkpointed; "
                f"{self.executed} executed, {self.store_hits} store "
                f"hit(s), peak {self.peak_pending_jobs} pending "
                f"job(s) in {self.wall_s * 1e3:.1f} ms"
                + (" [shutdown]" if self.stopped else ""))


class ServeDaemon:
    """Journal-backed serve loop over one :class:`FleetScheduler`.

    Args:
        journal: the durable request journal.
        store: shared result store the scheduler measures against
            (None serves in-memory — journaled requests then resume
            from scratch, which tests use for speed).
        scheduler: an explicit scheduler (exclusive with ``store`` /
            ``jobs`` / ``shards``); must expose ``measure``,
            ``on_event``, ``batch_reports``, and ``aclose``.
        policy: admission policy (default :class:`AdmissionPolicy`).
        jobs / shards / shard_root: farm knobs for the built-in
            scheduler (as :class:`FleetScheduler`).
        max_active: requests served concurrently; admitted requests
            beyond this wait their turn in priority order.
        checkpoint_every: jobs measured per chunk between shutdown
            checks and journal checkpoints (the shutdown latency /
            journal growth trade-off).
        poll_interval: seconds between journal re-reads when idle —
            the out-of-process submission pickup latency.
        telemetry: optional initial sink for ``daemon.*`` spans plus
            the scheduler's own stages.
        tracer: optional :class:`~repro.obs.trace.Tracer` shared with
            the built-in scheduler; every served request becomes a
            **root** ``daemon.request`` span whose context flows down
            scheduler → farm → worker subprocesses (one connected
            trace per request).  Exclusive with ``scheduler`` — an
            explicit scheduler brings its own tracer.
        metrics_interval: seconds between periodic
            :meth:`~repro.obs.metrics.MetricsRegistry.dump` snapshots
            into the journal directory (``metrics.json``); a final
            dump always happens at loop exit.
    """

    def __init__(self, journal: JournalStore, *,
                 store: ResultStore | None = None, scheduler=None,
                 policy: AdmissionPolicy | None = None, jobs: int = 1,
                 shards: int = 0, shard_root=None, max_active: int = 4,
                 checkpoint_every: int = 8, poll_interval: float = 0.25,
                 telemetry=None, tracer: Tracer | None = None,
                 metrics_interval: float = 5.0) -> None:
        if scheduler is not None and (store is not None or shards
                                      or tracer is not None):
            raise ConfigError(
                "pass either an existing scheduler or store/shard/"
                "tracer knobs, not both")
        if max_active < 1:
            raise ConfigError("max_active must be at least 1")
        if checkpoint_every < 1:
            raise ConfigError("checkpoint_every must be at least 1")
        if poll_interval <= 0:
            raise ConfigError("poll_interval must be positive")
        if metrics_interval <= 0:
            raise ConfigError("metrics_interval must be positive")
        self.journal = journal
        self.scheduler = scheduler if scheduler is not None else \
            FleetScheduler(store=store, jobs=jobs, shards=shards,
                           shard_root=shard_root, tracer=tracer)
        self.tracer = tracer if scheduler is None \
            else getattr(scheduler, "tracer", None)
        self.admission = AdmissionController(policy)
        self.max_active = max_active
        self.checkpoint_every = checkpoint_every
        self.poll_interval = poll_interval
        self.metrics_interval = metrics_interval
        self._telemetry = TelemetryHub()
        if telemetry is not None:
            self.on_event(telemetry)
        #: high-water mark of the watermark-bounded pending-jobs count
        self.peak_pending_jobs = 0
        self._stop_flag = False
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        # also (re)initialized per run(); set here so helpers that
        # read them are safe before the first run
        self._active: dict[str, asyncio.Task] = {}
        self._deferred_seen: set[str] = set()
        self._counts: dict[str, int] = {}

    @property
    def _stopping(self) -> bool:
        # the flag is set synchronously by request_shutdown; the event
        # (set via call_soon_threadsafe) may lag until the loop yields
        return self._stop_flag \
            or (self._stop is not None and self._stop.is_set())

    def on_event(self, sink) -> None:
        """Register a sink for daemon spans *and* the scheduler's
        (session + farm) stages — one hook observes the whole stack."""
        self._telemetry.add(sink)
        self.scheduler.on_event(sink)

    def _emit(self, stage: str, seconds: float = 0.0, *,
              program: str | None = None, ok: bool = True,
              detail: str = "") -> None:
        self._telemetry.emit(TelemetryEvent(
            stage=stage, seconds=seconds, program=program, ok=ok,
            detail=detail))

    def _count(self, name: str, by: int = 1) -> None:
        self._counts[name] = self._counts.get(name, 0) + by

    def request_shutdown(self) -> None:
        """Ask the serve loop to checkpoint and exit (signal-safe and
        thread-safe; callable before or during :meth:`run`)."""
        self._stop_flag = True
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(stop.set)

    # -- load accounting ---------------------------------------------------

    def _pending_jobs(self) -> int:
        """Not-yet-measured jobs across admitted/running requests —
        the quantity the admission watermark bounds."""
        return sum(max(r.total_jobs - r.done_jobs, 0)
                   for r in self.journal.records()
                   if r.state in ("admitted", "running"))

    def _tenant_live(self) -> dict[str, int]:
        live: dict[str, int] = {}
        for record in self.journal.records():
            if record.state in ("admitted", "running"):
                live[record.tenant] = live.get(record.tenant, 0) + 1
        return live

    def _note_pending(self) -> None:
        self.peak_pending_jobs = max(self.peak_pending_jobs,
                                     self._pending_jobs())

    def _dump_metrics(self) -> None:
        """Gauge the journal's state distribution and persist the
        process-wide registry next to it (``<journal>/metrics.json``,
        atomic replace).  Best-effort: a full disk must not take down
        the serve loop."""
        counts = {state: 0 for state in LIVE_STATES + TERMINAL_STATES}
        for record in self.journal.records():
            if record.state in counts:
                counts[record.state] += 1
        for state, count in counts.items():
            METRICS.set_gauge(f"journal.{state}", count)
        METRICS.set_gauge("daemon.active_requests", len(self._active))
        METRICS.set_gauge("daemon.pending_jobs", self._pending_jobs())
        try:
            METRICS.dump(self.journal.root)
        except OSError:
            pass

    # -- the serve loop ----------------------------------------------------

    async def run(self, *, once: bool = False) -> DaemonReport:
        """Serve the journal: replay leftovers, admit, dispatch.

        ``once`` exits when the journal holds no live requests and no
        request is being served (batch mode / tests); otherwise the
        loop polls for new submissions until :meth:`request_shutdown`.
        """
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._stop = asyncio.Event()
        if self._stop_flag:
            self._stop.set()
        self._active = {}
        self._deferred_seen = set()
        self._counts = {}
        self.peak_pending_jobs = 0
        start = time.perf_counter()
        batch_base = len(self.scheduler.batch_reports)
        self.journal.reload()
        self._replay()
        stop_waiter = loop.create_task(self._stop.wait())
        last_dump = time.monotonic()
        try:
            while not self._stopping:
                self.journal.reload()
                self._admit()
                self._dispatch(loop)
                if time.monotonic() - last_dump >= self.metrics_interval:
                    self._dump_metrics()
                    last_dump = time.monotonic()
                if once and not self._active \
                        and not self.journal.live():
                    break
                await self._wait_for_activity(stop_waiter)
                self._prune_active()
        finally:
            stop_waiter.cancel()
            stopped = self._stopping
            # graceful drain: in-flight requests observe the stop flag
            # between chunks and checkpoint themselves
            if self._active:
                await asyncio.gather(*self._active.values(),
                                     return_exceptions=True)
            self._active = {}
            await self.scheduler.aclose()
            self._dump_metrics()
        wall_s = time.perf_counter() - start
        batches = self.scheduler.batch_reports[batch_base:]
        report = DaemonReport(
            resumed=self._counts.get("resumed", 0),
            admitted=self._counts.get("admitted", 0),
            deferred=len(self._deferred_seen),
            rejected=self._counts.get("rejected", 0),
            completed=self._counts.get("completed", 0),
            failed=self._counts.get("failed", 0),
            checkpointed=self._counts.get("checkpointed", 0),
            executed=sum(b.executed for b in batches),
            store_hits=sum(b.hits for b in batches),
            peak_pending_jobs=self.peak_pending_jobs,
            wall_s=wall_s, stopped=stopped)
        self._emit("daemon.serve", wall_s, ok=report.all_ok,
                   detail=report.summary())
        return report

    async def _wait_for_activity(self, stop_waiter: asyncio.Task) -> None:
        """Sleep until a served request finishes, shutdown is
        requested, or the poll interval elapses (new submissions are
        only visible by re-reading the journal file)."""
        waiters = set(self._active.values())
        waiters.add(stop_waiter)
        await asyncio.wait(waiters, timeout=self.poll_interval,
                           return_when=asyncio.FIRST_COMPLETED)

    def _prune_active(self) -> None:
        alive: dict[str, asyncio.Task] = {}
        for request_id, task in self._active.items():
            if task.done():
                task.exception()  # consume: _serve_request never raises
            else:
                alive[request_id] = task
        self._active = alive

    def _replay(self) -> None:
        """Startup replay: every admitted/running leftover resumes.

        A ``running`` leftover is the signature of a hard crash (a
        graceful shutdown checkpoints back to ``admitted``); both kinds
        re-enter the dispatch queue, and jobs already in the result
        store make the re-measure incremental.
        """
        for record in self.journal.by_state("admitted", "running"):
            if record.state == "running":
                self.journal.transition(record.request_id, "admitted",
                                        done_jobs=record.done_jobs)
            self._count("resumed")
            self._emit("daemon.resume", program=record.fleet_name,
                       detail=(f"request {record.request_id} "
                               f"({record.state} at crash, "
                               f"attempt {record.attempts}, "
                               f"{record.done_jobs}/"
                               f"{record.total_jobs} job(s) done)"))

    def _admit(self) -> None:
        """Run admission over submitted requests in priority order."""
        tenant_live = self._tenant_live()
        pending = self._pending_jobs()
        for record in _priority_order(self.journal.by_state("submitted")):
            decision = self.admission.decide(
                record, pending_jobs=pending,
                tenant_live=tenant_live.get(record.tenant, 0))
            if decision.admitted:
                self.journal.transition(record.request_id, "admitted")
                self._count("admitted")
                METRICS.inc("admission.admitted")
                pending += max(record.total_jobs - record.done_jobs, 0)
                tenant_live[record.tenant] = \
                    tenant_live.get(record.tenant, 0) + 1
                self.peak_pending_jobs = max(self.peak_pending_jobs,
                                             pending)
                self._emit("daemon.admit", program=record.fleet_name,
                           detail=(f"request {record.request_id} "
                                   f"priority {record.priority} "
                                   f"({record.total_jobs} job(s), "
                                   f"tenant {record.tenant})"))
            elif decision.action == REJECT:
                self.journal.transition(
                    record.request_id, "cancelled",
                    error=f"rejected: {decision.describe()}")
                self._count("rejected")
                METRICS.inc("admission.rejected")
                self._emit("daemon.reject", program=record.fleet_name,
                           ok=False,
                           detail=(f"request {record.request_id} "
                                   f"{decision.describe()}"))
            else:  # deferred: stays submitted, reconsidered next pass
                if record.request_id not in self._deferred_seen:
                    self._deferred_seen.add(record.request_id)
                    METRICS.inc("admission.deferred")
                    self._emit("daemon.reject",
                               program=record.fleet_name,
                               detail=(f"request {record.request_id} "
                                       f"{decision.describe()}"))

    def _dispatch(self, loop: asyncio.AbstractEventLoop) -> None:
        """Start serve tasks for admitted requests, priority first."""
        for record in _priority_order(self.journal.by_state("admitted")):
            if len(self._active) >= self.max_active:
                break
            if record.request_id in self._active:
                continue
            self._active[record.request_id] = loop.create_task(
                self._serve_request(record.request_id))

    async def _serve_request(self, request_id: str) -> None:
        record = self.journal.get(request_id)
        start = time.perf_counter()
        # the request's ROOT span: everything below — scheduler fleet
        # batches, farm sweeps, worker-subprocess jobs — parents under
        # this context, so one submission is one connected trace
        span = (self.tracer.start("daemon.request",
                                  attrs={"request_id": request_id,
                                         "fleet": record.fleet_name,
                                         "tenant": record.tenant,
                                         "priority": record.priority})
                if self.tracer is not None else None)
        ctx = span.context if span is not None else None
        try:
            request = FleetRequest.from_spec(record.fleet)
        except EricError as exc:
            # a spec that no longer parses is terminally broken — a
            # crash-loop of re-admissions would never get further
            self.journal.transition(request_id, "running",
                                    attempts=record.attempts + 1)
            self._finish(request_id, (), error=str(exc), start=start,
                         span=span)
            return
        record = self.journal.transition(
            request_id, "running", done_jobs=0,
            attempts=record.attempts + 1)
        jobs = request.jobs
        results = []
        try:
            for at in range(0, len(jobs), self.checkpoint_every):
                if self._stopping:
                    self.journal.transition(request_id, "admitted",
                                            done_jobs=len(results))
                    self._count("checkpointed")
                    if span is not None:
                        span.finish(detail=(
                            f"checkpointed at {len(results)}/"
                            f"{len(jobs)} job(s)"))
                    self._emit(
                        "daemon.checkpoint", program=record.fleet_name,
                        detail=(f"request {request_id} journaled for "
                                f"resume at {len(results)}/"
                                f"{len(jobs)} job(s)"))
                    return
                chunk = jobs[at:at + self.checkpoint_every]
                # trace_parent passed only when tracing: stand-in
                # schedulers (tests) need not grow the keyword
                measured = await (
                    self.scheduler.measure(chunk, trace_parent=ctx)
                    if ctx is not None
                    else self.scheduler.measure(chunk))
                results.extend(measured)
                if len(results) < len(jobs):
                    self.journal.transition(request_id, "running",
                                            done_jobs=len(results))
                    self._emit(
                        "daemon.checkpoint", program=record.fleet_name,
                        detail=(f"request {request_id} at "
                                f"{len(results)}/{len(jobs)} job(s)"))
        except Exception as exc:  # batch-level failure: this request
            self._finish(request_id, results,  # fails, the loop lives
                         error=f"{type(exc).__name__}: {exc}",
                         start=start, span=span)
            return
        failures = tuple(r for r in results if not r.ok)
        self._finish(request_id, results,
                     error=_failure_summary(failures) if failures
                     else None, start=start, span=span)

    def _finish(self, request_id: str, results, *, error: str | None,
                start: float, span=None) -> None:
        record = self.journal.get(request_id)
        wall_s = time.perf_counter() - start
        summary = {
            "jobs": len(results),
            "store_hits": sum(1 for r in results if r.from_store),
            "failures": sum(1 for r in results if not r.ok),
            "wall_s": wall_s,
        }
        state = "failed" if error is not None else "done"
        self.journal.transition(request_id, state, error=error,
                                result=summary, done_jobs=len(results))
        self._count("failed" if error is not None else "completed")
        METRICS.inc(f"daemon.requests_{state}")
        if span is not None:
            span.finish(ok=error is None,
                        detail=(f"{state}: {summary['jobs']} job(s), "
                                f"{summary['store_hits']} store "
                                f"hit(s), {summary['failures']} failed"))
        self._emit("daemon.request", wall_s, program=record.fleet_name,
                   ok=error is None,
                   detail=(f"request {request_id} {state}: "
                           f"{summary['jobs']} job(s), "
                           f"{summary['store_hits']} store hit(s), "
                           f"{summary['failures']} failed"
                           + (f" — {error}" if error else "")))
