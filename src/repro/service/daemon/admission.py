"""Admission and flow control for the serve daemon.

The daemon must never let the batch queue outrun the farm: admitted
work is bounded by a **pending-jobs watermark** (the sum of
not-yet-measured jobs across admitted and running requests), and each
tenant is bounded by a **live-request quota** so one noisy submitter
cannot starve the rest.  A request the bounds cannot take is either
**deferred** (left ``submitted`` in the journal, reconsidered every
scheduling pass — queue-and-defer, at the cost of one journal record,
never of daemon memory) or **rejected** (journaled ``cancelled`` with a
retry-after hint in the error), per the policy's ``overflow`` knob.

Decisions are pure functions of (record, observed load), so tests
exercise the policy without a daemon, and the daemon emits exactly one
``daemon.admit`` / ``daemon.reject`` telemetry span per decision.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.service.daemon.journal import JournalRecord

ADMIT = "admit"
DEFER = "defer"
REJECT = "reject"

#: Overflow handling modes: queue-and-defer or reject-with-retry-after.
OVERFLOW_MODES = (DEFER, REJECT)


@dataclass(frozen=True)
class AdmissionPolicy:
    """The daemon's flow-control knobs.

    Attributes:
        max_pending_jobs: watermark on not-yet-measured jobs across all
            admitted/running requests.  A request whose jobs would push
            the total past the watermark waits — except when nothing is
            pending at all, so one request larger than the watermark
            still makes progress instead of livelocking.
        tenant_quota: max live (admitted or running) requests per
            tenant.
        overflow: what happens past a bound — ``"defer"`` leaves the
            request submitted (retried every pass), ``"reject"``
            cancels it with a retry-after hint.
        retry_after_s: the hint a rejection carries.
    """

    max_pending_jobs: int = 256
    tenant_quota: int = 8
    overflow: str = DEFER
    retry_after_s: float = 30.0

    def validate(self) -> "AdmissionPolicy":
        if self.max_pending_jobs < 1:
            raise ConfigError("max_pending_jobs must be at least 1")
        if self.tenant_quota < 1:
            raise ConfigError("tenant_quota must be at least 1")
        if self.overflow not in OVERFLOW_MODES:
            raise ConfigError(
                f"overflow must be one of {OVERFLOW_MODES}, "
                f"got {self.overflow!r}")
        if self.retry_after_s < 0:
            raise ConfigError("retry_after_s must be non-negative")
        return self


@dataclass(frozen=True)
class AdmissionDecision:
    """One admission verdict: admit, defer, or reject."""

    action: str
    reason: str = ""
    retry_after_s: float | None = None

    @property
    def admitted(self) -> bool:
        return self.action == ADMIT

    def describe(self) -> str:
        text = self.action
        if self.reason:
            text += f": {self.reason}"
        if self.retry_after_s is not None:
            text += f" (retry after {self.retry_after_s:g}s)"
        return text


class AdmissionController:
    """Apply one :class:`AdmissionPolicy` to submitted requests."""

    def __init__(self, policy: AdmissionPolicy | None = None) -> None:
        self.policy = (policy or AdmissionPolicy()).validate()

    def _overflow(self, reason: str) -> AdmissionDecision:
        if self.policy.overflow == REJECT:
            return AdmissionDecision(
                action=REJECT, reason=reason,
                retry_after_s=self.policy.retry_after_s)
        return AdmissionDecision(action=DEFER, reason=reason)

    def decide(self, record: JournalRecord, *, pending_jobs: int,
               tenant_live: int) -> AdmissionDecision:
        """Judge one submitted request against the observed load.

        Args:
            record: the submitted journal record.
            pending_jobs: not-yet-measured jobs across currently
                admitted/running requests.
            tenant_live: the record's tenant's live request count.
        """
        policy = self.policy
        if tenant_live >= policy.tenant_quota:
            return self._overflow(
                f"tenant {record.tenant!r} at quota "
                f"({tenant_live}/{policy.tenant_quota} live "
                f"request(s))")
        remaining = max(record.total_jobs - record.done_jobs, 0)
        if pending_jobs > 0 \
                and pending_jobs + remaining > policy.max_pending_jobs:
            return self._overflow(
                f"pending-jobs watermark ({pending_jobs} pending "
                f"+ {remaining} requested > {policy.max_pending_jobs})")
        return AdmissionDecision(action=ADMIT)
