"""repro.service.daemon — the durable serve daemon.

The "millions of users" layer on top of the async fleet scheduler:
many tenants submit fleet specs against one farm/store pair, and the
daemon owes them an answer even across crashes and restarts.

* :mod:`~repro.service.daemon.journal`   — :class:`JournalStore`: the
  append-only JSONL request journal (last-wins replay, corrupt-tail
  tolerance, atomic compaction — the
  :class:`~repro.farm.store.ResultStore` discipline for requests)
* :mod:`~repro.service.daemon.admission` — per-tenant quotas and the
  pending-jobs watermark (defer or reject-with-retry-after)
* :mod:`~repro.service.daemon.daemon`    — :class:`ServeDaemon`: the
  journal-replaying, priority-dispatching serve loop with graceful
  shutdown checkpoints
* :mod:`~repro.service.daemon.client`    — out-of-process submission
  and status (``eric submit`` / ``eric status``)
* :mod:`~repro.service.daemon.doctor`    — read-only journal health
  checks (``eric doctor --journal``)
"""

from repro.service.daemon.admission import (AdmissionController,
                                            AdmissionDecision,
                                            AdmissionPolicy)
from repro.service.daemon.client import (fleet_entries, format_status,
                                         submit_fleets)
from repro.service.daemon.daemon import DaemonReport, ServeDaemon
from repro.service.daemon.doctor import (JournalDiagnosis, StuckRequest,
                                         diagnose_journal)
from repro.service.daemon.journal import (JOURNAL_SCHEMA, LIVE_STATES,
                                          STATES, TERMINAL_STATES,
                                          JournalRecord, JournalStore)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionPolicy",
    "DaemonReport",
    "JOURNAL_SCHEMA",
    "JournalDiagnosis",
    "JournalRecord",
    "JournalStore",
    "LIVE_STATES",
    "STATES",
    "ServeDaemon",
    "StuckRequest",
    "TERMINAL_STATES",
    "diagnose_journal",
    "fleet_entries",
    "format_status",
    "submit_fleets",
]
