"""The durable fleet-request journal.

Every request the serve daemon accepts is an append-only JSONL record
under a journal directory — one line per state change, keyed by
``request_id``, exactly the :class:`~repro.farm.store.ResultStore`
discipline applied to *requests* instead of measurements:

* a truncated/corrupt line (killed process mid-append) is skipped, not
  fatal;
* records written under a different :data:`JOURNAL_SCHEMA` are ignored;
* duplicate ``request_id`` lines resolve to the *last* record — a state
  transition simply appends the updated record and wins.

The append-only layout is what makes the daemon durable: submitters
(``eric submit``) and the daemon append to the same file from different
processes, a crash mid-serve loses at most one torn line, and replaying
the file after a restart reconstructs every request's latest state.

Request lifecycle::

    submitted --> admitted --> running --> done | failed
        |             ^            |
        |             +------------+   (shutdown checkpoint)
        +--> cancelled (admission reject / operator)

``running -> admitted`` is the graceful-shutdown checkpoint: the daemon
re-journals in-flight requests as admitted-but-not-running so the next
daemon resumes them; a hard crash leaves them ``running`` and the
replay resumes those too.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
import uuid
from dataclasses import asdict, dataclass, fields, replace
from pathlib import Path

from repro.errors import ConfigError, EricError

#: Journal record layout version; lines under any other version are
#: skipped at load (they no longer describe what the daemon serves).
JOURNAL_SCHEMA = 1

_FILENAME = "journal.jsonl"

#: States a request moves through, in lifecycle order.
LIVE_STATES = ("submitted", "admitted", "running")
TERMINAL_STATES = ("done", "failed", "cancelled")
STATES = LIVE_STATES + TERMINAL_STATES

#: Legal state transitions (see module docstring for the diagram).
_TRANSITIONS = {
    "submitted": {"admitted", "cancelled"},
    "admitted": {"running", "cancelled"},
    "running": {"admitted", "running", "done", "failed", "cancelled"},
    "done": set(),
    "failed": set(),
    "cancelled": set(),
}


def new_request_id() -> str:
    """A fresh journal request id (random, submitter-side unique)."""
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class JournalRecord:
    """One request's latest journaled state.

    ``fleet`` is the raw ``eric serve`` fleet entry (``{"name": ...}``
    plus sweep-matrix keys) — stored as submitted, parsed into a
    :class:`~repro.service.scheduler.FleetRequest` only when the daemon
    serves it, so the journal never depends on spec-expansion code
    staying frozen.
    """

    request_id: str
    fleet: dict
    tenant: str = "default"
    #: higher dispatches first; ties break on submission time then id
    priority: int = 0
    state: str = "submitted"
    submitted_at: float = 0.0
    updated_at: float = 0.0
    #: times a daemon started running this request (resume counting)
    attempts: int = 0
    #: jobs measured by the current attempt's last checkpoint
    done_jobs: int = 0
    #: fully-expanded job count (recorded at submit time)
    total_jobs: int = 0
    error: str | None = None
    #: outcome summary on ``done``/``failed`` (jobs/hits/failures/wall)
    result: dict | None = None
    schema: int = JOURNAL_SCHEMA

    @property
    def fleet_name(self) -> str:
        name = self.fleet.get("name") if isinstance(self.fleet, dict) \
            else None
        return name if isinstance(name, str) and name else "?"

    @property
    def live(self) -> bool:
        return self.state in LIVE_STATES

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def validate(self) -> "JournalRecord":
        if not isinstance(self.request_id, str) or not self.request_id:
            raise ConfigError(
                f"request_id must be a non-empty string, "
                f"got {self.request_id!r}")
        if not isinstance(self.fleet, dict) or "name" not in self.fleet:
            raise ConfigError(
                f"request {self.request_id}: fleet must be an object "
                f'with a "name" (the eric serve fleet dialect)')
        if not isinstance(self.tenant, str) or not self.tenant:
            raise ConfigError(
                f"request {self.request_id}: tenant must be a "
                f"non-empty string, got {self.tenant!r}")
        if not isinstance(self.priority, int) \
                or isinstance(self.priority, bool):
            raise ConfigError(
                f"request {self.request_id}: priority must be an "
                f"integer, got {self.priority!r}")
        if self.state not in STATES:
            raise ConfigError(
                f"request {self.request_id}: unknown state "
                f"{self.state!r}; expected one of {sorted(STATES)}")
        return self

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "JournalRecord | None":
        """Parse one journal line; None for corrupt or
        schema-mismatched records (the caller skips them)."""
        try:
            data = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None
        return cls.from_dict(data)

    @classmethod
    def from_dict(cls, data) -> "JournalRecord | None":
        if not isinstance(data, dict) \
                or data.get("schema") != JOURNAL_SCHEMA:
            return None
        names = {f.name for f in fields(cls)}
        try:
            record = cls(**{k: v for k, v in data.items() if k in names})
            record.validate()
        except (TypeError, ConfigError):
            return None
        return record


class JournalStore:
    """Keyed JSONL persistence of request records, last-line-wins.

    Thread-safe in-process; cross-process safety rests on appends being
    single ``write`` calls of one line (the submitter/daemon contract)
    and on :meth:`reload` tolerating a torn tail.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.path = self.root / _FILENAME
        self._lock = threading.Lock()
        self._records: dict[str, JournalRecord]
        self._records, self.skipped_lines = self._read_file()

    def _read_file(self) -> tuple[dict[str, JournalRecord], int]:
        records: dict[str, JournalRecord] = {}
        skipped = 0
        if self.path.exists():
            for line in self.path.read_text(
                    encoding="utf-8").splitlines():
                if not line.strip():
                    continue
                record = JournalRecord.from_json(line)
                if record is None:
                    skipped += 1
                else:
                    records[record.request_id] = record
        return records, skipped

    def skipped_warning(self) -> str | None:
        """One-line operator warning when the journal carried corrupt
        or schema-mismatched lines; None when it loaded clean."""
        if not self.skipped_lines:
            return None
        return (f"{self.path} has {self.skipped_lines} corrupt or "
                f"schema-mismatched line(s); they are skipped at load "
                f"and dropped by compaction")

    def reload(self) -> None:
        """Re-read the file, picking up records appended by other
        processes (``eric submit`` while the daemon runs).  Every
        in-process mutation writes through to disk first, so the file
        is always at least as new as memory."""
        with self._lock:
            self._records, self.skipped_lines = self._read_file()

    def get(self, request_id: str) -> JournalRecord | None:
        with self._lock:
            return self._records.get(request_id)

    def __contains__(self, request_id: str) -> bool:
        with self._lock:
            return request_id in self._records

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def records(self) -> tuple[JournalRecord, ...]:
        """Every request's latest record, oldest submission first."""
        with self._lock:
            records = list(self._records.values())
        return tuple(sorted(
            records, key=lambda r: (r.submitted_at, r.request_id)))

    def by_state(self, *states: str) -> tuple[JournalRecord, ...]:
        for state in states:
            if state not in STATES:
                raise ConfigError(f"unknown journal state {state!r}")
        return tuple(r for r in self.records() if r.state in states)

    def live(self) -> tuple[JournalRecord, ...]:
        """Requests a daemon still owes work: submitted, admitted, or
        running (the replay set after a restart)."""
        return tuple(r for r in self.records() if r.live)

    def append(self, record: JournalRecord) -> JournalRecord:
        """Validate, remember, and append one record (write-through)."""
        record.validate()
        with self._lock:
            self._records[record.request_id] = record
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(record.to_json() + "\n")
        return record

    def submit(self, fleet: dict, *, tenant: str = "default",
               priority: int = 0, total_jobs: int = 0,
               request_id: str | None = None) -> JournalRecord:
        """Journal a fresh request in state ``submitted``."""
        now = time.time()
        record = JournalRecord(
            request_id=request_id or new_request_id(), fleet=fleet,
            tenant=tenant, priority=priority, submitted_at=now,
            updated_at=now, total_jobs=total_jobs)
        if record.request_id in self:
            raise EricError(
                f"request {record.request_id} is already journaled")
        return self.append(record)

    def transition(self, request_id: str, state: str, *,
                   error: str | None = None, result: dict | None = None,
                   done_jobs: int | None = None,
                   attempts: int | None = None) -> JournalRecord:
        """Append the request's record under a new (legal) state."""
        record = self.get(request_id)
        if record is None:
            raise EricError(f"request {request_id} is not journaled")
        if state not in _TRANSITIONS.get(record.state, set()):
            raise EricError(
                f"request {request_id}: illegal transition "
                f"{record.state} -> {state}")
        updated = replace(
            record, state=state, updated_at=time.time(), error=error,
            result=result if result is not None else record.result,
            done_jobs=(done_jobs if done_jobs is not None
                       else record.done_jobs),
            attempts=(attempts if attempts is not None
                      else record.attempts))
        return self.append(updated)

    def compact(self) -> int:
        """Atomically rewrite the file with one line per request
        (sorted by submission), dropping superseded state lines and
        corrupt tails; returns the line count.

        The file is re-read first, so records appended by another
        process up to that point merge in rather than vanish (the same
        small lost-append window :meth:`ResultStore.compact` documents:
        compact while other writers are quiescent).
        """
        with self._lock:
            merged, _ = self._read_file()
            for request_id, record in self._records.items():
                merged.setdefault(request_id, record)
            self._records = merged
            ordered = sorted(merged.values(),
                             key=lambda r: (r.submitted_at,
                                            r.request_id))
            text = "".join(r.to_json() + "\n" for r in ordered)
            handle, tmp_name = tempfile.mkstemp(
                dir=self.root, prefix=_FILENAME + ".", suffix=".tmp")
            try:
                with os.fdopen(handle, "w", encoding="utf-8") as tmp:
                    tmp.write(text)
                    tmp.flush()
                    os.fsync(tmp.fileno())
                os.replace(tmp_name, self.path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
            self.skipped_lines = 0
            return len(merged)
