"""Out-of-process journal access: submission and inspection.

``eric submit`` and ``eric status`` are thin wrappers over this module.
Submission appends ``submitted`` records to the journal file — the
running daemon's poll loop picks them up on its next pass, and a daemon
started later replays them; either way the request survives every
process involved.  Specs are validated (parsed all the way to expanded
jobs) *before* they are journaled, so a bad spec fails at the
submitter's prompt instead of crash-looping inside the daemon.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.service.daemon.journal import (LIVE_STATES, STATES,
                                          JournalRecord, JournalStore)
from repro.service.scheduler import FleetRequest


def fleet_entries(spec: dict) -> tuple[dict, ...]:
    """Accept either one fleet entry (``{"name": ..., <matrix keys>}``)
    or a full ``eric serve`` document (``{"fleets": [...]}``)."""
    if not isinstance(spec, dict):
        raise ConfigError("submission spec must be a JSON object")
    if "fleets" in spec:
        unknown = set(spec) - {"fleets"}
        if unknown:
            raise ConfigError(
                f"unknown submission keys {sorted(unknown)}; a "
                f'"fleets" document carries only "fleets"')
        entries = spec["fleets"]
        if not isinstance(entries, list) or not entries:
            raise ConfigError(
                "fleets must be a non-empty list of fleet objects")
        return tuple(entries)
    return (spec,)


def submit_fleets(journal: JournalStore, spec: dict, *,
                  tenant: str = "default",
                  priority: int = 0) -> tuple[JournalRecord, ...]:
    """Validate and journal every fleet of ``spec`` as one request
    each; returns the journaled records (state ``submitted``)."""
    entries = fleet_entries(spec)
    # validate everything before journaling anything: a bad third
    # fleet must not leave the first two half-submitted
    requests = [FleetRequest.from_spec(entry) for entry in entries]
    names = [request.name for request in requests]
    duplicates = {name for name in names if names.count(name) > 1}
    if duplicates:
        raise ConfigError(
            f"duplicate fleet name(s) in one submission: "
            f"{sorted(duplicates)}")
    return tuple(
        journal.submit(entry, tenant=tenant, priority=priority,
                       total_jobs=len(request.jobs))
        for entry, request in zip(entries, requests))


def format_status(journal: JournalStore) -> str:
    """Human-readable journal summary (the ``eric status`` body)."""
    records = journal.records()
    by_state = {state: [r for r in records if r.state == state]
                for state in STATES}
    lines = [f"journal: {journal.path}"]
    lines.append("  " + ", ".join(
        f"{len(by_state[state])} {state}" for state in STATES))
    live = [r for r in records if r.state in LIVE_STATES]
    shown = live if live else records
    if not records:
        lines.append("  no requests journaled yet")
    elif not live:
        lines.append("  no live requests; latest terminal states:")
    for record in shown:
        progress = (f"{record.done_jobs}/{record.total_jobs}"
                    if record.total_jobs else "?")
        line = (f"  {record.request_id}  {record.state:<9} "
                f"p{record.priority:<3} {record.tenant}/"
                f"{record.fleet_name}  {progress} job(s)"
                f"  attempt {record.attempts}")
        if record.error:
            line += f"  [{record.error}]"
        lines.append(line)
    warning = journal.skipped_warning()
    if warning:
        lines.append(f"  warning: {warning}")
    return "\n".join(lines)
