"""repro.service — fleet-scale deployment on top of the core flow.

* :mod:`repro.service.session`   — :class:`DeploymentSession`: registry +
  compiler + artifact cache + telemetry behind ``deploy``,
  ``deploy_fleet`` and ``package_for``
* :mod:`repro.service.cache`     — thread-safe LRU of device-independent
  compiled artifacts with hit/miss statistics
* :mod:`repro.service.telemetry` — per-stage observability hooks

The split this package rides on lives in
:mod:`repro.core.compiler_driver`: ``prepare()`` (compile + sign +
select, device-independent, cacheable) vs ``package_artifact()``
(encrypt + package under one device key).
"""

from repro.service.cache import ArtifactCache, CacheStats
from repro.service.session import (ChannelFactory, DeploymentSession,
                                   FleetDeploymentReport,
                                   FleetDeviceOutcome)
from repro.service.telemetry import (RecordingTelemetry, TelemetryEvent,
                                     TelemetryHub)

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "ChannelFactory",
    "DeploymentSession",
    "FleetDeploymentReport",
    "FleetDeviceOutcome",
    "RecordingTelemetry",
    "TelemetryEvent",
    "TelemetryHub",
]
