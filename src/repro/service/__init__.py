"""repro.service — fleet-scale deployment on top of the core flow.

* :mod:`repro.service.session`   — :class:`DeploymentSession`: registry +
  compiler + artifact cache + telemetry behind ``deploy``,
  ``deploy_fleet`` and ``package_for``
* :mod:`repro.service.cache`     — thread-safe LRU of device-independent
  compiled artifacts with hit/miss statistics
* :mod:`repro.service.scheduler` — the asyncio service layer:
  :class:`AsyncDeploymentSession` (coroutine session API, single-flight
  compiles) and :class:`FleetScheduler` (many concurrent fleets
  multiplexed over one artifact cache and one farm/store pair)
* :mod:`repro.service.telemetry` — per-stage observability hooks

The split this package rides on lives in
:mod:`repro.core.compiler_driver`: ``prepare()`` (compile + sign +
select, device-independent, cacheable) vs ``package_artifact()``
(encrypt + package under one device key).
"""

from repro.service.cache import ArtifactCache, CacheStats
from repro.service.session import (ChannelFactory, DeploymentSession,
                                   FleetDeploymentReport,
                                   FleetDeviceOutcome, build_fleet_report)
from repro.service.telemetry import (RecordingTelemetry, StagePrinter,
                                     TelemetryEvent, TelemetryHub)

#: Scheduler names resolve lazily (PEP 562): repro.farm's telemetry
#: import runs this package's __init__, and the scheduler module
#: imports repro.farm back — importing it eagerly here would close
#: that cycle mid-initialization.
_SCHEDULER_EXPORTS = frozenset({
    "AsyncDeploymentSession", "AsyncSingleFlight", "FleetRequest",
    "FleetScheduler", "FleetServiceReport", "SchedulerReport",
    "load_fleet_specs",
})


def __getattr__(name: str):
    if name in _SCHEDULER_EXPORTS:
        from repro.service import scheduler
        return getattr(scheduler, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ArtifactCache",
    "AsyncDeploymentSession",
    "AsyncSingleFlight",
    "CacheStats",
    "ChannelFactory",
    "DeploymentSession",
    "FleetDeploymentReport",
    "FleetDeviceOutcome",
    "FleetRequest",
    "FleetScheduler",
    "FleetServiceReport",
    "RecordingTelemetry",
    "SchedulerReport",
    "StagePrinter",
    "TelemetryEvent",
    "TelemetryHub",
    "build_fleet_report",
    "load_fleet_specs",
]
