"""Deployment telemetry: pluggable per-stage observability hooks.

A :class:`DeploymentSession` emits one :class:`TelemetryEvent` per
pipeline stage (compile, package, transfer, execute, …) to every
registered sink.  A sink is any callable taking the event — a logger, a
metrics exporter, or the bundled :class:`RecordingTelemetry` used by
tests and reports.  Sinks must never break a deployment: exceptions they
raise are swallowed.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TelemetryEvent:
    """One observed pipeline stage."""

    stage: str
    seconds: float = 0.0
    device_id: str | None = None
    program: str | None = None
    ok: bool = True
    detail: str = ""


class RecordingTelemetry:
    """A sink that keeps every event (tests, reports, debugging)."""

    def __init__(self) -> None:
        self.events: list[TelemetryEvent] = []

    def __call__(self, event: TelemetryEvent) -> None:
        self.events.append(event)

    def stages(self, stage: str) -> list[TelemetryEvent]:
        return [e for e in self.events if e.stage == stage]

    def total_seconds(self, stage: str) -> float:
        return sum(e.seconds for e in self.stages(stage))


@dataclass
class StagePrinter:
    """A sink that renders events as one-line progress messages.

    Used by ``eric sweep`` to narrate farm jobs as they land; any
    emitter (deployment sessions, the simulation farm) can share it.
    ``stages`` limits output to a stage prefix (e.g. ``"farm."``).
    """

    stream: object = None  # default: sys.stdout at call time
    stages: str = ""

    def __call__(self, event: TelemetryEvent) -> None:
        import sys

        if self.stages and not event.stage.startswith(self.stages):
            return
        stream = self.stream if self.stream is not None else sys.stdout
        subject = f" {event.program}" if event.program else ""
        detail = f": {event.detail}" if event.detail else ""
        flag = "" if event.ok else " [FAILED]"
        print(f"  [{event.stage}]{subject}{detail} "
              f"({event.seconds * 1e3:.1f} ms){flag}", file=stream)


@dataclass
class TelemetryHub:
    """Fan-out to zero or more sinks; failures in sinks are isolated."""

    sinks: list = field(default_factory=list)

    def add(self, sink) -> None:
        self.sinks.append(sink)

    def emit(self, event: TelemetryEvent) -> None:
        for sink in self.sinks:
            try:
                sink(event)
            except Exception:
                # Observability must never take down a deployment.
                pass
