"""Deployment telemetry: pluggable per-stage observability hooks.

A :class:`DeploymentSession` emits one :class:`TelemetryEvent` per
pipeline stage (compile, package, transfer, execute, …) to every
registered sink.  A sink is any callable taking the event — a logger, a
metrics exporter, or the bundled :class:`RecordingTelemetry` used by
tests and reports.  Sinks must never break a deployment: exceptions they
raise are swallowed.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass(frozen=True)
class TelemetryEvent:
    """One observed pipeline stage."""

    stage: str
    seconds: float = 0.0
    device_id: str | None = None
    program: str | None = None
    ok: bool = True
    detail: str = ""


class RecordingTelemetry:
    """A sink that keeps every event (tests, reports, debugging)."""

    def __init__(self) -> None:
        self.events: list[TelemetryEvent] = []

    def __call__(self, event: TelemetryEvent) -> None:
        self.events.append(event)

    def stages(self, stage: str) -> list[TelemetryEvent]:
        return [e for e in self.events if e.stage == stage]

    def total_seconds(self, stage: str) -> float:
        return sum(e.seconds for e in self.stages(stage))


@dataclass
class StagePrinter:
    """A sink that renders events as one-line progress messages.

    Used by ``eric sweep`` to narrate farm jobs as they land; any
    emitter (deployment sessions, the simulation farm, the async fleet
    scheduler) can share it.  ``stages`` limits output to a stage
    prefix (e.g. ``"farm."``).

    Line-atomic under concurrency: events arrive from scheduler tasks,
    fleet worker threads, and farm callbacks at once, so each event is
    rendered to one string and written with a single locked ``write``
    call — interleaved half-lines would corrupt the narration (and any
    log a CI run greps).
    """

    stream: object = None  # default: sys.stdout at call time
    stages: str = ""
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  init=False, repr=False, compare=False)

    def __call__(self, event: TelemetryEvent) -> None:
        import sys

        if self.stages and not event.stage.startswith(self.stages):
            return
        stream = self.stream if self.stream is not None else sys.stdout
        subject = f" {event.program}" if event.program else ""
        detail = f": {event.detail}" if event.detail else ""
        flag = "" if event.ok else " [FAILED]"
        line = (f"  [{event.stage}]{subject}{detail} "
                f"({event.seconds * 1e3:.1f} ms){flag}\n")
        with self._lock:
            stream.write(line)


@dataclass
class TelemetryHub:
    """Fan-out to zero or more sinks; failures in sinks are isolated.

    ``emit`` iterates a snapshot of the sink list, so registering a
    sink from one thread while another emits never trips over a
    mutating list (each event reaches the sinks present when it was
    emitted).
    """

    sinks: list = field(default_factory=list)

    def add(self, sink) -> None:
        self.sinks.append(sink)

    def emit(self, event: TelemetryEvent) -> None:
        for sink in tuple(self.sinks):
            try:
                sink(event)
            except Exception:
                # Observability must never take down a deployment.
                pass
