"""Deployment telemetry: pluggable per-stage observability hooks.

A :class:`DeploymentSession` emits one :class:`TelemetryEvent` per
pipeline stage (compile, package, transfer, execute, …) to every
registered sink.  A sink is any callable taking the event — a logger, a
metrics exporter, or the bundled :class:`RecordingTelemetry` used by
tests and reports.  Sinks must never break a deployment: exceptions they
raise are swallowed (and counted on the process-wide
``telemetry.sink_errors`` metric, so a silently-broken sink still shows
up in ``eric metrics``).

Events optionally carry trace coordinates (``trace_id``/``span_id``,
see :mod:`repro.obs.trace`) and free-form ``attrs`` — emitters that
run inside a span stamp them so a log line can be joined back to its
waterfall; emitters that predate tracing simply leave them None.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.obs.metrics import METRICS, format_duration


@dataclass(frozen=True)
class TelemetryEvent:
    """One observed pipeline stage."""

    stage: str
    seconds: float = 0.0
    device_id: str | None = None
    program: str | None = None
    ok: bool = True
    detail: str = ""
    #: trace coordinates of the span this stage ran under (optional)
    trace_id: str | None = None
    span_id: str | None = None
    #: free-form structured payload (optional; never rendered by
    #: StagePrinter, preserved verbatim by RecordingTelemetry)
    attrs: dict | None = None


class RecordingTelemetry:
    """A sink that keeps every event (tests, reports, debugging).

    Thread-safe: scheduler tasks, fleet worker threads, and farm
    callbacks all append concurrently, and ``list.append`` alone would
    let a reader iterate a list mid-growth.  Readers go through
    :meth:`snapshot`, which copies under the same lock.
    """

    def __init__(self) -> None:
        self.events: list[TelemetryEvent] = []
        self._lock = threading.Lock()

    def __call__(self, event: TelemetryEvent) -> None:
        with self._lock:
            self.events.append(event)

    def snapshot(self) -> tuple[TelemetryEvent, ...]:
        """A consistent copy of everything recorded so far."""
        with self._lock:
            return tuple(self.events)

    def stages(self, stage: str) -> list[TelemetryEvent]:
        return [e for e in self.snapshot() if e.stage == stage]

    def total_seconds(self, stage: str) -> float:
        return sum(e.seconds for e in self.stages(stage))


@dataclass
class StagePrinter:
    """A sink that renders events as one-line progress messages.

    Used by ``eric sweep`` to narrate farm jobs as they land; any
    emitter (deployment sessions, the simulation farm, the async fleet
    scheduler) can share it.  ``stages`` limits output to a stage
    prefix (e.g. ``"farm."``).  Durations render adaptively —
    milliseconds under 10 s, whole seconds above — so hour-long sweep
    lines stay readable.

    Line-atomic under concurrency: events arrive from scheduler tasks,
    fleet worker threads, and farm callbacks at once, so each event is
    rendered to one string and written with a single locked ``write``
    call — interleaved half-lines would corrupt the narration (and any
    log a CI run greps).
    """

    stream: object = None  # default: sys.stdout at call time
    stages: str = ""
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  init=False, repr=False, compare=False)

    def __call__(self, event: TelemetryEvent) -> None:
        import sys

        if self.stages and not event.stage.startswith(self.stages):
            return
        stream = self.stream if self.stream is not None else sys.stdout
        subject = f" {event.program}" if event.program else ""
        detail = f": {event.detail}" if event.detail else ""
        flag = "" if event.ok else " [FAILED]"
        line = (f"  [{event.stage}]{subject}{detail} "
                f"({format_duration(event.seconds)}){flag}\n")
        with self._lock:
            stream.write(line)


@dataclass
class TelemetryHub:
    """Fan-out to zero or more sinks; failures in sinks are isolated.

    ``emit`` iterates a snapshot of the sink list, so registering a
    sink from one thread while another emits never trips over a
    mutating list (each event reaches the sinks present when it was
    emitted).
    """

    sinks: list = field(default_factory=list)

    def add(self, sink) -> None:
        self.sinks.append(sink)

    def emit(self, event: TelemetryEvent) -> None:
        for sink in tuple(self.sinks):
            try:
                sink(event)
            except Exception:
                # Observability must never take down a deployment —
                # but a broken sink must not fail silently either.
                METRICS.inc("telemetry.sink_errors")
