"""Compiled-artifact cache: the compile-once half of fleet deployment.

A :class:`CompiledArtifact` is a pure function of ``(source, config)``
(see :mod:`repro.core.compiler_driver`), so a deployment session can keep
it and bind it to any number of device keys.  The cache is a small
thread-safe LRU keyed by ``(source digest, program name, config)`` —
:class:`repro.core.config.EricConfig` is a frozen dataclass, hence
hashable as-is — with hit/miss counters so tests and reports can prove
that an N-device rollout compiled exactly once.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.core.compiler_driver import CompiledArtifact
from repro.core.config import EricConfig
from repro.obs.metrics import METRICS


@dataclass(frozen=True)
class CacheStats:
    """Snapshot of cache effectiveness counters."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    entries: int = 0

    @property
    def compiles(self) -> int:
        """Times the MiniC compiler actually ran (one per miss)."""
        return self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class ArtifactCache:
    """Thread-safe LRU of device-independent compiled artifacts."""

    def __init__(self, max_entries: int | None = 64) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be at least 1 (or None)")
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple, CompiledArtifact] = OrderedDict()
        self._lock = threading.Lock()
        self._building: dict[tuple, threading.Lock] = {}
        self._lookups = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @staticmethod
    def key(source_digest: str, name: str, config: EricConfig) -> tuple:
        return (source_digest, name, config)

    def get_or_build(self, source_digest: str, name: str,
                     config: EricConfig, build) -> CompiledArtifact:
        """Return the cached artifact or build (and remember) it.

        ``build`` runs under a per-key lock, not the cache-wide one:
        concurrent workers asking for the same program trigger exactly
        one compile, while lookups (and builds of other programs)
        proceed unblocked — and ``build`` may safely re-enter cache
        methods such as :attr:`stats`.
        """
        key = self.key(source_digest, name, config)
        with self._lock:
            self._lookups += 1
            artifact = self._entries.get(key)
            if artifact is not None:
                self._hits += 1
                METRICS.inc("cache.hits")
                self._entries.move_to_end(key)
                return artifact
            build_lock = self._building.setdefault(key, threading.Lock())
        while True:
            with build_lock:
                with self._lock:
                    artifact = self._entries.get(key)
                    if artifact is not None:
                        # someone built it while we waited on the lock
                        self._hits += 1
                        METRICS.inc("cache.hits")
                        self._entries.move_to_end(key)
                        return artifact
                    # a failed build retires its lock from _building;
                    # only the holder of the *live* lock may build, so a
                    # waiter holding a retired lock re-registers (or
                    # defers to whichever lock took its place)
                    current = self._building.setdefault(key, build_lock)
                if current is build_lock:
                    try:
                        artifact = build()
                    except BaseException:
                        with self._lock:
                            self._building.pop(key, None)
                        raise
                    with self._lock:
                        self._misses += 1
                        METRICS.inc("cache.misses")
                        self._entries[key] = artifact
                        if (self.max_entries is not None
                                and len(self._entries) > self.max_entries):
                            self._entries.popitem(last=False)
                            self._evictions += 1
                            METRICS.inc("cache.evictions")
                        self._building.pop(key, None)
                    return artifact
            # lost ownership while waiting: retry under the live lock
            build_lock = current

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(lookups=self._lookups, hits=self._hits,
                              misses=self._misses,
                              evictions=self._evictions,
                              entries=len(self._entries))
