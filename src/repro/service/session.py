"""DeploymentSession: the fleet-scale front door of the reproduction.

The one-shot :func:`repro.core.workflow.deploy` re-runs the whole
software-source flow for every call.  A session amortises it: one
:class:`~repro.core.provisioning.DeviceRegistry`, one
:class:`~repro.core.compiler_driver.EricCompiler`, and one
:class:`~repro.service.cache.ArtifactCache` of device-independent
compile products, so deploying a program to N devices costs one
compile+sign and N encrypt+package+run stages — the paper's
"efficient and practical at deployment scale" claim as an API.

    session = DeploymentSession()
    report = session.deploy_fleet(SOURCE, devices, max_workers=8)
    print(report.summary())

Per-device failures inside :meth:`DeploymentSession.deploy_fleet` are
isolated: a device that rejects its package (``ValidationError``) marks
its own :class:`FleetDeviceOutcome` failed while the rest of the fleet
proceeds.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.compiler_driver import (CompiledArtifact, EricCompiler,
                                        EricCompileResult,
                                        PackagingTimings, source_digest)
from repro.core.config import EricConfig
from repro.core.device import Device
from repro.core.provisioning import DeviceRegistry
from repro.core.workflow import DeploymentResult
from repro.errors import ConfigError, EricError, ProvisioningError
from repro.net.channel import UntrustedChannel
from repro.service.cache import ArtifactCache, CacheStats
from repro.service.telemetry import TelemetryEvent, TelemetryHub

#: Builds one transfer channel per deployment (kept per-device in fleet
#: fan-out so interceptor state is never shared across worker threads).
ChannelFactory = Callable[[], UntrustedChannel]


@dataclass(frozen=True)
class FleetDeviceOutcome:
    """What happened to one device during a fleet rollout."""

    device_id: str
    result: DeploymentResult | None
    error: EricError | None
    wall_s: float
    #: stage timings for the work actually done — present even when the
    #: device later failed validation (the encrypt+package cost was
    #: still paid); None only if packaging itself failed
    timings: PackagingTimings | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class FleetDeploymentReport:
    """Aggregate of one program pushed to a whole fleet."""

    program: str
    outcomes: tuple[FleetDeviceOutcome, ...]
    wall_s: float
    #: the artifact's one-time build cost (the compile-once guarantee).
    #: When ``cache_hit`` is True this rollout *embodies* but did not
    #: incur it — don't sum these fields across rollouts of one session
    compile_s: float
    signature_s: float
    #: summed across devices (the O(devices) residue); includes one
    #: share of the artifact's map-selection time
    encryption_s: float
    packaging_s: float
    cache_hit: bool
    cache_stats: CacheStats = field(default_factory=CacheStats)

    @property
    def succeeded(self) -> tuple[FleetDeviceOutcome, ...]:
        return tuple(o for o in self.outcomes if o.ok)

    @property
    def failed(self) -> tuple[FleetDeviceOutcome, ...]:
        return tuple(o for o in self.outcomes if not o.ok)

    @property
    def failures(self) -> dict[str, EricError]:
        """Error per failed device id.

        Convenience view; if several failed outcomes share a (spoofed)
        device id only the last error survives the dict — iterate
        :attr:`failed` when identities may collide.
        """
        return {o.device_id: o.error for o in self.outcomes if o.error}

    @property
    def device_count(self) -> int:
        return len(self.outcomes)

    @property
    def all_ok(self) -> bool:
        return not self.failed

    def summary(self) -> str:
        lines = [
            f"fleet deployment of {self.program!r}: "
            f"{len(self.succeeded)}/{self.device_count} devices ok "
            f"in {self.wall_s * 1e3:.1f} ms",
            f"  compile+sign (paid once{', cached' if self.cache_hit else ''})"
            f" : {(self.compile_s + self.signature_s) * 1e3:.1f} ms",
            f"  encrypt+package (all devices): "
            f"{(self.encryption_s + self.packaging_s) * 1e3:.1f} ms",
        ]
        for outcome in self.failed:
            lines.append(f"  FAILED {outcome.device_id}: "
                         f"{type(outcome.error).__name__}: {outcome.error}")
        return "\n".join(lines)


def build_fleet_report(name: str, artifact: CompiledArtifact,
                       outcomes: Sequence[FleetDeviceOutcome],
                       wall_s: float, *, cache_hit: bool,
                       cache_stats: CacheStats) -> FleetDeploymentReport:
    """Aggregate per-device outcomes into one fleet report.

    Shared by the thread-pool :meth:`DeploymentSession.deploy_fleet`
    and the asyncio :class:`repro.service.scheduler.AsyncDeploymentSession`
    so the stage accounting (one compile+sign, N encrypt+package, the
    once-paid map-selection share) cannot drift between the two paths.
    """
    encryption_s = packaging_s = 0.0
    timed = 0
    for outcome in outcomes:
        # failed devices still paid for encrypt+package, so the
        # "(all devices)" aggregate counts their timings too
        if outcome.timings is not None:
            timed += 1
            encryption_s += outcome.timings.encryption_s
            packaging_s += outcome.timings.packaging_s
    # per-device encryption_s carries the once-paid map-selection
    # time (single-device parity); the fleet paid it once, not N×
    encryption_s -= max(0, timed - 1) * artifact.selection_s
    return FleetDeploymentReport(
        program=name, outcomes=tuple(outcomes), wall_s=wall_s,
        compile_s=artifact.compile_s,
        signature_s=artifact.signature_s,
        encryption_s=encryption_s, packaging_s=packaging_s,
        cache_hit=cache_hit, cache_stats=cache_stats,
    )


class DeploymentSession:
    """A long-lived software source deploying to many devices.

    Args:
        config: packaging configuration shared by every deployment.
        registry: enrollment database; a fresh one if not given.
        channel_factory: builds the untrusted transfer channel used per
            deployment (default: a clean :class:`UntrustedChannel`).
        cache_size: maximum cached artifacts (None = unbounded).
        telemetry: optional initial telemetry sink (see
            :mod:`repro.service.telemetry`); more via :meth:`on_event`.
    """

    def __init__(self, config: EricConfig | None = None, *,
                 registry: DeviceRegistry | None = None,
                 channel_factory: ChannelFactory | None = None,
                 cache_size: int | None = 64,
                 telemetry=None) -> None:
        self.config = (config or EricConfig()).validate()
        self.registry = registry or DeviceRegistry()
        self.compiler = EricCompiler(self.config)
        self.channel_factory = channel_factory or UntrustedChannel
        self.cache = ArtifactCache(max_entries=cache_size)
        self._telemetry = TelemetryHub()
        if telemetry is not None:
            self._telemetry.add(telemetry)

    # -- observability ----------------------------------------------------

    def on_event(self, sink) -> None:
        """Register a telemetry sink called once per pipeline stage."""
        self._telemetry.add(sink)

    def _emit(self, stage: str, seconds: float = 0.0, *,
              device_id: str | None = None, program: str | None = None,
              ok: bool = True, detail: str = "") -> None:
        self._telemetry.emit(TelemetryEvent(
            stage=stage, seconds=seconds, device_id=device_id,
            program=program, ok=ok, detail=detail))

    @property
    def cache_stats(self) -> CacheStats:
        return self.cache.stats

    # -- the compile-once stage -------------------------------------------

    def prepare(self, source: str, name: str = "program",
                ) -> CompiledArtifact:
        """Fetch or build the device-independent artifact for a source."""
        return self._prepare(source, name)[0]

    def _prepare(self, source: str, name: str,
                 ) -> tuple[CompiledArtifact, bool]:
        """As :meth:`prepare`, also reporting whether this call compiled
        (False = served from cache), race-free under concurrent use."""
        return self.prepare_for_config(source, name, self.config)

    def prepare_for_config(self, source: str, name: str,
                           config: EricConfig,
                           ) -> tuple[CompiledArtifact, bool]:
        """Fetch or build an artifact under an explicit config.

        The session's own config is just the default: the async fleet
        scheduler serves fleets whose jobs sweep packaging configs, and
        all of them share this one cache (which is keyed by config, so
        variants never collide).  Returns ``(artifact, compiled)``.
        """
        config = config.validate()
        compiler = (self.compiler if config == self.config
                    else EricCompiler(config))
        digest = source_digest(source)
        built: list[float] = []

        def build() -> CompiledArtifact:
            start = time.perf_counter()
            artifact = compiler.prepare(source, name)
            built.append(time.perf_counter() - start)
            return artifact

        artifact = self.cache.get_or_build(digest, name, config, build)
        # emitted after get_or_build: sinks may inspect cache_stats
        if built:
            self._emit("compile", built[0], program=name,
                       detail=digest[:12])
        else:
            self._emit("cache.hit", program=name, detail=digest[:12])
        return artifact, bool(built)

    # -- per-device stages ------------------------------------------------

    def package_for(self, source: str, device: Device,
                    name: str = "program") -> EricCompileResult:
        """Ship-without-run: enroll, compile (cached), encrypt for one
        device; returns the packaged result without executing it."""
        artifact = self.prepare(source, name)
        target_key = self.registry.ensure_enrolled(device)
        return self._package_stage(artifact, device.device_id, target_key)

    def deploy(self, source: str, device: Device,
               channel: UntrustedChannel | None = None,
               name: str = "program",
               max_instructions: int = 20_000_000) -> DeploymentResult:
        """The full ①-⑥ flow for one device, with artifact caching.

        Any :class:`repro.errors.ValidationError` raised by the device
        propagates, exactly like :func:`repro.core.workflow.deploy`.
        """
        artifact = self.prepare(source, name)
        target_key = self.registry.ensure_enrolled(device)
        packaged = self._package_stage(artifact, device.device_id,
                                       target_key)
        return self._ship_and_run(packaged, device,
                                  channel or self.channel_factory(),
                                  artifact.name, max_instructions)

    def _package_stage(self, artifact: CompiledArtifact, device_id: str,
                       target_key: bytes) -> EricCompileResult:
        start = time.perf_counter()
        result = self.compiler.package_artifact(artifact, target_key)
        self._emit("package", time.perf_counter() - start,
                   device_id=device_id, program=artifact.name)
        return result

    def _ship_and_run(self, result: EricCompileResult, device: Device,
                      channel: UntrustedChannel, name: str,
                      max_instructions: int) -> DeploymentResult:
        start = time.perf_counter()
        delivered = channel.transfer(result.package_bytes)
        self._emit("transfer", time.perf_counter() - start,
                   device_id=device.device_id, program=name)

        start = time.perf_counter()
        try:
            run_result = device.load_and_run(
                delivered, max_instructions=max_instructions)
        except EricError as exc:
            self._emit("execute", time.perf_counter() - start,
                       device_id=device.device_id, program=name,
                       ok=False, detail=str(exc))
            raise
        self._emit("execute", time.perf_counter() - start,
                   device_id=device.device_id, program=name)
        return DeploymentResult(compile_result=result,
                                delivered_bytes=delivered,
                                run_result=run_result)

    # -- fleet fan-out ----------------------------------------------------

    def deploy_one_prepared(self, artifact: CompiledArtifact,
                            device: Device, target_key: bytes, *,
                            max_instructions: int = 20_000_000,
                            ) -> FleetDeviceOutcome:
        """Package/ship/run one already-prepared artifact on one device,
        never raising: failures land in the outcome (the fleet fan-out
        unit, also driven concurrently by the async scheduler)."""
        start = time.perf_counter()
        packaged = None
        try:
            packaged = self._package_stage(artifact, device.device_id,
                                           target_key)
            result = self._ship_and_run(packaged, device,
                                        self.channel_factory(),
                                        artifact.name,
                                        max_instructions)
        except EricError as exc:
            return FleetDeviceOutcome(
                device_id=device.device_id, result=None, error=exc,
                wall_s=time.perf_counter() - start,
                timings=packaged.timings if packaged else None)
        return FleetDeviceOutcome(
            device_id=device.device_id, result=result, error=None,
            wall_s=time.perf_counter() - start,
            timings=packaged.timings)

    def deploy_fleet(self, source: str, devices: Sequence[Device], *,
                     max_workers: int = 4, name: str = "program",
                     max_instructions: int = 20_000_000,
                     ) -> FleetDeploymentReport:
        """Push one program to many devices, compiling exactly once.

        Enrollment and handshake happen up front (serially — the
        registry is the trusted vendor database); encrypt/transfer/run
        fan out over a thread pool.  A device failing validation records
        an error in its outcome instead of aborting the fleet.
        """
        if not devices:
            raise ProvisioningError("deploy_fleet needs at least one device")
        if max_workers < 1:
            raise ConfigError("max_workers must be at least 1")
        fleet_start = time.perf_counter()

        artifact, compiled = self._prepare(source, name)
        keys = [self.registry.ensure_enrolled(device) for device in devices]

        def deploy_one(device: Device,
                       target_key: bytes) -> FleetDeviceOutcome:
            return self.deploy_one_prepared(
                artifact, device, target_key,
                max_instructions=max_instructions)

        workers = min(max_workers, len(devices))
        if workers == 1:
            outcomes = [deploy_one(d, k) for d, k in zip(devices, keys)]
        else:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                outcomes = list(pool.map(deploy_one, devices, keys))

        wall_s = time.perf_counter() - fleet_start
        report = build_fleet_report(
            name, artifact, outcomes, wall_s,
            cache_hit=not compiled, cache_stats=self.cache.stats)
        self._emit("fleet", wall_s, program=name, ok=report.all_ok,
                   detail=f"{len(report.succeeded)}/{len(outcomes)} ok")
        return report
