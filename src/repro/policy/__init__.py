"""Declarative protection policies and software-level obfuscation.

See ``docs/policy.md`` for the JSON dialect and worked examples.
"""

from repro.policy.opaque import (
    ObfuscationResult,
    insert_opaque_predicates,
)
from repro.policy.policy import (
    EncryptRule,
    ObfuscateRule,
    ProtectionPolicy,
    Region,
    build_policy_map,
    function_bounds,
    policy_from_dict,
    policy_to_dict,
    region_slot_indices,
)

__all__ = [
    "EncryptRule",
    "ObfuscateRule",
    "ObfuscationResult",
    "ProtectionPolicy",
    "Region",
    "build_policy_map",
    "function_bounds",
    "insert_opaque_predicates",
    "policy_from_dict",
    "policy_to_dict",
    "region_slot_indices",
]
