"""Declarative protection policies.

ERIC's original interface is a single knob — one :class:`EricConfig`
applied to the whole program.  A :class:`ProtectionPolicy` generalizes
it into a declarative mapping from program **regions** to protection
**directives**:

* *regions* — the whole program, one function (resolved to its
  address range through the assembler's symbol table), or an explicit
  address window;
* *directives* — encryption (mode + cipher + per-region fraction,
  compiled down to an :class:`~repro.core.encryptor.EncryptionMap`
  the existing packaging path consumes), HDE overlap, data signing,
  and software-level obfuscation (the opaque-predicate pass of
  :mod:`repro.policy.opaque`).

Policies are plain frozen dataclasses with a strict JSON dialect
(:func:`policy_from_dict` / :func:`policy_to_dict`), so they travel in
farm job keys, sweep specs, and store records exactly like
:class:`EricConfig` does.  The policy ``name`` is display-only — two
policies differing only by name compile, select, and measure
identically, and :meth:`repro.farm.spec.JobSpec.key` excludes it.

The hardware constraint is unchanged: one package carries one
encryption mode and one cipher (the HDE decrypts with a single
configuration).  What a policy adds is *where* and *how much*: each
encrypt rule selects a fraction of its region's instruction slots, and
the union of all rules' selections becomes the package's encryption
map.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

from repro.asm.program import Program
from repro.core.config import EncryptionMode, EricConfig
from repro.core.encryptor import EncryptionMap
from repro.crypto.prng import Xoshiro256StarStar
from repro.crypto.xor_cipher import registered_ciphers
from repro.errors import ConfigError

#: Region kinds a rule may target.  ``window`` regions are address
#: ranges over the *assembled* text section, so only encrypt rules may
#: use them — the obfuscation pass rewrites assembly text before
#: addresses exist.
REGION_KINDS = ("program", "function", "window")

#: Encryption modes a policy may compile down to.  FULL is expressed
#: as a whole-program PARTIAL rule with fraction 1.0 — the map is all
#: ones either way, and keeping the policy surface to the two
#: slot-subset modes means every rule composes by map union.
POLICY_MODES = ("partial", "field")


@dataclass(frozen=True)
class Region:
    """Where a rule applies.

    ``kind="program"`` covers every instruction slot.
    ``kind="function"`` needs ``name`` — a text-section symbol; the
    region runs from that symbol to the next function symbol (internal
    ``.L…`` labels do not terminate it).  ``kind="window"`` needs
    ``start``/``stop`` — absolute addresses, half-open ``[start, stop)``.
    """

    kind: str = "program"
    name: str | None = None
    start: int | None = None
    stop: int | None = None

    def validate(self) -> "Region":
        if self.kind not in REGION_KINDS:
            raise ConfigError(f"unknown region kind {self.kind!r}; "
                              f"known: {list(REGION_KINDS)}")
        if self.kind == "function":
            if not isinstance(self.name, str) or not self.name:
                raise ConfigError(
                    "a function region needs a non-empty symbol name")
            if self.start is not None or self.stop is not None:
                raise ConfigError(
                    "a function region takes no start/stop (the symbol "
                    "table supplies the range)")
        elif self.kind == "window":
            for label, value in (("start", self.start), ("stop", self.stop)):
                if not isinstance(value, int) or isinstance(value, bool):
                    raise ConfigError(
                        f"a window region needs integer start/stop, got "
                        f"{label}={value!r}")
            if self.name is not None:
                raise ConfigError("a window region takes no name")
            if not 0 <= self.start < self.stop:
                raise ConfigError(
                    f"window [{self.start:#x}, {self.stop:#x}) is empty "
                    f"or inverted")
        else:  # program
            if (self.name, self.start, self.stop) != (None, None, None):
                raise ConfigError(
                    "a program region takes no name/start/stop")
        return self

    def describe(self) -> str:
        if self.kind == "function":
            return f"fn {self.name}"
        if self.kind == "window":
            return f"[{self.start:#x},{self.stop:#x})"
        return "program"

    @classmethod
    def from_dict(cls, data) -> "Region":
        if not isinstance(data, dict):
            raise ConfigError(f"region must be an object, got {data!r}")
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(f"unknown region keys {sorted(unknown)}; "
                              f"known: {sorted(known)}")
        return cls(**data).validate()


@dataclass(frozen=True)
class EncryptRule:
    """Encrypt ``fraction`` of the region's instruction slots."""

    region: Region = Region()
    fraction: float = 1.0

    def validate(self) -> "EncryptRule":
        self.region.validate()
        if not isinstance(self.fraction, (int, float)) \
                or isinstance(self.fraction, bool) \
                or not 0.0 <= self.fraction <= 1.0:
            raise ConfigError(
                f"encrypt fraction must be in [0, 1], got {self.fraction!r}")
        return self

    @classmethod
    def from_dict(cls, data) -> "EncryptRule":
        options = _rule_options(cls, data, "encrypt rule")
        return cls(**options).validate()


@dataclass(frozen=True)
class ObfuscateRule:
    """Insert opaque predicates over the region's instruction stream.

    ``density`` is the fraction of instruction sites that receive a
    guard (an always-true branch over ``junk`` never-executed decoy
    instructions).  Obfuscation rewrites assembly text before
    addresses exist, so ``window`` regions are rejected here.
    """

    region: Region = Region()
    density: float = 0.15
    junk: int = 3

    def validate(self) -> "ObfuscateRule":
        self.region.validate()
        if self.region.kind == "window":
            raise ConfigError(
                "obfuscate rules take program/function regions only: "
                "the pass rewrites assembly text, which has no "
                "addresses yet")
        if not isinstance(self.density, (int, float)) \
                or isinstance(self.density, bool) \
                or not 0.0 <= self.density <= 1.0:
            raise ConfigError(
                f"obfuscate density must be in [0, 1], got {self.density!r}")
        if not isinstance(self.junk, int) or isinstance(self.junk, bool) \
                or self.junk < 1:
            raise ConfigError(
                f"junk must be a positive instruction count, "
                f"got {self.junk!r}")
        return self

    @classmethod
    def from_dict(cls, data) -> "ObfuscateRule":
        options = _rule_options(cls, data, "obfuscate rule")
        return cls(**options).validate()


def _rule_options(cls, data, what: str) -> dict:
    if not isinstance(data, dict):
        raise ConfigError(f"{what} must be an object, got {data!r}")
    known = {f.name for f in fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ConfigError(f"unknown {what} keys {sorted(unknown)}; "
                          f"known: {sorted(known)}")
    options = dict(data)
    if "region" in options:
        options["region"] = Region.from_dict(options["region"])
    return options


@dataclass(frozen=True)
class ProtectionPolicy:
    """A named bundle of per-region protection directives.

    Attributes:
        name: display label (frontier tables group by it); excluded
            from job keys — renaming a policy must not re-measure.
        mode: encryption mode the encrypt rules compile down to
            (``partial`` or ``field``); ignored when ``encrypt`` is
            empty (the job's own config then builds the map).
        cipher: registered cipher name, or None to inherit the job
            config's cipher.
        encrypt: per-region encryption selections; their union is the
            package's encryption map.
        obfuscate: opaque-predicate insertions applied to the
            instruction stream before signing and encryption.
        sign_data / encrypt_data / overlap_hde: tri-state overrides of
            the job's config/params (None = inherit).
        seed: PRNG seed driving both the per-region slot selection and
            the opaque-predicate pass.
    """

    name: str = "policy"
    mode: str = "partial"
    cipher: str | None = None
    encrypt: tuple[EncryptRule, ...] = ()
    obfuscate: tuple[ObfuscateRule, ...] = ()
    sign_data: bool | None = None
    encrypt_data: bool | None = None
    overlap_hde: bool | None = None
    seed: int = 0x0B5C

    def validate(self) -> "ProtectionPolicy":
        if not isinstance(self.name, str) or not self.name:
            raise ConfigError("policy name must be a non-empty string")
        if self.mode not in POLICY_MODES:
            raise ConfigError(
                f"policy mode must be one of {list(POLICY_MODES)}, got "
                f"{self.mode!r} (express full encryption as a "
                f"whole-program partial rule with fraction 1.0)")
        if self.cipher is not None \
                and self.cipher not in registered_ciphers():
            raise ConfigError(
                f"unknown cipher {self.cipher!r}; "
                f"registered: {registered_ciphers()}")
        for rule in self.encrypt:
            rule.validate()
        for rule in self.obfuscate:
            rule.validate()
        for label, value in (("sign_data", self.sign_data),
                             ("encrypt_data", self.encrypt_data),
                             ("overlap_hde", self.overlap_hde)):
            if value is not None and not isinstance(value, bool):
                raise ConfigError(
                    f"{label} must be true/false/null, got {value!r}")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool) \
                or self.seed < 0:
            raise ConfigError(
                f"policy seed must be a non-negative integer, "
                f"got {self.seed!r}")
        return self

    # -- compile-down -----------------------------------------------------

    def effective_config(self, base: EricConfig) -> EricConfig:
        """The job config with this policy's overrides applied.

        Encrypt rules force ``base.mode`` to the policy's slot-subset
        mode (the map itself is built per region by
        :func:`build_policy_map`); with no encrypt rules the base
        mode/fraction stand and only the tri-state flags apply.
        """
        overrides: dict = {}
        if self.encrypt:
            overrides["mode"] = EncryptionMode(self.mode)
        if self.cipher is not None:
            overrides["cipher"] = self.cipher
        if self.sign_data is not None:
            overrides["sign_data"] = self.sign_data
        if self.encrypt_data is not None:
            overrides["encrypt_data"] = self.encrypt_data
        config = replace(base, **overrides) if overrides else base
        return config.validate()

    def describe(self) -> str:
        parts = [f"policy {self.name!r}: mode={self.mode}"]
        if self.cipher is not None:
            parts.append(f"cipher={self.cipher}")
        for rule in self.encrypt:
            parts.append(f"encrypt {rule.region.describe()} "
                         f"@{rule.fraction:g}")
        for rule in self.obfuscate:
            parts.append(f"obfuscate {rule.region.describe()} "
                         f"d={rule.density:g} junk={rule.junk}")
        if self.overlap_hde is not None:
            parts.append(f"overlap_hde={self.overlap_hde}")
        return ", ".join(parts)

    @classmethod
    def from_dict(cls, data) -> "ProtectionPolicy":
        return policy_from_dict(data)


def policy_from_dict(data) -> ProtectionPolicy:
    """Revive the JSON dialect (see ``docs/policy.md``); strict about
    unknown keys so a typo fails loudly instead of silently weakening
    the protection."""
    if not isinstance(data, dict):
        raise ConfigError(f"policy must be an object, got {data!r}")
    known = {f.name for f in fields(ProtectionPolicy)}
    unknown = set(data) - known
    if unknown:
        raise ConfigError(f"unknown policy keys {sorted(unknown)}; "
                          f"known: {sorted(known)}")
    options = dict(data)
    for label, rule_cls in (("encrypt", EncryptRule),
                            ("obfuscate", ObfuscateRule)):
        rules = options.get(label, ())
        if not isinstance(rules, (list, tuple)):
            raise ConfigError(
                f"policy {label} must be a list of rules, got {rules!r}")
        options[label] = tuple(rule_cls.from_dict(rule) for rule in rules)
    return ProtectionPolicy(**options).validate()


def policy_to_dict(policy: ProtectionPolicy) -> dict:
    """JSON-portable form; :func:`policy_from_dict` revives it
    equal.  (This is exactly ``dataclasses.asdict`` output — the shape
    that travels inside ``SimParams`` payloads.)"""
    from dataclasses import asdict
    data = asdict(policy)
    data["encrypt"] = list(data["encrypt"])
    data["obfuscate"] = list(data["obfuscate"])
    return data


# -- region resolution ----------------------------------------------------


def function_bounds(program: Program, name: str) -> tuple[int, int]:
    """The half-open address range of function ``name``.

    Function boundaries are the non-dot text-section symbols (internal
    labels are ``.L…``-prefixed by codegen convention); the function
    runs from its own symbol to the next boundary or the end of text.
    """
    text_end = program.text_base + len(program.text)
    start = program.symbols.get(name)
    if start is None or not program.text_base <= start < text_end:
        raise ConfigError(
            f"policy region names unknown function {name!r} "
            f"(program {program.name or '?'} defines "
            f"{sorted(s for s, a in program.symbols.items() if not s.startswith('.') and program.text_base <= a < text_end)})")
    boundaries = sorted(
        address for symbol, address in program.symbols.items()
        if not symbol.startswith(".")
        and program.text_base <= address < text_end)
    following = [address for address in boundaries if address > start]
    return start, (following[0] if following else text_end)


def region_slot_indices(program: Program, region: Region,
                        mode: EncryptionMode) -> list[int]:
    """Instruction-slot indices a region covers, in layout order.

    FIELD mode keeps only 4-byte slots — the same eligibility rule as
    :func:`repro.core.encryptor.select_field_slots` (compressed slots
    carry no encryptable fields).
    """
    region.validate()
    if region.kind == "program":
        window = (program.text_base,
                  program.text_base + len(program.text))
    elif region.kind == "function":
        window = function_bounds(program, region.name)
    else:
        window = (region.start, region.stop)
    start, stop = window
    indices = [
        i for i, slot in enumerate(program.layout)
        if start <= program.text_base + slot.offset < stop
        and (mode is not EncryptionMode.FIELD or slot.size == 4)
    ]
    return indices


def build_policy_map(program: Program,
                     policy: ProtectionPolicy,
                     config: EricConfig) -> EncryptionMap:
    """Compile the policy's encrypt rules down to one encryption map.

    Each rule draws its own deterministic selection (seeded by the
    policy seed and the rule's position) from its region's slots; the
    union of all selections is the package map.  Overlapping regions
    therefore compose monotonically — adding a rule can only encrypt
    more.
    """
    policy.validate()
    mode = config.mode
    chosen: set[int] = set()
    for index, rule in enumerate(policy.encrypt):
        slots = region_slot_indices(program, rule.region, mode)
        count = round(len(slots) * rule.fraction)
        if count == 0:
            continue
        prng = Xoshiro256StarStar(policy.seed + index)
        picks = prng.sample_indices(len(slots), count)
        chosen.update(slots[i] for i in picks)
    return EncryptionMap.from_indices(program.instruction_count,
                                      sorted(chosen))
