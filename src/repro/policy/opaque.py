"""Opaque-predicate insertion (ROPfuscator-style, assembly level).

The pass rewrites the compiler's assembly text between code generation
and assembly: at a deterministic, policy-seeded subset of instruction
sites it inserts a **guard** — an always-true branch — over a block of
**junk** instructions that decode as valid RV64IM but never execute::

      beq  s3, s3, .L$opq7      # guard: trivially taken
      mul  a4, t1, s2           # junk: skipped at run time
      xori t3, a0, 1337         # junk
    .L$opq7:

Why this shape:

* **Architectural results are preserved by construction.**  Guards
  compare a register against *itself* (``beq r, r`` / ``bge r, r`` /
  ``bgeu r, r``) — they read registers but never write one, so no live
  value is clobbered no matter where the guard lands, and the branch
  is taken on every execution.  Junk may clobber anything precisely
  because it is never reached.  The fast-interpreter lockstep tests
  verify this end to end.
* **Relocation is free.**  The rewrite happens on label-based assembly
  text, so the existing two-pass assembler re-resolves every branch,
  call, and ``la`` around the inserted bytes; no binary-patching
  relocation engine is needed.
* **It costs honestly.**  Each guarded site retires one extra branch
  per execution and dilutes the instruction cache — exactly the
  overhead the security-vs-overhead frontier measures against the
  attacker-score gain (junk raises the decoy surface a static
  disassembler must consider).

Inserted lines carry an ``# opq`` comment (stripped by the assembler)
so tests and humans can count and diff insertions.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.crypto.prng import Xoshiro256StarStar
from repro.errors import ConfigError

#: Matches a leading label definition (same shape the assembler peels).
_LABEL_DEF = re.compile(r"^([A-Za-z_.$][\w.$]*):")

#: Label namespace of inserted skip targets.  ``$`` is legal in
#: assembler labels but cannot appear in MiniC identifiers or codegen's
#: ``.L_<fn>_…`` locals, so collisions are impossible by construction.
LABEL_PREFIX = ".L$opq"

#: Marker comment on every inserted line.
MARK = "# opq"

#: Always-true guard comparisons over a register and itself.  All of
#: them only *read* the register: beq/bge/bgeu hold trivially for equal
#: operands.
_GUARDS = ("beq", "bge", "bgeu")

#: Registers a guard may read (reading any register is side-effect
#: free; this set just keeps the decoys looking like compiler output).
_GUARD_REGS = ("a0", "a1", "a2", "a3", "s1", "s2", "s3", "t0", "t1", "t2")

#: Junk templates — valid, encodable RV64IM that never executes.
#: ``{r*}`` slots are filled from _JUNK_REGS, ``{imm}`` from the I-type
#: immediate range.
_JUNK_TEMPLATES = (
    "xori {rd}, {rs1}, {imm}",
    "addi {rd}, {rs1}, {imm}",
    "add {rd}, {rs1}, {rs2}",
    "sub {rd}, {rs1}, {rs2}",
    "mul {rd}, {rs1}, {rs2}",
    "sltiu {rd}, {rs1}, {imm}",
    "xor {rd}, {rs1}, {rs2}",
    "andi {rd}, {rs1}, {imm}",
)

_JUNK_REGS = ("a0", "a1", "a2", "a3", "a4", "a5",
              "t0", "t1", "t2", "t3", "t4",
              "s1", "s2", "s3", "s4")


@dataclass(frozen=True)
class ObfuscationResult:
    """The rewritten assembly plus insertion accounting."""

    asm_text: str
    #: guard blocks inserted (one always-taken branch each)
    guards: int
    #: junk instructions inserted (never executed)
    junk_instructions: int

    @property
    def inserted_instructions(self) -> int:
        """Static instruction-count growth (guards + junk)."""
        return self.guards + self.junk_instructions


def _line_kind(line: str) -> tuple[str, str]:
    """Classify one raw line -> (kind, remainder-after-labels).

    kind: 'label' (pure label line), 'directive', 'instruction',
    'blank'.  The leading-label loop mirrors the assembler's so the
    pass and the assembler always agree on what a line is.
    """
    text = _strip_comment(line).strip()
    labels = []
    while True:
        match = _LABEL_DEF.match(text)
        if not match:
            break
        labels.append(match.group(1))
        text = text[match.end():].strip()
    if not text:
        return ("label" if labels else "blank"), text
    if text.startswith("."):
        return "directive", text
    return "instruction", text


def _strip_comment(line: str) -> str:
    for marker in ("#", "//"):
        index = line.find(marker)
        if index >= 0:
            line = line[:index]
    return line


def _function_of(lines: list[str]) -> list[str | None]:
    """Per line: the function (column-0 non-dot label) it belongs to.

    Tracks the ``.text``/``.data`` section; lines outside text map to
    None and are never insertion sites.
    """
    owners: list[str | None] = []
    section = "text"
    current: str | None = None
    for line in lines:
        stripped = _strip_comment(line).strip()
        if stripped.startswith(".text"):
            section = "text"
        elif stripped.startswith(".data"):
            section = "data"
        text = stripped
        while True:
            match = _LABEL_DEF.match(text)
            if not match:
                break
            label = match.group(1)
            if section == "text" and not label.startswith("."):
                current = label
            text = text[match.end():].strip()
        owners.append(current if section == "text" else None)
    return owners


def insert_opaque_predicates(asm_text: str, policy) -> ObfuscationResult:
    """Apply a policy's obfuscate rules to assembly text.

    Sites are instruction statements in the ``.text`` section; each
    rule selects ``round(density * sites_in_region)`` of its region's
    sites with a PRNG seeded from ``(policy.seed, rule index)``, and a
    guard + junk block is inserted immediately *before* each selected
    instruction.  The same source and policy always produce the same
    bytes.
    """
    rules = tuple(policy.obfuscate)
    if not rules:
        return ObfuscationResult(asm_text=asm_text, guards=0,
                                 junk_instructions=0)
    lines = asm_text.splitlines()
    owners = _function_of(lines)
    sites = [i for i, line in enumerate(lines)
             if owners[i] is not None
             and _line_kind(line)[0] == "instruction"]

    #: line index -> list of junk lengths to insert there
    picked: dict[int, list[int]] = {}
    for rule_index, rule in enumerate(rules):
        rule.validate()
        if rule.region.kind == "function":
            wanted = rule.region.name
            if wanted not in owners:
                raise ConfigError(
                    f"obfuscate rule names unknown function {wanted!r}")
            rule_sites = [i for i in sites if owners[i] == wanted]
        else:
            rule_sites = sites
        count = round(len(rule_sites) * rule.density)
        if count == 0:
            continue
        prng = Xoshiro256StarStar((policy.seed << 1) + rule_index)
        for pick in prng.sample_indices(len(rule_sites), count):
            picked.setdefault(rule_sites[pick], []).append(rule.junk)

    guards = 0
    junk_total = 0
    label_counter = 0
    out: list[str] = []
    for index, line in enumerate(lines):
        for junk_len in picked.get(index, ()):
            prng = Xoshiro256StarStar((policy.seed << 20)
                                      ^ (index << 4) ^ junk_len)
            label = f"{LABEL_PREFIX}{label_counter}"
            label_counter += 1
            guard = _GUARDS[prng.randint(0, len(_GUARDS) - 1)]
            reg = _GUARD_REGS[prng.randint(0, len(_GUARD_REGS) - 1)]
            out.append(f"  {guard} {reg}, {reg}, {label} {MARK}")
            guards += 1
            for _ in range(junk_len):
                out.append(f"  {_junk_instruction(prng)} {MARK}")
                junk_total += 1
            out.append(f"{label}: {MARK}")
        out.append(line)
    return ObfuscationResult(asm_text="\n".join(out) + "\n",
                             guards=guards, junk_instructions=junk_total)


def _junk_instruction(prng: Xoshiro256StarStar) -> str:
    template = _JUNK_TEMPLATES[prng.randint(0, len(_JUNK_TEMPLATES) - 1)]
    regs = {
        slot: _JUNK_REGS[prng.randint(0, len(_JUNK_REGS) - 1)]
        for slot in ("rd", "rs1", "rs2")
    }
    return template.format(imm=prng.randint(-2048, 2047), **regs)
