"""Assembler and program-image substrate.

The ERIC compiler needs real binaries with known instruction boundaries:
the per-instruction encryption map (paper §III.1) is one bit per
instruction *slot*, and slots are 2 or 4 bytes once RVC is in play.  The
:class:`repro.asm.program.Program` image therefore carries an explicit
text layout (offset/size per slot) produced by the assembler.

Modules
-------
:mod:`repro.asm.assembler`  two-pass assembler with pseudo-instructions,
                            data directives and optional RVC compression
:mod:`repro.asm.program`    the ``Program`` image + plain serialization
:mod:`repro.asm.loader`     loads an image into a flat memory
"""

from repro.asm.assembler import Assembler, assemble
from repro.asm.program import InstructionSlot, Program
from repro.asm.loader import load_program

__all__ = [
    "Assembler",
    "assemble",
    "Program",
    "InstructionSlot",
    "load_program",
]
