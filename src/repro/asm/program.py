"""The ``Program`` image: what the compiler produces and ERIC encrypts.

A ``Program`` is the reproduction's stand-in for the paper's "compiled
program": text and data sections, an entry point, a symbol table, and —
crucially for ERIC — the exact instruction-slot layout of the text
section, which the encryptor's per-instruction map is built against.

``serialize_plain()`` is the unencrypted on-disk form used as the baseline
"unencrypted compiled program" size in Fig. 5.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.errors import PackageFormatError

_PLAIN_MAGIC = b"RVPI"  # RISC-V Plain Image
_PLAIN_VERSION = 1


@dataclass(frozen=True)
class InstructionSlot:
    """One instruction position in the text section."""

    offset: int  # byte offset within the text section
    size: int    # 2 (compressed) or 4 bytes

    def __post_init__(self) -> None:
        if self.size not in (2, 4):
            raise PackageFormatError(f"invalid slot size {self.size}")
        if self.offset < 0:
            raise PackageFormatError(f"negative slot offset {self.offset}")


@dataclass
class Program:
    """A compiled, linked, loadable program image."""

    text: bytes
    data: bytes
    text_base: int
    data_base: int
    entry: int
    layout: tuple[InstructionSlot, ...]
    symbols: dict[str, int] = field(default_factory=dict)
    name: str = ""

    def __post_init__(self) -> None:
        if self.layout:
            end = self.layout[-1].offset + self.layout[-1].size
            if end > len(self.text):
                raise PackageFormatError(
                    f"layout extends to {end} but text is {len(self.text)}B"
                )

    @property
    def instruction_count(self) -> int:
        """Number of instruction slots (the encryption map's bit count)."""
        return len(self.layout)

    @property
    def compressed_count(self) -> int:
        """Number of 16-bit slots (drives the RVC map-overhead effect)."""
        return sum(1 for slot in self.layout if slot.size == 2)

    def image_bytes(self) -> bytes:
        """text || data — the bytes the signature is computed over,
        together with the entry point (see core.signature)."""
        return self.text + self.data

    def serialize_plain(self) -> bytes:
        """Unencrypted wire form — the Fig. 5 size baseline.

        Deliberately carries *no* instruction-layout table: a normal
        executable does not need one (RISC-V length bits self-describe the
        stream), and carrying one would hide the encryption map's size
        cost that Fig. 5 measures.  ``deserialize_plain`` re-derives the
        layout by walking the plaintext.
        """
        header = struct.pack(
            "<4sHQQQII",
            _PLAIN_MAGIC, _PLAIN_VERSION,
            self.entry, self.text_base, self.data_base,
            len(self.text), len(self.data),
        )
        return header + self.text + self.data

    @classmethod
    def deserialize_plain(cls, blob: bytes, name: str = "") -> "Program":
        """Inverse of :meth:`serialize_plain` (symbols are not carried)."""
        header_size = struct.calcsize("<4sHQQQII")
        if len(blob) < header_size:
            raise PackageFormatError("plain image truncated (header)")
        magic, version, entry, text_base, data_base, text_len, data_len = \
            struct.unpack("<4sHQQQII", blob[:header_size])
        if magic != _PLAIN_MAGIC:
            raise PackageFormatError(f"bad plain-image magic {magic!r}")
        if version != _PLAIN_VERSION:
            raise PackageFormatError(f"unsupported plain-image v{version}")
        expected = header_size + text_len + data_len
        if len(blob) != expected:
            raise PackageFormatError(
                f"plain image length {len(blob)} != expected {expected}"
            )
        cursor = header_size
        text = blob[cursor:cursor + text_len]
        cursor += text_len
        data = blob[cursor:cursor + data_len]
        return cls(text=text, data=data, text_base=text_base,
                   data_base=data_base, entry=entry,
                   layout=layout_from_text(text), name=name)


def layout_from_text(text: bytes) -> tuple[InstructionSlot, ...]:
    """Re-derive the instruction-slot layout from plaintext by the RISC-V
    length rule (low bits 0b11 = 32-bit parcel)."""
    slots = []
    offset = 0
    while offset + 2 <= len(text):
        halfword = int.from_bytes(text[offset:offset + 2], "little")
        size = 4 if halfword & 0b11 == 0b11 else 2
        if offset + size > len(text):
            raise PackageFormatError(
                f"text ends mid-instruction at offset {offset}")
        slots.append(InstructionSlot(offset=offset, size=size))
        offset += size
    if offset != len(text):
        raise PackageFormatError("text length is not instruction-aligned")
    return tuple(slots)
