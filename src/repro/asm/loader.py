"""Program loader: copy a :class:`Program` image into SoC memory.

In the paper's flow the decrypted program is "sent to the Trusted Zone"
and loaded for execution (§III.2 step 6); this is that copy.
"""

from __future__ import annotations

from repro.asm.program import Program
from repro.errors import MemoryFault


def load_program(program: Program, memory: bytearray) -> None:
    """Write text and data sections at their base addresses."""
    _copy(memory, program.text_base, program.text, "text")
    _copy(memory, program.data_base, program.data, "data")


def _copy(memory: bytearray, base: int, section: bytes, name: str) -> None:
    if base < 0 or base + len(section) > len(memory):
        raise MemoryFault(
            f"{name} section [{base:#x}, {base + len(section):#x}) does not "
            f"fit in {len(memory)} bytes of memory"
        )
    memory[base:base + len(section)] = section
